"""Command-line interface.

Run any cell of the paper's evaluation without writing code::

    python -m repro run --dataset purchase100 --defense dinar
    python -m repro run --dataset gtsrb --defense ldp --attack shadow
    python -m repro analyze --dataset celeba
    python -m repro list

``run`` prints the Appendix-A metrics (attack AUC against global and
local models, client accuracy) plus measured costs, and can dump a
JSON summary with ``--out``.
"""

from __future__ import annotations

import argparse
import math
import sys

import numpy as np

from repro.bench.harness import (
    default_config,
    make_model_factory,
    run_experiment,
)
from repro.bench.reporting import format_table
from repro.data import available_datasets
from repro.fl.aggregation import AGGREGATOR_CHOICES
from repro.fl.behavior import BEHAVIOR_CHOICES
from repro.fl.config import FLConfig
from repro.privacy.defenses import DEFENSE_CHOICES

# Derived from the make_defense registry — the single source of truth
# for defense names, so CLI choices cannot drift from the factory.
DEFENSES = list(DEFENSE_CHOICES)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DINAR reproduction: run FL privacy experiments")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one (dataset, defense) cell")
    run.add_argument("--dataset", required=True,
                     choices=available_datasets())
    run.add_argument("--defense", default="none", choices=DEFENSES)
    run.add_argument("--attack", default="yeom",
                     choices=["yeom", "shadow"])
    run.add_argument("--rounds", type=int, default=None)
    run.add_argument("--clients", type=int, default=None)
    run.add_argument("--local-epochs", type=int, default=None)
    run.add_argument("--lr", type=float, default=None)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--workers", type=int, default=0,
                     help="worker processes for client training "
                          "(0/1 = serial; results are bitwise "
                          "identical either way)")
    run.add_argument("--ipc", default="shm",
                     choices=["shm", "pickle"],
                     help="parallel-executor transport: shm broadcasts "
                          "weights through shared-memory segments "
                          "(O(descriptor) per-client payloads, the "
                          "default, auto-falls back where unavailable); "
                          "pickle ships full vectors through the pool "
                          "pipe; bitwise identical either way")
    run.add_argument("--sample-fraction", type=float, default=1.0,
                     help="fraction of the selected cohort actually "
                          "sampled each round (cfraction-style; "
                          "default 1.0 = everyone)")
    run.add_argument("--drop-rate", type=float, default=0.0,
                     help="per-(round, client) dropout probability; "
                          "reproducible and worker-count-independent "
                          "(default 0.0)")
    run.add_argument("--completion-threshold", type=float, default=1.0,
                     help="fraction of the sampled cohort that must "
                          "report before the round closes; later "
                          "completions are discarded as stragglers "
                          "(default 1.0 = wait for everyone)")
    run.add_argument("--dtype", default="float64",
                     choices=["float32", "float64"],
                     help="compute-plane precision (float64 is the "
                          "bitwise reproduction default; float32 "
                          "halves memory traffic and upload bytes)")
    run.add_argument("--aggregator", default="fedavg",
                     choices=list(AGGREGATOR_CHOICES),
                     help="server aggregation rule (fedavg streams in "
                          "constant memory; trimmed_mean, "
                          "coordinate_median and clustered are "
                          "Byzantine-robust order statistics over the "
                          "dense update matrix)")
    run.add_argument("--distance-mask", default="none",
                     choices=["none", "obfuscated"],
                     help="segment-mask the clustered aggregator's "
                          "distance metric: obfuscated excludes the "
                          "defense's protected (DINAR-obfuscated) "
                          "layers so norm clustering sees only honest "
                          "segments (requires --aggregator clustered)")
    run.add_argument("--adversary", default="none",
                     choices=list(BEHAVIOR_CHOICES),
                     help="adversarial client behavior (byzantine = "
                          "boosted sign-flip; see also "
                          "byzantine_gaussian, label_flip, free_rider)")
    run.add_argument("--adversary-fraction", type=float, default=0.0,
                     help="fraction of clients that are adversarial; "
                          "which ids is a seeded pure function of the "
                          "config (default 0.0)")
    run.add_argument("--max-materialized", type=int, default=8,
                     help="virtual-client plane: bound on live "
                          "FLClient/Model instances per process "
                          "(clients are descriptors, models are "
                          "pooled; any value >= 1 is bitwise "
                          "identical, default 8)")
    run.add_argument("--alpha", type=float, default=math.inf,
                     help="Dirichlet non-IID alpha (default IID)")
    run.add_argument("--samples", type=int, default=None,
                     help="override dataset size")
    run.add_argument("--out", default=None,
                     help="write a JSON summary to this path")

    analyze = sub.add_parser(
        "analyze", help="per-layer membership-leakage analysis (paper §3)")
    analyze.add_argument("--dataset", required=True,
                        choices=available_datasets())
    analyze.add_argument("--seed", type=int, default=0)
    analyze.add_argument("--method", default="gradient_norms",
                         choices=["gradient_norms", "gradient_values"],
                         help="per-layer divergence statistic: "
                              "gradient_norms (per-sample gradient "
                              "norm distributions, the default) or "
                              "gradient_values (raw gradient value "
                              "distributions)")

    sub.add_parser("list", help="list datasets and defenses")
    return parser


def _config_from_args(args) -> FLConfig:
    base = default_config(args.dataset, seed=args.seed)
    return FLConfig(
        num_clients=args.clients or base.num_clients,
        rounds=args.rounds or base.rounds,
        local_epochs=args.local_epochs or base.local_epochs,
        lr=args.lr or base.lr,
        batch_size=base.batch_size,
        seed=args.seed,
        eval_every=args.rounds or base.rounds,
        workers=args.workers,
        ipc=args.ipc,
        sample_fraction=args.sample_fraction,
        drop_rate=args.drop_rate,
        completion_threshold=args.completion_threshold,
        dtype=args.dtype,
        aggregator=args.aggregator,
        distance_mask=args.distance_mask,
        adversary=args.adversary,
        adversary_fraction=args.adversary_fraction,
        max_materialized=args.max_materialized,
    )


def _cmd_run(args) -> int:
    result = run_experiment(
        args.dataset, args.defense, attack=args.attack,
        config=_config_from_args(args), dirichlet_alpha=args.alpha,
        n_samples=args.samples, seed=args.seed)
    costs = result.costs
    rows = [
        ["attack AUC vs global model", f"{100 * result.global_auc:.1f}%"],
        ["attack AUC vs client uploads", f"{100 * result.local_auc:.1f}%"],
        ["global model accuracy", f"{100 * result.global_accuracy:.1f}%"],
        ["mean client accuracy", f"{100 * result.client_accuracy:.1f}%"],
        ["client train time / round",
         f"{costs.train_seconds_per_round:.3f}s"],
        ["server aggregation / round",
         f"{1000 * costs.aggregate_seconds_per_round:.1f}ms"],
        ["defense extra state",
         f"{costs.defense_state_bytes / 1024:.0f} KiB"],
        ["fleet participation", costs.participation_summary()],
        ["client plane", costs.client_plane_summary()],
        ["executor IPC", costs.ipc_summary()],
        ["robustness",
         f"{args.aggregator} aggregator, "
         f"{result.simulation.behavior.describe()} clients"],
    ]
    if costs.segment_budget:
        rows.append(["per-segment (eps, sigma)",
                     costs.segment_budget_summary()])
    print(format_table(
        ["metric", "value"], rows,
        title=f"{args.dataset} under {args.defense} "
              f"({args.attack} attack; 50% AUC is optimal)"))
    if args.out:
        from repro.nn.serialize import save_experiment_result
        save_experiment_result(result, args.out)
        print(f"\nsummary written to {args.out}")
    return 0


def _cmd_analyze(args) -> int:
    from repro.core.sensitivity import layer_divergences

    print(f"training an unprotected FL model on {args.dataset}...")
    result = run_experiment(args.dataset, "none", attack="yeom",
                            seed=args.seed)
    simulation = result.simulation
    sensitivity = layer_divergences(
        simulation.global_model(),
        simulation.split.members.x, simulation.split.members.y,
        simulation.split.nonmembers.x, simulation.split.nonmembers.y,
        rng=np.random.default_rng(args.seed),
        method=args.method)
    rows = [
        [idx, name, f"{div:.4f}",
         "<-- obfuscate this one"
         if idx == sensitivity.most_sensitive_layer else ""]
        for idx, name, div in sensitivity.as_rows()
    ]
    print(format_table(["layer", "name", "JS divergence", ""], rows,
                       title=f"membership leakage per layer - "
                             f"{args.dataset}"))
    return 0


def _cmd_list() -> int:
    print("datasets:", ", ".join(available_datasets()))
    print("defenses:", ", ".join(DEFENSES))
    print("attacks: yeom, shadow")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    return _cmd_list()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
