"""FL client: local training plus the defense hook pipeline.

Each round a participating client (i) passes the downloaded global
model through ``defense.on_receive_global`` (DINAR's personalization
step), (ii) trains locally — the defense may impose its optimizer
(DINAR's adaptive gradient descent) — and (iii) passes the resulting
weights through ``defense.on_send_update`` (DINAR's obfuscation, DP
noise, compression or masking) before upload.

The client keeps its *personalized* weights (post-training, pre-upload
transform) for its own predictions, matching §4.3: "the resulting
personalized client models are used by the clients for their
predictions".

Virtual-client plane: an ``FLClient`` is no longer necessarily a
long-lived per-client object.  :meth:`FLClient.bind` rebinds an
existing instance — model buffers, optimizer-free round state and all —
onto another client's descriptor without reallocating anything, which
is what lets a bounded pool of models serve an unbounded fleet (see
``repro.fl.virtual``).  Bound clients materialize their dataset lazily
from the descriptor's shard view and store personalized weights in the
fleet's flat-buffer registry rather than on the instance, so nothing
per-client survives a rebind except what the registry holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.data.loader import iterate_batches
from repro.data.synthetic import Dataset
from repro.fl.behavior import ClientBehavior, behavior_rng
from repro.fl.config import FLConfig
from repro.fl.costs import CostMeter
from repro.fl.executor import round_rng
from repro.nn.losses import Loss, SoftmaxCrossEntropy
from repro.nn.metrics import accuracy
from repro.nn.model import Model
from repro.nn.optim import make_optimizer
from repro.nn.store import WeightsLike, WeightStore, as_store
from repro.privacy.defenses.base import Defense

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.fl.virtual import ClientDescriptor, PersonalWeightsRegistry


@dataclass
class ClientUpdate:
    """What a client transmits to the server after local training."""

    client_id: int
    weights: WeightsLike
    num_samples: int
    #: Wall time this client spent training in *this* round.
    train_seconds: float
    #: Wall time this client's defense hooks took in *this* round.
    defense_seconds: float = 0.0


def add_proximal_term(model: Model, mu: float,
                      anchor: np.ndarray) -> None:
    """Add the FedProx gradient ``mu * (w - w_anchor)`` in place.

    One flat vector op per maximal trainable segment of the model's
    gradient buffer — non-trainable coordinates (batch-norm running
    statistics) carry no gradient and must stay exactly zero, so the
    whole-buffer form is deliberately avoided.  ``anchor`` is a flat
    snapshot of the round-start weight buffer.
    """
    model.segment_view().add_scaled_difference(
        model.grad_vector, mu, model.weights.buffer, anchor)


class FLClient:
    """One cross-silo FL participant."""

    def __init__(self, client_id: int, model: Model,
                 data: Dataset | None,
                 config: FLConfig, defense: Defense,
                 rng: np.random.Generator | None = None,
                 loss: Loss | None = None,
                 cost_meter: CostMeter | None = None,
                 eval_model_provider:
                 "Callable[[], Model] | None" = None) -> None:
        if data is not None and len(data) == 0:
            raise ValueError(f"client {client_id} has no data")
        self.client_id = client_id
        self.model = model
        self._data = data
        self._descriptor: "ClientDescriptor | None" = None
        self._registry: "PersonalWeightsRegistry | None" = None
        self._personal: WeightStore | None = None
        self._eval_provider = eval_model_provider
        self._eval_cache: Model | None = None
        self.config = config
        self.defense = defense
        # Placeholder stream until the first round replaces it with the
        # (round, client)-spawned one; see ``train_round``.
        self.rng = rng if rng is not None \
            else np.random.default_rng((config.seed, 1, client_id))
        self.loss = loss or SoftmaxCrossEntropy()
        self.cost_meter = cost_meter or CostMeter()
        model.attach_rng(self.rng)

    # ------------------------------------------------------------------
    # virtual-client plane: descriptor binding and residue
    # ------------------------------------------------------------------
    def bind(self, descriptor: "ClientDescriptor",
             registry: "PersonalWeightsRegistry | None" = None) -> None:
        """Rebind this instance onto another client's descriptor.

        Nothing is reallocated: the model keeps its weight/gradient
        buffers and workspace arena (``train_round`` overwrites the
        whole weight buffer from the received global store and rebuilds
        the optimizer with zeroed state, so a reused model is bitwise
        identical to a fresh one).  The dataset is dropped and lazily
        rematerialized from the descriptor's shard view on first
        access, and any local personalized weights are cleared — after
        a rebind the only per-client residue lives in ``registry``,
        which is what makes pool reuse alias-free.
        """
        self.client_id = descriptor.client_id
        self._data = None
        self._descriptor = descriptor
        self._registry = registry
        self._personal = None
        self.rng = np.random.default_rng(
            (self.config.seed, 1, descriptor.client_id))
        self.model.attach_rng(self.rng)

    @property
    def data(self) -> Dataset:
        """The local dataset; descriptor-bound clients materialize the
        shard subset on first access."""
        if self._data is None:
            if self._descriptor is None:
                raise RuntimeError(
                    f"client {self.client_id} has neither a dataset "
                    f"nor a descriptor to materialize one from")
            self._data = self._descriptor.materialize_data()
        return self._data

    @data.setter
    def data(self, dataset: Dataset) -> None:
        self._data = dataset

    @property
    def personal_weights(self) -> WeightStore | None:
        """Personalized weights — the client's §4.3 prediction state.

        Registry-backed when bound through the virtual plane (a
        zero-copy view of the client's registry row; ``None`` until the
        client first trains), instance-local otherwise.
        """
        if self._registry is not None:
            return self._registry.get(self.client_id)
        return self._personal

    @personal_weights.setter
    def personal_weights(self, weights: WeightStore | None) -> None:
        if self._registry is not None and weights is not None:
            self._registry.put(self.client_id, as_store(weights).buffer)
            return
        self._personal = weights

    @property
    def num_samples(self) -> int:
        """Local dataset size (FedAvg weighting factor).

        Answered from the descriptor when one is bound, so weighting a
        fleet never forces dataset materialization.
        """
        if self._data is None and self._descriptor is not None:
            return self._descriptor.num_samples
        return len(self.data)

    def train_round(self, global_weights: WeightsLike,
                    round_index: int, *,
                    rng: np.random.Generator | None = None,
                    behavior: ClientBehavior | None = None) -> ClientUpdate:
        """Run one FL round: personalize, train locally, protect, upload.

        Every source of randomness this round consumes — dropout
        masks, batch shuffles, defense noise, DP-SGD noise — draws
        from one stream spawned for the ``(round, client)`` cell, so
        the round's outcome is independent of which process executes
        it and of every other client (bitwise reproducibility across
        executors).

        ``behavior`` is the run's :class:`ClientBehavior`; for honest
        clients (and for ``behavior=None``) the round is byte-for-byte
        the pre-robustness code path.  Adversarial clients may poison
        their training data, skip training, or corrupt the weights
        they hand to the defense pipeline — corruption draws from the
        cell's dedicated behavior stream, never from ``rng``.
        """
        if rng is None:
            rng = round_rng(self.config.seed, round_index, self.client_id)
        self.rng = rng
        self.model.attach_rng(rng)
        received = self.defense.on_receive_global(
            self.client_id, global_weights)
        self.model.set_weights(received)

        adversarial = behavior is not None \
            and behavior.is_adversary(self.client_id)
        start_store = self.model.get_store() if adversarial else None

        # The cost meter may be shared across rounds, so this round's
        # own wall time is the meter's delta around each phase — not
        # the cumulative total.
        trained_before = self.cost_meter.report.client_train_seconds
        with self.cost_meter.client_training():
            if adversarial:
                if not behavior.skips_training(self.client_id):
                    x, y = behavior.poison_data(
                        self.client_id, self.data.x, self.data.y,
                        self.data.num_classes)
                    self._train_local(x, y)
            else:
                self._train_local(self.data.x, self.data.y)
        train_seconds = self.cost_meter.report.client_train_seconds \
            - trained_before

        # Personalized model = post-training weights with the private
        # layer intact; this is what the client uses for predictions.
        self.personal_weights = self.model.get_store()

        outbound = self.model.get_store()
        if adversarial:
            outbound = behavior.corrupt_update(
                self.client_id, outbound, start_store,
                behavior_rng(self.config.seed, round_index,
                             self.client_id))

        defended_before = self.cost_meter.report.client_defense_seconds
        with self.cost_meter.client_defense():
            sent = self.defense.on_send_update(
                self.client_id, outbound,
                self.num_samples, self.rng)
        defense_seconds = self.cost_meter.report.client_defense_seconds \
            - defended_before
        self.cost_meter.record_defense_state(self.defense.state_bytes())

        return ClientUpdate(
            client_id=self.client_id,
            weights=sent,
            num_samples=self.num_samples,
            train_seconds=train_seconds,
            defense_seconds=defense_seconds,
        )

    def _train_local(self, x: np.ndarray, y: np.ndarray) -> None:
        """Local epochs with the defense-selected optimizer.

        The optimizer is rebuilt each round with zeroed state, matching
        Algorithm 1 line 8 (``G <- 0`` at the start of the round).
        With ``config.proximal_mu > 0`` a FedProx proximal term
        ``mu * (w - w_round_start)`` is added to every gradient,
        limiting client drift on non-IID shards (extension).
        ``(x, y)`` is the client's local data — possibly poisoned by
        an adversarial :class:`ClientBehavior`.
        """
        optimizer = self.defense.make_optimizer(
            self.model, self.config.lr, rng=self.rng)
        if optimizer is None:
            optimizer = make_optimizer(
                self.config.optimizer, self.model, self.config.lr)
        notify = getattr(optimizer, "notify_batch_size", None)
        mu = self.config.proximal_mu
        anchor = self.model.weights.buffer.copy() if mu > 0 else None
        for _ in range(self.config.local_epochs):
            for bx, by in iterate_batches(
                    x, y, self.config.batch_size,
                    self.rng):
                if notify is not None:
                    notify(len(bx))  # DP-SGD scales noise by batch size
                self.model.loss_and_grad(bx, by, self.loss)
                if mu > 0:
                    add_proximal_term(self.model, mu, anchor)
                optimizer.step()

    def personalized_model(self) -> Model:
        """The client's prediction model (private layer restored).

        Returns an independent clone the caller owns; the hot
        evaluation path (:meth:`evaluate`) goes through a reused eval
        model instead and never clones per call.
        """
        if self.personal_weights is None:
            raise RuntimeError(
                f"client {self.client_id} has not trained yet")
        model = self.model.clone()
        model.set_weights(self.personal_weights)
        return model

    def _eval_model(self) -> Model:
        """The reused evaluation model: fleet-shared when bound through
        the virtual plane, a lazily cloned singleton otherwise.
        Predictions depend only on the weights loaded before each use,
        so sharing one model across clients is bitwise-safe."""
        if self._eval_provider is not None:
            return self._eval_provider()
        if self._eval_cache is None:
            self._eval_cache = self.model.clone()
        return self._eval_cache

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> float:
        """Accuracy of the personalized model on the given samples."""
        personal = self.personal_weights
        if personal is None:
            raise RuntimeError(
                f"client {self.client_id} has not trained yet")
        model = self._eval_model()
        model.set_weights(personal)
        return accuracy(model.predict(x), y)
