"""Adversarial client behaviors: the robustness plane's client side.

The paper's defense matrix assumes every client is honest.  This module
adds the scenario axis it never tested: a pluggable
:class:`ClientBehavior` applied at the client boundary (inside
``execute_client_task`` via :meth:`FLClient.train_round`), modelling
the standard poisoning/free-riding adversaries of the Byzantine-FL
literature:

* ``honest`` — the no-op default; the training path is byte-for-byte
  the pre-robustness code (all 19 golden trajectory pins hold).
* ``byzantine`` — trains honestly, then transmits the *boosted
  sign-flipped* update ``start - scale * (trained - start)``: the
  local training delta reversed and amplified, the classic
  model-poisoning attack on mean-based aggregation.
* ``byzantine_gaussian`` — transmits ``start + scale * N(0, I)``:
  pure-noise weights, the "random faults" byzantine variant.
* ``label_flip`` — trains on ``y -> (num_classes - 1) - y``, a data
  poisoning attack whose update *looks* statistically ordinary.
* ``free_rider`` — skips local training entirely and transmits the
  received weights plus camouflage noise, still claiming its dataset
  size for the FedAvg mixing weight.

Determinism is inherited from the executor design: every behavior
noise draw comes from a dedicated per-``(round, client)``
SeedSequence stream (:func:`behavior_rng`), disjoint from the training
and dropout streams, so serial and parallel runs stay bitwise
identical under every behavior mix and honest clients' draws are never
perturbed by the presence of adversaries.

Which clients are adversarial is a pure function of the config:
:func:`select_adversaries` draws ``round(fraction * num_clients)``
client ids from the dedicated ``(seed, 7)`` stream once per run.
"""

from __future__ import annotations

import numpy as np

from repro.nn.store import WeightStore

#: Spawn-key tag of the per-(round, client) behavior stream.  Training
#: uses 2-element spawn keys and dropout uses the 3-element tag 0xD20
#: (see ``fl.executor``); 0xADE keeps this family disjoint from both.
_BEHAVIOR_KEY = 0xADE

#: Spawn-key tag of the run-level adversary-selection stream.  Existing
#: 2-element streams: server (seed, 2), split (seed, 17), eval
#: (seed, 23), cohort sampling (seed, 5, round).
_ADVERSARY_STREAM = 7


def behavior_rng(seed: int, round_index: int,
                 client_id: int) -> np.random.Generator:
    """The dedicated behavior-noise stream of one ``(round, client)``
    cell — a pure function of the cell, like the training stream, so
    adversarial noise is independent of execution order and worker
    count."""
    sequence = np.random.SeedSequence(
        seed, spawn_key=(int(round_index), int(client_id), _BEHAVIOR_KEY))
    return np.random.default_rng(sequence)


def select_adversaries(num_clients: int, fraction: float,
                       seed: int) -> frozenset[int]:
    """The run's adversarial client ids: ``round(fraction * n)`` of
    them (at least 1 when the fraction is positive, never the whole
    population), drawn once from the ``(seed, 7)`` stream."""
    if fraction <= 0.0:
        return frozenset()
    k = max(1, int(round(fraction * num_clients)))
    k = min(k, num_clients - 1)
    rng = np.random.default_rng((seed, _ADVERSARY_STREAM))
    chosen = rng.choice(num_clients, size=k, replace=False)
    return frozenset(int(c) for c in chosen)


class ClientBehavior:
    """Honest behavior and the hook interface adversaries override.

    One behavior object per run (like :class:`Defense`), holding the
    set of adversarial client ids; every hook receives the client id
    and is a no-op for honest clients.  The object is picklable and
    crosses the executor's process boundary inside the worker context.
    """

    name = "honest"

    def __init__(self, adversaries: frozenset[int] = frozenset()) -> None:
        self.adversaries = frozenset(adversaries)

    def is_adversary(self, client_id: int) -> bool:
        """Whether this client deviates from the honest protocol."""
        return client_id in self.adversaries

    def skips_training(self, client_id: int) -> bool:
        """Whether this client never runs local training (free-riding)."""
        return False

    def poison_data(self, client_id: int, x: np.ndarray, y: np.ndarray,
                    num_classes: int) -> tuple[np.ndarray, np.ndarray]:
        """Transform the local training data before the round trains."""
        return x, y

    def corrupt_update(self, client_id: int, trained: WeightStore,
                       start: WeightStore,
                       rng: np.random.Generator) -> WeightStore:
        """Transform the weights the client is about to hand to its
        defense pipeline.

        ``start`` is the round-start model (post
        ``on_receive_global``), ``trained`` the post-training weights.
        Corruption happens *before* ``on_send_update`` so protocol
        invariants survive — secure aggregation's pairwise masks still
        cancel, DINAR still obfuscates — exactly as a real adversary
        that follows the wire protocol but poisons its payload.
        """
        return trained

    def describe(self) -> str:
        """One-line human-readable parameterization."""
        if not self.adversaries:
            return self.name
        return f"{self.name} x{len(self.adversaries)}"


#: The shared honest singleton (``behavior=None`` everywhere means this).
HONEST = ClientBehavior()


class ByzantineBehavior(ClientBehavior):
    """Model poisoning: boosted sign-flip or pure Gaussian updates."""

    def __init__(self, adversaries: frozenset[int], *,
                 variant: str = "sign_flip", scale: float = 4.0) -> None:
        super().__init__(adversaries)
        if variant not in ("sign_flip", "gaussian"):
            raise ValueError(f"unknown byzantine variant {variant!r}; "
                             f"known: sign_flip, gaussian")
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.variant = variant
        self.scale = float(scale)
        self.name = "byzantine" if variant == "sign_flip" \
            else "byzantine_gaussian"

    def corrupt_update(self, client_id: int, trained: WeightStore,
                       start: WeightStore,
                       rng: np.random.Generator) -> WeightStore:
        if not self.is_adversary(client_id):
            return trained
        dtype = trained.layout.dtype
        if self.variant == "gaussian":
            noise = rng.standard_normal(
                trained.layout.num_params).astype(dtype, copy=False)
            buffer = start.buffer + dtype.type(self.scale) * noise
        else:
            # start - scale * (trained - start): the training delta
            # reversed and amplified (scale 1.0 = the textbook flip).
            delta = trained.buffer - start.buffer
            buffer = start.buffer - dtype.type(self.scale) * delta
        return WeightStore(trained.layout, buffer)

    def describe(self) -> str:
        return (f"{self.name} x{len(self.adversaries)} "
                f"(scale={self.scale:g})")


class LabelFlipBehavior(ClientBehavior):
    """Data poisoning: trains on mirrored labels ``C - 1 - y``."""

    name = "label_flip"

    def poison_data(self, client_id: int, x: np.ndarray, y: np.ndarray,
                    num_classes: int) -> tuple[np.ndarray, np.ndarray]:
        if not self.is_adversary(client_id):
            return x, y
        return x, (num_classes - 1) - y


class FreeRiderBehavior(ClientBehavior):
    """Contributes nothing: returns the received model plus camouflage
    noise, while still claiming its dataset size as mixing weight."""

    name = "free_rider"

    def __init__(self, adversaries: frozenset[int], *,
                 camouflage: float = 1e-3) -> None:
        super().__init__(adversaries)
        if camouflage < 0:
            raise ValueError(
                f"camouflage must be >= 0, got {camouflage}")
        self.camouflage = float(camouflage)

    def skips_training(self, client_id: int) -> bool:
        return self.is_adversary(client_id)

    def corrupt_update(self, client_id: int, trained: WeightStore,
                       start: WeightStore,
                       rng: np.random.Generator) -> WeightStore:
        if not self.is_adversary(client_id):
            return trained
        dtype = start.layout.dtype
        noise = rng.standard_normal(
            start.layout.num_params).astype(dtype, copy=False)
        return WeightStore(
            start.layout,
            start.buffer + dtype.type(self.camouflage) * noise)


#: ``FLConfig.adversary`` / ``--adversary`` choices.  "none" maps to
#: the honest singleton; "byzantine" is the sign-flip variant.
BEHAVIOR_CHOICES = ("none", "byzantine", "byzantine_gaussian",
                    "label_flip", "free_rider")


def make_behavior(name: str, adversaries: frozenset[int],
                  **kwargs) -> ClientBehavior:
    """Build a behavior by ``BEHAVIOR_CHOICES`` name."""
    key = name.lower()
    if key == "none" or not adversaries:
        return HONEST
    if key == "byzantine":
        return ByzantineBehavior(adversaries, variant="sign_flip",
                                 **kwargs)
    if key == "byzantine_gaussian":
        return ByzantineBehavior(adversaries, variant="gaussian",
                                 **kwargs)
    if key == "label_flip":
        return LabelFlipBehavior(adversaries)
    if key == "free_rider":
        return FreeRiderBehavior(adversaries, **kwargs)
    raise ValueError(f"unknown adversary behavior {name!r}; "
                     f"known: {', '.join(BEHAVIOR_CHOICES)}")


def make_behavior_for_config(config) -> ClientBehavior:
    """The run's behavior from ``FLConfig.adversary`` /
    ``adversary_fraction`` (``config.extra['adversary_scale']``
    overrides the byzantine boost factor)."""
    if config.adversary == "none":
        return HONEST
    adversaries = select_adversaries(
        config.num_clients, config.adversary_fraction, config.seed)
    kwargs = {}
    scale = config.extra.get("adversary_scale")
    if scale is not None and config.adversary.startswith("byzantine"):
        kwargs["scale"] = float(scale)
    return make_behavior(config.adversary, adversaries, **kwargs)
