"""Round executors: the per-round client fan-out as a subsystem.

After the flat weight plane made aggregation cheap, per-round
wall-clock is dominated by the strictly sequential client-training
loop.  This module turns that loop into a pluggable
:class:`RoundExecutor`:

* :class:`SerialExecutor` — the reference implementation, one client
  after another in the parent process;
* :class:`ParallelExecutor` — fans the cohort out across a
  ``fork``-based process pool, shipping each client's round as one
  :class:`ClientTask` (the global model as the flat ``WeightStore``
  buffer — one contiguous float64 array, cheap to pickle — plus the
  defense state that client's hooks read) and reassembling
  :class:`ClientRoundResult` objects on the parent;
* :class:`repro.fl.shm.ShmParallelExecutor` — the same fan-out over a
  zero-copy shared-memory transport (the default for ``workers > 1``):
  tasks and results carry O(descriptor) payloads while the weight
  vectors move through mapped segments.

Determinism is the design constraint, not an afterthought: every
client's round RNG is derived via
``np.random.SeedSequence(seed, spawn_key=(round_index, client_id))``
(see :func:`round_rng`), so a client's random stream depends only on
``(seed, round, client)`` — never on which process runs it or in what
order — and serial and parallel executions are **bitwise identical**.

What crosses the process boundary is explicit and nothing else does:

* parent -> worker: the round index, the global weight-plane buffer,
  the defense's round-shared state and the client's own defense state
  (:meth:`Defense.export_round_state` /
  :meth:`Defense.export_client_state`);
* worker -> parent: the transmitted update buffer, the personalized
  weight buffer, wall-clock deltas for the cost meters, and the
  client's post-round defense state.

Worker processes are forked from the fully constructed simulation, so
datasets and model structure are inherited copy-on-write and are never
pickled.  The parent's personal-weights registry stays authoritative
for evaluation state, which the simulation writes back from the
returned results.

Virtual-client plane: executors resolve ``client_id -> FLClient``
through a *provider* — anything with ``materialize(client_id)``.  The
simulation passes its :class:`~repro.fl.virtual.VirtualClientFleet`, so
each process (the parent for serial, every forked worker for parallel)
materializes clients on demand from its own bounded model pool instead
of indexing a fleet-sized list; plain client sequences are adapted for
direct use.  Each result carries the executing process's pool
accounting (``pool_live`` / ``pool_materializations``) back to the
parent's cost meter.

Workspace arenas (:class:`repro.nn.workspace.Workspace`) are strictly
process-local: a forked worker inherits the parent model's arena
copy-on-write and re-warms its own buffers on first use, and no arena
ever rides in a :class:`ClientTask` or :class:`ClientRoundResult` —
``Workspace`` refuses to pickle, so any payload that serializes at all
is proven free of scratch state.
"""

from __future__ import annotations

import itertools
import multiprocessing
import pickle
from collections.abc import Iterator, Sequence
from concurrent.futures import ProcessPoolExecutor as _PoolExecutor
from concurrent.futures import as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.nn.store import Layout, WeightStore, as_store

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.fl.behavior import ClientBehavior
    from repro.fl.client import FLClient
    from repro.fl.config import FLConfig
    from repro.fl.costs import CostMeter
    from repro.privacy.defenses.base import Defense


def round_rng(seed: int, round_index: int,
              client_id: int) -> np.random.Generator:
    """The dedicated RNG stream of one ``(round, client)`` cell.

    Spawned from the run seed with ``spawn_key=(round_index,
    client_id)``, so the stream is a pure function of the experiment
    seed and the cell — independent of execution order, of which
    process runs the client, and of every other client's consumption.
    This is what makes serial and parallel runs bitwise identical.
    """
    sequence = np.random.SeedSequence(
        seed, spawn_key=(int(round_index), int(client_id)))
    return np.random.default_rng(sequence)


#: Spawn-key tag of the dropout stream.  round_rng uses 2-element
#: spawn keys, so any 3-element key is a disjoint stream; the tag
#: keeps future per-cell streams from colliding with this one.
_DROPOUT_KEY = 0xD20


def client_drops(seed: int, round_index: int, client_id: int,
                 drop_rate: float) -> bool:
    """Whether one ``(round, client)`` cell drops out of its round.

    The decision draws from a dedicated SeedSequence stream of the
    cell — not from ``round_rng`` — so enabling dropout never perturbs
    training draws, and the dropout pattern is a pure function of
    ``(seed, round, client, drop_rate)``: reproducible, independent of
    worker count and of every other client.
    """
    if drop_rate <= 0.0:
        return False
    sequence = np.random.SeedSequence(
        seed, spawn_key=(int(round_index), int(client_id), _DROPOUT_KEY))
    return float(np.random.default_rng(sequence).random()) < drop_rate


@dataclass
class ClientTask:
    """Everything one client needs to run one round, picklable."""

    round_index: int
    client_id: int
    #: The global model as the flat weight-plane vector.  ``None`` only
    #: in shm transit, where ``shm`` names the broadcast instead.
    global_buffer: np.ndarray | None
    #: This client's defense state (``Defense.export_client_state``).
    client_state: Any = None
    #: Round-shared defense state (``Defense.export_round_state``),
    #: possibly wrapped as a :class:`SharedRoundState` in transit.
    round_state: Any = None
    #: Injected dropout: a dropped client never trains and never
    #: produces a result (see :func:`client_drops`).
    dropped: bool = False
    #: shm transport: the round's broadcast descriptor
    #: (:class:`repro.fl.shm.ShmRound`); replaces ``global_buffer`` and
    #: ``round_state`` on the wire.
    shm: Any = None
    #: shm transport: index of the result slab leased to this task.
    slab_index: int | None = None


@dataclass
class ClientRoundResult:
    """Everything one client's round produced, picklable."""

    client_id: int
    #: The transmitted (post-defense) update as a flat vector.
    #: ``None`` only in shm transit (the slab holds the row).
    update_buffer: np.ndarray | None
    #: The personalized (pre-defense) weights as a flat vector.
    #: ``None`` only in shm transit.
    personal_buffer: np.ndarray | None
    num_samples: int
    train_seconds: float
    defense_seconds: float
    #: This client's defense state after the round.
    client_state: Any
    #: ``Defense.state_bytes()`` as seen where the round ran.
    defense_state_bytes: int
    #: Virtual-client plane: model instances live in the executing
    #: process's pool, and its cumulative materializations (binds).
    #: Zero when the executor runs over a plain client sequence.
    pool_live: int = 0
    pool_materializations: int = 0
    #: shm transport: which slab holds the result rows while the
    #: descriptor travels back; ``None`` once the parent folds it in.
    slab_index: int | None = None


@dataclass(frozen=True)
class SharedRoundState:
    """Round-shared defense state, serialized once for a whole cohort.

    The pickle transport used to re-pickle the identical
    ``export_round_state`` object into every :class:`ClientTask`; this
    wrapper serializes it exactly once per round and every task ships
    the same ``bytes`` object, while workers unpickle it once per
    generation (not once per task) through a single-slot cache.  The
    pickle round-trip is bitwise for numpy payloads, and the serial
    executor already hands all of a round's tasks one shared state
    object — so sharing the decoded object across a worker's tasks is
    the *same* semantics, just cheaper.
    """

    #: Process-wide monotonic id; the worker cache keys on it.
    generation: int
    #: ``pickle.dumps(round_state)``, highest protocol.
    payload: bytes

    _COUNTER = itertools.count(1)

    @classmethod
    def wrap(cls, round_state: Any) -> "SharedRoundState":
        return cls(generation=next(cls._COUNTER),
                   payload=pickle.dumps(
                       round_state, protocol=pickle.HIGHEST_PROTOCOL))

    def load(self) -> Any:
        return pickle.loads(self.payload)


#: Worker-side single-slot cache: (generation, decoded state).
_SHARED_STATE_CACHE: tuple[int, Any] | None = None


def _resolve_round_state(state: Any) -> Any:
    """Unwrap a :class:`SharedRoundState`, decoding once per round."""
    global _SHARED_STATE_CACHE
    if not isinstance(state, SharedRoundState):
        return state
    if _SHARED_STATE_CACHE is not None \
            and _SHARED_STATE_CACHE[0] == state.generation:
        return _SHARED_STATE_CACHE[1]
    value = state.load()
    _SHARED_STATE_CACHE = (state.generation, value)
    return value


def _share_round_state(tasks: list[ClientTask]
                       ) -> tuple[list[ClientTask], int]:
    """Serialize one cohort's shared round state once.

    Only fires when every task carries the *same* state object (the
    simulation's invariant); heterogeneous or absent states pass
    through untouched.  Returns the rewritten tasks and the shared
    payload's length in bytes (0 when nothing was wrapped).
    """
    if not tasks:
        return tasks, 0
    state = tasks[0].round_state
    if state is None or isinstance(state, SharedRoundState) \
            or any(task.round_state is not state for task in tasks):
        return tasks, 0
    shared = SharedRoundState.wrap(state)
    return ([replace(task, round_state=shared) for task in tasks],
            len(shared.payload))


class _SequenceProvider:
    """Adapter giving a plain client list the provider protocol."""

    def __init__(self, clients: Sequence["FLClient"]) -> None:
        self.clients = list(clients)

    def materialize(self, client_id: int) -> "FLClient":
        return self.clients[client_id]


def _as_provider(clients: Any) -> Any:
    """Normalize a fleet-or-sequence into a client provider."""
    if hasattr(clients, "materialize"):
        return clients
    return _SequenceProvider(clients)


def _stamp_pool_stats(result: ClientRoundResult, provider: Any) -> None:
    """Record the executing process's pool accounting on the result."""
    result.pool_live = int(getattr(provider, "live_models", 0))
    result.pool_materializations = int(
        getattr(provider, "materializations", 0))


def execute_client_task(client: "FLClient", defense: "Defense",
                        layout: Layout, task: ClientTask,
                        behavior: "ClientBehavior | None" = None
                        ) -> ClientRoundResult:
    """Run one client's round against explicit, shipped-in state.

    This is the single code path both executors share: import the
    defense state the client's hooks read, rebuild the global model
    from the flat buffer, train with the cell's spawned RNG, and
    export everything the parent needs.  Running it in-process
    (serial) or in a forked worker (parallel) is therefore the *same*
    computation, bit for bit.

    ``behavior`` is the run's adversarial-client behavior (see
    ``fl.behavior``); ``None`` means every client is honest.  Because
    behavior noise draws from its own per-``(round, client)`` stream,
    the bitwise serial/parallel guarantee holds under every behavior
    mix.
    """
    defense.import_round_state(task.round_state)
    defense.import_client_state(task.client_id, task.client_state)
    global_weights = WeightStore(layout, task.global_buffer)
    rng = round_rng(client.config.seed, task.round_index, task.client_id)
    update = client.train_round(global_weights, task.round_index, rng=rng,
                                behavior=behavior)
    return ClientRoundResult(
        client_id=task.client_id,
        update_buffer=as_store(update.weights, layout=layout).buffer,
        personal_buffer=client.personal_weights.buffer,
        num_samples=update.num_samples,
        train_seconds=update.train_seconds,
        defense_seconds=update.defense_seconds,
        client_state=defense.export_client_state(task.client_id),
        defense_state_bytes=defense.state_bytes(),
    )


class RoundExecutor:
    """Runs one FL round's cohort of client tasks.

    The primitive is :meth:`iter_round`: results stream back one at a
    time, **always in cohort (task) order**, with dropped tasks
    skipped.  Streaming in a fixed order is what lets the server fold
    updates into its constant-memory accumulator as they arrive while
    staying bitwise independent of the executor — and it makes round
    closing lazy: a consumer that stops iterating once its completion
    threshold is met never pays for the stragglers it will discard
    (the serial executor literally never trains them).
    """

    #: How many OS processes this executor trains clients on.
    workers: int = 1

    def iter_round(self, tasks: Sequence[ClientTask]
                   ) -> Iterator[ClientRoundResult]:
        """Yield each non-dropped task's result, in task order."""
        raise NotImplementedError

    def run_round(self, tasks: Sequence[ClientTask]
                  ) -> list[ClientRoundResult]:
        """Execute every task, returning results in task order."""
        return list(self.iter_round(tasks))

    def close(self) -> None:
        """Release any held resources (idempotent)."""

    def warm_up(self) -> None:
        """Pre-acquire resources (worker pools) ahead of the first round."""


class SerialExecutor(RoundExecutor):
    """The reference executor: clients run one after another."""

    def __init__(self, clients: Any, defense: "Defense",
                 layout: Layout,
                 behavior: "ClientBehavior | None" = None) -> None:
        self.clients = _as_provider(clients)
        self.defense = defense
        self.layout = layout
        self.behavior = behavior

    def iter_round(self, tasks: Sequence[ClientTask]
                   ) -> Iterator[ClientRoundResult]:
        for task in tasks:
            if task.dropped:
                continue
            result = execute_client_task(
                self.clients.materialize(task.client_id),
                self.defense, self.layout, task, self.behavior)
            _stamp_pool_stats(result, self.clients)
            yield result


# ----------------------------------------------------------------------
# process-parallel execution
# ----------------------------------------------------------------------

@dataclass
class _WorkerContext:
    """Per-process replica of the simulation's client-side objects.

    ``clients`` is a provider (fleet or adapted sequence) inherited via
    fork; each worker materializes from its *own* copy-on-write pool,
    so per-process live models stay bounded by the pool capacity.
    """

    clients: Any
    defense: Any
    layout: Layout
    behavior: Any = None


#: Bound once per worker process by the pool initializer.
_WORKER_CONTEXT: _WorkerContext | None = None


def _bind_worker_context(context: _WorkerContext) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context


def _run_in_worker(task: ClientTask) -> ClientRoundResult:
    context = _WORKER_CONTEXT
    if context is None:  # pragma: no cover - defensive
        raise RuntimeError("worker process has no bound context; "
                           "the pool initializer did not run")
    round_state = _resolve_round_state(task.round_state)
    if round_state is not task.round_state:
        task = replace(task, round_state=round_state)
    try:
        result = execute_client_task(
            context.clients.materialize(task.client_id),
            context.defense, context.layout, task, context.behavior)
        _stamp_pool_stats(result, context.clients)
        return result
    except Exception as exc:
        raise RuntimeError(
            f"client {task.client_id} failed in round "
            f"{task.round_index}: {exc!r}") from exc


class ParallelExecutor(RoundExecutor):
    """Fans client training out across a fork-based process pool.

    Workers fork from the fully constructed simulation (datasets and
    models are inherited, never pickled); each round's per-client
    state travels explicitly inside the :class:`ClientTask` /
    :class:`ClientRoundResult` pair.  Results are collected in task
    order, so aggregation consumes updates in exactly the serial
    cohort order.
    """

    def __init__(self, clients: Any, defense: "Defense",
                 layout: Layout, workers: int,
                 behavior: "ClientBehavior | None" = None,
                 cost_meter: "CostMeter | None" = None) -> None:
        if workers < 2:
            raise ValueError(
                f"ParallelExecutor needs >= 2 workers, got {workers}; "
                "use SerialExecutor for single-process runs")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "ParallelExecutor requires the 'fork' start method "
                "(unavailable on this platform); run with workers=0")
        self.clients = _as_provider(clients)
        self.defense = defense
        self.layout = layout
        self.workers = workers
        self.behavior = behavior
        self.cost_meter = cost_meter
        self._pool: _PoolExecutor | None = None

    def _ensure_pool(self) -> _PoolExecutor:
        if self._pool is None:
            self._pool = _PoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("fork"),
                initializer=_bind_worker_context,
                initargs=(_WorkerContext(self.clients, self.defense,
                                         self.layout, self.behavior),),
            )
        return self._pool

    def iter_round(self, tasks: Sequence[ClientTask]
                   ) -> Iterator[ClientRoundResult]:
        """imap-style streaming: yield results in task order.

        All non-dropped tasks are submitted up front; completions are
        collected as they happen (``as_completed``) into a reorder
        buffer and released strictly in task order, so a consumer sees
        exactly the serial executor's stream.  A consumer that stops
        early (round closed at its completion threshold) triggers the
        ``finally`` below, which cancels every not-yet-started future —
        in-flight stragglers finish in their workers and are discarded.
        """
        pool = self._ensure_pool()
        live = [task for task in tasks if not task.dropped]
        live, state_len = _share_round_state(live)
        pickled_bytes = 0
        futures: dict[Any, int] = {}
        for index, task in enumerate(live):
            pickled_bytes += task.global_buffer.nbytes + state_len
            futures[pool.submit(_run_in_worker, task)] = index
        buffered: dict[int, ClientRoundResult] = {}
        next_index = 0
        try:
            for future in as_completed(futures):
                index = futures[future]
                try:
                    result = future.result()
                except BrokenProcessPool as exc:
                    self.close()
                    task = live[index]
                    raise RuntimeError(
                        f"a worker process died while training client "
                        f"{task.client_id} in round {task.round_index} "
                        "(killed or crashed hard); the pool has been "
                        "shut down and the round aborted") from exc
                pickled_bytes += (result.update_buffer.nbytes
                                  + result.personal_buffer.nbytes)
                buffered[index] = result
                while next_index in buffered:
                    yield buffered.pop(next_index)
                    next_index += 1
        finally:
            for future in futures:
                future.cancel()
            if self.cost_meter is not None:
                self.cost_meter.record_ipc(pickled=pickled_bytes)

    def warm_up(self) -> None:
        self._ensure_pool()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def __del__(self) -> None:  # pragma: no cover - best effort
        try:
            self.close()
        except Exception:
            pass


def make_executor(clients: Any, defense: "Defense",
                  layout: Layout, config: "FLConfig",
                  behavior: "ClientBehavior | None" = None,
                  cost_meter: "CostMeter | None" = None
                  ) -> RoundExecutor:
    """Build the executor ``config.workers`` and ``config.ipc`` ask for.

    ``clients`` is a provider (a ``VirtualClientFleet``) or a plain
    client sequence.  ``workers`` of 0 or 1 selects the serial
    reference; anything larger fans out across that many worker
    processes — over the zero-copy shared-memory transport when
    ``config.ipc`` is ``"shm"`` (the default) and the platform can
    create segments, falling back to the pickle transport otherwise.
    ``behavior`` is the run's adversarial-client behavior (``None`` =
    honest); ``cost_meter`` receives per-round IPC byte accounting
    when set.
    """
    if config.workers > 1:
        if getattr(config, "ipc", "shm") == "shm":
            from repro.fl.shm import ShmParallelExecutor, shm_available
            if shm_available():
                return ShmParallelExecutor(
                    clients, defense, layout, workers=config.workers,
                    behavior=behavior, cost_meter=cost_meter)
        return ParallelExecutor(clients, defense, layout,
                                workers=config.workers,
                                behavior=behavior,
                                cost_meter=cost_meter)
    return SerialExecutor(clients, defense, layout, behavior=behavior)
