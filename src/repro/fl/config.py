"""Federated experiment configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fl.aggregation import AGGREGATOR_CHOICES
from repro.fl.behavior import BEHAVIOR_CHOICES


@dataclass
class FLConfig:
    """Hyper-parameters of one federated run (paper defaults from §5.3).

    The paper uses lr=1e-3 and batch 64 at full dataset scale; the
    defaults here are tuned to the CPU-scaled synthetic datasets but
    every field is overridable per experiment.
    """

    num_clients: int = 5
    rounds: int = 5
    local_epochs: int = 5
    lr: float = 0.05
    batch_size: int = 64
    optimizer: str = "sgd"
    seed: int = 0
    clients_per_round: int | None = None  # None = all clients every round
    eval_every: int = 1                   # evaluate every k rounds
    proximal_mu: float = 0.0              # FedProx term (0 = plain FedAvg)
    server_momentum: float = 0.0          # FedAvgM (0 = plain FedAvg)
    #: Worker processes for client training; 0/1 = serial reference.
    #: Any value produces bitwise-identical results (see fl.executor).
    workers: int = 0
    #: Parallel-executor transport: "shm" (the default) broadcasts the
    #: round's weights through one shared-memory segment and returns
    #: results through preallocated slabs, so per-client IPC is
    #: O(descriptor); "pickle" ships full vectors through the pool
    #: pipe.  Both are bitwise-identical to serial; "shm" silently
    #: falls back to "pickle" where segments can't be created.
    #: Ignored when workers <= 1.
    ipc: str = "shm"
    #: Fraction of the (clients_per_round-limited) cohort actually
    #: sampled each round, cfraction-style; 1.0 = everyone selected
    #: participates (the pre-fleet default).  Drawn from a dedicated
    #: per-round stream so the default path's RNG draws are untouched.
    sample_fraction: float = 1.0
    #: Per-(round, client) probability that a sampled client drops out
    #: and never reports back.  Decided by a dedicated SeedSequence
    #: stream (see ``fl.executor.client_drops``), so dropout patterns
    #: are reproducible and worker-count-independent.
    drop_rate: float = 0.0
    #: Fraction of the sampled cohort that must report before the round
    #: closes.  Completions beyond the threshold are stragglers: their
    #: results are recorded in the CostMeter and discarded.  1.0 = wait
    #: for everyone (the pre-fleet default).
    completion_threshold: float = 1.0
    #: Compute-plane precision: "float64" (bitwise reproduction
    #: default) or "float32" (half the memory traffic and upload
    #: bytes; see repro.nn.dtypes).
    dtype: str = "float64"
    #: Server aggregation rule (see ``fl.aggregation``): "fedavg"
    #: streams in constant memory (the default, bitwise-pinned);
    #: "trimmed_mean" / "coordinate_median" / "clustered" are
    #: Byzantine-robust order statistics over the dense
    #: ``(clients, params)`` update matrix (``requires_dense``,
    #: cohort-capped — see DENSE_CLIENT_CAP).
    aggregator: str = "fedavg"
    #: Segment-masked robust distances (see ``fl.aggregation``):
    #: "none" clusters on whole-vector distances (the default);
    #: "obfuscated" excludes the defense's protected segments — the
    #: layers DINAR obfuscates — from the clustering distance, so a
    #: camouflaging per-layer noise floor can't hide byzantine
    #: clients.  Requires aggregator="clustered" and a defense that
    #: declares ``protected_indices``.
    distance_mask: str = "none"
    #: Adversarial client behavior (see ``fl.behavior``): "none"
    #: (honest, the default), "byzantine" (boosted sign-flip),
    #: "byzantine_gaussian", "label_flip", or "free_rider".
    adversary: str = "none"
    #: Fraction of clients that are adversarial; which ids is a seeded
    #: pure function of the config (``behavior.select_adversaries``).
    adversary_fraction: float = 0.0
    #: Virtual-client plane: the bound on live ``FLClient``/``Model``
    #: instances per process.  Clients are lightweight descriptors and
    #: full state is materialized on demand from a pool of at most this
    #: many models (LRU rebind); any value >= 1 is bitwise-identical to
    #: every other, so this knob trades only memory against rebinds.
    max_materialized: int = 8
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise ValueError(f"num_clients must be >= 1, "
                             f"got {self.num_clients}")
        if self.rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {self.rounds}")
        if self.local_epochs < 1:
            raise ValueError(f"local_epochs must be >= 1, "
                             f"got {self.local_epochs}")
        if self.lr <= 0:
            raise ValueError(f"lr must be positive, got {self.lr}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, "
                             f"got {self.batch_size}")
        if self.clients_per_round is not None and not (
                1 <= self.clients_per_round <= self.num_clients):
            raise ValueError(
                f"clients_per_round must be in [1, {self.num_clients}], "
                f"got {self.clients_per_round}")
        if self.proximal_mu < 0:
            raise ValueError(
                f"proximal_mu must be >= 0, got {self.proximal_mu}")
        if not 0.0 <= self.server_momentum < 1.0:
            raise ValueError(
                f"server_momentum must be in [0, 1), "
                f"got {self.server_momentum}")
        if self.workers < 0:
            raise ValueError(
                f"workers must be >= 0, got {self.workers}")
        if self.ipc not in ("shm", "pickle"):
            raise ValueError(
                f"ipc must be 'shm' or 'pickle', got {self.ipc!r}")
        if not 0.0 < self.sample_fraction <= 1.0:
            raise ValueError(
                f"sample_fraction must be in (0, 1], "
                f"got {self.sample_fraction}")
        if not 0.0 <= self.drop_rate < 1.0:
            raise ValueError(
                f"drop_rate must be in [0, 1), got {self.drop_rate}")
        if not 0.0 < self.completion_threshold <= 1.0:
            raise ValueError(
                f"completion_threshold must be in (0, 1], "
                f"got {self.completion_threshold}")
        # A round closes when completion_threshold of the cohort has
        # reported, but (1 - drop_rate) of the cohort completes in
        # expectation — a threshold above that is unsatisfiable on
        # average and the run would die mid-flight instead of here.
        if self.completion_threshold > 1.0 - self.drop_rate + 1e-12:
            raise ValueError(
                f"completion_threshold={self.completion_threshold} is not "
                f"satisfiable under drop_rate={self.drop_rate}: only "
                f"{1.0 - self.drop_rate:.3g} of the cohort completes in "
                f"expectation; lower the threshold or the drop rate")
        if self.dtype not in ("float32", "float64"):
            raise ValueError(
                f"dtype must be 'float32' or 'float64', got {self.dtype!r}")
        if self.aggregator not in AGGREGATOR_CHOICES:
            raise ValueError(
                f"aggregator must be one of "
                f"{', '.join(AGGREGATOR_CHOICES)}, "
                f"got {self.aggregator!r}")
        if self.distance_mask not in ("none", "obfuscated"):
            raise ValueError(
                f"distance_mask must be 'none' or 'obfuscated', "
                f"got {self.distance_mask!r}")
        if self.distance_mask != "none" and self.aggregator != "clustered":
            raise ValueError(
                f"distance_mask={self.distance_mask!r} only applies to "
                f"the clustered aggregator's distance metric, "
                f"got aggregator={self.aggregator!r}")
        if self.adversary not in BEHAVIOR_CHOICES:
            raise ValueError(
                f"adversary must be one of "
                f"{', '.join(BEHAVIOR_CHOICES)}, "
                f"got {self.adversary!r}")
        if not 0.0 <= self.adversary_fraction < 1.0:
            raise ValueError(
                f"adversary_fraction must be in [0, 1) — an all-"
                f"adversarial cohort has nothing left to aggregate — "
                f"got {self.adversary_fraction}")
        if self.adversary != "none" and self.adversary_fraction <= 0.0:
            raise ValueError(
                f"adversary={self.adversary!r} needs a positive "
                f"adversary_fraction (got {self.adversary_fraction})")
        if self.adversary == "none" and self.adversary_fraction > 0.0:
            raise ValueError(
                f"adversary_fraction={self.adversary_fraction} has no "
                f"effect with adversary='none'; pick a behavior")
        if self.max_materialized < 1:
            raise ValueError(
                f"max_materialized must be >= 1 (the pool needs at "
                f"least one model), got {self.max_materialized}")
