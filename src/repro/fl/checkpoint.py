"""Simulation checkpointing.

Long federated runs (the paper's Purchase100 uses 300 rounds) need to
survive interruption. A checkpoint captures the server's global model,
every client's personalized weights and DINAR's stored private layers;
restoring reproduces the simulation's observable state so training can
continue round-by-round.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.fl.simulation import FederatedSimulation
from repro.nn.serialize import load_store, save_weights


def save_checkpoint(simulation: FederatedSimulation,
                    directory: str | pathlib.Path) -> pathlib.Path:
    """Write the simulation's resumable state into a directory."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    global_weights = simulation.server.global_weights
    save_weights(global_weights, directory / "global.npz")
    meta = {
        "rounds_completed": len(simulation.history.records),
        "dtype": global_weights.layout.dtype.name,
        "clients": [],
    }
    # Personalized weights live in the flat registry, not on live
    # client objects — save straight from its rows (zero-copy views),
    # keeping the on-disk format of the eager plane.
    trained = set(simulation.registry.client_ids())
    for client_id in range(simulation.config.num_clients):
        entry = {"client_id": client_id,
                 "has_personal": client_id in trained}
        if client_id in trained:
            save_weights(simulation.registry.get(client_id),
                         directory / f"client{client_id}.npz")
        meta["clients"].append(entry)
    stored = getattr(simulation.defense, "_stored", None)
    if stored:
        for client_id, layers in stored.items():
            arrays = {
                f"layer{idx}/{key}": value
                for idx, layer in layers.items()
                for key, value in layer.items()
            }
            np.savez(directory / f"dinar{client_id}.npz", **arrays)
        meta["dinar_clients"] = sorted(stored)
    (directory / "meta.json").write_text(json.dumps(meta, indent=2))
    return directory


def load_checkpoint(simulation: FederatedSimulation,
                    directory: str | pathlib.Path) -> dict:
    """Restore a simulation's state from :func:`save_checkpoint`.

    The simulation must have been constructed with the same split,
    model factory and config. Returns the checkpoint metadata.
    """
    directory = pathlib.Path(directory)
    meta = json.loads((directory / "meta.json").read_text())
    expected = simulation.server.global_weights.layout.dtype
    saved = meta.get("dtype")
    if saved is not None and np.dtype(saved) != expected:
        raise ValueError(
            f"checkpoint was written at dtype {saved} but the "
            f"simulation computes in {expected.name}; rebuild the "
            f"simulation with a matching FLConfig.dtype")
    simulation.server.global_weights = load_store(
        directory / "global.npz")
    for entry in meta["clients"]:
        if entry["has_personal"]:
            store = load_store(
                directory / f"client{entry['client_id']}.npz")
            simulation.registry.put(int(entry["client_id"]),
                                    store.buffer)
    for client_id in meta.get("dinar_clients", []):
        path = directory / f"dinar{client_id}.npz"
        layers: dict[int, dict[str, np.ndarray]] = {}
        with np.load(path) as archive:
            for name in archive.files:
                prefix, key = name.split("/", 1)
                idx = int(prefix.removeprefix("layer"))
                layers.setdefault(idx, {})[key] = archive[name]
        simulation.defense._stored[int(client_id)] = layers
    return meta
