"""Model aggregation rules, vectorized over the flat weight plane.

FedAvg is the paper's aggregation (§2.1).  Trimmed mean and coordinate
median are extensions (DESIGN.md §6) for composing DINAR with
Byzantine-robust aggregation.

Two reduction shapes coexist:

* **Streaming** (:class:`StreamingAccumulator`) — the fleet-plane
  default: each arriving flat update is folded into chunked partial
  sums in client-arrival order, so aggregation-side memory is constant
  in cohort size (one bounded staging block plus one partial vector).
  This is what lets a round sample thousands-to-millions of clients.
* **Dense** (:class:`UpdateBatch` + the rule functions below) — a
  ``(num_clients, num_params)`` matrix, retained only for rules that
  genuinely need every client row materialized at once (order
  statistics over the client axis: trimmed mean, coordinate median).
  Dense rules declare ``requires_dense = True`` and the batch enforces
  a configurable client cap (:data:`DENSE_CLIENT_CAP`) so nobody
  accidentally materializes a fleet.

Legacy nested ``Weights`` updates are accepted and bridged;
:func:`fedavg_reference` retains the seed nested-dict implementation
as the oracle the property tests and the aggregation benchmark compare
against.

The weighted column sum is computed with ``np.einsum`` over column
chunks, which accumulates clients sequentially in the same order as
the legacy per-array ``sum()`` loop while keeping the accumulator
cache-resident (the chunking is what buys the speedup on models larger
than cache).  einsum may contract each multiply-add as a fused FMA,
whose deferred rounding can shift individual coordinates by 1 ULP
relative to the reference's separate multiply-then-add — agreement is
therefore ULP-level, not bitwise (see the property tests).  The
streaming accumulator flushes blocks through the *same* einsum with
the running partial carried as an extra coefficient-1.0 row, which
continues the identical sequential accumulation chain — so streaming
and dense reductions agree to the same envelope (bitwise on builds
whose einsum accumulates strictly in order, which the fleet benchmark
verifies).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.nn.model import Weights
from repro.nn.store import Layout, WeightsLike, WeightStore, as_store

#: Column-chunk width for reductions over the update matrix.  Chunking
#: keeps each partial reduction's working set cache-resident; 64k
#: float64 columns was the empirical sweet spot on CPU.
REDUCE_CHUNK = 65536

#: Client rows the streaming accumulator stages before flushing a
#: block through the chunked einsum.  Any cohort up to this size is
#: reduced in literally one dense einsum call (bitwise identical to
#: the pre-fleet dense path); larger cohorts chain blocks through the
#: carry row.  64 rows keeps staging memory at 64 x num_params.
STREAM_BLOCK = 64

#: Default ceiling on the clients a dense :class:`UpdateBatch` will
#: materialize.  Dense memory is O(clients x params); rules that need
#: it (``requires_dense``) are order statistics whose usefulness caps
#: out far below fleet scale.  Pass ``client_cap`` explicitly to raise
#: it when you really mean to.
DENSE_CLIENT_CAP = 1024


class UpdateBatch:
    """A round's client updates as rows of one pooled matrix.

    The matrix is preallocated and reused across rounds (``reset`` +
    ``add``), so collecting a cohort's updates costs one row copy per
    client and aggregation never re-walks nested structures.  In a
    deployment this is where deserialized updates would land directly.

    This is the **dense fallback** of the fleet plane: memory grows
    linearly in cohort size, so it is reserved for ``requires_dense``
    rules (trimmed mean, coordinate median) and guarded by
    ``client_cap``.  Streaming rules fold through
    :class:`StreamingAccumulator` in constant memory instead.
    """

    def __init__(self, layout: Layout, capacity: int = 8, *,
                 client_cap: int = DENSE_CLIENT_CAP) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if client_cap < 1:
            raise ValueError(f"client_cap must be >= 1, got {client_cap}")
        if capacity > client_cap:
            raise ValueError(
                f"capacity {capacity} exceeds client_cap {client_cap}; "
                f"raise client_cap explicitly if a dense matrix of that "
                f"many clients is really intended")
        self.layout = layout
        self.client_cap = client_cap
        self._matrix = np.empty((capacity, layout.num_params),
                                dtype=layout.dtype)
        self._count = 0

    def reset(self) -> None:
        """Forget all collected rows (the matrix stays allocated)."""
        self._count = 0

    def ensure_capacity(self, num_clients: int) -> None:
        """Grow the matrix once to hold ``num_clients`` rows.

        Callers that know the cohort size up front (the server does)
        pre-size here instead of paying O(log n) doubling copies
        through :meth:`add`.  Collected rows are preserved.
        """
        if num_clients > self.client_cap:
            raise ValueError(
                f"dense UpdateBatch is capped at {self.client_cap} "
                f"clients, got {num_clients}; use StreamingAccumulator "
                f"for fleet-scale cohorts or raise client_cap")
        if num_clients <= len(self._matrix):
            return
        grown = np.empty((num_clients, self.layout.num_params),
                         dtype=self.layout.dtype)
        grown[:self._count] = self._matrix[:self._count]
        self._matrix = grown

    def add(self, update: WeightsLike) -> None:
        """Copy one client update into the next matrix row."""
        needed = self._count + 1
        if needed > self.client_cap:
            raise ValueError(
                f"dense UpdateBatch is capped at {self.client_cap} "
                f"clients; use StreamingAccumulator for fleet-scale "
                f"cohorts or raise client_cap")
        if needed > len(self._matrix):
            self.ensure_capacity(
                min(max(2 * len(self._matrix), needed), self.client_cap))
        store = as_store(update, layout=self.layout)
        self._matrix[self._count] = store.buffer
        self._count += 1

    @property
    def matrix(self) -> np.ndarray:
        """View of the filled ``(len(self), num_params)`` rows."""
        return self._matrix[:self._count]

    @property
    def nbytes(self) -> int:
        """Allocated matrix bytes (linear in collected capacity)."""
        return self._matrix.nbytes

    def __len__(self) -> int:
        return self._count


Updates = Sequence[WeightsLike] | UpdateBatch


def _check_nonempty(updates) -> None:
    if not len(updates):
        raise ValueError("cannot aggregate zero updates")


def _as_matrix(updates: Updates) -> tuple[np.ndarray, Layout]:
    """Materialize updates as a ``(num_clients, num_params)`` matrix."""
    _check_nonempty(updates)
    if isinstance(updates, UpdateBatch):
        return updates.matrix, updates.layout
    first = updates[0]
    layout = first.layout if isinstance(first, WeightStore) \
        else Layout.from_layers(first)
    matrix = np.empty((len(updates), layout.num_params),
                      dtype=layout.dtype)
    for row, update in zip(matrix, updates):
        row[:] = as_store(update, layout=layout).buffer
    return matrix, layout


def _weighted_colsum(matrix: np.ndarray, coeffs: np.ndarray,
                     out: np.ndarray | None = None) -> np.ndarray:
    """``sum_i coeffs[i] * matrix[i]`` per column, chunked.

    ``einsum`` accumulates the client axis sequentially in the order
    of the legacy ``sum(c_i * u_i)`` loop, while the chunking keeps
    throughput high on out-of-cache models.  Each ``c_i * u_i + acc``
    step may execute as one fused multiply-add, so coordinates can
    differ from the reference by 1 ULP.
    """
    num_params = matrix.shape[1]
    # einsum would otherwise promote a float32 matrix against float64
    # coefficients; casting the (tiny) coefficient vector keeps the
    # reduction in the matrix's precision.  A float64 matrix sees the
    # exact same call as before.
    coeffs = np.asarray(coeffs, dtype=matrix.dtype)
    if out is None:
        out = np.empty(num_params, dtype=matrix.dtype)
    for lo in range(0, num_params, REDUCE_CHUNK):
        hi = min(lo + REDUCE_CHUNK, num_params)
        np.einsum("i,ip->p", coeffs, matrix[:, lo:hi], out=out[lo:hi])
    return out


class StreamingAccumulator:
    """Folds arriving flat updates into constant-memory partial sums.

    The fleet-plane reduction: each :meth:`fold` copies one update into
    a bounded staging block; a full block is flushed through the same
    chunked einsum the dense path uses, with the running partial carried
    into the next flush as an extra coefficient-1.0 row.  Because einsum
    accumulates the client axis sequentially, the carry row *continues*
    the dense reduction's accumulation chain rather than starting a new
    one — a cohort of any size folds to the same value the one-shot
    dense einsum produces (bitwise wherever einsum's accumulation is
    strictly in-order; never worse than the documented ULP envelope).

    Memory is ``(block + 1) x num_params`` staging plus one partial
    vector — independent of how many clients fold.

    Weighting has two modes, chosen per :meth:`reset`:

    * ``total_weight=t`` — the final mixing total is known up front (the
      round-closing policy fixes the completion set, and FedAvg weights
      are metadata that travels ahead of the update payloads).  Each
      row's einsum coefficient is ``weight / t``, exactly the
      normalized coefficient vector of the dense FedAvg path.
    * ``total_weight=None`` — plain weighted sum (secure aggregation's
      server step folds with weight 1.0 and rescales after
      :meth:`drain`; callers with a genuinely unknown total divide the
      drained sum by :attr:`weight_sum` themselves, accepting the one
      extra rounding that late normalization costs).
    """

    def __init__(self, layout: Layout, *,
                 block: int = STREAM_BLOCK) -> None:
        if block < 1:
            raise ValueError(f"block must be >= 1, got {block}")
        self.layout = layout
        self.block = block
        # Row 0 is reserved for the carried partial (coefficient 1.0);
        # client rows stage at 1..block.
        self._stage = np.empty((block + 1, layout.num_params),
                               dtype=layout.dtype)
        self._coeffs = np.empty(block + 1, dtype=np.float64)
        self._coeffs[0] = 1.0
        self._partial = np.empty(layout.num_params, dtype=layout.dtype)
        self.reset()

    def reset(self, total_weight: float | None = None) -> None:
        """Forget all folded rows and (re)declare the weighting mode."""
        if total_weight is not None and not total_weight > 0:
            raise ValueError(
                f"total weight must be positive, got {total_weight}")
        self._total = None if total_weight is None else float(total_weight)
        self._staged = 0
        self._count = 0
        self._weight_sum = 0.0
        self._flushed = False

    @property
    def count(self) -> int:
        """Updates folded since the last :meth:`reset`."""
        return self._count

    @property
    def weight_sum(self) -> float:
        """Sum of the raw fold weights seen since the last reset."""
        return self._weight_sum

    @property
    def nbytes(self) -> int:
        """Bytes the accumulator holds — constant in clients folded."""
        return (self._stage.nbytes + self._coeffs.nbytes
                + self._partial.nbytes)

    def fold(self, update: WeightsLike, weight: float = 1.0) -> None:
        """Fold one arriving client update with its mixing weight."""
        if self._staged == self.block:
            self._flush()
        row = 1 + self._staged
        store = as_store(update, layout=self.layout)
        self._stage[row] = store.buffer
        self._coeffs[row] = weight if self._total is None \
            else weight / self._total
        self._staged += 1
        self._count += 1
        self._weight_sum += weight

    def _flush(self) -> None:
        """Reduce the staged block into the partial vector."""
        k = self._staged
        if k == 0:
            return
        if self._flushed:
            # Carry the running partial as row 0 (coefficient 1.0):
            # einsum's sequential accumulation then continues the
            # previous flush's chain.  The copy keeps einsum's output
            # buffer disjoint from its inputs.
            self._stage[0] = self._partial
            _weighted_colsum(self._stage[:1 + k], self._coeffs[:1 + k],
                             out=self._partial)
        else:
            _weighted_colsum(self._stage[1:1 + k], self._coeffs[1:1 + k],
                             out=self._partial)
        self._flushed = True
        self._staged = 0

    def drain(self) -> WeightStore:
        """Finalize the reduction over everything folded so far.

        With a known ``total_weight`` the result is the finished
        weighted mean; otherwise it is the raw weighted sum.  The
        accumulator stays valid — further folds continue from the
        drained partial, and :meth:`reset` starts the next round.
        """
        if self._count == 0:
            raise ValueError("cannot aggregate zero updates")
        self._flush()
        return WeightStore(self.layout, self._partial.copy())


# ----------------------------------------------------------------------
# aggregation rules
# ----------------------------------------------------------------------

def fedavg(updates: Updates,
           num_samples: Sequence[int]) -> WeightStore:
    """Sample-count-weighted average of client updates (McMahan 2017)."""
    matrix, layout = _as_matrix(updates)
    if len(matrix) != len(num_samples):
        raise ValueError(f"{len(matrix)} updates vs "
                         f"{len(num_samples)} sample counts")
    total = float(sum(num_samples))
    if total <= 0:
        raise ValueError("total sample count must be positive")
    coeffs = np.asarray(num_samples, dtype=np.float64) / total
    return WeightStore(layout, _weighted_colsum(matrix, coeffs))


def sum_updates(updates: Updates) -> WeightStore:
    """Plain element-wise sum (the server step of secure aggregation)."""
    matrix, layout = _as_matrix(updates)
    ones = np.ones(len(matrix))
    return WeightStore(layout, _weighted_colsum(matrix, ones))


def scale_weights(weights: WeightsLike, factor: float) -> WeightsLike:
    """Multiply every coordinate by ``factor`` (returns a new value of
    the same representation)."""
    if isinstance(weights, WeightStore):
        return weights * factor
    return [{k: v * factor for k, v in layer.items()} for layer in weights]


def trimmed_mean(updates: Updates, *, trim: int = 1) -> WeightStore:
    """Coordinate-wise mean after dropping the ``trim`` highest and
    lowest values (extension: Byzantine-robust aggregation)."""
    matrix, layout = _as_matrix(updates)
    n = len(matrix)
    if 2 * trim >= n:
        raise ValueError(f"trim={trim} removes all of {n} updates")
    ranked = np.sort(matrix, axis=0)
    return WeightStore(layout, ranked[trim:n - trim].mean(axis=0))


def coordinate_median(updates: Updates) -> WeightStore:
    """Coordinate-wise median (extension: Byzantine-robust aggregation)."""
    matrix, layout = _as_matrix(updates)
    return WeightStore(layout, np.median(matrix, axis=0))


#: Minimum cohort for norm clustering to act; below this the distance
#: multiset is too small to separate and :func:`clustered_mean` falls
#: back to keeping every row (documented fallback, not an error).
CLUSTER_MIN_COHORT = 4

#: Separation factor for the norm clusters: the far cluster is only
#: discarded when its mean distance exceeds this multiple of the near
#: cluster's, so a homogeneous honest cohort is never filtered.
CLUSTER_SEPARATION = 2.0


def _cluster_distances(matrix: np.ndarray,
                       include: np.ndarray | None = None) -> np.ndarray:
    """Each row's L2 distance to the coordinate-median center, chunked
    over columns so no ``(clients, params)`` temporary is allocated.

    ``include`` is an optional boolean coordinate mask (segment-plane
    shape, ``(num_params,)``): False coordinates are excluded from the
    distance — how norm clustering ignores DINAR's obfuscated segment.
    Masked coordinates are zeroed in place (not compressed away), so
    every chunk keeps its shape and summation order and an all-True
    mask reproduces the unmasked distances bitwise.
    """
    center = np.median(matrix, axis=0)
    sq = np.zeros(len(matrix))
    for lo in range(0, matrix.shape[1], REDUCE_CHUNK):
        hi = min(lo + REDUCE_CHUNK, matrix.shape[1])
        diff = matrix[:, lo:hi] - center[lo:hi]
        if include is not None:
            diff *= include[lo:hi]
        sq += np.einsum("ip,ip->i", diff, diff)
    return np.sqrt(sq)


def _norm_cluster_keep(dist: np.ndarray) -> np.ndarray:
    """Boolean keep-mask from deterministic 1-D 2-means over distances.

    Centers initialize at the min/max distance and iterate to a fixed
    point; the computation depends only on the distance *multiset*, so
    the mask is client-permutation-equivariant.  The far cluster is
    dropped only when clearly separated (``CLUSTER_SEPARATION``);
    otherwise everything is kept.
    """
    n = len(dist)
    keep_all = np.ones(n, dtype=bool)
    near, far = float(dist.min()), float(dist.max())
    if not far > CLUSTER_SEPARATION * near + 1e-12:
        return keep_all
    for _ in range(32):
        mask = np.abs(dist - near) <= np.abs(dist - far)
        if mask.all() or not mask.any():
            return keep_all
        new_near = float(dist[mask].mean())
        new_far = float(dist[~mask].mean())
        if new_near == near and new_far == far:
            break
        near, far = new_near, new_far
    if not far > CLUSTER_SEPARATION * near + 1e-12:
        return keep_all
    return mask


def clustered_mean(updates: Updates,
                   num_samples: Sequence[int] | None = None, *,
                   diagnostics: dict | None = None,
                   distance_include: np.ndarray | None = None
                   ) -> WeightStore:
    """Norm-clustering robust mean over flat update rows (extension).

    Cheap now that updates are contiguous ``(clients, params)`` rows:
    compute each row's distance to the coordinate-median center,
    2-means-cluster the distance multiset, discard the far cluster
    when it is clearly separated, and FedAvg the kept rows (sample-
    weighted when ``num_samples`` is given).  Cohorts smaller than
    ``CLUSTER_MIN_COHORT`` keep every row.

    ``distance_include`` restricts the distance metric to a boolean
    coordinate mask (see :func:`_cluster_distances`) — e.g. the
    complement of DINAR's obfuscated segment — while the kept rows are
    still averaged over *all* coordinates.

    ``diagnostics``, when passed, receives ``kept`` / ``filtered``
    (row indices) and ``distances`` — this is how the server reports
    *which* clients a robustness filter rejected, the observable the
    DINAR-looks-byzantine question hinges on.
    """
    matrix, layout = _as_matrix(updates)
    n = len(matrix)
    if num_samples is not None and len(num_samples) != n:
        raise ValueError(f"{n} updates vs "
                         f"{len(num_samples)} sample counts")
    if distance_include is not None \
            and distance_include.shape != (matrix.shape[1],):
        raise ValueError(
            f"distance_include shape {distance_include.shape} does not "
            f"match {matrix.shape[1]} params")
    dist = _cluster_distances(matrix, distance_include)
    if n < CLUSTER_MIN_COHORT:
        keep = np.ones(n, dtype=bool)
    else:
        keep = _norm_cluster_keep(dist)
    kept = np.flatnonzero(keep)
    if diagnostics is not None:
        diagnostics["kept"] = [int(i) for i in kept]
        diagnostics["filtered"] = [int(i) for i in np.flatnonzero(~keep)]
        diagnostics["distances"] = dist
    sub = matrix[kept]
    if num_samples is None:
        coeffs = np.full(len(kept), 1.0 / len(kept))
    else:
        counts = np.asarray(num_samples, dtype=np.float64)[kept]
        total = float(counts.sum())
        if total <= 0:
            raise ValueError("total sample count must be positive")
        coeffs = counts / total
    return WeightStore(layout, _weighted_colsum(sub, coeffs))


# ----------------------------------------------------------------------
# rule capabilities
# ----------------------------------------------------------------------

# Weighted sums fold one arrival at a time; order statistics over the
# client axis need every row at once.  ``requires_dense`` is the
# explicit capability the server consults: streaming rules go through
# StreamingAccumulator in constant memory, dense rules go through a
# cap-guarded UpdateBatch.
fedavg.requires_dense = False
sum_updates.requires_dense = False
trimmed_mean.requires_dense = True
coordinate_median.requires_dense = True
clustered_mean.requires_dense = True

#: Rule name -> callable, with the capability attributes above.
AGGREGATION_RULES = {
    "fedavg": fedavg,
    "sum": sum_updates,
    "trimmed_mean": trimmed_mean,
    "coordinate_median": coordinate_median,
    "clustered": clustered_mean,
}

#: ``FLConfig.aggregator`` / ``--aggregator`` choices: every registry
#: rule a user can pick end-to-end ("sum" is secure aggregation's
#: internal server step, not a standalone aggregator).
AGGREGATOR_CHOICES = ("fedavg", "trimmed_mean", "coordinate_median",
                      "clustered")


def requires_dense(rule) -> bool:
    """Whether an aggregation rule needs the full client matrix.

    Unknown rules conservatively report dense: anything that has not
    declared it can stream must not be handed an iterator.
    """
    if isinstance(rule, str):
        rule = AGGREGATION_RULES[rule]
    return bool(getattr(rule, "requires_dense", True))


# ----------------------------------------------------------------------
# the seed implementation, retained as the oracle
# ----------------------------------------------------------------------

def fedavg_reference(updates: Sequence[Weights],
                     num_samples: Sequence[int]) -> Weights:
    """The original nested-dict FedAvg (kept verbatim).

    Property tests assert :func:`fedavg` matches it to within 2 ULP
    (FMA contraction inside einsum), and
    ``benchmarks/test_perf_aggregation.py`` times it against the
    vectorized path.
    """
    _check_nonempty(updates)
    if len(updates) != len(num_samples):
        raise ValueError(f"{len(updates)} updates vs "
                         f"{len(num_samples)} sample counts")
    total = float(sum(num_samples))
    if total <= 0:
        raise ValueError("total sample count must be positive")
    out: Weights = []
    for layer_idx in range(len(updates[0])):
        merged: dict[str, np.ndarray] = {}
        for key in updates[0][layer_idx]:
            merged[key] = sum(
                (n / total) * u[layer_idx][key]
                for u, n in zip(updates, num_samples))
        out.append(merged)
    return out
