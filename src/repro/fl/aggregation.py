"""Model aggregation rules.

FedAvg is the paper's aggregation (§2.1).  Trimmed mean and coordinate
median are extensions (DESIGN.md §6) for composing DINAR with
Byzantine-robust aggregation.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.nn.model import Weights


def _check_nonempty(updates: Sequence[Weights]) -> None:
    if not updates:
        raise ValueError("cannot aggregate zero updates")


def fedavg(updates: Sequence[Weights],
           num_samples: Sequence[int]) -> Weights:
    """Sample-count-weighted average of client updates (McMahan 2017)."""
    _check_nonempty(updates)
    if len(updates) != len(num_samples):
        raise ValueError(f"{len(updates)} updates vs "
                         f"{len(num_samples)} sample counts")
    total = float(sum(num_samples))
    if total <= 0:
        raise ValueError("total sample count must be positive")
    out: Weights = []
    for layer_idx in range(len(updates[0])):
        merged: dict[str, np.ndarray] = {}
        for key in updates[0][layer_idx]:
            merged[key] = sum(
                (n / total) * u[layer_idx][key]
                for u, n in zip(updates, num_samples))
        out.append(merged)
    return out


def sum_updates(updates: Sequence[Weights]) -> Weights:
    """Plain element-wise sum (the server step of secure aggregation)."""
    _check_nonempty(updates)
    out: Weights = []
    for layer_idx in range(len(updates[0])):
        merged = {
            key: sum(u[layer_idx][key] for u in updates)
            for key in updates[0][layer_idx]
        }
        out.append(merged)
    return out


def scale_weights(weights: Weights, factor: float) -> Weights:
    """Multiply every array by ``factor`` (returns a new structure)."""
    return [{k: v * factor for k, v in layer.items()} for layer in weights]


def trimmed_mean(updates: Sequence[Weights], *, trim: int = 1) -> Weights:
    """Coordinate-wise mean after dropping the ``trim`` highest and
    lowest values (extension: Byzantine-robust aggregation)."""
    _check_nonempty(updates)
    if 2 * trim >= len(updates):
        raise ValueError(
            f"trim={trim} removes all of {len(updates)} updates")
    out: Weights = []
    for layer_idx in range(len(updates[0])):
        merged: dict[str, np.ndarray] = {}
        for key in updates[0][layer_idx]:
            stacked = np.stack([u[layer_idx][key] for u in updates])
            stacked.sort(axis=0)
            merged[key] = stacked[trim:len(updates) - trim].mean(axis=0)
        out.append(merged)
    return out


def coordinate_median(updates: Sequence[Weights]) -> Weights:
    """Coordinate-wise median (extension: Byzantine-robust aggregation)."""
    _check_nonempty(updates)
    out: Weights = []
    for layer_idx in range(len(updates[0])):
        merged = {
            key: np.median(
                np.stack([u[layer_idx][key] for u in updates]), axis=0)
            for key in updates[0][layer_idx]
        }
        out.append(merged)
    return out
