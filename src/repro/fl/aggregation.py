"""Model aggregation rules, vectorized over the flat weight plane.

FedAvg is the paper's aggregation (§2.1).  Trimmed mean and coordinate
median are extensions (DESIGN.md §6) for composing DINAR with
Byzantine-robust aggregation.

Every rule reduces a ``(num_clients, num_params)`` matrix of flat
client updates with one NumPy operation per column chunk and returns a
:class:`~repro.nn.store.WeightStore`.  Legacy nested ``Weights``
updates are accepted and bridged; :func:`fedavg_reference` retains the
seed nested-dict implementation as the oracle the property tests and
the aggregation benchmark compare against.

The weighted column sum is computed with ``np.einsum`` over column
chunks, which accumulates clients sequentially in the same order as
the legacy per-array ``sum()`` loop while keeping the accumulator
cache-resident (the chunking is what buys the speedup on models larger
than cache).  einsum may contract each multiply-add as a fused FMA,
whose deferred rounding can shift individual coordinates by 1 ULP
relative to the reference's separate multiply-then-add — agreement is
therefore ULP-level, not bitwise (see the property tests).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.nn.model import Weights
from repro.nn.store import Layout, WeightsLike, WeightStore, as_store

#: Column-chunk width for reductions over the update matrix.  Chunking
#: keeps each partial reduction's working set cache-resident; 64k
#: float64 columns was the empirical sweet spot on CPU.
REDUCE_CHUNK = 65536


class UpdateBatch:
    """A round's client updates as rows of one pooled matrix.

    The matrix is preallocated and reused across rounds (``reset`` +
    ``add``), so collecting a cohort's updates costs one row copy per
    client and aggregation never re-walks nested structures.  In a
    deployment this is where deserialized updates would land directly.
    """

    def __init__(self, layout: Layout, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.layout = layout
        self._matrix = np.empty((capacity, layout.num_params),
                                dtype=layout.dtype)
        self._count = 0

    def reset(self) -> None:
        """Forget all collected rows (the matrix stays allocated)."""
        self._count = 0

    def add(self, update: WeightsLike) -> None:
        """Copy one client update into the next matrix row."""
        if self._count == len(self._matrix):
            grown = np.empty((2 * len(self._matrix),
                              self.layout.num_params),
                             dtype=self.layout.dtype)
            grown[:self._count] = self._matrix[:self._count]
            self._matrix = grown
        store = as_store(update, layout=self.layout)
        self._matrix[self._count] = store.buffer
        self._count += 1

    @property
    def matrix(self) -> np.ndarray:
        """View of the filled ``(len(self), num_params)`` rows."""
        return self._matrix[:self._count]

    def __len__(self) -> int:
        return self._count


Updates = Sequence[WeightsLike] | UpdateBatch


def _check_nonempty(updates) -> None:
    if not len(updates):
        raise ValueError("cannot aggregate zero updates")


def _as_matrix(updates: Updates) -> tuple[np.ndarray, Layout]:
    """Materialize updates as a ``(num_clients, num_params)`` matrix."""
    _check_nonempty(updates)
    if isinstance(updates, UpdateBatch):
        return updates.matrix, updates.layout
    first = updates[0]
    layout = first.layout if isinstance(first, WeightStore) \
        else Layout.from_layers(first)
    matrix = np.empty((len(updates), layout.num_params),
                      dtype=layout.dtype)
    for row, update in zip(matrix, updates):
        row[:] = as_store(update, layout=layout).buffer
    return matrix, layout


def _weighted_colsum(matrix: np.ndarray, coeffs: np.ndarray,
                     out: np.ndarray | None = None) -> np.ndarray:
    """``sum_i coeffs[i] * matrix[i]`` per column, chunked.

    ``einsum`` accumulates the client axis sequentially in the order
    of the legacy ``sum(c_i * u_i)`` loop, while the chunking keeps
    throughput high on out-of-cache models.  Each ``c_i * u_i + acc``
    step may execute as one fused multiply-add, so coordinates can
    differ from the reference by 1 ULP.
    """
    num_params = matrix.shape[1]
    # einsum would otherwise promote a float32 matrix against float64
    # coefficients; casting the (tiny) coefficient vector keeps the
    # reduction in the matrix's precision.  A float64 matrix sees the
    # exact same call as before.
    coeffs = np.asarray(coeffs, dtype=matrix.dtype)
    if out is None:
        out = np.empty(num_params, dtype=matrix.dtype)
    for lo in range(0, num_params, REDUCE_CHUNK):
        hi = min(lo + REDUCE_CHUNK, num_params)
        np.einsum("i,ip->p", coeffs, matrix[:, lo:hi], out=out[lo:hi])
    return out


# ----------------------------------------------------------------------
# aggregation rules
# ----------------------------------------------------------------------

def fedavg(updates: Updates,
           num_samples: Sequence[int]) -> WeightStore:
    """Sample-count-weighted average of client updates (McMahan 2017)."""
    matrix, layout = _as_matrix(updates)
    if len(matrix) != len(num_samples):
        raise ValueError(f"{len(matrix)} updates vs "
                         f"{len(num_samples)} sample counts")
    total = float(sum(num_samples))
    if total <= 0:
        raise ValueError("total sample count must be positive")
    coeffs = np.asarray(num_samples, dtype=np.float64) / total
    return WeightStore(layout, _weighted_colsum(matrix, coeffs))


def sum_updates(updates: Updates) -> WeightStore:
    """Plain element-wise sum (the server step of secure aggregation)."""
    matrix, layout = _as_matrix(updates)
    ones = np.ones(len(matrix))
    return WeightStore(layout, _weighted_colsum(matrix, ones))


def scale_weights(weights: WeightsLike, factor: float) -> WeightsLike:
    """Multiply every coordinate by ``factor`` (returns a new value of
    the same representation)."""
    if isinstance(weights, WeightStore):
        return weights * factor
    return [{k: v * factor for k, v in layer.items()} for layer in weights]


def trimmed_mean(updates: Updates, *, trim: int = 1) -> WeightStore:
    """Coordinate-wise mean after dropping the ``trim`` highest and
    lowest values (extension: Byzantine-robust aggregation)."""
    matrix, layout = _as_matrix(updates)
    n = len(matrix)
    if 2 * trim >= n:
        raise ValueError(f"trim={trim} removes all of {n} updates")
    ranked = np.sort(matrix, axis=0)
    return WeightStore(layout, ranked[trim:n - trim].mean(axis=0))


def coordinate_median(updates: Updates) -> WeightStore:
    """Coordinate-wise median (extension: Byzantine-robust aggregation)."""
    matrix, layout = _as_matrix(updates)
    return WeightStore(layout, np.median(matrix, axis=0))


# ----------------------------------------------------------------------
# the seed implementation, retained as the oracle
# ----------------------------------------------------------------------

def fedavg_reference(updates: Sequence[Weights],
                     num_samples: Sequence[int]) -> Weights:
    """The original nested-dict FedAvg (kept verbatim).

    Property tests assert :func:`fedavg` matches it to within 2 ULP
    (FMA contraction inside einsum), and
    ``benchmarks/test_perf_aggregation.py`` times it against the
    vectorized path.
    """
    _check_nonempty(updates)
    if len(updates) != len(num_samples):
        raise ValueError(f"{len(updates)} updates vs "
                         f"{len(num_samples)} sample counts")
    total = float(sum(num_samples))
    if total <= 0:
        raise ValueError("total sample count must be positive")
    out: Weights = []
    for layer_idx in range(len(updates[0])):
        merged: dict[str, np.ndarray] = {}
        for key in updates[0][layer_idx]:
            merged[key] = sum(
                (n / total) * u[layer_idx][key]
                for u, n in zip(updates, num_samples))
        out.append(merged)
    return out
