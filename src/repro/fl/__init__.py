"""Federated-learning substrate: cross-silo FedAvg simulation.

Implements the paper's §2.1 setting: at each round the server selects N
clients, which train locally and transmit model updates; the server
aggregates with FedAvg and shares the global model back with the
participating clients (and nobody else).  Defenses plug in through the
hook interface in :mod:`repro.privacy.defenses.base`.
"""

from repro.fl.aggregation import (
    AGGREGATOR_CHOICES,
    StreamingAccumulator,
    clustered_mean,
    coordinate_median,
    fedavg,
    trimmed_mean,
)
from repro.fl.behavior import (
    BEHAVIOR_CHOICES,
    ClientBehavior,
    make_behavior,
    select_adversaries,
)
from repro.fl.client import ClientUpdate, FLClient
from repro.fl.config import FLConfig
from repro.fl.costs import CostMeter, CostReport
from repro.fl.server import FLServer
from repro.fl.simulation import FederatedSimulation, History, RoundRecord

__all__ = [
    "AGGREGATOR_CHOICES",
    "BEHAVIOR_CHOICES",
    "ClientBehavior",
    "ClientUpdate",
    "CostMeter",
    "CostReport",
    "FLClient",
    "FLConfig",
    "FLServer",
    "FederatedSimulation",
    "History",
    "RoundRecord",
    "StreamingAccumulator",
    "clustered_mean",
    "coordinate_median",
    "fedavg",
    "make_behavior",
    "select_adversaries",
    "trimmed_mean",
]
