"""Virtual-client plane: descriptor fleets with pooled materialization.

The pre-virtual client plane was O(num_clients) live state: one
``FLClient`` + ``Model`` (weight buffer, gradient buffer, workspace
arena) and one eagerly copied ``Dataset`` shard per client, built up
front whether or not the client ever trains.  At fleet scale that is
the dominant memory term — 100k clients of even a small fcnn allocate
gigabytes that mostly sit idle.

This module replaces live objects with three small pieces:

* :class:`ClientDescriptor` — what a client *is* when idle: an id, a
  zero-copy shard view into the fleet's packed
  :class:`~repro.data.partition.ClientShards`, a sample count and the
  shared member pool to materialize from.  Descriptors are created on
  demand and garbage-collected freely.
* :class:`PersonalWeightsRegistry` — the per-client *residue* that must
  outlive materialization: personalized weights (§4.3 prediction
  state) as rows of one growable flat 2D buffer keyed by client id.
  Rows are written by copy and read as zero-copy
  :class:`~repro.nn.store.WeightStore` views.
* :class:`VirtualClientFleet` — a sequence-shaped façade over the
  fleet.  ``fleet[i]`` / ``fleet.materialize(i)`` returns a live
  ``FLClient`` from a bounded pool of at most ``capacity``
  (``FLConfig.max_materialized``) model instances, rebinding the
  least-recently-used one when the pool is full.

Bitwise rules (why pooling cannot change a trajectory):

* every eager client was built from ``model_factory(default_rng(seed))``
  — N identical models — and ``train_round`` overwrites the *entire*
  weight buffer from the received global store before touching data,
  rebuilds the optimizer with zeroed state each round (Algorithm 1
  line 8), and backward passes overwrite rather than accumulate
  gradients, so whichever model instance runs a ``(round, client)``
  cell produces identical bits;
* all randomness draws from dedicated per-cell SeedSequence streams
  (``fl.executor.round_rng`` and friends), never from shared
  generators, so materialization *order* is free;
* shard subsets are pure functions of (members, shard indices), so
  lazy materialization yields the exact arrays the eager copies held;
* evaluation-mode predictions depend only on the weights loaded into
  the eval model, so one shared eval model serves every client.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.data.partition import ClientShards
from repro.data.synthetic import Dataset
from repro.fl.client import FLClient
from repro.fl.config import FLConfig
from repro.nn.metrics import accuracy
from repro.nn.model import Model
from repro.nn.store import Layout, WeightsLike, WeightStore, as_store
from repro.privacy.defenses.base import Defense

__all__ = [
    "ClientDescriptor",
    "PersonalWeightsRegistry",
    "VirtualClientFleet",
]


@dataclass(frozen=True)
class ClientDescriptor:
    """A client while idle: everything needed to materialize it."""

    client_id: int
    #: Zero-copy view into the fleet's packed shard indices.
    shard: np.ndarray
    num_samples: int
    #: The shared member pool every shard indexes into.
    source: Dataset
    name: str

    def materialize_data(self) -> Dataset:
        """Build the client's dataset subset (the eager plane's copy,
        made on demand instead of up front)."""
        return self.source.subset(self.shard, name=self.name)


class PersonalWeightsRegistry:
    """Per-client personalized weights as rows of one flat 2D buffer.

    The eager plane kept one ``WeightStore`` object (buffer + header)
    alive per trained client; the registry packs the same residue into
    a single ``(capacity, num_params)`` array that doubles as needed,
    so a fleet's prediction state is one allocation plus an id->row
    dict.  ``put`` copies the incoming buffer into its row; ``get``
    returns a zero-copy store view of the row — mutating a pooled
    model after its round therefore never corrupts stored residue.
    """

    def __init__(self, layout: Layout) -> None:
        self.layout = layout
        self._rows = np.empty((0, layout.num_params), dtype=layout.dtype)
        self._slot: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._slot)

    def __contains__(self, client_id: int) -> bool:
        return client_id in self._slot

    def client_ids(self) -> list[int]:
        """Ids with stored residue, ascending (the eager plane's
        evaluation order)."""
        return sorted(self._slot)

    @property
    def nbytes(self) -> int:
        """Bytes of the allocated row buffer."""
        return int(self._rows.nbytes)

    def _ensure_row(self, client_id: int) -> int:
        slot = self._slot.get(client_id)
        if slot is not None:
            return slot
        slot = len(self._slot)
        if slot >= len(self._rows):
            capacity = max(8, 2 * len(self._rows))
            grown = np.empty((capacity, self.layout.num_params),
                             dtype=self.layout.dtype)
            grown[:len(self._rows)] = self._rows
            self._rows = grown
        self._slot[client_id] = slot
        return slot

    def put(self, client_id: int, weights: WeightsLike | np.ndarray) -> None:
        """Copy a client's personalized weights into its row."""
        if isinstance(weights, np.ndarray):
            buffer = weights
        else:
            buffer = as_store(weights, layout=self.layout).buffer
        if buffer.shape != (self.layout.num_params,):
            raise ValueError(
                f"client {client_id}: buffer shape {buffer.shape} does "
                f"not match layout with {self.layout.num_params} params")
        # Resolve the row before subscripting: _ensure_row may replace
        # self._rows with a grown buffer.
        slot = self._ensure_row(client_id)
        self._rows[slot, :] = buffer

    def get(self, client_id: int) -> WeightStore | None:
        """Zero-copy store view of a client's row (None if absent)."""
        slot = self._slot.get(client_id)
        if slot is None:
            return None
        return WeightStore(self.layout, self._rows[slot])


class _FleetDatasets:
    """Lazy stand-in for the eager ``simulation.client_data`` list.

    Indexing materializes the shard subset afresh — nothing is cached,
    so iterating a fleet's datasets costs one shard of memory at a
    time instead of all of them at once.
    """

    def __init__(self, fleet: "VirtualClientFleet") -> None:
        self._fleet = fleet

    def __len__(self) -> int:
        return len(self._fleet)

    def __getitem__(self, client_id: int) -> Dataset:
        return self._fleet.dataset(client_id)

    def __iter__(self) -> Iterator[Dataset]:
        for client_id in range(len(self._fleet)):
            yield self._fleet.dataset(client_id)


class VirtualClientFleet:
    """Sequence-shaped fleet façade over a bounded model pool.

    ``fleet[i]`` (and iteration) materializes client ``i``: if a pooled
    ``FLClient`` is already bound to it, that instance is returned; if
    the pool has spare capacity, a new model is cloned from the
    template; otherwise the least-recently-used pooled client is
    rebound via :meth:`FLClient.bind` — no buffer is ever reallocated.
    Handles are therefore *transient*: holding two handles from a
    capacity-1 pool yields the same object bound to whichever client
    was materialized last, and per-client state read off a handle must
    be read before the next materialization (which is how every
    existing call site already behaves — comprehensions read
    ``personal_weights`` immediately).

    The fleet also hosts the shared evaluation model (one lazy clone of
    the template serving every client's :meth:`FLClient.evaluate`) and
    the pool accounting the cost plane reports: ``live_models``,
    ``peak_live_models`` and cumulative ``materializations``.
    """

    def __init__(self, members: Dataset, shards: ClientShards,
                 template: Model, config: FLConfig, defense: Defense, *,
                 registry: PersonalWeightsRegistry | None = None,
                 capacity: int | None = None) -> None:
        if len(shards) != config.num_clients:
            raise ValueError(
                f"{len(shards)} shards for {config.num_clients} clients")
        self.members = members
        self.shards = shards
        self.config = config
        self.defense = defense
        self.capacity = capacity if capacity is not None \
            else config.max_materialized
        if self.capacity < 1:
            raise ValueError(
                f"pool capacity must be >= 1, got {self.capacity}")
        self._template = template
        self.registry = registry if registry is not None \
            else PersonalWeightsRegistry(template.weight_layout())
        self._pool: list[FLClient] = []
        self._bound: dict[int, int] = {}       # client_id -> pool slot
        self._last_used: list[int] = []        # slot -> LRU clock stamp
        self._clock = 0
        self._eval_model: Model | None = None
        #: Cumulative descriptor binds (cache misses), this process.
        self.materializations = 0
        #: High-water mark of simultaneously live pooled models.
        self.peak_live_models = 0

    # ------------------------------------------------------------------
    # descriptors and data
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.shards)

    def descriptor(self, client_id: int) -> ClientDescriptor:
        """The lightweight idle form of one client (built on demand)."""
        return ClientDescriptor(
            client_id=client_id,
            shard=self.shards.shard(client_id),
            num_samples=self.shards.num_samples(client_id),
            source=self.members,
            name=f"{self.members.name}/client{client_id}",
        )

    def dataset(self, client_id: int) -> Dataset:
        """Materialize one client's dataset subset."""
        return self.descriptor(client_id).materialize_data()

    def num_samples(self, client_id: int) -> int:
        """Shard size without materializing anything."""
        return self.shards.num_samples(client_id)

    @property
    def datasets(self) -> _FleetDatasets:
        """Lazy sequence view over every client's dataset."""
        return _FleetDatasets(self)

    # ------------------------------------------------------------------
    # the pool
    # ------------------------------------------------------------------
    @property
    def live_models(self) -> int:
        """Model instances currently alive in this process's pool."""
        return len(self._pool)

    def materialize(self, client_id: int) -> FLClient:
        """A live ``FLClient`` for ``client_id`` from the bounded pool."""
        n = len(self)
        if client_id < 0:
            client_id += n
        if not 0 <= client_id < n:
            raise IndexError(
                f"client_id {client_id} out of range for fleet of {n}")
        self._clock += 1
        slot = self._bound.get(client_id)
        if slot is not None:
            self._last_used[slot] = self._clock
            return self._pool[slot]
        descriptor = self.descriptor(client_id)
        if len(self._pool) < self.capacity:
            # First pooled model *is* the template (its initial weights
            # are already snapshotted wherever they matter); further
            # slots are buffer-copy clones, never factory rebuilds.
            model = self._template if not self._pool \
                else self._template.clone()
            client = FLClient(
                client_id=descriptor.client_id, model=model, data=None,
                config=self.config, defense=self.defense,
                eval_model_provider=self.eval_model)
            slot = len(self._pool)
            self._pool.append(client)
            self._last_used.append(self._clock)
            self.peak_live_models = max(self.peak_live_models,
                                        len(self._pool))
        else:
            slot = min(range(len(self._pool)),
                       key=self._last_used.__getitem__)
            evicted = self._pool[slot]
            self._bound.pop(evicted.client_id, None)
            client = evicted
        client.bind(descriptor, registry=self.registry)
        self._bound[client_id] = slot
        self._last_used[slot] = self._clock
        self.materializations += 1
        return client

    def __getitem__(self, client_id: int) -> FLClient:
        if not isinstance(client_id, (int, np.integer)):
            raise TypeError(
                f"fleet indices must be integers, got "
                f"{type(client_id).__name__}")
        return self.materialize(int(client_id))

    def __iter__(self) -> Iterator[FLClient]:
        for client_id in range(len(self)):
            yield self.materialize(client_id)

    # ------------------------------------------------------------------
    # shared evaluation
    # ------------------------------------------------------------------
    def eval_model(self) -> Model:
        """The fleet's single reused evaluation model.

        Cloned lazily from the template; callers load whatever weights
        they evaluate (predictions depend on nothing else), so one
        instance serves the whole fleet.
        """
        if self._eval_model is None:
            self._eval_model = self._template.clone()
        return self._eval_model

    def evaluate_weights(self, weights: WeightsLike, x: np.ndarray,
                         y: np.ndarray) -> float:
        """Accuracy of the given weights on ``(x, y)`` via the shared
        eval model."""
        model = self.eval_model()
        model.set_weights(as_store(weights))
        return accuracy(model.predict(x), y)
