"""Cost accounting for Table 3 (client train time, server aggregation
time, defense memory).

Wall-clock timers measure the simulated computations directly; memory is
accounted as the bytes of extra state a defense keeps alive (noise
buffers, compression residuals, stored private layers), which is what
dominates the paper's GPU-memory deltas.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class CostReport:
    """Aggregated costs of one federated run."""

    client_train_seconds: float = 0.0
    client_defense_seconds: float = 0.0
    server_aggregate_seconds: float = 0.0
    client_train_rounds: int = 0
    server_rounds: int = 0
    defense_state_bytes: int = 0
    # Fleet-plane participation accounting, summed across rounds:
    # every sampled client ends up in exactly one of the other three
    # buckets (completed / dropped / straggled).
    clients_sampled: int = 0
    clients_completed: int = 0
    clients_dropped: int = 0
    clients_straggled: int = 0
    # Robustness-plane accounting, summed across rounds: sampled
    # client slots held by adversarial clients, and updates a robust
    # aggregator rejected outright (norm clustering's filter).
    clients_adversarial: int = 0
    clients_filtered: int = 0
    # Virtual-client-plane accounting: peak simultaneously live model
    # instances in any one process's pool, cumulative descriptor binds
    # as seen by the busiest process, and the personal-weights
    # registry's allocated bytes.
    peak_live_models: int = 0
    model_materializations: int = 0
    registry_bytes: int = 0
    # IPC-plane accounting, summed across rounds: bytes that crossed
    # the executor's process boundary through pickling (task/result
    # payloads on the pool pipe) vs through mapped shared-memory
    # segments (weight broadcast, round state, result slabs).  Both
    # zero for serial runs — nothing crosses a process boundary.
    ipc_bytes_pickled: int = 0
    ipc_bytes_shared: int = 0
    # Segment-plane accounting: the per-layer privacy-budget schedule
    # of a layer-wise DP defense (one dict per parameter-bearing
    # segment: name, share, epsilon, sigma, params).  Empty unless a
    # defense publishes a ``segment_report``.
    segment_budget: list = field(default_factory=list)

    @property
    def train_seconds_per_round(self) -> float:
        """Mean per-client training duration per FL round (Table 3 col 1)."""
        if self.client_train_rounds == 0:
            return 0.0
        return (self.client_train_seconds + self.client_defense_seconds) \
            / self.client_train_rounds

    @property
    def aggregate_seconds_per_round(self) -> float:
        """Mean server aggregation duration per FL round (Table 3 col 2)."""
        if self.server_rounds == 0:
            return 0.0
        return self.server_aggregate_seconds / self.server_rounds

    @property
    def completion_rate(self) -> float:
        """Fraction of sampled client slots that completed their round."""
        if self.clients_sampled == 0:
            return 0.0
        return self.clients_completed / self.clients_sampled

    def participation_summary(self) -> str:
        """One-line fleet participation digest for run summaries."""
        summary = (f"{self.clients_completed}/{self.clients_sampled} "
                   f"completed (dropped {self.clients_dropped}, "
                   f"stragglers {self.clients_straggled})")
        if self.clients_adversarial or self.clients_filtered:
            summary += (f", adversarial {self.clients_adversarial}, "
                        f"filtered {self.clients_filtered}")
        return summary

    def client_plane_summary(self) -> str:
        """One-line virtual-client-plane digest for run summaries."""
        return (f"{self.peak_live_models} live model(s) peak, "
                f"{self.model_materializations} bind(s), "
                f"registry {self.registry_bytes / 1024:.0f} KiB")

    def ipc_summary(self) -> str:
        """One-line executor-IPC digest for run summaries."""
        if not self.ipc_bytes_pickled and not self.ipc_bytes_shared:
            return "in-process (no executor IPC)"
        return (f"{_format_bytes(self.ipc_bytes_pickled)} pickled, "
                f"{_format_bytes(self.ipc_bytes_shared)} shared")

    def segment_budget_summary(self) -> str:
        """One-line per-segment epsilon/noise digest for run summaries."""
        if not self.segment_budget:
            return "uniform (no per-segment schedule)"
        return ", ".join(
            f"{row['name']} eps={row['epsilon']:.3f} "
            f"sigma={row['sigma']:.3f}"
            for row in self.segment_budget)


def _format_bytes(num_bytes: int) -> str:
    """Human-scale byte count for one-line summaries."""
    if num_bytes >= 1 << 20:
        return f"{num_bytes / (1 << 20):.1f} MiB"
    if num_bytes >= 1 << 10:
        return f"{num_bytes / (1 << 10):.1f} KiB"
    return f"{num_bytes} B"


class CostMeter:
    """Accumulates wall-clock and memory costs across a run."""

    def __init__(self) -> None:
        self.report = CostReport()

    @contextmanager
    def client_training(self):
        """Time one client's local-training phase of a round."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.report.client_train_seconds += time.perf_counter() - start
            self.report.client_train_rounds += 1

    @contextmanager
    def client_defense(self):
        """Time defense work on the client (noise, masking, compression)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.report.client_defense_seconds += time.perf_counter() - start

    @contextmanager
    def server_aggregation(self):
        """Time one server aggregation (including server-side defense)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.report.server_aggregate_seconds += \
                time.perf_counter() - start
            self.report.server_rounds += 1

    def merge_client_round(self, train_seconds: float,
                           defense_seconds: float = 0.0) -> None:
        """Fold one client's round timing into this meter.

        The executor measures each client round where it actually runs
        (possibly a worker process) and the simulation merges the
        deltas here, so the aggregate report means the same thing
        under serial and parallel execution: total client compute, not
        parent wall-clock.
        """
        if train_seconds < 0 or defense_seconds < 0:
            raise ValueError("round timings must be >= 0, got "
                             f"{train_seconds}/{defense_seconds}")
        self.report.client_train_seconds += train_seconds
        self.report.client_defense_seconds += defense_seconds
        self.report.client_train_rounds += 1

    def merge_server_round(self, seconds: float) -> None:
        """Fold one round's server-side reduction time into this meter.

        The streaming aggregate interleaves with client execution (the
        server folds each update as it arrives), so the server can no
        longer wrap the whole round in one timer without also counting
        client training.  It times each fold/drain individually and
        merges the total here, which counts one server round.
        """
        if seconds < 0:
            raise ValueError(f"round timing must be >= 0, got {seconds}")
        self.report.server_aggregate_seconds += seconds
        self.report.server_rounds += 1

    def record_participation(self, *, sampled: int, completed: int,
                             dropped: int, stragglers: int) -> None:
        """Fold one round's fleet participation counts into this meter."""
        counts = (sampled, completed, dropped, stragglers)
        if any(c < 0 for c in counts):
            raise ValueError(
                f"participation counts must be >= 0, got {counts}")
        if completed + dropped + stragglers != sampled:
            raise ValueError(
                f"participation counts must partition the cohort: "
                f"{completed} completed + {dropped} dropped + "
                f"{stragglers} stragglers != {sampled} sampled")
        self.report.clients_sampled += sampled
        self.report.clients_completed += completed
        self.report.clients_dropped += dropped
        self.report.clients_straggled += stragglers

    def record_robustness(self, *, adversarial: int,
                          filtered: int) -> None:
        """Fold one round's adversary/filter counts into this meter."""
        if adversarial < 0 or filtered < 0:
            raise ValueError(
                f"robustness counts must be >= 0, got "
                f"{(adversarial, filtered)}")
        self.report.clients_adversarial += adversarial
        self.report.clients_filtered += filtered

    def record_client_plane(self, *, live_models: int = 0,
                            materializations: int = 0,
                            registry_bytes: int = 0) -> None:
        """Track virtual-client-plane peaks.

        All three are max-merged: with parallel executors each worker
        process runs its own bounded pool, so the honest fleet-wide
        statement is the busiest process's peak (per-process pools are
        what bound memory), not a sum over processes.
        """
        counts = (live_models, materializations, registry_bytes)
        if any(c < 0 for c in counts):
            raise ValueError(
                f"client-plane counts must be >= 0, got {counts}")
        self.report.peak_live_models = max(
            self.report.peak_live_models, int(live_models))
        self.report.model_materializations = max(
            self.report.model_materializations, int(materializations))
        self.report.registry_bytes = max(
            self.report.registry_bytes, int(registry_bytes))

    def record_ipc(self, *, pickled: int = 0, shared: int = 0) -> None:
        """Fold one round's executor-IPC byte counts into this meter."""
        if pickled < 0 or shared < 0:
            raise ValueError(
                f"IPC byte counts must be >= 0, got {(pickled, shared)}")
        self.report.ipc_bytes_pickled += int(pickled)
        self.report.ipc_bytes_shared += int(shared)

    def record_segment_budget(self, rows: list) -> None:
        """Record a layer-wise defense's per-segment budget schedule.

        Last write wins: the schedule is deterministic per run, so
        re-recording each round is idempotent.
        """
        self.report.segment_budget = list(rows)

    def record_defense_state(self, num_bytes: int) -> None:
        """Track the peak extra bytes a defense keeps alive."""
        self.report.defense_state_bytes = max(
            self.report.defense_state_bytes, int(num_bytes))
