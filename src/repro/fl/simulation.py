"""Federated simulation orchestrator.

Wires datasets, clients, server and a defense into the paper's §2.1
round loop and records everything the evaluation needs afterwards: the
global model, each client's transmitted (post-defense) update — the
server-side attacker's view — and each client's personalized model —
what the client actually predicts with.

Client training within a round is delegated to a
:class:`~repro.fl.executor.RoundExecutor` (``config.workers`` selects
serial or process-parallel execution; both are bitwise identical).
The simulation ships each client's round state through the executor
explicitly — global weights out, update/personal weights and defense
state back — and merges the returned cost/traffic deltas, so no
client-side object is mutated behind the orchestrator's back.

Rounds are **streaming**: executor results are consumed lazily and
folded straight into the server's constant-memory accumulator, and the
fleet knobs (``sample_fraction``, ``drop_rate``,
``completion_threshold``) turn the round loop into a partial-
participation, straggler-tolerant pipeline whose defaults reproduce
the pre-fleet trajectories bitwise (see :meth:`run_round`).

The client plane is **virtual** (see ``repro.fl.virtual``): clients
exist as descriptors over a packed shard assignment, full
``FLClient``/``Model`` state is materialized on demand from a pool of
at most ``config.max_materialized`` instances, and per-client residue
(personalized weights) lives in a flat-buffer registry keyed by client
id.  ``simulation.clients`` is the fleet façade — indexing and
iteration still hand back live ``FLClient`` objects — and every
trajectory is bitwise-identical to the eager plane at any pool
capacity.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.data.partition import (
    ClientShards,
    MembershipSplit,
    partition_dirichlet,
    partition_iid,
)
from repro.data.synthetic import Dataset
from repro.fl.behavior import make_behavior_for_config
from repro.fl.client import ClientUpdate
from repro.fl.config import FLConfig
from repro.fl.costs import CostMeter
from repro.fl.executor import ClientTask, client_drops, make_executor
from repro.fl.network import NetworkModel, TrafficMeter, dense_nbytes
from repro.fl.server import FLServer
from repro.fl.virtual import PersonalWeightsRegistry, VirtualClientFleet
from repro.nn.model import Model
from repro.nn.store import WeightsLike, WeightStore, as_store
from repro.privacy.defenses.base import Defense


@dataclass
class RoundRecord:
    """Metrics captured after one FL round."""

    round_index: int
    global_accuracy: float
    mean_client_accuracy: float
    participating: list[int]
    #: Fleet participation: the sampled cohort partitions into clients
    #: whose updates were folded (``completed``), clients that dropped
    #: out before reporting (``dropped``), and survivors that reported
    #: after the round had already closed (``stragglers``, discarded).
    #: At default fleet settings completed == participating and the
    #: other two are empty.
    completed: list[int] = field(default_factory=list)
    dropped: list[int] = field(default_factory=list)
    stragglers: list[int] = field(default_factory=list)
    #: Robustness plane: the sampled cohort's adversarial clients
    #: (per ``config.adversary`` / ``adversary_fraction``) and the
    #: clients this round's robust aggregator rejected outright (norm
    #: clustering only; coordinate-wise rules trim per coordinate and
    #: never reject whole clients).  Both empty at honest/fedavg
    #: defaults.
    adversaries: list[int] = field(default_factory=list)
    filtered: list[int] = field(default_factory=list)


@dataclass
class History:
    """Round-by-round record of a federated run."""

    records: list[RoundRecord] = field(default_factory=list)

    @property
    def final_global_accuracy(self) -> float:
        """Global-model test accuracy after the last evaluated round."""
        if not self.records:
            raise RuntimeError("simulation has not run yet")
        return self.records[-1].global_accuracy

    @property
    def final_client_accuracy(self) -> float:
        """Mean personalized-model test accuracy (Appendix A utility)."""
        if not self.records:
            raise RuntimeError("simulation has not run yet")
        return self.records[-1].mean_client_accuracy


class FederatedSimulation:
    """End-to-end federated run over a membership split."""

    def __init__(self, split: MembershipSplit,
                 model_factory: Callable[[np.random.Generator], Model],
                 config: FLConfig, defense: Defense | None = None, *,
                 dirichlet_alpha: float = math.inf,
                 network: NetworkModel | None = None) -> None:
        self.split = split
        self.model_factory = model_factory
        self.config = config
        self.defense = defense or Defense()
        if self.defense.requires_full_cohort and (
                config.drop_rate > 0.0
                or config.completion_threshold < 1.0):
            raise ValueError(
                f"{type(self.defense).__name__} requires the full "
                f"cohort (pairwise masks do not cancel with missing "
                f"clients) but drop_rate={config.drop_rate} / "
                f"completion_threshold={config.completion_threshold} "
                f"permit short rounds; use drop_rate=0 and "
                f"completion_threshold=1.0, or a different defense")
        self.cost_meter = CostMeter()
        self.traffic_meter = TrafficMeter(network)
        self.rng = np.random.default_rng(config.seed)

        members = split.members
        if math.isinf(dirichlet_alpha):
            shard_list = partition_iid(len(members), config.num_clients,
                                       self.rng)
        else:
            shard_list = partition_dirichlet(
                members.y, config.num_clients, dirichlet_alpha, self.rng,
                num_classes=members.num_classes)
        self.shards = ClientShards.pack(shard_list)

        # Virtual-client plane: ONE template model (the eager plane
        # built N identical copies from the same seeded factory), a
        # flat-buffer registry for every client's personalized weights,
        # and a fleet façade that materializes FLClients on demand from
        # a pool of at most config.max_materialized model instances.
        template = model_factory(np.random.default_rng(config.seed))
        self._layout = template.weight_layout()
        if np.dtype(config.dtype) != self._layout.dtype:
            raise ValueError(
                f"FLConfig.dtype={config.dtype!r} but the model factory "
                f"builds {self._layout.dtype.name} models; pass the "
                f"config dtype through to build_model")
        self.registry = PersonalWeightsRegistry(self._layout)
        self.fleet = VirtualClientFleet(
            members, self.shards, template, config, self.defense,
            registry=self.registry)
        self.clients = self.fleet
        self.server = FLServer(
            initial_weights=template.get_store(),
            config=config,
            defense=self.defense,
            rng=np.random.default_rng((config.seed, 2)),
            cost_meter=self.cost_meter,
        )
        # Robustness plane: which clients are adversarial is a seeded
        # pure function of the config; HONEST keeps the training path
        # byte-for-byte the pre-robustness code.
        self.behavior = make_behavior_for_config(config)
        self.executor = make_executor(
            self.fleet, self.defense, self._layout, config,
            behavior=self.behavior, cost_meter=self.cost_meter)
        self.last_updates: dict[int, WeightsLike] = {}
        self.history = History()

    @property
    def client_data(self):
        """Lazy per-client dataset views (materialized on access)."""
        return self.fleet.datasets

    def client_dataset(self, client_id: int) -> Dataset:
        """Materialize one client's local dataset."""
        return self.fleet.dataset(client_id)

    # ------------------------------------------------------------------
    def run(self) -> History:
        """Execute all configured FL rounds."""
        try:
            for round_index in range(self.config.rounds):
                self.run_round(round_index)
        finally:
            # Reap worker processes; the executor rebuilds its pool
            # lazily if more rounds are run afterwards.
            self.executor.close()
        return self.history

    def run_round(self, round_index: int) -> RoundRecord | None:
        """Execute a single FL round; returns the record if evaluated.

        Fleet-plane round closing: the sampled cohort's dropouts are
        decided up front from their dedicated per-cell streams, the
        round closes once ``completion_threshold`` of the cohort has
        reported (cohort order models arrival order), and survivors
        beyond that point are stragglers whose results are discarded.
        Because the executor streams lazily and the server folds each
        update on arrival, a dense per-cohort update matrix never
        exists and the serial executor never even trains a straggler.
        """
        config = self.config
        cohort = self.server.select_clients(round_index)
        dropped = [cid for cid in cohort
                   if client_drops(config.seed, round_index, cid,
                                   config.drop_rate)]
        dropped_set = set(dropped)
        survivors = [cid for cid in cohort if cid not in dropped_set]
        needed = max(1, math.ceil(
            config.completion_threshold * len(cohort)))
        if len(survivors) < needed:
            raise RuntimeError(
                f"round {round_index} cannot close: {len(survivors)} of "
                f"{len(cohort)} sampled clients completed but "
                f"completion_threshold={config.completion_threshold} "
                f"requires {needed}; lower the threshold or the "
                f"drop rate")
        completed = survivors[:needed]
        stragglers = survivors[needed:]

        self.defense.on_round_start(
            round_index, cohort, self.server.global_weights,
            np.random.default_rng((config.seed, 3, round_index)))
        # Segment-plane accounting: a layer-wise defense publishes its
        # per-segment budget schedule after resolving it against the
        # round's layout.
        segment_report = getattr(self.defense, "segment_report", None)
        if segment_report is not None:
            self.cost_meter.record_segment_budget(segment_report())
        download_bytes = dense_nbytes(self.server.global_weights)
        global_store = as_store(self.server.global_weights)
        round_state = self.defense.export_round_state()
        tasks = [
            ClientTask(
                round_index=round_index,
                client_id=cid,
                global_buffer=global_store.buffer,
                client_state=self.defense.export_client_state(cid),
                round_state=round_state,
                dropped=cid in dropped_set,
            )
            for cid in cohort
        ]

        def stream_updates():
            """Yield each completing client's update, closing the
            round (and abandoning the executor's stream) once the
            threshold is met."""
            folded = 0
            for result in self.executor.iter_round(tasks):
                self.defense.import_client_state(
                    result.client_id, result.client_state)
                self.registry.put(result.client_id,
                                  result.personal_buffer)
                self.cost_meter.merge_client_round(
                    result.train_seconds, result.defense_seconds)
                self.cost_meter.record_defense_state(
                    result.defense_state_bytes)
                self.cost_meter.record_client_plane(
                    live_models=result.pool_live,
                    materializations=result.pool_materializations)
                update = ClientUpdate(
                    client_id=result.client_id,
                    weights=WeightStore(self._layout,
                                        result.update_buffer),
                    num_samples=result.num_samples,
                    train_seconds=result.train_seconds,
                    defense_seconds=result.defense_seconds,
                )
                self.last_updates[update.client_id] = update.weights
                self.traffic_meter.record_exchange(
                    round_index, update.client_id, download_bytes,
                    self.defense.upload_nbytes(update.weights))
                yield update
                folded += 1
                if folded >= needed:
                    break

        # The completion set is fixed before aggregation starts, so the
        # mixing total is known up front and the streaming accumulator
        # folds pre-normalized coefficients — reproducing the dense
        # FedAvg reduction exactly (see fl.aggregation).
        # Weighted straight off the packed shard sizes: no client is
        # materialized to answer "how big is your shard".
        total_samples = float(sum(
            self.shards.num_samples(cid) for cid in completed))
        self.server.aggregate(stream_updates(), expected=len(cohort),
                              total_samples=total_samples)
        # The parent's defense holds the merged per-client state, so
        # its memory footprint is authoritative (worker copies only
        # ever see one client's slice).
        self.cost_meter.record_defense_state(self.defense.state_bytes())
        # Serial rounds run on the parent's pool; parallel rounds on
        # the workers' (reported per result above).  Max-merging both
        # keeps the report meaningful either way.
        self.cost_meter.record_client_plane(
            live_models=self.fleet.live_models,
            materializations=self.fleet.materializations,
            registry_bytes=self.registry.nbytes)
        self.cost_meter.record_participation(
            sampled=len(cohort), completed=len(completed),
            dropped=len(dropped), stragglers=len(stragglers))
        adversaries = sorted(
            set(cohort) & self.behavior.adversaries)
        filtered = list(self.server.last_filtered)
        self.cost_meter.record_robustness(
            adversarial=len(adversaries), filtered=len(filtered))

        if (round_index + 1) % self.config.eval_every and \
                round_index + 1 != self.config.rounds:
            return None
        record = RoundRecord(
            round_index=round_index,
            global_accuracy=self.global_accuracy(),
            mean_client_accuracy=self.mean_client_accuracy(),
            participating=cohort,
            completed=completed,
            dropped=dropped,
            stragglers=stragglers,
            adversaries=adversaries,
            filtered=filtered,
        )
        self.history.records.append(record)
        return record

    # ------------------------------------------------------------------
    # evaluation views
    # ------------------------------------------------------------------
    def model_from_weights(self, weights: WeightsLike) -> Model:
        """Fresh model instance loaded with the given weights."""
        model = self.model_factory(np.random.default_rng(self.config.seed))
        model.set_weights(weights)
        return model

    def global_model(self) -> Model:
        """The server's current global model (the client-side attack
        target: every participant receives these exact weights)."""
        return self.model_from_weights(self.server.global_weights)

    def transmitted_model(self, client_id: int) -> Model:
        """A client's last *transmitted* model — the server-side
        attacker's view of that client (post-defense)."""
        if client_id not in self.last_updates:
            raise KeyError(f"client {client_id} has not participated yet")
        return self.model_from_weights(self.last_updates[client_id])

    def global_accuracy(self) -> float:
        """Global model accuracy on the held-out non-member test set.

        Routed through the fleet's shared eval model (predictions
        depend only on the loaded weights), so evaluation allocates no
        fresh model.
        """
        test = self.split.nonmembers
        return self.fleet.evaluate_weights(
            self.server.global_weights, test.x, test.y)

    def mean_client_accuracy(self) -> float:
        """Mean personalized-model accuracy on the test set (Appendix A).

        Evaluates exactly the clients present in the personal-weights
        registry — the ones that have trained — in ascending id order
        (the eager plane's order), loading each registry row into the
        one shared eval model.
        """
        test = self.split.nonmembers
        scores = [
            self.fleet.evaluate_weights(self.registry.get(client_id),
                                        test.x, test.y)
            for client_id in self.registry.client_ids()
        ]
        if not scores:
            return float("nan")
        return float(np.mean(scores))
