"""Zero-copy shared-memory IPC plane for the parallel executor.

The pickle transport ships every :class:`~repro.fl.executor.ClientTask`
with its own full copy of the global flat buffer and every
:class:`~repro.fl.executor.ClientRoundResult` with two more full
vectors, so a ``C``-client cohort pushes ``~3 * C * num_params``
float64 values through the pool pipe per round — pure dispatch
overhead, since the weight plane is already one process-invariant
contiguous buffer.  This module cuts per-client IPC from
``O(num_params)`` to ``O(descriptor)``:

**Down-link (broadcast segment).**  One ``multiprocessing.
shared_memory`` segment per executor holds the round's global buffer.
The parent writes it once per round and bumps a generation counter;
tasks carry only a tiny :class:`ShmRound` descriptor ``(segment
names, generation, geometry)``.  Workers map the segment and wrap it
in a *read-only* zero-copy ``WeightStore`` view — safe because the
serial executor already hands every task of a round the very same
buffer object, so nothing in the round path mutates the received
global in place (DINAR copies before personalizing, ``set_weights``
copies in).  The round-shared defense state is pickled **once** per
round into a second segment; each worker unpickles it once per
generation (not once per task) and caches it.

**Up-link (result slab ring).**  A ring of ``workers + 1``
preallocated slabs — two rows of ``num_params`` each — receives every
client's ``update_buffer`` / ``personal_buffer`` directly from the
worker; the descriptor result that travels back through the pipe
names only the leased slab.  The parent copies the two rows out
(parent-owned arrays, so downstream consumers keep their lifetime
guarantees), recycles the slab, and yields a fully materialized
``ClientRoundResult`` — the simulation cannot tell the transports
apart.  Straggler tasks abandoned by an early-closed round keep their
slab leased until their future completes; the ring reaps them lazily
and blocks (backpressure) only if every slab is held.

**Lifecycle.**  ``close()`` is idempotent and unlinks every segment;
an ``atexit`` hook covers executors that are never closed explicitly.
Workers attach segments *without* registering them with the
``resource_tracker`` — on Python < 3.13 an attach re-registers the
name, and a worker that later exits (or crashes) would have the
tracker unlink segments the parent still owns (the classic
double-unlink).  Generation overwrite is safe: the parent only
publishes round ``g+1`` after round ``g`` closed, and the only tasks
still reading by then are stragglers whose results are discarded.

The transport is **bitwise invisible**: the mapped view holds the
identical float64/float32 values the pickle path would have copied,
the round state round-trips through the identical ``pickle`` bytes,
and every per-cell RNG stream is untouched — serial, pickle-parallel
and shm-parallel runs are trajectory-identical (pinned by the golden
fixtures and hypothesis-tested across worker counts, defenses and
pool capacities).
"""

from __future__ import annotations

import atexit
import pickle
from collections import deque
from collections.abc import Iterator, Sequence
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.fl.executor import (
    ClientRoundResult,
    ClientTask,
    ParallelExecutor,
    _run_in_worker,
)
from repro.nn.store import Layout

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.fl.behavior import ClientBehavior
    from repro.fl.costs import CostMeter
    from repro.privacy.defenses.base import Defense

try:  # platforms without POSIX/System V shared memory lack the module
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - exotic platforms
    _shm = None


_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL

#: Lazily probed result of :func:`shm_available`.
_AVAILABLE: bool | None = None


def shm_available() -> bool:
    """Whether shared-memory segments can actually be created here.

    Probed once per process by creating and unlinking a 1-byte
    segment; containers that mount no ``/dev/shm`` (or deny shm_open)
    make the executor fall back to the pickle transport.
    """
    global _AVAILABLE
    if _AVAILABLE is None:
        if _shm is None:
            _AVAILABLE = False
        else:
            try:
                probe = _shm.SharedMemory(create=True, size=1)
                probe.close()
                probe.unlink()
                _AVAILABLE = True
            except Exception:
                _AVAILABLE = False
    return _AVAILABLE


def _attach(name: str) -> Any:
    """Attach an existing segment without resource-tracker tracking.

    Python 3.13+ exposes ``track=False``; earlier versions register
    every attach with the resource tracker, so a worker exit would
    have the tracker unlink (or warn about) segments the parent still
    owns.  The fallback briefly no-ops ``register`` around the attach
    — workers are single-threaded, and only workers call this.
    """
    try:
        return _shm.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return _shm.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


@dataclass(frozen=True)
class ShmRound:
    """O(descriptor) handle to one round's shared-memory broadcast.

    This — not the weight vectors — is what a :class:`ClientTask`
    carries through the pool pipe in shm mode.
    """

    #: Segment holding the round's global flat buffer.
    weights_name: str
    #: Segment holding the result slab ring.
    slabs_name: str
    #: Segment holding the round state's pickle bytes (None = no state).
    state_name: str | None
    #: Length of the round state's pickle payload inside ``state_name``.
    state_len: int
    #: Monotonic per-channel round counter; workers key their
    #: unpickled-round-state cache on it.
    generation: int
    num_params: int
    dtype: str
    #: Slab count of the ring (ring geometry, for the worker's view).
    slots: int


class ShmChannel:
    """Parent-side owner of one executor's shared-memory segments.

    Three segments, all created lazily on first use and owned (and
    unlinked) exclusively by the parent:

    * ``weights`` — ``num_params`` values; rewritten every round;
    * ``state``   — the round state's pickle bytes; recreated at a
      doubled capacity (new name) when a round's state outgrows it;
    * ``slabs``   — ``slots`` result slabs of 2 rows x ``num_params``.

    Slab leases are plain parent-side bookkeeping: ``lease`` pops a
    free index (or reports exhaustion with ``None``), ``recycle``
    returns one.  ``read_slab`` copies both rows out so the slab can
    be recycled immediately.
    """

    def __init__(self, slots: int) -> None:
        if slots < 1:
            raise ValueError(f"slab ring needs >= 1 slot, got {slots}")
        self.slots = slots
        self._weights: Any = None
        self._slabs: Any = None
        self._state: Any = None
        self._state_capacity = 0
        self._generation = 0
        self._num_params: int | None = None
        self._dtype: np.dtype | None = None
        self._free: deque[int] = deque()
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def open(self, num_params: int, dtype: np.dtype) -> None:
        """Create the weights + slab segments (idempotent)."""
        if self._weights is not None:
            if num_params != self._num_params \
                    or np.dtype(dtype) != self._dtype:
                raise ValueError(
                    f"channel already open for {self._num_params} "
                    f"params ({self._dtype}), asked to reopen for "
                    f"{num_params} ({np.dtype(dtype)})")
            return
        if _shm is None:  # pragma: no cover - guarded by shm_available
            raise RuntimeError("shared memory is unavailable here")
        self._num_params = int(num_params)
        self._dtype = np.dtype(dtype)
        itemsize = self._dtype.itemsize
        self._weights = _shm.SharedMemory(
            create=True, size=max(1, self._num_params * itemsize))
        self._slabs = _shm.SharedMemory(
            create=True,
            size=max(1, self.slots * 2 * self._num_params * itemsize))
        self._free = deque(range(self.slots))
        self._closed = False
        # Cover executors that are never closed explicitly; close()
        # unregisters, so a clean close leaves no hook behind.
        atexit.register(self.close)

    def close(self) -> None:
        """Unlink every segment (idempotent, crash-tolerant)."""
        if self._closed:
            return
        self._closed = True
        for segment in (self._weights, self._slabs, self._state):
            if segment is None:
                continue
            for release in (segment.close, segment.unlink):
                try:
                    release()
                except FileNotFoundError:
                    # Already unlinked (resource tracker raced us, or
                    # a second close path); the goal state is reached.
                    pass
                except Exception:  # pragma: no cover - best effort
                    pass
        self._weights = self._slabs = self._state = None
        self._state_capacity = 0
        self._free = deque()
        try:
            atexit.unregister(self.close)
        except Exception:  # pragma: no cover - interpreter teardown
            pass

    @property
    def is_open(self) -> bool:
        return self._weights is not None

    def segment_names(self) -> tuple[str, ...]:
        """Names of the currently live segments (tests, leak checks)."""
        return tuple(
            segment.name
            for segment in (self._weights, self._slabs, self._state)
            if segment is not None)

    # ------------------------------------------------------------------
    # down-link: per-round broadcast
    # ------------------------------------------------------------------
    def publish_round(self, buffer: np.ndarray,
                      round_state: Any) -> ShmRound:
        """Write one round's global buffer + round state, bump the
        generation, and return the descriptor tasks will carry."""
        buffer = np.ascontiguousarray(buffer)
        self.open(buffer.size, buffer.dtype)
        self._generation += 1
        view = np.ndarray((self._num_params,), dtype=self._dtype,
                          buffer=self._weights.buf)
        view[:] = buffer
        del view  # drop the buffer export so close() stays legal
        state_name: str | None = None
        state_len = 0
        if round_state is not None:
            payload = pickle.dumps(round_state,
                                   protocol=_PICKLE_PROTOCOL)
            self._ensure_state_capacity(len(payload))
            self._state.buf[:len(payload)] = payload
            state_name = self._state.name
            state_len = len(payload)
        return ShmRound(
            weights_name=self._weights.name,
            slabs_name=self._slabs.name,
            state_name=state_name,
            state_len=state_len,
            generation=self._generation,
            num_params=self._num_params,
            dtype=self._dtype.name,
            slots=self.slots,
        )

    def _ensure_state_capacity(self, needed: int) -> None:
        """Grow the round-state segment by recreation (fresh name).

        Segments cannot resize in place; the old one is unlinked and a
        doubled replacement created.  Stragglers still mapping the old
        segment keep a valid mapping until their process drops it —
        unlink only removes the name.
        """
        if self._state is not None and needed <= self._state_capacity:
            return
        if self._state is not None:
            try:
                self._state.close()
                self._state.unlink()
            except FileNotFoundError:  # pragma: no cover - raced
                pass
        capacity = 1024
        while capacity < needed:
            capacity *= 2
        self._state = _shm.SharedMemory(create=True, size=capacity)
        self._state_capacity = capacity

    # ------------------------------------------------------------------
    # up-link: the result slab ring
    # ------------------------------------------------------------------
    def lease(self) -> int | None:
        """Pop a free slab index, or None when the ring is exhausted."""
        if not self._free:
            return None
        return self._free.popleft()

    def recycle(self, index: int) -> None:
        """Return a slab to the free list."""
        if not 0 <= index < self.slots:
            raise ValueError(f"slab index {index} out of range "
                             f"[0, {self.slots})")
        if index in self._free:
            raise ValueError(f"slab {index} recycled twice")
        self._free.append(index)

    @property
    def free_slabs(self) -> int:
        """How many slabs are currently leasable (tests)."""
        return len(self._free)

    def read_slab(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        """Copy one slab's ``(update, personal)`` rows out.

        The copies are parent-owned, so the slab can be recycled the
        moment this returns while the result's consumers (streaming
        accumulator, personal-weights registry, ``last_updates``) keep
        arrays with ordinary lifetimes.
        """
        rows = self._slab_rows(index)
        update = rows[0].copy()
        personal = rows[1].copy()
        del rows
        return update, personal

    def _slab_rows(self, index: int) -> np.ndarray:
        if self._slabs is None:
            raise RuntimeError("channel is not open")
        if not 0 <= index < self.slots:
            raise ValueError(f"slab index {index} out of range "
                             f"[0, {self.slots})")
        itemsize = self._dtype.itemsize
        offset = index * 2 * self._num_params * itemsize
        return np.ndarray((2, self._num_params), dtype=self._dtype,
                          buffer=self._slabs.buf, offset=offset)

    def write_slab(self, index: int, update: np.ndarray,
                   personal: np.ndarray) -> None:
        """Write both result rows of one slab (parent-side; tests —
        workers go through :func:`_worker_write_slab`)."""
        rows = self._slab_rows(index)
        rows[0] = update
        rows[1] = personal
        del rows


# ----------------------------------------------------------------------
# worker-side attachment cache
# ----------------------------------------------------------------------

#: name -> attached SharedMemory, for the per-executor-constant
#: weights/slab segments (one pool serves exactly one executor, so the
#: cache never grows past a handful of names).
_WORKER_SEGMENTS: dict[str, Any] = {}

#: Single-slot cache of the current round's unpickled state:
#: (weights_name, generation) -> state.  One unpickle per worker per
#: round instead of one per task.
_WORKER_ROUND_STATE: tuple[tuple[str, int], Any] | None = None

#: Single-slot attachment for the (recreatable) state segment.
_WORKER_STATE_SEGMENT: tuple[str, Any] | None = None


def _worker_segment(name: str) -> Any:
    segment = _WORKER_SEGMENTS.get(name)
    if segment is None:
        segment = _attach(name)
        _WORKER_SEGMENTS[name] = segment
    return segment


def _worker_state_bytes(name: str, length: int) -> bytes:
    """Read the round state's pickle payload from its segment."""
    global _WORKER_STATE_SEGMENT
    if _WORKER_STATE_SEGMENT is None \
            or _WORKER_STATE_SEGMENT[0] != name:
        if _WORKER_STATE_SEGMENT is not None:
            try:  # the old segment was outgrown and unlinked
                _WORKER_STATE_SEGMENT[1].close()
            except Exception:  # pragma: no cover - best effort
                pass
        _WORKER_STATE_SEGMENT = (name, _attach(name))
    return bytes(_WORKER_STATE_SEGMENT[1].buf[:length])


def _worker_resolve(ref: ShmRound) -> tuple[np.ndarray, Any]:
    """Map one round's broadcast: the read-only global buffer view
    plus the (cached) unpickled round state."""
    global _WORKER_ROUND_STATE
    segment = _worker_segment(ref.weights_name)
    buffer = np.ndarray((ref.num_params,), dtype=np.dtype(ref.dtype),
                        buffer=segment.buf)
    buffer.flags.writeable = False
    if ref.state_name is None:
        return buffer, None
    key = (ref.weights_name, ref.generation)
    if _WORKER_ROUND_STATE is not None \
            and _WORKER_ROUND_STATE[0] == key:
        return buffer, _WORKER_ROUND_STATE[1]
    state = pickle.loads(_worker_state_bytes(ref.state_name,
                                             ref.state_len))
    _WORKER_ROUND_STATE = (key, state)
    return buffer, state


def _worker_write_slab(ref: ShmRound, index: int, update: np.ndarray,
                       personal: np.ndarray) -> None:
    """Write one result's two rows into its leased slab."""
    segment = _worker_segment(ref.slabs_name)
    dtype = np.dtype(ref.dtype)
    offset = index * 2 * ref.num_params * dtype.itemsize
    rows = np.ndarray((2, ref.num_params), dtype=dtype,
                      buffer=segment.buf, offset=offset)
    rows[0] = update
    rows[1] = personal
    del rows


def _run_in_worker_shm(task: ClientTask) -> ClientRoundResult:
    """Worker entry point of the shm transport.

    Resolves the broadcast descriptor into the shared read-only
    buffer + round state, runs the exact same
    ``execute_client_task`` path as every other executor, then moves
    the two result vectors into the leased slab so only a descriptor
    travels back.
    """
    ref = task.shm
    try:
        buffer, round_state = _worker_resolve(ref)
    except Exception as exc:
        raise RuntimeError(
            f"client {task.client_id} could not map the round "
            f"{task.round_index} shared-memory broadcast: "
            f"{exc!r}") from exc
    inner = replace(task, global_buffer=buffer,
                    round_state=round_state, shm=None)
    result = _run_in_worker(inner)
    try:
        _worker_write_slab(ref, task.slab_index,
                           result.update_buffer, result.personal_buffer)
    except Exception as exc:
        raise RuntimeError(
            f"client {task.client_id} failed writing its round "
            f"{task.round_index} result slab: {exc!r}") from exc
    result.update_buffer = None
    result.personal_buffer = None
    result.slab_index = task.slab_index
    return result


# ----------------------------------------------------------------------
# the executor
# ----------------------------------------------------------------------

class ShmParallelExecutor(ParallelExecutor):
    """:class:`ParallelExecutor` over the zero-copy shm transport.

    Identical fan-out, ordering and failure semantics — results stream
    back strictly in cohort order through the same reorder buffer, a
    worker exception still names its client and round, and a hard
    worker death still raises promptly — but per-client IPC is a
    descriptor, not three weight vectors.  Submission is windowed by
    the slab ring: at most ``workers + 1`` tasks are in flight, which
    also caps how much result memory a round can pin.
    """

    def __init__(self, clients: Any, defense: "Defense",
                 layout: Layout, workers: int,
                 behavior: "ClientBehavior | None" = None,
                 cost_meter: "CostMeter | None" = None) -> None:
        super().__init__(clients, defense, layout, workers,
                         behavior=behavior, cost_meter=cost_meter)
        self._channel = ShmChannel(slots=workers + 1)
        #: Abandoned stragglers still holding a leased slab:
        #: ``(future, slab_index)``; reaped lazily.
        self._stragglers: list[tuple[Any, int]] = []

    # -- lifecycle -----------------------------------------------------
    def warm_up(self) -> None:
        super().warm_up()
        if self.layout is not None:
            self._channel.open(self.layout.num_params,
                               self.layout.dtype)

    def close(self) -> None:
        super().close()
        # The pool is gone (or going): pending stragglers were
        # cancelled or will die with their workers; unlinking now is
        # safe either way because mappings survive the unlink.
        self._stragglers = []
        self._channel.close()

    # -- slab leasing with backpressure --------------------------------
    def _reap_stragglers(self, *, block: bool) -> None:
        """Recycle slabs of abandoned tasks whose futures finished.

        ``block=True`` waits for at least one straggler to finish —
        the backpressure path when the whole ring is leased out.
        Straggler outcomes (results and exceptions alike) are
        discarded: the round that owned them closed long ago.
        """
        if not self._stragglers:
            return
        if block:
            wait([future for future, _ in self._stragglers],
                 return_when=FIRST_COMPLETED)
        keep: list[tuple[Any, int]] = []
        for future, slab in self._stragglers:
            if future.done():
                try:
                    future.result()
                except Exception:
                    pass
                self._channel.recycle(slab)
            else:
                keep.append((future, slab))
        self._stragglers = keep

    def _acquire_slab(self) -> int | None:
        """Lease a slab, reaping stragglers; None when the current
        round itself holds every slab (its own completions will free
        one)."""
        self._reap_stragglers(block=False)
        slab = self._channel.lease()
        if slab is None and self._stragglers:
            self._reap_stragglers(block=True)
            slab = self._channel.lease()
        return slab

    # -- the round loop ------------------------------------------------
    def iter_round(self, tasks: Sequence[ClientTask]
                   ) -> Iterator[ClientRoundResult]:
        """Stream results in task order over the shm transport.

        The round's buffer + state are published once; stripped tasks
        (descriptor only) are submitted in task order as slabs free
        up, completions land in a reorder buffer, and each collected
        result has its slab copied out and recycled before it is
        yielded — so the simulation consumes exactly the pickle
        path's stream.
        """
        pool = self._ensure_pool()
        live = [task for task in tasks if not task.dropped]
        if not live:
            return
        ref = self._channel.publish_round(live[0].global_buffer,
                                          live[0].round_state)
        stripped = [
            replace(task, global_buffer=None, round_state=None, shm=ref)
            for task in live
        ]
        shared_bytes = live[0].global_buffer.nbytes + ref.state_len
        pickled_bytes = 0
        task_probe: int | None = None
        result_probe: int | None = None
        pending = deque(enumerate(stripped))
        futures: dict[Any, int] = {}
        slab_of: dict[int, int] = {}
        buffered: dict[int, ClientRoundResult] = {}
        next_index = 0
        total = len(stripped)
        try:
            while next_index < total:
                while pending:
                    slab = self._acquire_slab()
                    if slab is None:
                        break
                    index, task = pending.popleft()
                    task = replace(task, slab_index=slab)
                    if task_probe is None:
                        task_probe = len(pickle.dumps(
                            task, protocol=_PICKLE_PROTOCOL))
                    pickled_bytes += task_probe
                    slab_of[index] = slab
                    futures[pool.submit(_run_in_worker_shm, task)] = \
                        index
                done, _ = wait(list(futures),
                               return_when=FIRST_COMPLETED)
                for future in done:
                    index = futures.pop(future)
                    try:
                        result = future.result()
                    except BrokenProcessPool as exc:
                        self.close()
                        task = live[index]
                        raise RuntimeError(
                            f"a worker process died while training "
                            f"client {task.client_id} in round "
                            f"{task.round_index} (killed or crashed "
                            f"hard); the pool has been shut down and "
                            f"the round aborted") from exc
                    except Exception:
                        self._channel.recycle(slab_of.pop(index))
                        raise
                    if result_probe is None:
                        result_probe = len(pickle.dumps(
                            result, protocol=_PICKLE_PROTOCOL))
                    pickled_bytes += result_probe
                    update, personal = self._channel.read_slab(
                        slab_of[index])
                    self._channel.recycle(slab_of.pop(index))
                    shared_bytes += update.nbytes + personal.nbytes
                    result.update_buffer = update
                    result.personal_buffer = personal
                    result.slab_index = None
                    buffered[index] = result
                while next_index in buffered:
                    yield buffered.pop(next_index)
                    next_index += 1
        finally:
            for future, index in futures.items():
                slab = slab_of.pop(index)
                if not self._channel.is_open:
                    # The channel was torn down mid-round (worker
                    # crash path): every lease died with it, and
                    # registering stragglers against a future
                    # channel's fresh free list would double-recycle.
                    continue
                if future.cancel():
                    self._channel.recycle(slab)
                else:
                    self._stragglers.append((future, slab))
            if self.cost_meter is not None:
                self.cost_meter.record_ipc(pickled=pickled_bytes,
                                           shared=shared_bytes)
