"""FL server: client selection and defended aggregation.

Store-native: the global model lives as a
:class:`~repro.nn.store.WeightStore`, each round's cohort updates land
as rows of one pooled :class:`~repro.fl.aggregation.UpdateBatch`
matrix (allocated once, reused every round), and aggregation is a
vectorized column reduction over that matrix.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.fl.aggregation import (
    UpdateBatch,
    fedavg,
    scale_weights,
    sum_updates,
)
from repro.fl.client import ClientUpdate
from repro.fl.config import FLConfig
from repro.fl.costs import CostMeter
from repro.nn.store import Layout, WeightsLike, WeightStore, as_store
from repro.privacy.defenses.base import Defense


class FLServer:
    """Holds the global model, selects cohorts, aggregates updates."""

    def __init__(self, initial_weights: WeightsLike, config: FLConfig,
                 defense: Defense, rng: np.random.Generator,
                 cost_meter: CostMeter | None = None) -> None:
        self.global_weights: WeightStore = as_store(initial_weights)
        self.config = config
        self.defense = defense
        self.rng = rng
        self.cost_meter = cost_meter or CostMeter()
        self._momentum_buffer: WeightStore | None = None
        self._batch: UpdateBatch | None = None

    def select_clients(self, round_index: int) -> list[int]:
        """Choose the participating cohort for one round."""
        n = self.config.num_clients
        k = self.config.clients_per_round or n
        if k >= n:
            return list(range(n))
        chosen = self.rng.choice(n, size=k, replace=False)
        return sorted(int(c) for c in chosen)

    def _collect(self, updates: Sequence[ClientUpdate]) -> UpdateBatch:
        """Copy the cohort's updates into the pooled row matrix."""
        first = updates[0].weights
        layout = first.layout if isinstance(first, WeightStore) \
            else Layout.from_layers(first)
        if self._batch is None or self._batch.layout != layout:
            self._batch = UpdateBatch(layout, capacity=len(updates))
        self._batch.reset()
        for update in updates:
            self._batch.add(update.weights)
        return self._batch

    def aggregate(self, updates: Sequence[ClientUpdate]) -> WeightStore:
        """FedAvg the cohort's updates and apply the server-side defense.

        With a ``pre_weighted`` defense (secure aggregation) clients
        transmit ``num_samples * weights + mask``; the masks cancel in
        the plain sum, so dividing by the total sample count recovers
        exactly the FedAvg result without the server ever seeing an
        individual update in the clear.
        """
        if not updates:
            raise ValueError("no updates to aggregate")
        with self.cost_meter.server_aggregation():
            batch = self._collect(updates)
            if self.defense.pre_weighted:
                total = float(sum(u.num_samples for u in updates))
                aggregated = scale_weights(sum_updates(batch), 1.0 / total)
            else:
                aggregated = fedavg(
                    batch, [u.num_samples for u in updates])
            aggregated = self._apply_server_momentum(aggregated)
            aggregated = as_store(
                self.defense.on_aggregate(aggregated, self.rng))
        self.global_weights = aggregated
        return aggregated

    def _apply_server_momentum(self,
                               aggregated: WeightStore) -> WeightStore:
        """FedAvgM (Hsu et al., 2020): accumulate the round delta in a
        server-side momentum buffer (extension; no-op at momentum 0)."""
        beta = self.config.server_momentum
        if beta <= 0.0:
            return aggregated
        delta = aggregated - self.global_weights
        if self._momentum_buffer is None:
            self._momentum_buffer = delta.zeros_like()
        self._momentum_buffer *= beta
        self._momentum_buffer += delta
        return self.global_weights + self._momentum_buffer
