"""FL server: client selection and defended streaming aggregation.

Store-native and fleet-ready: the global model lives as a
:class:`~repro.nn.store.WeightStore`, and :meth:`FLServer.aggregate`
consumes an **iterator** of client updates, folding each arrival into a
constant-memory :class:`~repro.fl.aggregation.StreamingAccumulator` the
moment it lands.  Aggregation-side memory is therefore independent of
cohort size — the property that makes fleet-scale rounds (thousands of
sampled clients) possible.

Cohort selection is two-staged: ``clients_per_round`` picks the
candidate pool (the pre-fleet behavior, drawn from the server RNG so
existing trajectories are untouched), then ``sample_fraction``
sub-samples it cfraction-style from a dedicated per-round stream.

The dense :class:`~repro.fl.aggregation.UpdateBatch` survives only as
the fallback for ``requires_dense`` aggregation rules (order statistics
such as trimmed mean); :meth:`FLServer._collect` pre-sizes it to the
cohort and the batch's ``client_cap`` guards against accidentally
materializing a fleet.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Sequence

import numpy as np

from repro.fl.aggregation import (
    AGGREGATION_RULES,
    StreamingAccumulator,
    UpdateBatch,
    clustered_mean,
    coordinate_median,
    requires_dense,
    scale_weights,
    trimmed_mean,
)
from repro.fl.client import ClientUpdate
from repro.fl.config import FLConfig
from repro.fl.costs import CostMeter
from repro.nn.store import Layout, WeightsLike, WeightStore, as_store
from repro.privacy.defenses.base import Defense

#: Spawn-key tag of the per-round cohort sub-sampling stream.  Kept
#: disjoint from every existing stream family (sim ``(seed)``, cells
#: ``(seed, round, client)``, server ``(seed, 2)``, round-start defense
#: ``(seed, 3, round)``), so enabling ``sample_fraction`` perturbs no
#: pre-fleet draw.
_SAMPLE_STREAM = 5


class FLServer:
    """Holds the global model, selects cohorts, aggregates updates."""

    def __init__(self, initial_weights: WeightsLike, config: FLConfig,
                 defense: Defense, rng: np.random.Generator,
                 cost_meter: CostMeter | None = None) -> None:
        self.global_weights: WeightStore = as_store(initial_weights)
        self.config = config
        self.defense = defense
        self.rng = rng
        self.cost_meter = cost_meter or CostMeter()
        self._momentum_buffer: WeightStore | None = None
        self._batch: UpdateBatch | None = None
        self._accumulator: StreamingAccumulator | None = None
        #: Client ids the last round's robust aggregator rejected
        #: outright (norm clustering); empty for coordinate-wise rules
        #: and for the streaming FedAvg path.
        self.last_filtered: list[int] = []
        self._distance_include: np.ndarray | None = None
        if config.aggregator not in AGGREGATION_RULES:
            raise ValueError(f"unknown aggregator "
                             f"{config.aggregator!r}")
        if config.distance_mask == "obfuscated" and not hasattr(
                defense, "protected_indices"):
            raise ValueError(
                f"distance_mask='obfuscated' needs a defense that "
                f"declares protected_indices (which layers it "
                f"obfuscates), but {type(defense).__name__} does not; "
                f"use --defense dinar or distance_mask='none'")
        if requires_dense(config.aggregator) and defense.pre_weighted:
            raise ValueError(
                f"aggregator {config.aggregator!r} needs every client "
                f"row in the clear, but {type(defense).__name__} "
                f"transmits masked pre-weighted updates — order "
                f"statistics over masked rows are meaningless; use "
                f"aggregator='fedavg' or a non-masking defense")

    def select_clients(self, round_index: int) -> list[int]:
        """Choose the participating cohort for one round.

        ``clients_per_round`` caps the candidate pool exactly as
        before (same server-RNG draws, so pre-fleet cohorts are
        unchanged); ``sample_fraction`` then sub-samples that pool
        from a dedicated ``(seed, 5, round)`` stream.
        """
        n = self.config.num_clients
        k = self.config.clients_per_round or n
        if k >= n:
            cohort = list(range(n))
        else:
            chosen = self.rng.choice(n, size=k, replace=False)
            cohort = sorted(int(c) for c in chosen)
        fraction = self.config.sample_fraction
        if fraction < 1.0:
            m = max(1, int(fraction * len(cohort)))
            sampler = np.random.default_rng(
                (self.config.seed, _SAMPLE_STREAM, round_index))
            picked = sampler.choice(len(cohort), size=m, replace=False)
            cohort = sorted(cohort[int(i)] for i in picked)
        return cohort

    def _mask_include(self) -> np.ndarray | None:
        """The clustering distance's boolean coordinate mask.

        ``distance_mask='obfuscated'`` excludes every coordinate of the
        defense's protected layers — their *full* ranges, because
        DINAR obfuscates whole layers including non-trainable buffers —
        so the distance sees only segments the defense leaves honest.
        Cached: the mask is a pure function of the layout and the
        defense's protected set.
        """
        if self.config.distance_mask != "obfuscated":
            return None
        if self._distance_include is None:
            layout = self.global_weights.layout
            protected = self.defense.protected_indices(layout.num_layers)
            self._distance_include = layout.segmented().mask(
                exclude=protected, full=True)
        return self._distance_include

    def _collect(self, updates: Sequence[ClientUpdate]) -> UpdateBatch:
        """Copy the cohort's updates into the pooled dense row matrix.

        This is the ``requires_dense`` fallback path only; the batch is
        pre-sized to the cohort (no doubling copies mid-round) and its
        ``client_cap`` refuses fleet-scale cohorts.
        """
        first = updates[0].weights
        layout = first.layout if isinstance(first, WeightStore) \
            else Layout.from_layers(first)
        if self._batch is None or self._batch.layout != layout:
            self._batch = UpdateBatch(layout,
                                      capacity=max(1, len(updates)))
        else:
            self._batch.ensure_capacity(len(updates))
        self._batch.reset()
        for update in updates:
            self._batch.add(update.weights)
        return self._batch

    def _acc(self) -> StreamingAccumulator:
        """The lazily created, round-reused streaming accumulator."""
        layout = self.global_weights.layout
        if self._accumulator is None or self._accumulator.layout != layout:
            self._accumulator = StreamingAccumulator(layout)
        return self._accumulator

    def aggregate(self, updates: Iterable[ClientUpdate], *,
                  expected: int | None = None,
                  total_samples: float | None = None) -> WeightStore:
        """FedAvg the arriving updates and apply the server-side defense.

        ``updates`` may be any iterable — in fleet rounds the
        simulation passes a lazy generator and each update is folded
        into the streaming accumulator as the executor yields it, so
        no dense ``(clients, params)`` matrix ever exists.

        ``total_samples`` is the mixing total of the round's completion
        set; when the caller knows it up front (the round-closing
        policy fixes the completion set before aggregation starts) the
        accumulator folds pre-normalized coefficients and reproduces
        the dense FedAvg reduction exactly.  For a plain sequence it is
        computed here; for an iterator without it, the drained sum is
        normalized by the observed weight total (one extra rounding).

        With a ``pre_weighted`` defense (secure aggregation) clients
        transmit ``num_samples * weights + mask``; the masks cancel in
        the plain sum, so dividing by the total sample count of the
        updates *actually folded* recovers exactly the FedAvg result
        without the server ever seeing an individual update in the
        clear.  ``expected`` is the sampled cohort size: a
        ``requires_full_cohort`` defense refuses to finalize when
        fewer updates arrived, because the pairwise masks of the
        missing clients would not cancel and the drained sum would be
        silently corrupt.

        ``config.aggregator`` selects the rule.  FedAvg is this
        streaming path (bitwise-pinned); ``requires_dense`` robust
        rules (trimmed mean, coordinate median, norm clustering)
        dispatch to :meth:`_aggregate_dense`, which materializes the
        arriving updates as a cap-guarded dense matrix first.
        """
        self.last_filtered = []
        if requires_dense(self.config.aggregator):
            return self._aggregate_dense(updates, expected=expected)
        pre = self.defense.pre_weighted
        if isinstance(updates, Sequence):
            if not updates:
                raise ValueError("no updates to aggregate")
            if not pre and total_samples is None:
                total_samples = float(
                    sum(u.num_samples for u in updates))
        start = time.perf_counter()
        accumulator = self._acc()
        accumulator.reset(
            total_weight=None if pre else total_samples)
        reduce_seconds = time.perf_counter() - start
        folded = 0
        samples_total = 0.0
        for update in updates:
            start = time.perf_counter()
            accumulator.fold(
                update.weights,
                weight=1.0 if pre else float(update.num_samples))
            reduce_seconds += time.perf_counter() - start
            folded += 1
            samples_total += float(update.num_samples)
        if folded == 0:
            raise ValueError("no updates to aggregate")
        if self.defense.requires_full_cohort and expected is not None \
                and folded != expected:
            raise RuntimeError(
                f"{type(self.defense).__name__} requires the full "
                f"cohort: {folded} of {expected} sampled clients "
                f"reported, so the pairwise masks do not cancel and "
                f"the aggregate would be corrupt")
        start = time.perf_counter()
        if pre:
            if samples_total <= 0:
                raise ValueError("total sample count must be positive")
            aggregated = scale_weights(accumulator.drain(),
                                       1.0 / samples_total)
        elif total_samples is not None:
            aggregated = accumulator.drain()
        else:
            aggregated = scale_weights(accumulator.drain(),
                                       1.0 / accumulator.weight_sum)
        return self._finalize(aggregated, reduce_seconds, start)

    def _finalize(self, aggregated: WeightsLike, reduce_seconds: float,
                  start: float) -> WeightStore:
        """Server momentum + server-side defense + cost accounting —
        the tail every aggregation rule shares.  ``start`` is the
        ``perf_counter`` stamp of the current timed span."""
        aggregated = self._apply_server_momentum(as_store(aggregated))
        aggregated = as_store(
            self.defense.on_aggregate(aggregated, self.rng))
        reduce_seconds += time.perf_counter() - start
        self.cost_meter.merge_server_round(reduce_seconds)
        self.global_weights = aggregated
        return aggregated

    def _resolve_trim(self, cohort: int) -> int:
        """Per-side trim count for ``trimmed_mean``: explicit
        ``config.extra['trim']`` wins, else tolerate a 25% adversarial
        minority (``max(1, cohort // 4)``)."""
        trim = self.config.extra.get("trim")
        return int(trim) if trim is not None else max(1, cohort // 4)

    def _aggregate_dense(self, updates: Iterable[ClientUpdate], *,
                         expected: int | None = None) -> WeightStore:
        """Robust (``requires_dense``) aggregation over the arriving
        updates.

        The fallback of the fleet plane: arriving updates land as rows
        of the pooled :class:`UpdateBatch`, whose ``client_cap``
        refuses fleet-scale cohorts up front (robust order statistics
        cap out far below fleet scale — raise ``client_cap`` or use
        the streaming FedAvg path).  Short cohorts — after
        ``sample_fraction`` / dropout / straggler discard — either
        aggregate fine (coordinate median), fall back to keeping every
        row (norm clustering below ``CLUSTER_MIN_COHORT``), or raise a
        clear error naming the fleet knobs (trimmed mean with nothing
        left between the trims); never a silent shape mismatch.
        """
        name = self.config.aggregator
        start = time.perf_counter()
        layout = self.global_weights.layout
        if self._batch is None or self._batch.layout != layout:
            self._batch = UpdateBatch(layout)
        batch = self._batch
        if expected is not None:
            batch.ensure_capacity(expected)
        batch.reset()
        reduce_seconds = time.perf_counter() - start
        client_ids: list[int] = []
        num_samples: list[int] = []
        for update in updates:
            start = time.perf_counter()
            batch.add(update.weights)
            reduce_seconds += time.perf_counter() - start
            client_ids.append(update.client_id)
            num_samples.append(update.num_samples)
        n = len(batch)
        if n == 0:
            raise ValueError("no updates to aggregate")
        if self.defense.requires_full_cohort and expected is not None \
                and n != expected:
            raise RuntimeError(
                f"{type(self.defense).__name__} requires the full "
                f"cohort: {n} of {expected} sampled clients reported")
        start = time.perf_counter()
        if name == "trimmed_mean":
            trim = self._resolve_trim(n)
            if 2 * trim >= n:
                raise ValueError(
                    f"trimmed_mean with trim={trim} needs a cohort of "
                    f"at least {2 * trim + 1}, but only {n} update(s) "
                    f"arrived — sample_fraction / drop_rate / "
                    f"completion_threshold shrank the cohort below "
                    f"the trim; lower the fleet knobs, lower "
                    f"extra['trim'], or use coordinate_median")
            aggregated = trimmed_mean(batch, trim=trim)
        elif name == "coordinate_median":
            aggregated = coordinate_median(batch)
        elif name == "clustered":
            diagnostics: dict = {}
            aggregated = clustered_mean(
                batch, num_samples, diagnostics=diagnostics,
                distance_include=self._mask_include())
            self.last_filtered = [client_ids[i]
                                  for i in diagnostics["filtered"]]
        else:  # pragma: no cover - registry/choices kept in sync
            raise ValueError(f"unknown dense aggregator {name!r}")
        return self._finalize(aggregated, reduce_seconds, start)

    def _apply_server_momentum(self,
                               aggregated: WeightStore) -> WeightStore:
        """FedAvgM (Hsu et al., 2020): accumulate the round delta in a
        server-side momentum buffer (extension; no-op at momentum 0)."""
        beta = self.config.server_momentum
        if beta <= 0.0:
            return aggregated
        delta = aggregated - self.global_weights
        if self._momentum_buffer is None:
            self._momentum_buffer = delta.zeros_like()
        self._momentum_buffer *= beta
        self._momentum_buffer += delta
        return self.global_weights + self._momentum_buffer
