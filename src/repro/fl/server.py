"""FL server: client selection and defended aggregation."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.fl.aggregation import fedavg, scale_weights, sum_updates
from repro.fl.client import ClientUpdate
from repro.fl.config import FLConfig
from repro.fl.costs import CostMeter
from repro.nn.model import Weights, weights_zip_map, zeros_like_weights
from repro.privacy.defenses.base import Defense


class FLServer:
    """Holds the global model, selects cohorts, aggregates updates."""

    def __init__(self, initial_weights: Weights, config: FLConfig,
                 defense: Defense, rng: np.random.Generator,
                 cost_meter: CostMeter | None = None) -> None:
        self.global_weights = initial_weights
        self.config = config
        self.defense = defense
        self.rng = rng
        self.cost_meter = cost_meter or CostMeter()
        self._momentum_buffer: Weights | None = None

    def select_clients(self, round_index: int) -> list[int]:
        """Choose the participating cohort for one round."""
        n = self.config.num_clients
        k = self.config.clients_per_round or n
        if k >= n:
            return list(range(n))
        chosen = self.rng.choice(n, size=k, replace=False)
        return sorted(int(c) for c in chosen)

    def aggregate(self, updates: Sequence[ClientUpdate]) -> Weights:
        """FedAvg the cohort's updates and apply the server-side defense.

        With a ``pre_weighted`` defense (secure aggregation) clients
        transmit ``num_samples * weights + mask``; the masks cancel in
        the plain sum, so dividing by the total sample count recovers
        exactly the FedAvg result without the server ever seeing an
        individual update in the clear.
        """
        if not updates:
            raise ValueError("no updates to aggregate")
        with self.cost_meter.server_aggregation():
            if self.defense.pre_weighted:
                total = float(sum(u.num_samples for u in updates))
                aggregated = scale_weights(
                    sum_updates([u.weights for u in updates]), 1.0 / total)
            else:
                aggregated = fedavg(
                    [u.weights for u in updates],
                    [u.num_samples for u in updates])
            aggregated = self._apply_server_momentum(aggregated)
            aggregated = self.defense.on_aggregate(aggregated, self.rng)
        self.global_weights = aggregated
        return aggregated

    def _apply_server_momentum(self, aggregated: Weights) -> Weights:
        """FedAvgM (Hsu et al., 2020): accumulate the round delta in a
        server-side momentum buffer (extension; no-op at momentum 0)."""
        beta = self.config.server_momentum
        if beta <= 0.0:
            return aggregated
        delta = weights_zip_map(np.subtract, aggregated,
                                self.global_weights)
        if self._momentum_buffer is None:
            self._momentum_buffer = zeros_like_weights(delta)
        self._momentum_buffer = weights_zip_map(
            lambda m, d: beta * m + d, self._momentum_buffer, delta)
        return weights_zip_map(np.add, self.global_weights,
                               self._momentum_buffer)
