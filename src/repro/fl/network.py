"""Simulated network transport for the FL message flow.

Cross-silo FL middleware lives or dies on communication: every round
each selected client downloads the global model and uploads an update.
This module models that traffic — bytes moved and the time they would
take on a configurable link — and gives defenses a hook to report
their *encoded* upload size (gradient compression uploads a sparse
delta, not a dense model).

The simulator runs computation natively and only *accounts* network
time; nothing here sleeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.store import WeightsLike, WeightStore


@dataclass(frozen=True)
class LinkSpec:
    """One direction of a network link."""

    latency_seconds: float = 0.02
    bandwidth_bytes_per_second: float = 12.5e6  # ~100 Mbit/s

    def __post_init__(self) -> None:
        if self.latency_seconds < 0:
            raise ValueError(
                f"latency must be >= 0, got {self.latency_seconds}")
        if self.bandwidth_bytes_per_second <= 0:
            raise ValueError(
                f"bandwidth must be positive, "
                f"got {self.bandwidth_bytes_per_second}")

    def transfer_seconds(self, num_bytes: int) -> float:
        """Simulated wall time to move ``num_bytes`` one way."""
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be >= 0, got {num_bytes}")
        return self.latency_seconds \
            + num_bytes / self.bandwidth_bytes_per_second


@dataclass(frozen=True)
class NetworkModel:
    """Up/down link pair between one client and the server."""

    uplink: LinkSpec = field(default_factory=LinkSpec)
    downlink: LinkSpec = field(default_factory=LinkSpec)


def dense_nbytes(weights: WeightsLike) -> int:
    """Bytes of a dense encoding of a weight structure, at its own
    precision — a float32 model uploads half the bytes of a float64 one.

    A :class:`~repro.nn.store.WeightStore` answers straight from its
    layout (O(1)); a nested structure is walked.
    """
    if isinstance(weights, WeightStore):
        return weights.layout.nbytes
    return sum(v.nbytes for layer in weights for v in layer.values())


def sparse_nbytes(weights: WeightsLike,
                  reference: WeightsLike | None = None, *,
                  index_bytes: int = 4) -> int:
    """Bytes of a sparse (index, value) delta encoding.

    Counts the coordinates that differ from ``reference`` (or are
    non-zero when no reference is given); each costs a value at the
    structure's own itemsize plus an index.  This is the wire format
    gradient compression buys its bandwidth savings with.  Store inputs
    are compared over their flat buffers in one vectorized pass; nested
    structures are walked.
    """
    if isinstance(weights, WeightStore):
        if reference is None:
            nonzero = int(np.count_nonzero(weights.buffer))
        else:
            ref = WeightStore.as_store(reference, layout=weights.layout)
            nonzero = int(np.count_nonzero(weights.buffer != ref.buffer))
        return nonzero * (weights.buffer.itemsize + index_bytes)
    total = 0
    for layer_idx, layer in enumerate(weights):
        for key, value in layer.items():
            if reference is None:
                nonzero = int(np.count_nonzero(value))
            else:
                nonzero = int(np.count_nonzero(
                    value != reference[layer_idx][key]))
            total += nonzero * (value.itemsize + index_bytes)
    return total


@dataclass
class TrafficRecord:
    """Traffic of one client in one round."""

    round_index: int
    client_id: int
    download_bytes: int
    upload_bytes: int
    download_seconds: float
    upload_seconds: float


@dataclass
class TrafficReport:
    """Accumulated communication accounting for a federated run."""

    records: list[TrafficRecord] = field(default_factory=list)

    @property
    def total_upload_bytes(self) -> int:
        return sum(r.upload_bytes for r in self.records)

    @property
    def total_download_bytes(self) -> int:
        return sum(r.download_bytes for r in self.records)

    @property
    def total_network_seconds(self) -> float:
        """Simulated time spent on the wire across all transfers."""
        return sum(r.download_seconds + r.upload_seconds
                   for r in self.records)

    def per_round_upload_bytes(self) -> dict[int, int]:
        """Upload bytes aggregated per round index."""
        out: dict[int, int] = {}
        for record in self.records:
            out[record.round_index] = out.get(record.round_index, 0) \
                + record.upload_bytes
        return out


class TrafficMeter:
    """Accounts the per-round FL message exchange."""

    def __init__(self, network: NetworkModel | None = None) -> None:
        self.network = network or NetworkModel()
        self.report = TrafficReport()

    def record_exchange(self, round_index: int, client_id: int,
                        download_bytes: int,
                        upload_bytes: int) -> TrafficRecord:
        """Record one client's download+upload for a round."""
        record = TrafficRecord(
            round_index=round_index,
            client_id=client_id,
            download_bytes=download_bytes,
            upload_bytes=upload_bytes,
            download_seconds=self.network.downlink.transfer_seconds(
                download_bytes),
            upload_seconds=self.network.uplink.transfer_seconds(
                upload_bytes),
        )
        self.report.records.append(record)
        return record
