"""Datasets and federated partitioning.

The paper's six public datasets are replaced by seeded synthetic
generators with matched shapes (see DESIGN.md §2 for the substitution
rationale); this package also implements the paper's data protocol:
half of each dataset is the attacker's prior knowledge, the rest splits
80/20 into member (training) and non-member (test) sets, and the member
set is partitioned across FL clients IID or with a Dirichlet(alpha)
distribution (§5.1, §5.3, §5.8).
"""

from repro.data.datasets import (
    DATASET_SPECS,
    DatasetSpec,
    available_datasets,
    load_dataset,
)
from repro.data.loader import iterate_batches
from repro.data.partition import (
    MembershipSplit,
    partition_dirichlet,
    partition_iid,
    split_for_membership,
)
from repro.data.synthetic import (
    Dataset,
    synthetic_audio,
    synthetic_images,
    synthetic_tabular,
)

__all__ = [
    "DATASET_SPECS",
    "Dataset",
    "DatasetSpec",
    "MembershipSplit",
    "available_datasets",
    "iterate_batches",
    "load_dataset",
    "partition_dirichlet",
    "partition_iid",
    "split_for_membership",
    "synthetic_audio",
    "synthetic_images",
    "synthetic_tabular",
]
