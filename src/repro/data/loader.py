"""Mini-batch iteration with seeded shuffling."""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np


def iterate_batches(x: np.ndarray, y: np.ndarray, batch_size: int,
                    rng: np.random.Generator | None = None, *,
                    shuffle: bool = True,
                    drop_last: bool = False
                    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(batch_x, batch_y)`` pairs over one epoch.

    Parameters
    ----------
    rng:
        Required when ``shuffle=True`` so epochs are reproducible.
    drop_last:
        Discard a trailing partial batch (useful for batch-norm nets).
    """
    if len(x) != len(y):
        raise ValueError(f"length mismatch: {len(x)} vs {len(y)}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    n = len(x)
    if shuffle:
        if rng is None:
            raise ValueError("shuffle=True requires an rng")
        order = rng.permutation(n)
    else:
        order = np.arange(n)
    for start in range(0, n, batch_size):
        idx = order[start:start + batch_size]
        if drop_last and len(idx) < batch_size:
            return
        yield x[idx], y[idx]
