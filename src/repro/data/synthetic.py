"""Seeded synthetic dataset generators.

Membership inference succeeds when models memorize their training set,
which depends on the *statistical* shape of the data — per-class sample
count, intra-class noise, class count — not on semantic content.  Each
generator therefore produces class-prototype data with a controllable
noise level: prototypes define the classes, noise controls how much a
model must memorize individual samples to fit them.

Every generator draws in double precision with a fixed stream layout —
``dtype`` only casts the finished feature tensor, so float32 and float64
datasets are the same data at different precisions (and the float64 path
consumes the generator exactly as before the dtype knob existed).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Dataset:
    """An in-memory supervised dataset.

    Attributes
    ----------
    x:
        Features; shape ``(n, *feature_shape)`` — flat for tabular,
        ``(n, c, h, w)`` for images, ``(n, c, length)`` for audio.
    y:
        Integer class labels, shape ``(n,)``.
    """

    name: str
    x: np.ndarray
    y: np.ndarray
    num_classes: int
    data_type: str = "tabular"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"{self.name}: {len(self.x)} features vs {len(self.y)} labels")
        if len(self.y) and (self.y.min() < 0
                            or self.y.max() >= self.num_classes):
            raise ValueError(
                f"{self.name}: labels outside [0, {self.num_classes})")

    def __len__(self) -> int:
        return len(self.y)

    @property
    def feature_shape(self) -> tuple[int, ...]:
        """Shape of a single sample (without the batch axis)."""
        return self.x.shape[1:]

    def subset(self, indices: np.ndarray, *,
               name: str | None = None) -> "Dataset":
        """New dataset restricted to ``indices`` (copies the arrays).

        Fancy indexing with an index *array* already returns fresh
        arrays, so this is exactly one copy of each — the virtual
        client plane materializes subsets on demand and an extra
        transient copy here would double its peak.
        """
        indices = np.asarray(indices)
        return Dataset(
            name=name or self.name,
            x=self.x[indices],
            y=self.y[indices],
            num_classes=self.num_classes,
            data_type=self.data_type,
            metadata=dict(self.metadata),
        )

    def class_counts(self) -> np.ndarray:
        """Per-class sample counts, length ``num_classes``."""
        return np.bincount(self.y, minlength=self.num_classes)


def _balanced_labels(rng: np.random.Generator, n_samples: int,
                     n_classes: int) -> np.ndarray:
    """Labels covering every class as evenly as n_samples allows."""
    base = np.tile(np.arange(n_classes), n_samples // n_classes + 1)
    labels = base[:n_samples].copy()
    rng.shuffle(labels)
    return labels


def synthetic_tabular(rng: np.random.Generator, n_samples: int,
                      n_features: int, n_classes: int, *,
                      binary: bool = True, noise: float = 0.2,
                      dtype: np.dtype | str = np.float64,
                      name: str = "tabular") -> Dataset:
    """Class-prototype tabular data (Purchase100/Texas100 stand-in).

    Each class has a random binary prototype; samples copy their class
    prototype and flip each feature independently with probability
    ``noise``.  With ``binary=False``, Gaussian prototypes plus
    ``noise``-scaled Gaussian perturbations are used instead.
    """
    if n_samples < 1 or n_features < 1 or n_classes < 2:
        raise ValueError("need n_samples>=1, n_features>=1, n_classes>=2")
    y = _balanced_labels(rng, n_samples, n_classes)
    if binary:
        prototypes = (rng.random((n_classes, n_features)) < 0.5)
        x = prototypes[y].astype(np.float64)
        flips = rng.random((n_samples, n_features)) < noise
        x[flips] = 1.0 - x[flips]
    else:
        prototypes = rng.standard_normal((n_classes, n_features))
        x = prototypes[y] + noise * rng.standard_normal(
            (n_samples, n_features))
    return Dataset(name=name, x=x.astype(dtype, copy=False), y=y,
                   num_classes=n_classes, data_type="tabular")


def synthetic_images(rng: np.random.Generator, n_samples: int,
                     shape: tuple[int, int, int], n_classes: int, *,
                     noise: float = 0.35,
                     dtype: np.dtype | str = np.float64,
                     name: str = "images") -> Dataset:
    """Class-prototype image tensors (CIFAR/GTSRB/CelebA stand-in).

    Prototypes are smooth random fields (low-resolution noise upsampled
    with ``np.kron``), mimicking the spatial correlation of natural
    images; samples add white noise on top.
    """
    channels, height, width = shape
    if height % 4 or width % 4:
        raise ValueError(f"image sides must be divisible by 4, got {shape}")
    y = _balanced_labels(rng, n_samples, n_classes)
    low = rng.standard_normal((n_classes, channels, height // 4, width // 4))
    prototypes = np.kron(low, np.ones((1, 1, 4, 4)))
    x = prototypes[y] + noise * rng.standard_normal(
        (n_samples, channels, height, width))
    return Dataset(name=name, x=x.astype(dtype, copy=False), y=y,
                   num_classes=n_classes, data_type="image")


def synthetic_audio(rng: np.random.Generator, n_samples: int, length: int,
                    n_classes: int, *, noise: float = 0.4,
                    n_harmonics: int = 3,
                    dtype: np.dtype | str = np.float64,
                    name: str = "audio") -> Dataset:
    """Class-prototype waveforms (Speech Commands stand-in).

    Each class is a fixed mixture of ``n_harmonics`` sinusoids with
    class-specific frequencies and phases ("a word"); samples apply a
    random amplitude jitter and additive noise ("a speaker").
    """
    y = _balanced_labels(rng, n_samples, n_classes)
    t = np.arange(length) / length
    freqs = rng.uniform(2.0, length / 4.0, size=(n_classes, n_harmonics))
    phases = rng.uniform(0.0, 2 * np.pi, size=(n_classes, n_harmonics))
    amps = rng.uniform(0.5, 1.0, size=(n_classes, n_harmonics))
    prototypes = np.zeros((n_classes, length))
    for h in range(n_harmonics):
        prototypes += amps[:, h, None] * np.sin(
            2 * np.pi * freqs[:, h, None] * t[None, :] + phases[:, h, None])
    jitter = rng.uniform(0.8, 1.2, size=(n_samples, 1))
    x = jitter * prototypes[y] + noise * rng.standard_normal(
        (n_samples, length))
    return Dataset(name=name, x=x[:, None, :].astype(dtype, copy=False),
                   y=y, num_classes=n_classes, data_type="audio")
