"""Dataset registry mirroring the paper's Table 2.

Each entry records both the paper's dataset shape and the CPU-scaled
synthetic shape built here, plus the model family the paper pairs with
it.  ``load_dataset(name)`` produces a seeded synthetic dataset ready
for :func:`repro.data.partition.split_for_membership`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.synthetic import (
    Dataset,
    synthetic_audio,
    synthetic_images,
    synthetic_tabular,
)


@dataclass(frozen=True)
class DatasetSpec:
    """Inventory row: paper shape vs. built shape (Table 2)."""

    name: str
    paper_records: int
    paper_features: int
    paper_classes: int
    paper_model: str
    data_type: str          # "tabular" | "image" | "audio"
    model_name: str         # key into repro.models registry
    default_samples: int    # CPU-scaled record count
    shape: tuple            # built per-sample feature shape
    num_classes: int        # built class count (kept equal to paper)
    noise: float            # generator noise level


DATASET_SPECS: dict[str, DatasetSpec] = {
    "purchase100": DatasetSpec(
        name="purchase100", paper_records=97_324, paper_features=600,
        paper_classes=100, paper_model="6-layer FCNN", data_type="tabular",
        model_name="fcnn", default_samples=6000, shape=(600,),
        num_classes=100, noise=0.30),
    "texas100": DatasetSpec(
        name="texas100", paper_records=67_330, paper_features=6_170,
        paper_classes=100, paper_model="6-layer FCNN", data_type="tabular",
        model_name="fcnn", default_samples=6000, shape=(1024,),
        num_classes=100, noise=0.32),
    "cifar10": DatasetSpec(
        name="cifar10", paper_records=50_000, paper_features=3_072,
        paper_classes=10, paper_model="ResNet20", data_type="image",
        model_name="resnet", default_samples=800, shape=(3, 8, 8),
        num_classes=10, noise=2.6),
    "cifar100": DatasetSpec(
        name="cifar100", paper_records=50_000, paper_features=3_072,
        paper_classes=100, paper_model="ResNet20", data_type="image",
        model_name="resnet", default_samples=2400, shape=(3, 8, 8),
        num_classes=100, noise=1.0),
    "gtsrb": DatasetSpec(
        name="gtsrb", paper_records=51_389, paper_features=6_912,
        paper_classes=43, paper_model="VGG11", data_type="image",
        model_name="vgg", default_samples=3200, shape=(3, 8, 8),
        num_classes=43, noise=0.7),
    "celeba": DatasetSpec(
        name="celeba", paper_records=202_599, paper_features=4_096,
        paper_classes=32, paper_model="VGG11", data_type="image",
        model_name="vgg", default_samples=1600, shape=(3, 8, 8),
        num_classes=32, noise=1.5),
    "speech_commands": DatasetSpec(
        name="speech_commands", paper_records=64_727, paper_features=16_000,
        paper_classes=36, paper_model="M18", data_type="audio",
        model_name="audio", default_samples=1600, shape=(1, 256),
        num_classes=36, noise=0.4),
}


def available_datasets() -> list[str]:
    """Dataset names accepted by :func:`load_dataset`."""
    return sorted(DATASET_SPECS)


def load_dataset(name: str, rng: np.random.Generator | int | None = None, *,
                 n_samples: int | None = None,
                 noise: float | None = None,
                 dtype: np.dtype | str = np.float64) -> Dataset:
    """Build the synthetic stand-in for a paper dataset.

    Parameters
    ----------
    rng:
        Generator, seed, or None (seed 0) — the dataset is a pure
        function of the seed.
    n_samples:
        Override the CPU-scaled record count.
    noise:
        Override the generator noise (higher noise widens the
        generalization gap a model must close by memorizing).
    dtype:
        Feature precision; the same seeded data cast to float32 or kept
        at the float64 default.
    """
    try:
        spec = DATASET_SPECS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; known: {available_datasets()}"
        ) from None
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(0 if rng is None else rng)
    n = n_samples or spec.default_samples
    level = spec.noise if noise is None else noise
    if spec.data_type == "tabular":
        ds = synthetic_tabular(rng, n, spec.shape[0], spec.num_classes,
                               noise=level, dtype=dtype, name=name)
    elif spec.data_type == "image":
        ds = synthetic_images(rng, n, spec.shape, spec.num_classes,
                              noise=level, dtype=dtype, name=name)
    elif spec.data_type == "audio":
        ds = synthetic_audio(rng, n, spec.shape[1], spec.num_classes,
                             noise=level, dtype=dtype, name=name)
    else:  # pragma: no cover - registry is static
        raise ValueError(f"bad data_type {spec.data_type!r}")
    ds.metadata["spec"] = spec
    return ds
