"""Data preprocessing transforms (§4.1's "classical data preprocessing
techniques").

Transforms follow the fit/apply split every leakage-aware pipeline
needs: statistics are fit on the training (member) pool only, then
applied everywhere — fitting on the test pool would itself leak
membership information into the model.
"""

from __future__ import annotations

import numpy as np

from repro.data.synthetic import Dataset


class Standardizer:
    """Zero-mean unit-variance scaling per feature."""

    def __init__(self) -> None:
        self.mean: np.ndarray | None = None
        self.std: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "Standardizer":
        if len(x) == 0:
            raise ValueError("cannot fit on an empty array")
        self.mean = x.mean(axis=0)
        self.std = x.std(axis=0) + 1e-8
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean is None:
            raise RuntimeError("fit() before transform()")
        return (x - self.mean) / self.std

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean is None:
            raise RuntimeError("fit() before inverse_transform()")
        return x * self.std + self.mean


class MinMaxScaler:
    """Scale features into [0, 1] based on fitted extrema."""

    def __init__(self) -> None:
        self.low: np.ndarray | None = None
        self.span: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "MinMaxScaler":
        if len(x) == 0:
            raise ValueError("cannot fit on an empty array")
        self.low = x.min(axis=0)
        self.span = x.max(axis=0) - self.low + 1e-12
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.low is None:
            raise RuntimeError("fit() before transform()")
        return (x - self.low) / self.span


def standardize_split(members: Dataset, *others: Dataset
                      ) -> tuple[Dataset, ...]:
    """Standardize a member pool and apply the same statistics to the
    other pools (non-members, attacker data, ...)."""
    flat = members.x.reshape(len(members), -1)
    scaler = Standardizer().fit(flat)

    def apply(ds: Dataset) -> Dataset:
        scaled = scaler.transform(ds.x.reshape(len(ds), -1))
        return Dataset(
            name=f"{ds.name}/std",
            x=scaled.reshape(ds.x.shape),
            y=ds.y.copy(),
            num_classes=ds.num_classes,
            data_type=ds.data_type,
            metadata=dict(ds.metadata),
        )

    return tuple(apply(ds) for ds in (members, *others))
