"""Membership splits and federated partitioning.

Implements the paper's data protocol (§5.1): half of each dataset is
the attacker's prior knowledge for shadow training, the other half
splits 80/20 into the member (training) and non-member (test) pools.
The member pool is then partitioned across FL clients — disjoint IID
splits (§5.3) or Dirichlet(alpha) non-IID splits (§5.8).
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from repro.data.synthetic import Dataset


@dataclass
class MembershipSplit:
    """The three disjoint pools of the paper's evaluation protocol."""

    members: Dataset     # used for FL training — the MIA positives
    nonmembers: Dataset  # held-out test set — the MIA negatives
    attacker: Dataset    # attacker's prior knowledge (shadow data)

    @property
    def num_classes(self) -> int:
        return self.members.num_classes


def split_for_membership(dataset: Dataset, rng: np.random.Generator, *,
                         attacker_fraction: float = 0.5,
                         train_fraction: float = 0.8) -> MembershipSplit:
    """Split per §5.1: attacker half, then 80/20 member/non-member."""
    if not 0.0 < attacker_fraction < 1.0:
        raise ValueError(f"attacker_fraction must be in (0,1), "
                         f"got {attacker_fraction}")
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(f"train_fraction must be in (0,1), "
                         f"got {train_fraction}")
    n = len(dataset)
    order = rng.permutation(n)
    n_attacker = int(n * attacker_fraction)
    attacker_idx = order[:n_attacker]
    rest = order[n_attacker:]
    n_members = int(len(rest) * train_fraction)
    return MembershipSplit(
        members=dataset.subset(rest[:n_members],
                               name=f"{dataset.name}/members"),
        nonmembers=dataset.subset(rest[n_members:],
                                  name=f"{dataset.name}/nonmembers"),
        attacker=dataset.subset(attacker_idx,
                                name=f"{dataset.name}/attacker"),
    )


@dataclass(frozen=True)
class ClientShards:
    """A fleet's shard assignment in CSR form: two flat arrays.

    A list of per-client index arrays costs one ndarray object (~100
    bytes of header) per client — O(num_clients) Python objects even
    before any model exists, which is exactly what the virtual-client
    plane forbids.  Packing the shards as one concatenated ``indices``
    array plus an ``offsets`` array makes the whole assignment two
    allocations whose size is O(total_samples) + O(num_clients) * 8
    bytes, and every per-client view is a zero-copy slice.
    """

    #: All clients' sample indices, concatenated client 0 first.
    indices: np.ndarray
    #: ``offsets[i]:offsets[i+1]`` delimits client ``i``'s shard.
    offsets: np.ndarray

    @classmethod
    def pack(cls, shards: Sequence[np.ndarray]) -> "ClientShards":
        """Pack per-client index arrays (``partition_iid`` /
        ``partition_dirichlet`` output) into CSR form."""
        sizes = np.fromiter((len(s) for s in shards), dtype=np.int64,
                            count=len(shards))
        offsets = np.zeros(len(shards) + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        if shards:
            indices = np.concatenate(
                [np.asarray(s, dtype=np.int64) for s in shards])
        else:
            indices = np.zeros(0, dtype=np.int64)
        return cls(indices=indices, offsets=offsets)

    def __len__(self) -> int:
        return len(self.offsets) - 1

    def __iter__(self) -> Iterator[np.ndarray]:
        for i in range(len(self)):
            yield self.shard(i)

    def _check(self, client_id: int) -> int:
        n = len(self)
        if not 0 <= client_id < n:
            raise IndexError(
                f"client_id {client_id} out of range for {n} shards")
        return int(client_id)

    def shard(self, client_id: int) -> np.ndarray:
        """Client ``client_id``'s sample indices (zero-copy view)."""
        i = self._check(client_id)
        return self.indices[self.offsets[i]:self.offsets[i + 1]]

    def num_samples(self, client_id: int) -> int:
        """Shard size without materializing the view."""
        i = self._check(client_id)
        return int(self.offsets[i + 1] - self.offsets[i])

    @property
    def total_samples(self) -> int:
        return int(self.offsets[-1])

    @property
    def nbytes(self) -> int:
        """Bytes of the packed assignment (the whole fleet's cost)."""
        return int(self.indices.nbytes + self.offsets.nbytes)


def partition_iid(n_samples: int, num_clients: int,
                  rng: np.random.Generator) -> list[np.ndarray]:
    """Disjoint, equal-size random shards (the paper's §5.3 setting)."""
    if num_clients < 1:
        raise ValueError(f"num_clients must be >= 1, got {num_clients}")
    if n_samples < num_clients:
        raise ValueError(
            f"{n_samples} samples cannot cover {num_clients} clients")
    order = rng.permutation(n_samples)
    return [shard for shard in np.array_split(order, num_clients)]


def partition_dirichlet(labels: np.ndarray, num_clients: int, alpha: float,
                        rng: np.random.Generator, *,
                        num_classes: int | None = None,
                        min_samples: int = 1) -> list[np.ndarray]:
    """Dirichlet(alpha) label-skew partition (§5.8).

    Lower ``alpha`` concentrates each class on fewer clients
    (more non-IID); ``alpha=math.inf`` degenerates to IID.
    Re-draws until every client has at least ``min_samples`` samples.
    """
    if num_clients < 1:
        raise ValueError(f"num_clients must be >= 1, got {num_clients}")
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    if math.isinf(alpha):
        return partition_iid(len(labels), num_clients, rng)
    k = num_classes or int(labels.max()) + 1
    for _ in range(100):
        shards: list[list[int]] = [[] for _ in range(num_clients)]
        for cls in range(k):
            cls_idx = np.flatnonzero(labels == cls)
            if len(cls_idx) == 0:
                continue
            rng.shuffle(cls_idx)
            proportions = rng.dirichlet([alpha] * num_clients)
            counts = np.floor(proportions * len(cls_idx)).astype(int)
            counts[-1] = len(cls_idx) - counts[:-1].sum()
            start = 0
            for client, count in enumerate(counts):
                shards[client].extend(cls_idx[start:start + count])
                start += count
        if min(len(s) for s in shards) >= min_samples:
            return [np.array(sorted(s), dtype=np.int64) for s in shards]
    raise RuntimeError(
        f"could not draw a Dirichlet({alpha}) partition giving every one of "
        f"{num_clients} clients >= {min_samples} samples in 100 attempts")
