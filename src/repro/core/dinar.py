"""DINAR: the paper's contribution (§4, Algorithm 1).

DINAR is a client-side defense with three moving parts per FL round:

* **Model personalization** (§4.3, Alg. 1 lines 1–6): on receiving the
  global model, the client restores its stored, non-obfuscated private
  layer ``p`` and uses the result as its personalized model.
* **Adaptive model training** (§4.4, Alg. 1 lines 7–14): local epochs
  with Adagrad-style adaptive gradient descent (``G += g**2``,
  ``theta -= lr * g / sqrt(G + 1e-5)``), rebuilt with ``G = 0`` each
  round.
* **Model obfuscation** (§4.2, Alg. 1 lines 15–17): before upload, the
  client stores its private layer ``p`` as ``theta_p*`` and replaces
  the transmitted copy with random values.

Initialization (§4.1) — choosing ``p`` — is a one-off distributed vote
over per-client layer-sensitivity measurements; see
:func:`dinar_initialization`.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.consensus import ConsensusResult, agree_on_private_layer
from repro.core.sensitivity import LayerSensitivity, layer_divergences
from repro.data.loader import iterate_batches
from repro.data.synthetic import Dataset
from repro.nn.dtypes import standard_normal
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import Model
from repro.nn.optim import Optimizer, make_optimizer
from repro.nn.store import LayoutEntry, WeightsLike, WeightStore, as_store
from repro.privacy.defenses.base import Defense


class _StoredLayer(dict):
    """A protected layer snapshot: flat backing copy + shaped views.

    Reads like the legacy ``{key: array}`` dict (checkpoints and tests
    access stored layers that way) while keeping one contiguous
    ``flat`` vector so personalization restores the layer with a single
    slice assignment.
    """

    __slots__ = ("flat", "entries")

    def __init__(self, flat: np.ndarray,
                 entries: Sequence[LayoutEntry]) -> None:
        super().__init__()
        self.flat = flat
        self.entries = tuple(entries)
        base = entries[0].offset
        for e in entries:
            lo = e.offset - base
            self[e.key] = flat[lo:lo + e.size].reshape(e.shape)

    def __reduce__(self):
        # The dict payload is views into ``flat``; rebuilding from
        # ``(flat, entries)`` round-trips through pickle without
        # duplicating the buffer (executor ships these to workers).
        return (_StoredLayer, (self.flat, self.entries))


class DINAR(Defense):
    """The DINAR privacy-protection pipeline (Algorithm 1)."""

    name = "dinar"

    def __init__(self, private_layer: int = -2, *,
                 obfuscation: str = "scaled",
                 obfuscation_scale: float = 3.0,
                 optimizer: str = "adagrad",
                 lr: float | None = 0.005,
                 personalize: bool = True,
                 extra_layers: Sequence[int] = ()) -> None:
        """
        Parameters
        ----------
        private_layer:
            Index ``p`` of the privacy-sensitive layer among the
            model's trainable layers.  Negative indices count from the
            back; the default ``-2`` is the penultimate layer the
            paper's consensus typically converges to.  Use
            :func:`dinar_initialization` to determine it empirically.
        obfuscation:
            ``"scaled"`` (default) replaces layer ``p`` with Gaussian
            random values whose std matches the replaced array's own
            std — random values indistinguishable in magnitude from a
            real layer, so the protected model's outputs stay in a
            normal range (the "similar and low" loss distributions of
            Fig. 3).  ``"gaussian"`` uses plain N(0, scale^2) values.
        obfuscation_scale:
            Std multiplier for the random values replacing layer ``p``.
        optimizer:
            Local-training optimizer name; ``"adagrad"`` is Algorithm 1,
            the others back the Fig. 11 ablation.
        lr:
            Learning rate for the adaptive optimizer.  Adaptive methods
            take near-sign-sized early steps, so they need a smaller
            rate than the plain-SGD baseline; None inherits the
            experiment's configured rate.
        personalize:
            Disable to ablate the personalization step (§4.3): the
            client then trains from the received — obfuscated — global
            layer instead of restoring its own, which collapses
            utility and shows personalization is load-bearing.
        extra_layers:
            Additional layer indices to obfuscate (the Fig. 5
            multi-layer study); empty for standard DINAR.
        """
        if obfuscation_scale <= 0:
            raise ValueError(
                f"obfuscation_scale must be positive, "
                f"got {obfuscation_scale}")
        if obfuscation not in ("scaled", "gaussian"):
            raise ValueError(
                f"unknown obfuscation mode {obfuscation!r}; "
                "known: scaled, gaussian")
        self.obfuscation = obfuscation
        self.personalize = personalize
        self.private_layer = private_layer
        self.obfuscation_scale = obfuscation_scale
        self.optimizer_name = optimizer
        self.lr = lr
        self.extra_layers = tuple(extra_layers)
        self._stored: dict[int, dict[int, dict[str, np.ndarray]]] = {}

    # ------------------------------------------------------------------
    def _resolve(self, index: int, num_layers: int) -> int:
        resolved = index if index >= 0 else num_layers + index
        if not 0 <= resolved < num_layers:
            raise IndexError(
                f"private layer {index} out of range for a model with "
                f"{num_layers} trainable layers")
        return resolved

    def protected_indices(self, num_layers: int) -> list[int]:
        """All obfuscated layer indices, resolved and sorted."""
        indices = {self._resolve(self.private_layer, num_layers)}
        indices.update(
            self._resolve(i, num_layers) for i in self.extra_layers)
        return sorted(indices)

    # ------------------------------------------------------------------
    # Algorithm 1, lines 1-6: model personalization
    # ------------------------------------------------------------------
    def on_receive_global(self, client_id: int,
                          weights: WeightsLike) -> WeightsLike:
        stored = self._stored.get(client_id)
        if stored is None or not self.personalize:
            return weights  # first round / ablated: nothing to restore
        personalized = as_store(weights, copy=True)
        for layer_idx, saved in stored.items():
            if isinstance(saved, _StoredLayer):
                # the whole layer is one contiguous coordinate range
                personalized.layer_flat(layer_idx)[:] = saved.flat
            else:
                # plain dict, e.g. a layer restored from a checkpoint
                for key, value in saved.items():
                    personalized.view(layer_idx, key)[:] = value
        return personalized

    # ------------------------------------------------------------------
    # Algorithm 1, lines 7-14: adaptive model training
    # ------------------------------------------------------------------
    def make_optimizer(self, model: Model, lr: float,
                       rng: np.random.Generator | None = None) -> Optimizer:
        # Rebuilt every round by the client: G starts at 0 (line 8).
        return make_optimizer(
            self.optimizer_name, model, self.lr if self.lr else lr)

    # ------------------------------------------------------------------
    # Algorithm 1, lines 15-17: model obfuscation
    # ------------------------------------------------------------------
    def on_send_update(self, client_id: int, weights: WeightsLike,
                       num_samples: int,
                       rng: np.random.Generator) -> WeightStore:
        update = as_store(weights)
        out = update.copy()
        protected = self.protected_indices(len(out))
        stored: dict[int, dict[str, np.ndarray]] = {}
        for layer_idx in protected:
            entries = out.layout.layer_entries(layer_idx)
            stored[layer_idx] = _StoredLayer(
                update.layer_flat(layer_idx).copy(), entries)
            for e in entries:
                view = out.view(layer_idx, e.key)
                # the noise std derives from the replaced array itself,
                # so the draw stays per-array (in layout order — the
                # same generator stream as the legacy loop)
                noise = standard_normal(rng, e.shape, out.layout.dtype)
                noise *= self._noise_std(view)
                view[:] = noise
        self._stored[client_id] = stored
        return out

    def _noise_std(self, array: np.ndarray) -> float:
        """Std of the random values replacing one parameter array."""
        if self.obfuscation == "gaussian":
            return self.obfuscation_scale
        # scaled: match the replaced array's own magnitude (floored so
        # an all-zero bias vector still gets non-degenerate noise)
        return self.obfuscation_scale * max(float(array.std()), 1e-3)

    # ------------------------------------------------------------------
    # executor state protocol: a client's state is its stored layers
    # ------------------------------------------------------------------
    def export_client_state(self, client_id: int):
        return self._stored.get(client_id)

    def import_client_state(self, client_id: int, state) -> None:
        if state is None:
            self._stored.pop(client_id, None)
        else:
            self._stored[client_id] = state

    def state_bytes(self) -> int:
        return sum(
            v.nbytes
            for per_client in self._stored.values()
            for layer in per_client.values()
            for v in layer.values())

    def describe(self) -> str:
        extra = f", extra={list(self.extra_layers)}" if self.extra_layers \
            else ""
        return (f"dinar(p={self.private_layer}, "
                f"opt={self.optimizer_name}{extra})")


# ----------------------------------------------------------------------
# §4.1: DINAR initialization
# ----------------------------------------------------------------------

@dataclass
class InitializationResult:
    """Outcome of the preliminary consensus phase."""

    private_layer: int
    consensus: ConsensusResult
    per_client_sensitivity: dict[int, LayerSensitivity]


def dinar_initialization(
        model_factory: Callable[[np.random.Generator], Model],
        client_datasets: Sequence[Dataset], *,
        warmup_epochs: int = 5, lr: float = 0.05, batch_size: int = 64,
        holdout_fraction: float = 0.3,
        byzantine: dict[int, str] | None = None,
        seed: int = 0) -> InitializationResult:
    """Run the preliminary phase: per-client analysis + distributed vote.

    Each client splits its local data into a used-for-training part
    ``D_m`` and a held-out part ``D_n`` (§4.1), trains a warm-up model
    on ``D_m``, measures per-layer member/non-member gradient
    divergence, and proposes its argmax layer.  The broadcast vote
    (optionally with injected Byzantine voters) fixes the global ``p``.
    """
    if not client_datasets:
        raise ValueError("need at least one client dataset")
    proposals: dict[int, int] = {}
    sensitivities: dict[int, LayerSensitivity] = {}
    num_layers = None
    for client_id, data in enumerate(client_datasets):
        rng = np.random.default_rng((seed, client_id))
        order = rng.permutation(len(data))
        holdout = max(1, int(len(data) * holdout_fraction))
        d_n = data.subset(order[:holdout])
        d_m = data.subset(order[holdout:])

        model = model_factory(rng)
        model.attach_rng(rng)
        loss = SoftmaxCrossEntropy()
        optimizer = make_optimizer("adagrad", model, lr)
        for _ in range(warmup_epochs):
            for bx, by in iterate_batches(d_m.x, d_m.y, batch_size, rng):
                model.loss_and_grad(bx, by, loss)
                optimizer.step()

        sensitivity = layer_divergences(
            model, d_m.x, d_m.y, d_n.x, d_n.y, rng=rng)
        sensitivities[client_id] = sensitivity
        proposals[client_id] = sensitivity.most_sensitive_layer
        num_layers = model.num_trainable_layers

    consensus = agree_on_private_layer(
        proposals, byzantine=byzantine, num_layers=num_layers, seed=seed)
    return InitializationResult(
        private_layer=consensus.decided_value,
        consensus=consensus,
        per_client_sensitivity=sensitivities,
    )
