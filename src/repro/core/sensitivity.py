"""Layer-level privacy-sensitivity analysis (§3, §4.1).

For a trained model, compute the gradients each layer produces on
member batches and on non-member batches, then measure the
Jensen-Shannon divergence between the two gradient distributions per
layer.  The layer with the highest divergence (the largest
"generalization gap") leaks the most membership information and is the
one DINAR obfuscates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.divergence import js_divergence_from_samples
from repro.nn.losses import Loss, SoftmaxCrossEntropy
from repro.nn.model import Model


@dataclass
class LayerSensitivity:
    """Per-layer divergence profile of one model."""

    layer_names: list[str]
    divergences: np.ndarray  # shape (J,)

    @property
    def most_sensitive_layer(self) -> int:
        """Index p of the layer leaking the most membership signal."""
        return int(np.argmax(self.divergences))

    def ranking(self) -> list[int]:
        """Layer indices from most to least sensitive."""
        return list(np.argsort(-self.divergences))

    def as_rows(self) -> list[tuple[int, str, float]]:
        """(index, name, divergence) rows for reporting."""
        return [
            (i, name, float(d))
            for i, (name, d) in enumerate(
                zip(self.layer_names, self.divergences))
        ]


def layer_divergences(model: Model, member_x: np.ndarray,
                      member_y: np.ndarray, nonmember_x: np.ndarray,
                      nonmember_y: np.ndarray, *,
                      rng: np.random.Generator | None = None,
                      method: str = "gradient_norms",
                      max_samples: int = 128,
                      batch_size: int = 32, num_batches: int = 8,
                      num_bins: int = 30,
                      max_values_per_layer: int = 50_000,
                      loss: Loss | None = None) -> LayerSensitivity:
    """Measure each layer's member/non-member gradient divergence.

    Two measurement methods:

    * ``"gradient_norms"`` (default): per-sample backward passes; each
      sample is summarized by its per-layer gradient L2 norm, and the
      JS divergence is taken between the member and non-member norm
      distributions.  This is the membership-relevant view — a member's
      gradients are small where the model memorized it — and is what
      DINAR's initialization votes on.
    * ``"gradient_values"``: pools the raw flattened gradient values of
      ``num_batches`` batches per population and takes the JS
      divergence of the value histograms (a coarser, cheaper proxy).
    """
    rng = rng or np.random.default_rng(0)
    loss = loss or SoftmaxCrossEntropy()
    if method == "gradient_norms":
        member_obs = _norm_observations(
            model, member_x, member_y, rng, max_samples, loss)
        nonmember_obs = _norm_observations(
            model, nonmember_x, nonmember_y, rng, max_samples, loss)
        divergences = np.array([
            _debiased_js(member_obs[:, j], nonmember_obs[:, j],
                         num_bins, rng)
            for j in range(model.num_trainable_layers)
        ])
    elif method == "gradient_values":
        member_pool = _gradient_pools(
            model, member_x, member_y, rng, batch_size, num_batches, loss)
        nonmember_pool = _gradient_pools(
            model, nonmember_x, nonmember_y, rng, batch_size, num_batches,
            loss)
        divergences = np.array([
            js_divergence_from_samples(
                _subsample(member_pool[j], max_values_per_layer, rng),
                _subsample(nonmember_pool[j], max_values_per_layer, rng),
                num_bins=num_bins)
            for j in range(model.num_trainable_layers)
        ])
    else:
        raise ValueError(f"unknown method {method!r}; known: "
                         "gradient_norms, gradient_values")
    return LayerSensitivity(
        layer_names=model.layer_names(), divergences=divergences)


def _debiased_js(a: np.ndarray, b: np.ndarray, num_bins: int,
                 rng: np.random.Generator, *,
                 null_rounds: int = 4) -> float:
    """JS divergence with a permutation-null bias correction.

    Finite-sample histograms of two *identical* distributions still
    show a positive JS value (the estimator's bias floor); measuring
    that floor on random re-splits of the pooled samples and
    subtracting it leaves only the real member/non-member signal, so
    an untrained model reads ~0.
    """
    raw = js_divergence_from_samples(a, b, num_bins=num_bins)
    pooled = np.concatenate([a, b])
    null = 0.0
    for _ in range(null_rounds):
        perm = rng.permutation(pooled)
        null += js_divergence_from_samples(
            perm[:len(a)], perm[len(a):], num_bins=num_bins)
    return max(0.0, raw - null / null_rounds)


def _norm_observations(model: Model, x: np.ndarray, y: np.ndarray,
                       rng: np.random.Generator, max_samples: int,
                       loss: Loss) -> np.ndarray:
    """Per-sample per-layer gradient norms, shape (n, J)."""
    if len(x) == 0:
        raise ValueError("population is empty")
    n = min(len(x), max_samples)
    idx = rng.choice(len(x), size=n, replace=False)
    observations = np.zeros((n, model.num_trainable_layers))
    for row, i in enumerate(idx):
        # Zero-copy views into the flat gradient buffer: the norms are
        # consumed immediately, before the next backward pass.
        vectors = model.per_layer_gradient_vectors(
            x[i:i + 1], y[i:i + 1], loss, copy=False)
        observations[row] = [float(np.linalg.norm(v)) for v in vectors]
    return observations


def _gradient_pools(model: Model, x: np.ndarray, y: np.ndarray,
                    rng: np.random.Generator, batch_size: int,
                    num_batches: int, loss: Loss) -> list[np.ndarray]:
    """Pooled flattened gradients per layer across sampled batches."""
    if len(x) == 0:
        raise ValueError("population is empty")
    pools: list[list[np.ndarray]] = [
        [] for _ in range(model.num_trainable_layers)
    ]
    for _ in range(num_batches):
        idx = rng.choice(len(x), size=min(batch_size, len(x)),
                         replace=False)
        vectors = model.per_layer_gradient_vectors(x[idx], y[idx], loss)
        for layer_idx, vec in enumerate(vectors):
            pools[layer_idx].append(vec)
    return [np.concatenate(p) for p in pools]


def _subsample(values: np.ndarray, limit: int,
               rng: np.random.Generator) -> np.ndarray:
    if values.size <= limit:
        return values
    return rng.choice(values, size=limit, replace=False)
