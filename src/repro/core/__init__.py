"""DINAR — the paper's contribution.

* :class:`~repro.core.dinar.DINAR` — the defense itself (Algorithm 1).
* :func:`~repro.core.dinar.dinar_initialization` — the §4.1
  preliminary phase (per-client sensitivity analysis + distributed
  vote).
* :mod:`~repro.core.sensitivity` — per-layer JS-divergence leakage
  measurement (§3).
* :mod:`~repro.core.consensus` — Byzantine-tolerant broadcast voting.
"""

from repro.core.consensus import (
    BroadcastVoting,
    ConsensusResult,
    agree_on_private_layer,
)
from repro.core.dinar import DINAR, InitializationResult, dinar_initialization
from repro.core.middleware import DINARMiddleware
from repro.core.sensitivity import LayerSensitivity, layer_divergences

__all__ = [
    "BroadcastVoting",
    "ConsensusResult",
    "DINAR",
    "DINARMiddleware",
    "InitializationResult",
    "LayerSensitivity",
    "agree_on_private_layer",
    "dinar_initialization",
    "layer_divergences",
]
