"""Byzantine-tolerant broadcast distributed voting (§4.1).

DINAR's initialization has every client broadcast the index of its
locally-measured most privacy-sensitive layer; the value with the
absolute majority wins (the broadcast distributed-voting method of [2],
based on the DMVR algorithm [39]).  This module simulates the protocol
as explicit message passing on a complete communication graph
(networkx), with pluggable Byzantine behaviours: voting a random index,
equivocating (sending different values to different peers), or staying
silent.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import networkx as nx
import numpy as np

#: Byzantine behaviour names accepted by :class:`VotingNode`.
BYZANTINE_BEHAVIOURS = ("random", "equivocate", "silent")


@dataclass
class VotingNode:
    """One participant in the voting protocol."""

    node_id: int
    proposal: int
    byzantine: str | None = None  # None = correct node
    inbox: dict[int, int] = field(default_factory=dict)
    decided: int | None = None

    def __post_init__(self) -> None:
        if self.byzantine is not None \
                and self.byzantine not in BYZANTINE_BEHAVIOURS:
            raise ValueError(
                f"unknown byzantine behaviour {self.byzantine!r}; "
                f"known: {BYZANTINE_BEHAVIOURS}")

    def outgoing(self, recipients: list[int], value_space: int,
                 rng: np.random.Generator) -> dict[int, int | None]:
        """The value this node sends to each recipient this round."""
        value = self.decided if self.decided is not None else self.proposal
        if self.byzantine is None:
            return {r: value for r in recipients}
        if self.byzantine == "silent":
            return {r: None for r in recipients}
        if self.byzantine == "random":
            forged = int(rng.integers(0, value_space))
            return {r: forged for r in recipients}
        # equivocate: a different forged value per recipient
        return {r: int(rng.integers(0, value_space)) for r in recipients}

    def tally_and_decide(self) -> int:
        """Absolute majority if one exists, else lowest-index plurality."""
        votes = Counter(self.inbox.values())
        votes[self.proposal if self.decided is None
              else self.decided] += 1
        total = sum(votes.values())
        best_count = max(votes.values())
        winners = sorted(v for v, c in votes.items() if c == best_count)
        if best_count * 2 > total:
            self.decided = winners[0]
        else:
            self.decided = winners[0]  # plurality fallback, deterministic
        return self.decided


@dataclass
class ConsensusResult:
    """Outcome of one protocol execution."""

    decided_value: int
    rounds_used: int
    per_node_decisions: dict[int, int]
    honest_agreement: bool

    def __post_init__(self) -> None:
        if self.rounds_used < 1:
            raise ValueError("protocol must run at least one round")


class BroadcastVoting:
    """Broadcast distributed voting on a complete graph."""

    def __init__(self, proposals: dict[int, int], *,
                 byzantine: dict[int, str] | None = None,
                 value_space: int | None = None,
                 max_rounds: int = 3,
                 seed: int = 0) -> None:
        if not proposals:
            raise ValueError("need at least one voter")
        byzantine = byzantine or {}
        unknown = set(byzantine) - set(proposals)
        if unknown:
            raise ValueError(f"byzantine ids not voting: {sorted(unknown)}")
        self.nodes = {
            nid: VotingNode(nid, proposal, byzantine.get(nid))
            for nid, proposal in proposals.items()
        }
        self.graph = nx.complete_graph(sorted(proposals))
        self.value_space = value_space or (max(proposals.values()) + 1)
        self.max_rounds = max_rounds
        self.rng = np.random.default_rng(seed)

    def run(self) -> ConsensusResult:
        """Execute broadcast rounds until honest nodes stabilize."""
        rounds_used = 0
        previous: dict[int, int] = {}
        for _ in range(self.max_rounds):
            rounds_used += 1
            self._broadcast_round()
            decisions = {
                nid: node.tally_and_decide()
                for nid, node in self.nodes.items()
            }
            honest = self._honest_decisions(decisions)
            if honest and len(set(honest.values())) == 1 \
                    and honest == self._honest_decisions(previous):
                break
            previous = decisions
        honest = self._honest_decisions(
            {nid: node.decided for nid, node in self.nodes.items()})
        values = Counter(honest.values())
        decided = values.most_common(1)[0][0] if values else \
            self.nodes[min(self.nodes)].decided
        return ConsensusResult(
            decided_value=int(decided),
            rounds_used=rounds_used,
            per_node_decisions={
                nid: int(node.decided) for nid, node in self.nodes.items()
                if node.decided is not None
            },
            honest_agreement=len(set(honest.values())) <= 1,
        )

    def _broadcast_round(self) -> None:
        for nid, node in self.nodes.items():
            recipients = list(self.graph.neighbors(nid))
            for recipient, value in node.outgoing(
                    recipients, self.value_space, self.rng).items():
                if value is not None:
                    self.nodes[recipient].inbox[nid] = value

    def _honest_decisions(self, decisions: dict[int, int | None]
                          ) -> dict[int, int]:
        return {
            nid: d for nid, d in decisions.items()
            if d is not None and self.nodes[nid].byzantine is None
        }


def agree_on_private_layer(proposals: dict[int, int], *,
                           byzantine: dict[int, str] | None = None,
                           num_layers: int | None = None,
                           seed: int = 0) -> ConsensusResult:
    """Run DINAR's initialization vote over per-client layer indices."""
    return BroadcastVoting(
        proposals, byzantine=byzantine, value_space=num_layers,
        seed=seed).run()
