"""The DINAR middleware facade.

The paper presents DINAR as *middleware*: something an FL deployment
drops in front of its training loop (Fig. 2). This module packages the
full lifecycle — §4.1 initialization (per-client sensitivity analysis
plus the distributed vote) followed by the defended federated run —
behind one object::

    middleware = DINARMiddleware(model_factory, config)
    simulation = middleware.deploy(split)
    simulation.run()
    print(middleware.initialization.private_layer)
"""

from __future__ import annotations

import math
from collections.abc import Callable

import numpy as np

from repro.core.dinar import (
    DINAR,
    InitializationResult,
    dinar_initialization,
)
from repro.data.partition import (
    MembershipSplit,
    partition_dirichlet,
    partition_iid,
)
from repro.fl.config import FLConfig
from repro.fl.simulation import FederatedSimulation
from repro.nn.model import Model


class DINARMiddleware:
    """One-call DINAR deployment: initialize, then protect."""

    def __init__(self, model_factory: Callable[[np.random.Generator], Model],
                 config: FLConfig, *,
                 byzantine: dict[int, str] | None = None,
                 warmup_epochs: int = 3,
                 dinar_kwargs: dict | None = None) -> None:
        """
        Parameters
        ----------
        byzantine:
            Optional client-id -> behaviour map for the initialization
            vote (testing the protocol's fault tolerance).
        warmup_epochs:
            Local epochs of the initialization warm-up models.
        dinar_kwargs:
            Extra arguments for the :class:`DINAR` defense
            (obfuscation mode, learning rate, ...).
        """
        self.model_factory = model_factory
        self.config = config
        self.byzantine = byzantine
        self.warmup_epochs = warmup_epochs
        self.dinar_kwargs = dict(dinar_kwargs or {})
        self.initialization: InitializationResult | None = None
        self.defense: DINAR | None = None

    def deploy(self, split: MembershipSplit, *,
               dirichlet_alpha: float = math.inf) -> FederatedSimulation:
        """Run initialization on the clients' shards and build the
        defended simulation (not yet run)."""
        rng = np.random.default_rng((self.config.seed, 41))
        members = split.members
        if math.isinf(dirichlet_alpha):
            shards = partition_iid(len(members), self.config.num_clients,
                                   rng)
        else:
            shards = partition_dirichlet(
                members.y, self.config.num_clients, dirichlet_alpha, rng,
                num_classes=members.num_classes)
        client_datasets = [members.subset(shard) for shard in shards]

        self.initialization = dinar_initialization(
            self.model_factory, client_datasets,
            warmup_epochs=self.warmup_epochs,
            lr=self.dinar_kwargs.get("lr") or 0.005,
            batch_size=self.config.batch_size,
            byzantine=self.byzantine,
            seed=self.config.seed)

        self.defense = DINAR(
            private_layer=self.initialization.private_layer,
            **self.dinar_kwargs)
        return FederatedSimulation(
            split, self.model_factory, self.config, self.defense,
            dirichlet_alpha=dirichlet_alpha)

    def describe(self) -> str:
        """Human-readable deployment summary."""
        if self.initialization is None:
            return "DINAR middleware (not deployed)"
        consensus = self.initialization.consensus
        return (f"DINAR middleware: private layer "
                f"{self.initialization.private_layer} "
                f"(vote over {len(consensus.per_node_decisions)} clients, "
                f"{consensus.rounds_used} broadcast rounds, honest "
                f"agreement={consensus.honest_agreement})")
