"""ASCII reporting: benchmark output that reads like the paper's tables.

Every benchmark prints its measured numbers next to the values the
paper reports, so a reader can check the reproduction *shape* (who
wins, by roughly what factor) at a glance.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]], *,
                 title: str | None = None) -> str:
    """Fixed-width ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[i])),
            *(len(r[i]) for r in str_rows)) if str_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(h).ljust(w)
                            for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def paper_vs_measured(label: str, paper_value: object,
                      measured_value: object, *,
                      note: str = "") -> list[object]:
    """One comparison row: [label, paper, measured, note]."""
    return [label, _fmt(paper_value), _fmt(measured_value), note]


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}" if abs(cell) < 10 else f"{cell:.1f}"
    return str(cell)
