"""Allocation accounting for the train-step hot path.

:func:`measure_train_step` drives one full forward + backward +
optimizer step at layer granularity under :mod:`tracemalloc`,
snapshotting NumPy's allocation domain at every layer boundary and
summing the array allocations each phase left behind.  Because the
driver holds a reference to every layer output and input gradient
until the step completes, each batch-sized buffer a layer allocates is
still live at its boundary snapshot and gets counted; arena-backed
buffers were allocated during warm-up (before tracing started) and
never appear.

The count is a *lower bound* — temporaries a layer allocates and frees
within a single call are invisible to boundary snapshots — so a
measured reduction understates the real one.  Peak bytes come from
``tracemalloc.get_traced_memory`` and do include intra-call
temporaries.
"""

from __future__ import annotations

import tracemalloc
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.nn.losses import Loss
from repro.nn.model import Model

__all__ = ["AllocationReport", "measure_train_step"]

#: tracemalloc domain NumPy registers its array-data allocations under.
_NUMPY_DOMAIN = np.lib.tracemalloc_domain

#: Ignore allocations below this size — bookkeeping scalars and shape
#: tuples, not batch-sized scratch.
_SIZE_FLOOR = 1024


@dataclass
class AllocationReport:
    """Array allocations attributable to one full train step."""

    #: Number of NumPy array-data allocations left live at the
    #: boundary of the phase that made them.
    alloc_count: int
    #: Bytes across those allocations.
    alloc_bytes: int
    #: tracemalloc peak (current high-water mark) over the step,
    #: including intra-call temporaries.
    peak_bytes: int


def _numpy_stats(snapshot: tracemalloc.Snapshot,
                 previous: tracemalloc.Snapshot) -> tuple[int, int]:
    """(count, bytes) of new NumPy array allocations between snapshots."""
    domain = tracemalloc.DomainFilter(inclusive=True,
                                      domain=_NUMPY_DOMAIN)
    diff = snapshot.filter_traces([domain]).compare_to(
        previous.filter_traces([domain]), "traceback")
    count = 0
    size = 0
    for stat in diff:
        if stat.count_diff > 0 and stat.size_diff >= _SIZE_FLOOR:
            count += stat.count_diff
            size += stat.size_diff
    return count, size


def measure_train_step(model: Model, x: np.ndarray, y: np.ndarray,
                       loss: Loss, step: Callable[[], None],
                       ) -> AllocationReport:
    """Account one train step's array allocations at layer granularity.

    ``step`` is the optimizer's update callable (``optimizer.step``).
    The caller must have run at least one warm-up step beforehand so
    one-time allocations (arena buffers, optimizer slots) are already
    in place and only per-step churn is measured.
    """
    workspace = model.workspace
    attach = getattr(loss, "attach_workspace", None)
    if attach is not None:
        attach(workspace)

    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        previous = tracemalloc.take_snapshot()
        count = 0
        size = 0
        held = []  # keep every boundary value alive until the end

        def boundary(value) -> None:
            nonlocal previous, count, size
            held.append(value)
            snapshot = tracemalloc.take_snapshot()
            delta_count, delta_size = _numpy_stats(snapshot, previous)
            count += delta_count
            size += delta_size
            previous = snapshot

        activation = x
        for layer in model.layers:
            activation = layer.forward(activation, training=True,
                                       workspace=workspace)
            boundary(activation)
        boundary(loss.forward(activation, y))
        grad = loss.backward()
        boundary(grad)
        for layer in reversed(model.layers):
            grad = layer.backward(grad, workspace=workspace)
            boundary(grad)
        step()
        boundary(None)
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
    return AllocationReport(alloc_count=count, alloc_bytes=size,
                            peak_bytes=peak)
