"""Experiment harness.

``run_experiment`` reproduces one cell of the paper's evaluation
matrix: build the dataset and its paper-matched model family, run the
federated simulation under a defense, then attack both the global
model (client-side attacker) and every client's transmitted update
(server-side attacker), and report the Appendix-A metrics plus costs.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.data.datasets import DATASET_SPECS, load_dataset
from repro.data.partition import MembershipSplit, split_for_membership
from repro.fl.config import FLConfig
from repro.fl.costs import CostReport
from repro.fl.simulation import FederatedSimulation
from repro.models.registry import build_model
from repro.nn.model import Model
from repro.privacy.attacks.metrics import global_model_auc, local_models_auc
from repro.privacy.attacks.shadow import ShadowAttack
from repro.privacy.attacks.threshold import LossThresholdAttack
from repro.privacy.defenses.base import Defense
from repro.privacy.defenses.make import make_defense_for_config


@dataclass
class ExperimentResult:
    """Metrics of one (dataset, defense, attack) evaluation cell."""

    dataset: str
    defense: str
    attack: str
    global_auc: float        # client-side attacker vs. global model
    local_auc: float         # server-side attacker vs. client updates
    global_accuracy: float   # global model on the test set
    client_accuracy: float   # mean personalized-model accuracy
    costs: CostReport
    simulation: FederatedSimulation

    def privacy_utility(self) -> tuple[float, float]:
        """(x, y) of one Fig. 7 point: accuracy% vs local attack AUC%."""
        return 100.0 * self.client_accuracy, 100.0 * self.local_auc


#: Tuned DINAR Adagrad learning rates per dataset.  Adaptive methods'
#: effective early step is ~lr*sign(g), so the right rate tracks each
#: model family's weight scale; these were selected by sweeps (see
#: EXPERIMENTS.md, calibration section).
DINAR_LR = {
    "purchase100": 0.005,
    "texas100": 0.005,
    "cifar10": 0.01,
    "cifar100": 0.005,
    "gtsrb": 0.01,
    "celeba": 0.01,
    "speech_commands": 0.02,
}


def make_model_factory(dataset_name: str, *,
                       dtype: np.dtype | str = np.float64
                       ) -> Callable[[np.random.Generator], Model]:
    """Factory building the paper-matched model family for a dataset."""
    spec = DATASET_SPECS[dataset_name]

    def factory(rng: np.random.Generator) -> Model:
        return build_model(spec.model_name, spec.shape, spec.num_classes,
                           rng, dtype=dtype)

    return factory


def default_config(dataset_name: str, *, seed: int = 0) -> FLConfig:
    """CPU-scaled per-dataset FL configuration.

    Mirrors the paper's §5.3 per-dataset choices in spirit: Purchase100
    gets more clients (10 vs 5) and more local epochs.
    """
    if dataset_name in ("purchase100", "texas100"):
        # Paper: 10 clients, 300 rounds, 10 local epochs; CPU scale keeps
        # 10 clients and trades rounds for the smaller synthetic task.
        return FLConfig(num_clients=10, rounds=20, local_epochs=3,
                        lr=0.1, batch_size=64, seed=seed,
                        eval_every=20)
    return FLConfig(num_clients=5, rounds=10, local_epochs=3,
                    lr=0.1, batch_size=64, seed=seed, eval_every=10)


def build_attack(name: str, dataset_name: str, split: MembershipSplit, *,
                 seed: int = 0, num_shadows: int = 2,
                 shadow_epochs: int = 6,
                 dtype: np.dtype | str = np.float64):
    """Build and (if needed) fit an attack by name.

    ``dtype`` reaches the shadow/reference model factories so attack
    training runs at the same precision as the target.
    """
    if name == "yeom":
        return LossThresholdAttack()
    if name == "entropy":
        from repro.privacy.attacks.threshold import EntropyThresholdAttack
        return EntropyThresholdAttack()
    if name == "confidence":
        from repro.privacy.attacks.threshold import (
            ConfidenceThresholdAttack,
        )
        return ConfidenceThresholdAttack()
    if name == "shadow":
        attack = ShadowAttack(
            make_model_factory(dataset_name, dtype=dtype),
            num_shadows=num_shadows, epochs=shadow_epochs, seed=seed)
        return attack.fit(split.attacker)
    if name == "calibrated":
        from repro.privacy.attacks.calibrated import (
            ReferenceCalibratedAttack,
        )
        attack = ReferenceCalibratedAttack(
            make_model_factory(dataset_name, dtype=dtype),
            num_references=num_shadows, epochs=shadow_epochs, seed=seed)
        return attack.fit(split.attacker)
    raise ValueError(f"unknown attack {name!r}; known: yeom, entropy, "
                     "confidence, shadow, calibrated")


def run_experiment(dataset_name: str, defense: Defense | str = "none", *,
                   config: FLConfig | None = None,
                   attack: str = "yeom",
                   n_samples: int | None = None,
                   dataset_noise: float | None = None,
                   dirichlet_alpha: float = math.inf,
                   seed: int = 0,
                   max_attack_samples: int = 400,
                   defense_kwargs: dict | None = None) -> ExperimentResult:
    """Run one full evaluation cell.

    Parameters
    ----------
    defense:
        A constructed :class:`Defense` or a paper name (``none``,
        ``ldp``, ``cdp``, ``wdp``, ``gc``, ``sa``, ``dinar``); names are
        parameterized per §5.2 with budgets split across the configured
        rounds.
    attack:
        ``"yeom"`` (loss threshold — cheap, used in sweeps) or
        ``"shadow"`` (Shokri shadow models — the paper's attacker).
    """
    config = config or default_config(dataset_name, seed=seed)
    dataset = load_dataset(dataset_name, seed, n_samples=n_samples,
                           noise=dataset_noise, dtype=config.dtype)
    split = split_for_membership(
        dataset, np.random.default_rng((seed, 17)))

    if isinstance(defense, str):
        defense_kwargs = dict(defense_kwargs or {})
        if defense.lower() == "dinar" and dataset_name in DINAR_LR:
            defense_kwargs.setdefault("lr", DINAR_LR[dataset_name])
        defense = make_defense_for_config(defense, config,
                                          **defense_kwargs)

    simulation = FederatedSimulation(
        split, make_model_factory(dataset_name, dtype=config.dtype),
        config, defense, dirichlet_alpha=dirichlet_alpha)
    simulation.run()

    attack_obj = build_attack(attack, dataset_name, split, seed=seed,
                              dtype=config.dtype)
    eval_rng = np.random.default_rng((seed, 23))
    result = ExperimentResult(
        dataset=dataset_name,
        defense=defense.name,
        attack=attack,
        global_auc=global_model_auc(
            attack_obj, simulation, max_samples=max_attack_samples,
            rng=eval_rng),
        local_auc=local_models_auc(
            attack_obj, simulation, max_samples=max_attack_samples,
            rng=eval_rng),
        global_accuracy=simulation.history.final_global_accuracy,
        client_accuracy=simulation.history.final_client_accuracy,
        costs=simulation.cost_meter.report,
        simulation=simulation,
    )
    return result


def quick_experiment(dataset_name: str, defense: Defense | str = "none",
                     **kwargs) -> ExperimentResult:
    """Small-scale ``run_experiment`` for demos and smoke tests."""
    config = kwargs.pop("config", None) or FLConfig(
        num_clients=3, rounds=10, local_epochs=3, lr=0.1,
        batch_size=64, seed=kwargs.get("seed", 0), eval_every=10)
    kwargs.setdefault("n_samples", 2400)
    return run_experiment(dataset_name, defense, config=config, **kwargs)
