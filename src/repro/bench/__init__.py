"""Benchmark harness: one call = one (dataset, defense, attack) cell of
the paper's evaluation, returning privacy, utility and cost metrics."""

from repro.bench.harness import (
    ExperimentResult,
    make_model_factory,
    quick_experiment,
    run_experiment,
)
from repro.bench.reporting import format_table, paper_vs_measured

__all__ = [
    "ExperimentResult",
    "format_table",
    "make_model_factory",
    "paper_vs_measured",
    "quick_experiment",
    "run_experiment",
]
