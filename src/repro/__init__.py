"""DINAR reproduction: Personalized Privacy-Preserving Federated Learning.

A full from-scratch reproduction of Boscher et al., MIDDLEWARE '24:
a NumPy neural-network substrate (:mod:`repro.nn`), the paper's model
families (:mod:`repro.models`), synthetic stand-ins for its datasets
(:mod:`repro.data`), a cross-silo FedAvg simulator (:mod:`repro.fl`),
membership-inference attacks and the five baseline defenses
(:mod:`repro.privacy`), and DINAR itself (:mod:`repro.core`).

Quickstart::

    from repro import quick_experiment

    result = quick_experiment("purchase100", defense="dinar")
    print(result.local_auc, result.client_accuracy)
"""

from repro.bench.harness import (
    ExperimentResult,
    quick_experiment,
    run_experiment,
)
from repro.analysis import leakage_over_training
from repro.core import DINAR, DINARMiddleware, dinar_initialization
from repro.data import load_dataset, split_for_membership
from repro.fl import FederatedSimulation, FLConfig
from repro.privacy.attacks import LossThresholdAttack, ShadowAttack
from repro.privacy.defenses import make_defense

__version__ = "1.0.0"

__all__ = [
    "DINAR",
    "DINARMiddleware",
    "ExperimentResult",
    "FLConfig",
    "FederatedSimulation",
    "LossThresholdAttack",
    "ShadowAttack",
    "__version__",
    "dinar_initialization",
    "leakage_over_training",
    "load_dataset",
    "make_defense",
    "quick_experiment",
    "run_experiment",
    "split_for_membership",
]
