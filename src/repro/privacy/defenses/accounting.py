"""(epsilon, delta) accounting for the Gaussian mechanism.

Implements the classic analytic calibration
``sigma = sensitivity * sqrt(2 ln(1.25/delta)) / epsilon`` (Dwork &
Roth, Thm. 3.22) plus basic and advanced composition across FL rounds.
This mirrors what the paper's Opacus-based baselines do: pick a noise
multiplier from a target (epsilon, delta) budget, then spend budget
each round.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def gaussian_sigma(epsilon: float, delta: float,
                   sensitivity: float = 1.0) -> float:
    """Noise std for one Gaussian-mechanism release at (epsilon, delta)."""
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0,1), got {delta}")
    if sensitivity <= 0:
        raise ValueError(f"sensitivity must be positive, got {sensitivity}")
    return sensitivity * math.sqrt(2.0 * math.log(1.25 / delta)) / epsilon


def basic_composition(epsilon_per_step: float, delta_per_step: float,
                      steps: int) -> tuple[float, float]:
    """Sequential composition: budgets add up linearly."""
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    return epsilon_per_step * steps, delta_per_step * steps


def advanced_composition(epsilon_per_step: float, delta_per_step: float,
                         steps: int, delta_slack: float) -> tuple[float, float]:
    """Advanced composition (Dwork, Rothblum, Vadhan 2010).

    Total epsilon grows ~ sqrt(steps) at the cost of a delta slack.
    """
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    if delta_slack <= 0:
        raise ValueError(f"delta_slack must be positive, got {delta_slack}")
    eps = epsilon_per_step
    total_eps = (math.sqrt(2.0 * steps * math.log(1.0 / delta_slack)) * eps
                 + steps * eps * (math.exp(eps) - 1.0))
    return total_eps, steps * delta_per_step + delta_slack


@dataclass
class PrivacyAccountant:
    """Tracks cumulative (epsilon, delta) spend across releases."""

    target_epsilon: float
    target_delta: float
    spent_epsilon: float = 0.0
    spent_delta: float = 0.0
    releases: int = 0

    def spend(self, epsilon: float, delta: float) -> None:
        """Record one mechanism release (basic composition)."""
        self.spent_epsilon += epsilon
        self.spent_delta += delta
        self.releases += 1

    @property
    def exhausted(self) -> bool:
        """Whether the cumulative spend exceeds the target budget."""
        return (self.spent_epsilon > self.target_epsilon
                or self.spent_delta > self.target_delta)

    def per_step_epsilon(self, planned_steps: int) -> float:
        """Evenly divide the target budget across planned releases."""
        if planned_steps < 1:
            raise ValueError(f"planned_steps must be >= 1, "
                             f"got {planned_steps}")
        return self.target_epsilon / planned_steps
