"""Weak Differential Privacy (WDP) baseline.

Per §2.3/[43] (Sun et al., "Can You Really Backdoor Federated
Learning?") and §5.2: norm-bound each client's round *delta* (update
minus the round's global model) to 5 and add Gaussian noise with
sigma = 0.025.  Operating on deltas — not raw weights — is what makes
the mechanism "weak": the bound rarely bites and the noise is small,
so utility survives but the membership signal is only mildly damped
(the paper's Fig. 6 shows WDP failing to reach 50%).

Store-native: the delta, the norm bound and the noise are single
vectorized operations on the flat weight plane; the noise is drawn in
one flat pass that consumes the generator stream in layout order —
the same values the legacy per-array loop drew.
"""

from __future__ import annotations

import numpy as np

from repro.nn.dtypes import gaussian
from repro.nn.store import WeightsLike, WeightStore, as_store
from repro.privacy.defenses.base import Defense
from repro.privacy.defenses.ldp import clip_store


class WeakDP(Defense):
    """Norm-bounded round deltas + low-magnitude Gaussian noise."""

    name = "wdp"

    def __init__(self, *, norm_bound: float = 5.0,
                 sigma: float = 0.025) -> None:
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        if norm_bound <= 0:
            raise ValueError(f"norm_bound must be positive, "
                             f"got {norm_bound}")
        self.norm_bound = norm_bound
        self.sigma = sigma
        self._round_global: WeightStore | None = None
        self._noise_buffer_bytes = 0

    def on_round_start(self, round_index, client_ids, template,
                       rng) -> None:
        self._round_global = as_store(template, copy=True)

    def on_send_update(self, client_id: int, weights: WeightsLike,
                       num_samples: int,
                       rng: np.random.Generator) -> WeightStore:
        if self._round_global is None:
            raise RuntimeError("on_round_start was never called")
        update = as_store(weights, layout=self._round_global.layout)
        delta = update - self._round_global
        bounded = clip_store(delta, self.norm_bound)
        bounded.buffer += gaussian(rng, self.sigma, bounded.num_params,
                                   bounded.buffer.dtype)
        self._noise_buffer_bytes = bounded.nbytes
        return self._round_global + bounded

    # ------------------------------------------------------------------
    # executor state protocol
    # ------------------------------------------------------------------
    def export_round_state(self):
        if self._round_global is None:
            return None
        return (self._round_global.layout, self._round_global.buffer)

    def import_round_state(self, state) -> None:
        if state is not None:
            layout, buffer = state
            self._round_global = WeightStore(layout, buffer)

    def state_bytes(self) -> int:
        return self._noise_buffer_bytes

    def describe(self) -> str:
        return f"wdp(bound={self.norm_bound}, sigma={self.sigma})"
