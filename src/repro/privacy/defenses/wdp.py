"""Weak Differential Privacy (WDP) baseline.

Per §2.3/[43] (Sun et al., "Can You Really Backdoor Federated
Learning?") and §5.2: norm-bound each client's round *delta* (update
minus the round's global model) to 5 and add Gaussian noise with
sigma = 0.025.  Operating on deltas — not raw weights — is what makes
the mechanism "weak": the bound rarely bites and the noise is small,
so utility survives but the membership signal is only mildly damped
(the paper's Fig. 6 shows WDP failing to reach 50%).
"""

from __future__ import annotations

import numpy as np

from repro.nn.model import Weights, weights_map, weights_zip_map
from repro.privacy.defenses.base import Defense
from repro.privacy.defenses.ldp import clip_weights


class WeakDP(Defense):
    """Norm-bounded round deltas + low-magnitude Gaussian noise."""

    name = "wdp"

    def __init__(self, *, norm_bound: float = 5.0,
                 sigma: float = 0.025) -> None:
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        if norm_bound <= 0:
            raise ValueError(f"norm_bound must be positive, "
                             f"got {norm_bound}")
        self.norm_bound = norm_bound
        self.sigma = sigma
        self._round_global: Weights | None = None
        self._noise_buffer_bytes = 0

    def on_round_start(self, round_index, client_ids, template,
                       rng) -> None:
        self._round_global = [
            {k: v.copy() for k, v in layer.items()} for layer in template
        ]

    def on_send_update(self, client_id: int, weights: Weights,
                       num_samples: int,
                       rng: np.random.Generator) -> Weights:
        if self._round_global is None:
            raise RuntimeError("on_round_start was never called")
        delta = weights_zip_map(np.subtract, weights, self._round_global)
        bounded = clip_weights(delta, self.norm_bound)
        noisy = weights_map(
            lambda v: v + rng.normal(0.0, self.sigma, size=v.shape),
            bounded)
        self._noise_buffer_bytes = sum(
            v.nbytes for layer in noisy for v in layer.values())
        return weights_zip_map(np.add, self._round_global, noisy)

    def state_bytes(self) -> int:
        return self._noise_buffer_bytes

    def describe(self) -> str:
        return f"wdp(bound={self.norm_bound}, sigma={self.sigma})"
