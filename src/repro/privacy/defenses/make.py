"""Config-aware defense construction.

DP defenses split their privacy budget across FL rounds, and CDP's
sensitivity depends on the cohort size; this helper injects those
values from the experiment's :class:`~repro.fl.config.FLConfig` so
callers can just name a defense.
"""

from __future__ import annotations

from repro.fl.config import FLConfig
from repro.privacy.defenses import make_defense
from repro.privacy.defenses.base import Defense


def make_defense_for_config(name: str, config: FLConfig,
                            **kwargs) -> Defense:
    """Build a defense by name, parameterized from the FL config."""
    key = name.lower()
    if key == "ldp":
        # Planned DP-SGD profile: total local steps across the run
        # (per-epoch batch count is data-dependent; 5 is the scaled
        # datasets' typical value) and the batch sampling rate.
        kwargs.setdefault(
            "steps", config.rounds * config.local_epochs * 5)
        kwargs.setdefault("sample_rate", 0.15)
    elif key == "cdp":
        kwargs.setdefault("rounds", config.rounds)
        kwargs.setdefault("num_clients",
                          config.clients_per_round or config.num_clients)
    elif key == "ladp":
        # Per-round budget split needs the planned round count.
        kwargs.setdefault("rounds", config.rounds)
    return make_defense(name, **kwargs)
