"""Local Differential Privacy (LDP) baseline.

The paper runs its DP baselines on Opacus (§5.3), i.e. DP-SGD during
local training: per-batch gradient clipping plus Gaussian noise
calibrated to the (epsilon, delta) budget — the paper's setting is
epsilon=2.2, delta=1e-5 (§5.2).  Because the noise is injected into
every local step, LDP protects the update a client transmits (local
*and* global model) at a substantial utility cost — exactly the
trade-off Figs. 6, 7 and 10 show.
"""

from __future__ import annotations

import numpy as np

from repro.nn.model import Model, Weights, weights_l2_norm, weights_map
from repro.nn.optim import Optimizer
from repro.nn.store import WeightsLike, WeightStore
from repro.privacy.defenses.accounting import PrivacyAccountant
from repro.privacy.defenses.base import Defense
from repro.privacy.defenses.dpsgd import DPSGD, dp_sgd_noise_multiplier


def clip_store(store: WeightStore, max_norm: float) -> WeightStore:
    """Scale a store so its global L2 norm is <= max_norm (new store)."""
    return store.layout.segmented().clip(store, max_norm)


def clip_weights(weights: WeightsLike, max_norm: float) -> WeightsLike:
    """Scale the whole structure so its global L2 norm is <= max_norm.

    Returns the same representation it was given: a store comes back
    as a store (one vectorized pass), nested weights come back nested.
    """
    if isinstance(weights, WeightStore):
        return clip_store(weights, max_norm)
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    norm = weights_l2_norm(weights)
    if norm <= max_norm:
        return weights_map(np.copy, weights)
    factor = max_norm / norm
    return weights_map(lambda v: v * factor, weights)


class LocalDP(Defense):
    """DP-SGD local training (the paper's Opacus-based LDP baseline)."""

    name = "ldp"

    def __init__(self, *, epsilon: float = 2.2, delta: float = 1e-5,
                 clip_norm: float = 1.0,
                 noise_multiplier: float | None = None,
                 sample_rate: float = 0.15, steps: int = 500,
                 seed: int = 0) -> None:
        """
        Parameters
        ----------
        epsilon, delta:
            Target budget for the whole run (paper: 2.2, 1e-5).
        noise_multiplier:
            Direct override; when None it is derived from the budget
            via the moments-accountant heuristic using
            ``sample_rate``/``steps`` as the planned training profile.
        """
        self.epsilon = epsilon
        self.delta = delta
        self.clip_norm = clip_norm
        if noise_multiplier is None:
            noise_multiplier = dp_sgd_noise_multiplier(
                epsilon, delta, sample_rate=sample_rate, steps=steps)
        self.noise_multiplier = noise_multiplier
        self.accountant = PrivacyAccountant(epsilon, delta)
        self.seed = seed
        self._released: dict[int, int] = {}
        self._optimizers = 0
        self._state_bytes = 0

    @property
    def updates_released(self) -> int:
        """Total updates released across all clients."""
        return sum(self._released.values())

    def make_optimizer(self, model: Model, lr: float,
                       rng: np.random.Generator | None = None) -> Optimizer:
        self._optimizers += 1
        # Per-parameter noise buffers live alongside the model, which is
        # what drives the paper's DP memory overhead — scaled by the
        # model's compute precision.
        self._state_bytes = (2 * model.num_parameters()
                             * model.dtype.itemsize)
        if rng is None:
            # Legacy standalone path: a fresh counter-derived stream.
            # FL rounds pass the client's (round, client) stream instead
            # so the noise is independent of construction order.
            rng = np.random.default_rng((self.seed, self._optimizers))
        return DPSGD(
            model, lr, clip_norm=self.clip_norm,
            noise_multiplier=self.noise_multiplier,
            rng=rng)

    def on_send_update(self, client_id: int, weights: Weights,
                       num_samples: int,
                       rng: np.random.Generator) -> Weights:
        # The privacy spend happened inside DP-SGD (accounted in the
        # noise-multiplier derivation); just count the release.
        self._released[client_id] = self._released.get(client_id, 0) + 1
        return weights

    # ------------------------------------------------------------------
    # executor state protocol: per-client release counts travel so the
    # parent's accounting stays exact under parallel execution
    # ------------------------------------------------------------------
    def export_client_state(self, client_id: int):
        return self._released.get(client_id, 0)

    def import_client_state(self, client_id: int, state) -> None:
        self._released[client_id] = int(state or 0)

    def state_bytes(self) -> int:
        return self._state_bytes

    def describe(self) -> str:
        return (f"ldp(eps={self.epsilon}, delta={self.delta}, "
                f"clip={self.clip_norm}, z={self.noise_multiplier:.2f})")
