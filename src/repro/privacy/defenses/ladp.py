"""Layer-wise adaptive DP (LaDP) on the segment plane.

PAPERS.md's "Local Layer-wise Differential Privacy in Federated
Learning": instead of one uniform (epsilon, delta) budget over the
whole update, split the per-round budget across layers so the most
membership-sensitive layers — the ones DINAR's Jensen-Shannon analysis
(:func:`repro.core.sensitivity.layer_divergences`) ranks highest — get
the larger epsilon share and therefore the *least* distortion, while
low-information layers absorb proportionally more noise.  At a matched
total budget this trades noise from where it destroys utility to where
it doesn't (the bench gates this against uniform-share LaDP).

Mechanically each release is a WDP-shaped round-delta mechanism, but
per segment: clip segment j's trainable coordinates to
``clip_norm / sqrt(J)`` (so the per-segment bounds compose back to the
whole-model ``clip_norm``), then add Gaussian noise with
``sigma_j = gaussian_sigma(eps_j, delta_j, clip_j)`` where
``eps_j = share_j * epsilon / sqrt(rounds)`` and ``delta_j = delta/J``
— sequential composition across the J per-layer releases of one
update.  Every per-segment clip+noise is one masked-view operation on
:class:`~repro.nn.store.SegmentedView`.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.nn.store import WeightsLike, WeightStore, as_store
from repro.privacy.defenses.accounting import (
    PrivacyAccountant,
    gaussian_sigma,
)
from repro.privacy.defenses.base import Defense


def allocate_shares(divergences: Sequence[float], *,
                    floor: float = 0.2) -> np.ndarray:
    """Per-layer epsilon shares from sensitivity divergences.

    ``floor`` of the budget is split uniformly (every layer keeps a
    guaranteed minimum — a layer with zero measured divergence must
    still be released under *some* epsilon), the rest proportionally
    to each layer's divergence: more sensitive layer → larger share →
    less noise.  All-zero divergences degrade to uniform shares.
    Shares sum to 1.
    """
    if not 0.0 <= floor <= 1.0:
        raise ValueError(f"floor must be in [0, 1], got {floor}")
    d = np.asarray(divergences, dtype=np.float64)
    if d.ndim != 1 or d.size == 0:
        raise ValueError("divergences must be a non-empty 1-D sequence")
    if np.any(d < 0):
        raise ValueError("divergences must be non-negative")
    total = d.sum()
    if total <= 0:
        return np.full(d.size, 1.0 / d.size)
    return floor / d.size + (1.0 - floor) * d / total


class LayerwiseDP(Defense):
    """Per-layer epsilon allocation over segment-wise clip + noise."""

    name = "ladp"

    def __init__(self, *, epsilon: float = 2.2, delta: float = 1e-5,
                 clip_norm: float = 3.0, rounds: int = 1,
                 divergences: Sequence[float] | None = None,
                 shares: Sequence[float] | None = None,
                 share_floor: float = 0.2) -> None:
        """
        Parameters
        ----------
        epsilon, delta:
            Target budget for the whole run (paper's setting: 2.2,
            1e-5); split ``epsilon / sqrt(rounds)`` per round by
            advanced composition, like CDP.
        clip_norm:
            Whole-model L2 bound on the round delta; each segment is
            clipped to ``clip_norm / sqrt(J)``.
        divergences:
            Per-layer sensitivity scores (e.g. from
            :func:`~repro.core.sensitivity.layer_divergences`); turned
            into epsilon shares via :func:`allocate_shares`.
        shares:
            Explicit per-layer epsilon shares (overrides
            ``divergences``); must sum to ~1.
        share_floor:
            Uniform fraction of the budget every layer keeps when
            shares are derived from divergences.
        """
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if not 0.0 < delta < 1.0:
            raise ValueError(f"delta must be in (0,1), got {delta}")
        if clip_norm <= 0:
            raise ValueError(
                f"clip_norm must be positive, got {clip_norm}")
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        self.epsilon = epsilon
        self.delta = delta
        self.clip_norm = clip_norm
        self.rounds = rounds
        self.share_floor = share_floor
        if shares is not None:
            shares = np.asarray(shares, dtype=np.float64)
            if np.any(shares <= 0):
                raise ValueError("all shares must be positive")
            if abs(float(shares.sum()) - 1.0) > 1e-6:
                raise ValueError(
                    f"shares must sum to 1, got {shares.sum():.6f}")
        self._shares = shares
        self._divergences = None if divergences is None \
            else np.asarray(divergences, dtype=np.float64)
        self.accountant = PrivacyAccountant(epsilon, delta)
        self._round_global: WeightStore | None = None
        self._plan: list[dict] | None = None
        self._noise_buffer_bytes = 0

    # ------------------------------------------------------------------
    # budget plan
    # ------------------------------------------------------------------
    def _layer_shares(self, num_layers: int) -> np.ndarray:
        if self._shares is not None:
            shares = self._shares
        elif self._divergences is not None:
            shares = allocate_shares(self._divergences,
                                     floor=self.share_floor)
        else:
            shares = np.full(num_layers, 1.0 / num_layers)
        if shares.size != num_layers:
            raise ValueError(
                f"got {shares.size} shares/divergences for a model "
                f"with {num_layers} layers")
        return shares

    def _resolve_plan(self, layout) -> None:
        """Fix the per-segment (epsilon, clip, sigma) schedule.

        Deterministic from the layout alone, so parent and workers
        resolve identical plans from the round state — no plan data
        crosses the IPC boundary.
        """
        view = layout.segmented()
        shares = self._layer_shares(len(view))
        param_segs = [seg for seg in view if seg.has_params]
        j = len(param_segs)
        if j == 0:
            self._plan = []
            return
        # Budget shares land only on parameter-bearing segments; a
        # buffer-only layer releases nothing, so its share re-spreads
        # over the layers that do (renormalized).
        live = np.array([shares[seg.index] for seg in param_segs])
        live = live / live.sum()
        eps_round = self.epsilon / math.sqrt(self.rounds)
        clip_j = self.clip_norm / math.sqrt(j)
        delta_j = self.delta / j
        self._plan = [
            {
                "segment": seg.index,
                "name": seg.name,
                "share": float(share),
                "epsilon": float(share * eps_round),
                "clip": clip_j,
                "sigma": gaussian_sigma(share * eps_round, delta_j,
                                        clip_j),
                "params": seg.num_params,
            }
            for seg, share in zip(param_segs, live)
        ]

    def segment_report(self) -> list[dict]:
        """Per-segment budget rows (name, share, epsilon, sigma) for
        cost accounting and the CLI summary; empty before round 1."""
        return list(self._plan or [])

    # ------------------------------------------------------------------
    # round hooks
    # ------------------------------------------------------------------
    def on_round_start(self, round_index, client_ids, template,
                       rng) -> None:
        self._round_global = as_store(template, copy=True)
        self._resolve_plan(self._round_global.layout)
        self.accountant.spend(self.epsilon / math.sqrt(self.rounds),
                              self.delta)

    def on_send_update(self, client_id: int, weights: WeightsLike,
                       num_samples: int,
                       rng: np.random.Generator) -> WeightStore:
        if self._round_global is None or self._plan is None:
            raise RuntimeError("on_round_start was never called")
        update = as_store(weights, layout=self._round_global.layout)
        delta = update - self._round_global
        view = delta.layout.segmented()
        sq = view.segment_sq_sums(delta.buffer)
        for entry in self._plan:
            seg = view[entry["segment"]]
            norm = math.sqrt(sq[seg.index])
            if norm > entry["clip"]:
                view.scale_segment(delta.buffer, seg,
                                   entry["clip"] / norm)
            view.segment_add_gaussian(delta.buffer, seg, rng,
                                      entry["sigma"])
        self._noise_buffer_bytes = delta.nbytes
        return self._round_global + delta

    # ------------------------------------------------------------------
    # executor state protocol: the flat global buffer travels; the
    # budget plan is re-derived from its layout on the far side
    # ------------------------------------------------------------------
    def export_round_state(self):
        if self._round_global is None:
            return None
        return (self._round_global.layout, self._round_global.buffer)

    def import_round_state(self, state) -> None:
        if state is not None:
            layout, buffer = state
            self._round_global = WeightStore(layout, buffer)
            self._resolve_plan(layout)

    def state_bytes(self) -> int:
        return self._noise_buffer_bytes

    def describe(self) -> str:
        kind = "explicit" if self._shares is not None else (
            "sensitivity" if self._divergences is not None
            else "uniform")
        return (f"ladp(eps={self.epsilon}, delta={self.delta}, "
                f"clip={self.clip_norm}, rounds={self.rounds}, "
                f"shares={kind})")
