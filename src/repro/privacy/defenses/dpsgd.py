"""DP-SGD: differentially private local training (Abadi et al., 2016).

The paper's LDP baseline runs on Opacus, which implements DP-SGD:
gradients are clipped to an L2 bound and Gaussian noise proportional to
``noise_multiplier * clip / batch_size`` is added before the descent
step.  This module provides the optimizer plus the inverse of the
moments-accountant heuristic used to pick the noise multiplier from a
target (epsilon, delta) budget.
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn.model import Model
from repro.nn.optim import Optimizer


def dp_sgd_noise_multiplier(epsilon: float, delta: float, *,
                            sample_rate: float, steps: int) -> float:
    """Noise multiplier for a DP-SGD run hitting (epsilon, delta).

    Inverts the moments-accountant bound of Abadi et al. (2016),
    ``epsilon ≈ q * sqrt(T * ln(1/delta)) / sigma`` — the same
    first-order calibration Opacus performs.
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0,1), got {delta}")
    if not 0.0 < sample_rate <= 1.0:
        raise ValueError(f"sample_rate must be in (0,1], "
                         f"got {sample_rate}")
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    return sample_rate * math.sqrt(steps * math.log(1.0 / delta)) / epsilon


class DPSGD(Optimizer):
    """SGD with batch-gradient clipping and Gaussian noise.

    Clips the whole-model gradient of each batch to ``clip_norm`` and
    adds ``N(0, (noise_multiplier * clip_norm / batch)^2)`` per
    coordinate, where ``batch`` is the current batch size (the
    batch-mean gradient has sensitivity ``clip_norm / batch``).
    """

    def __init__(self, model: Model, lr: float, *, clip_norm: float = 1.0,
                 noise_multiplier: float = 1.0,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__(model, lr)
        if clip_norm <= 0:
            raise ValueError(f"clip_norm must be positive, got {clip_norm}")
        if noise_multiplier < 0:
            raise ValueError(f"noise_multiplier must be >= 0, "
                             f"got {noise_multiplier}")
        self.clip_norm = clip_norm
        self.noise_multiplier = noise_multiplier
        self.rng = rng or np.random.default_rng(0)
        self._last_batch_size = 1

    def notify_batch_size(self, batch_size: int) -> None:
        """Tell the optimizer the current batch size (for noise scale)."""
        self._last_batch_size = max(1, int(batch_size))

    def step(self) -> None:
        """Whole-model clip + noise + descent as flat vector ops.

        The squared norm folds per layout entry
        (:meth:`~repro.nn.store.SegmentedView.sq_sum`) and the Gaussian
        noise is drawn per maximal trainable segment, so both the clip
        scale and the RNG stream match the legacy per-``(layer, key)``
        loop bitwise while skipping non-trainable buffer coordinates.
        """
        self.steps += 1
        if self._paramless:
            return
        params, grads = self._flat_buffers()
        view = self.model.segment_view()
        norm = math.sqrt(view.sq_sum(grads))
        scale = min(1.0, self.clip_norm / max(norm, 1e-12))
        noise_std = (self.noise_multiplier * self.clip_norm
                     / self._last_batch_size)
        update = grads * scale
        if noise_std > 0:
            view.add_gaussian(update, self.rng, noise_std)
        params -= self.lr * update

    def _update_flat(self, params, grads) -> None:  # pragma: no cover
        raise RuntimeError("DPSGD overrides step() directly")
