"""Central Differential Privacy (CDP) baseline.

Per §2.3/[33] (Naseri et al.): the *server* enforces DP — it bounds
each client's influence by clipping round deltas to S, averages, and
adds Gaussian noise ``N(0, (z * S / m)^2)`` to the aggregated delta
before sharing the model back (m = cohort size, z = noise multiplier
derived from the (epsilon, delta) budget across rounds).

Store-native: deltas, clipping and the Gaussian mechanism are flat
vector operations; the noise is one flat draw that consumes the
generator stream in layout order, matching the legacy per-array loop.
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn.dtypes import gaussian
from repro.nn.store import WeightsLike, WeightStore, as_store
from repro.privacy.defenses.accounting import PrivacyAccountant
from repro.privacy.defenses.base import Defense
from repro.privacy.defenses.ldp import clip_store


class CentralDP(Defense):
    """Server-side clipped-delta aggregation + Gaussian mechanism."""

    name = "cdp"

    def __init__(self, *, epsilon: float = 2.2, delta: float = 1e-5,
                 clip_norm: float = 3.0, num_clients: int = 5,
                 rounds: int = 1,
                 noise_multiplier: float | None = None) -> None:
        self.epsilon = epsilon
        self.delta = delta
        self.clip_norm = clip_norm
        self.num_clients = max(num_clients, 1)
        self.rounds = max(rounds, 1)
        if noise_multiplier is None:
            # Advanced-composition-flavoured calibration: per-round
            # epsilon ~ eps / sqrt(rounds), Gaussian mechanism inverse.
            per_round_eps = epsilon / math.sqrt(self.rounds)
            noise_multiplier = math.sqrt(
                2.0 * math.log(1.25 / delta)) / per_round_eps
        self.noise_multiplier = noise_multiplier
        self.accountant = PrivacyAccountant(epsilon, delta)
        self._round_global: WeightStore | None = None
        self._noise_buffer_bytes = 0

    def on_round_start(self, round_index, client_ids, template,
                       rng) -> None:
        self._round_global = as_store(template, copy=True)

    def on_send_update(self, client_id: int, weights: WeightsLike,
                       num_samples: int,
                       rng: np.random.Generator) -> WeightStore:
        """Bound this client's influence (server-enforced clipping).

        In the CDP threat model the server is trusted, so the clipping
        conceptually happens there; implementing it in the upload path
        keeps the simulator's message flow unchanged.
        """
        if self._round_global is None:
            raise RuntimeError("on_round_start was never called")
        update = as_store(weights, layout=self._round_global.layout)
        bounded = clip_store(update - self._round_global, self.clip_norm)
        return self._round_global + bounded

    def on_aggregate(self, weights: WeightsLike,
                     rng: np.random.Generator) -> WeightStore:
        if self._round_global is None:
            raise RuntimeError("on_round_start was never called")
        aggregated = as_store(weights, layout=self._round_global.layout)
        noisy = aggregated - self._round_global
        sigma = self.noise_multiplier * self.clip_norm / self.num_clients
        noisy.buffer += gaussian(rng, sigma, noisy.num_params,
                                 noisy.buffer.dtype)
        self.accountant.spend(
            self.epsilon / math.sqrt(self.rounds), self.delta)
        self._noise_buffer_bytes = noisy.nbytes
        return self._round_global + noisy

    # ------------------------------------------------------------------
    # executor state protocol
    # ------------------------------------------------------------------
    def export_round_state(self):
        if self._round_global is None:
            return None
        return (self._round_global.layout, self._round_global.buffer)

    def import_round_state(self, state) -> None:
        if state is not None:
            layout, buffer = state
            self._round_global = WeightStore(layout, buffer)

    def state_bytes(self) -> int:
        return self._noise_buffer_bytes

    def describe(self) -> str:
        return (f"cdp(eps={self.epsilon}, delta={self.delta}, "
                f"clip={self.clip_norm}, z={self.noise_multiplier:.2f})")
