"""Defense hook interface.

A defense is a single object per federated run that intercepts the
FL message flow at four points:

* ``on_receive_global``  — client downloads the global model
  (DINAR personalizes here);
* ``on_send_update``     — client uploads its update
  (DINAR obfuscates, LDP/WDP add noise, GC compresses, SA masks);
* ``on_aggregate``       — server finishes aggregation
  (CDP adds central noise);
* ``on_round_start``     — per-round setup (SA negotiates pairwise
  masks for the selected cohort).

Per-client state (DINAR's stored private layers, SA's masks) is keyed
by client id inside the defense object.  ``make_optimizer`` lets a
defense impose its own local-training optimizer (DINAR's adaptive
gradient descent); returning None keeps the experiment default.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.nn.model import Model
from repro.nn.store import WeightsLike
from repro.nn.optim import Optimizer


class Defense:
    """No-op defense: the paper's "No Defense" baseline."""

    name = "none"

    #: When True the client transmits ``num_samples * weights`` (plus any
    #: masking) and the server divides the plain sum by total samples —
    #: the transmission protocol of secure aggregation.
    pre_weighted = False

    def on_round_start(self, round_index: int, client_ids: Sequence[int],
                       template: WeightsLike,
                       rng: np.random.Generator) -> None:
        """Per-round setup before any client trains."""

    def on_receive_global(self, client_id: int,
                          weights: WeightsLike) -> WeightsLike:
        """Transform the downloaded global model for one client."""
        return weights

    def on_send_update(self, client_id: int, weights: WeightsLike,
                       num_samples: int,
                       rng: np.random.Generator) -> WeightsLike:
        """Transform the update a client is about to upload."""
        return weights

    def on_aggregate(self, weights: WeightsLike,
                     rng: np.random.Generator) -> WeightsLike:
        """Transform the aggregated model on the server."""
        return weights

    def make_optimizer(self, model: Model, lr: float) -> Optimizer | None:
        """Optionally impose a local-training optimizer."""
        return None

    def upload_nbytes(self, weights: WeightsLike) -> int:
        """Wire size of one transmitted update.

        Defaults to a dense float64 encoding; defenses with a cheaper
        wire format (gradient compression's sparse deltas) override.
        """
        from repro.fl.network import dense_nbytes
        return dense_nbytes(weights)

    def state_bytes(self) -> int:
        """Extra bytes this defense keeps alive (Table 3 memory column)."""
        return 0

    def describe(self) -> str:
        """One-line human-readable parameterization."""
        return self.name
