"""Defense hook interface.

A defense is a single object per federated run that intercepts the
FL message flow at four points:

* ``on_receive_global``  — client downloads the global model
  (DINAR personalizes here);
* ``on_send_update``     — client uploads its update
  (DINAR obfuscates, LDP/WDP add noise, GC compresses, SA masks);
* ``on_aggregate``       — server finishes aggregation
  (CDP adds central noise);
* ``on_round_start``     — per-round setup (SA negotiates pairwise
  masks for the selected cohort).

Per-client state (DINAR's stored private layers, SA's masks) is keyed
by client id inside the defense object.  ``make_optimizer`` lets a
defense impose its own local-training optimizer (DINAR's adaptive
gradient descent); returning None keeps the experiment default.

The export/import state hooks make that keyed state explicit so the
round executor (see ``repro.fl.executor``) can ship exactly one
client's slice of it into a worker process and merge the post-round
slice back — the defense object itself is never synchronized across
processes.  ``export_round_state`` covers state ``on_round_start``
computes on the parent that every client's hooks read (SA's cohort
masks, compression's round-start global).  The default hooks carry
nothing, which is correct for any stateless defense.

Weight-plane defenses (noise, clipping, masking, compression) operate
on the flat ``WeightStore`` buffer; gradient-plane defenses that hook
local training (LDP's DP-SGD, DINAR's ADGD) step the model's flat
gradient vector directly — see *The parameter plane* in
``docs/architecture.md``.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.nn.model import Model
from repro.nn.store import WeightsLike
from repro.nn.optim import Optimizer


class Defense:
    """No-op defense: the paper's "No Defense" baseline."""

    name = "none"

    #: When True the client transmits ``num_samples * weights`` (plus any
    #: masking) and the server divides the plain sum by total samples —
    #: the transmission protocol of secure aggregation.
    pre_weighted = False

    #: When True the round may only aggregate if *every* sampled client
    #: reported back: the defense's correctness depends on the complete
    #: cohort (secure aggregation's pairwise masks only cancel when both
    #: endpoints of every pair are summed).  The simulation rejects
    #: dropout/partial-completion configs up front and the server
    #: refuses to finalize a short round rather than silently corrupt
    #: the aggregate.
    requires_full_cohort = False

    def on_round_start(self, round_index: int, client_ids: Sequence[int],
                       template: WeightsLike,
                       rng: np.random.Generator) -> None:
        """Per-round setup before any client trains."""

    def on_receive_global(self, client_id: int,
                          weights: WeightsLike) -> WeightsLike:
        """Transform the downloaded global model for one client."""
        return weights

    def on_send_update(self, client_id: int, weights: WeightsLike,
                       num_samples: int,
                       rng: np.random.Generator) -> WeightsLike:
        """Transform the update a client is about to upload."""
        return weights

    def on_aggregate(self, weights: WeightsLike,
                     rng: np.random.Generator) -> WeightsLike:
        """Transform the aggregated model on the server."""
        return weights

    def make_optimizer(self, model: Model, lr: float,
                       rng: np.random.Generator | None = None
                       ) -> Optimizer | None:
        """Optionally impose a local-training optimizer.

        ``rng`` is the calling client's per-``(round, client)`` stream;
        defenses whose optimizer draws noise (DP-SGD) must use it so
        the draw is independent of construction order across processes.
        """
        return None

    # ------------------------------------------------------------------
    # executor state protocol
    # ------------------------------------------------------------------
    def export_client_state(self, client_id: int) -> Any:
        """Picklable snapshot of one client's defense state (or None)."""
        return None

    def import_client_state(self, client_id: int, state: Any) -> None:
        """Install one client's defense state; None clears it."""

    def export_round_state(self) -> Any:
        """Picklable snapshot of round-shared state (or None).

        Called on the parent after ``on_round_start``; shipped to every
        client task of the round.
        """
        return None

    def import_round_state(self, state: Any) -> None:
        """Install round-shared state before a client's hooks run."""

    def upload_nbytes(self, weights: WeightsLike) -> int:
        """Wire size of one transmitted update.

        Defaults to a dense float64 encoding; defenses with a cheaper
        wire format (gradient compression's sparse deltas) override.
        """
        from repro.fl.network import dense_nbytes
        return dense_nbytes(weights)

    def state_bytes(self) -> int:
        """Extra bytes this defense keeps alive (Table 3 memory column)."""
        return 0

    def describe(self) -> str:
        """One-line human-readable parameterization."""
        return self.name
