"""The five state-of-the-art FL defenses the paper compares against.

DINAR itself lives in :mod:`repro.core.dinar`; ``make_defense`` builds
any defense (including DINAR and the no-defense baseline) by its paper
name, with the paper's §5.2 parameterization as defaults.
"""

from __future__ import annotations

from repro.privacy.defenses.accounting import (
    PrivacyAccountant,
    advanced_composition,
    basic_composition,
    gaussian_sigma,
)
from repro.privacy.defenses.base import Defense
from repro.privacy.defenses.cdp import CentralDP
from repro.privacy.defenses.compression import GradientCompression
from repro.privacy.defenses.ladp import LayerwiseDP
from repro.privacy.defenses.ldp import LocalDP, clip_weights
from repro.privacy.defenses.secure_aggregation import SecureAggregation
from repro.privacy.defenses.wdp import WeakDP


def _make_dinar(**kwargs) -> Defense:
    # Imported lazily: DINAR pulls in the sensitivity machinery, which
    # the lightweight defenses never need.
    from repro.core.dinar import DINAR
    return DINAR(**kwargs)


#: The defense registry — the single source of truth for defense
#: names.  The CLI's ``--defense`` choices and ``make_defense`` both
#: derive from it, so a new defense registers exactly once.
DEFENSE_BUILDERS: dict = {
    "none": Defense,
    "wdp": WeakDP,
    "ldp": LocalDP,
    "cdp": CentralDP,
    "gc": GradientCompression,
    "sa": SecureAggregation,
    "dinar": _make_dinar,
    "ladp": LayerwiseDP,
}

#: Valid ``--defense`` values, in display order.
DEFENSE_CHOICES: tuple = tuple(DEFENSE_BUILDERS)

_ALIASES = {"no_defense": "none", "nodefense": "none"}


def make_defense(name: str, **kwargs) -> Defense:
    """Build a defense by its paper name.

    Accepted names are the :data:`DEFENSE_BUILDERS` keys (``none``,
    ``wdp``, ``ldp``, ``cdp``, ``gc``, ``sa``, ``dinar``, ``ladp``).
    Keyword arguments are forwarded to the constructor.
    """
    key = name.lower()
    key = _ALIASES.get(key, key)
    builder = DEFENSE_BUILDERS.get(key)
    if builder is None:
        raise ValueError(f"unknown defense {name!r}")
    return builder(**kwargs)


__all__ = [
    "DEFENSE_BUILDERS",
    "DEFENSE_CHOICES",
    "CentralDP",
    "Defense",
    "GradientCompression",
    "LayerwiseDP",
    "LocalDP",
    "PrivacyAccountant",
    "SecureAggregation",
    "WeakDP",
    "advanced_composition",
    "basic_composition",
    "clip_weights",
    "gaussian_sigma",
    "make_defense",
]
