"""The five state-of-the-art FL defenses the paper compares against.

DINAR itself lives in :mod:`repro.core.dinar`; ``make_defense`` builds
any defense (including DINAR and the no-defense baseline) by its paper
name, with the paper's §5.2 parameterization as defaults.
"""

from __future__ import annotations

from repro.privacy.defenses.accounting import (
    PrivacyAccountant,
    advanced_composition,
    basic_composition,
    gaussian_sigma,
)
from repro.privacy.defenses.base import Defense
from repro.privacy.defenses.cdp import CentralDP
from repro.privacy.defenses.compression import GradientCompression
from repro.privacy.defenses.ldp import LocalDP, clip_weights
from repro.privacy.defenses.secure_aggregation import SecureAggregation
from repro.privacy.defenses.wdp import WeakDP


def make_defense(name: str, **kwargs) -> Defense:
    """Build a defense by its paper name.

    Accepted names: ``none``, ``ldp``, ``cdp``, ``wdp``, ``gc``, ``sa``,
    ``dinar``.  Keyword arguments are forwarded to the constructor.
    """
    key = name.lower()
    if key in ("none", "no_defense", "nodefense"):
        return Defense()
    if key == "ldp":
        return LocalDP(**kwargs)
    if key == "cdp":
        return CentralDP(**kwargs)
    if key == "wdp":
        return WeakDP(**kwargs)
    if key == "gc":
        return GradientCompression(**kwargs)
    if key == "sa":
        return SecureAggregation(**kwargs)
    if key == "dinar":
        from repro.core.dinar import DINAR
        return DINAR(**kwargs)
    raise ValueError(f"unknown defense {name!r}")


__all__ = [
    "CentralDP",
    "Defense",
    "GradientCompression",
    "LocalDP",
    "PrivacyAccountant",
    "SecureAggregation",
    "WeakDP",
    "advanced_composition",
    "basic_composition",
    "clip_weights",
    "gaussian_sigma",
    "make_defense",
]
