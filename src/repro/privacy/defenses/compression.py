"""Gradient Compression (GC) baseline.

Per §2.3/[7]: compression "reduce[s] the amount of information
available for the attacker".  Implemented as top-k sparsification of
the client's round delta (update minus the round's global model) with
error feedback: coordinates dropped this round accumulate in a residual
that is added back next round.  The residual store is exactly why the
paper measures a large GC memory overhead ("storing the difference
between original and compressed gradients").

Store-native: the round delta *is* a flat vector on the weight plane,
so sparsification works directly on the store buffer — no flatten /
unflatten round-trips — and residuals are plain flat vectors.
"""

from __future__ import annotations

import numpy as np

from repro.nn.store import WeightsLike, WeightStore, as_store
from repro.privacy.defenses.base import Defense


class GradientCompression(Defense):
    """Top-k sparsification of round deltas with error feedback."""

    name = "gc"

    def __init__(self, *, keep_ratio: float = 0.1) -> None:
        if not 0.0 < keep_ratio <= 1.0:
            raise ValueError(
                f"keep_ratio must be in (0, 1], got {keep_ratio}")
        self.keep_ratio = keep_ratio
        self._round_global: WeightStore | None = None
        self._residuals: dict[int, np.ndarray] = {}

    def on_round_start(self, round_index, client_ids, template, rng) -> None:
        self._round_global = as_store(template, copy=True)

    def on_send_update(self, client_id: int, weights: WeightsLike,
                       num_samples: int,
                       rng: np.random.Generator) -> WeightStore:
        if self._round_global is None:
            raise RuntimeError("on_round_start was never called")
        update = as_store(weights, layout=self._round_global.layout)
        delta = update - self._round_global
        flat = delta.buffer
        residual = self._residuals.get(client_id)
        if residual is not None:
            flat += residual
        k = max(1, int(self.keep_ratio * flat.size))
        view = self._round_global.layout.segmented()
        keep_idx = view.top_k_indices(flat, k)
        sparse = np.zeros_like(flat)
        sparse[keep_idx] = flat[keep_idx]
        self._residuals[client_id] = flat - sparse
        return WeightStore(self._round_global.layout,
                           self._round_global.buffer + sparse)

    # ------------------------------------------------------------------
    # executor state protocol
    # ------------------------------------------------------------------
    def export_client_state(self, client_id: int):
        return self._residuals.get(client_id)

    def import_client_state(self, client_id: int, state) -> None:
        if state is None:
            self._residuals.pop(client_id, None)
        else:
            self._residuals[client_id] = state

    def export_round_state(self):
        if self._round_global is None:
            return None
        return (self._round_global.layout, self._round_global.buffer)

    def import_round_state(self, state) -> None:
        if state is not None:
            layout, buffer = state
            self._round_global = WeightStore(layout, buffer)

    def upload_nbytes(self, weights: WeightsLike) -> int:
        """GC transmits the sparse delta, not the dense model."""
        from repro.fl.network import sparse_nbytes
        if self._round_global is None:
            return super().upload_nbytes(weights)
        return sparse_nbytes(weights, self._round_global)

    def state_bytes(self) -> int:
        return sum(r.nbytes for r in self._residuals.values())

    def describe(self) -> str:
        return f"gc(keep={self.keep_ratio})"
