"""Secure Aggregation (SA) baseline.

Per §2.3/[54]: clients send cryptographically masked updates; masks
cancel in the server's sum, so the server learns only the aggregate.
This simulation reproduces SA's *observable* behaviour with seeded
pairwise PRG masks: for each cohort pair (i, j), i adds +m_ij and j
adds -m_ij to its pre-weighted update, so the sum — and hence the
global model — is exactly FedAvg, while every individual transmitted
update is statistically useless to a server-side attacker.

The paper's Fig. 6 shape follows mechanically: local-model attack AUC
drops to ~50% (the attacker sees masked noise) while the global model
is exactly as attackable as the no-defense baseline.

Store-native: each mask is one flat vector over the weight plane,
drawn in a single PRG call that consumes the pair stream in layout
order — the same values the legacy per-array loop drew — and applied
as one vectorized add.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.nn.dtypes import standard_normal
from repro.nn.store import Layout, WeightsLike, WeightStore, as_store
from repro.privacy.defenses.base import Defense


class SecureAggregation(Defense):
    """Pairwise-mask secure aggregation (Bonawitz-style, simulated)."""

    name = "sa"
    pre_weighted = True
    # Pairwise masks only cancel when both endpoints of every pair make
    # it into the sum: a missing client leaves its partners' masks
    # un-cancelled and the aggregate silently corrupt.  Declaring it
    # lets the fleet plane reject dropout configs before any mask is
    # ever negotiated.
    requires_full_cohort = True

    def __init__(self, *, mask_scale: float = 50.0) -> None:
        if mask_scale <= 0:
            raise ValueError(f"mask_scale must be positive, "
                             f"got {mask_scale}")
        self.mask_scale = mask_scale
        self._layout: Layout | None = None
        self._masks: dict[int, np.ndarray] = {}

    def on_round_start(self, round_index: int, client_ids: Sequence[int],
                       template: WeightsLike,
                       rng: np.random.Generator) -> None:
        """Negotiate pairwise masks for this round's cohort.

        The per-pair PRG seed models the Diffie-Hellman shared secret of
        the real protocol; both endpoints derive the same mask and apply
        it with opposite signs, so the cohort-wide sum is exactly zero.
        """
        self._layout = as_store(template).layout
        num_params = self._layout.num_params
        dtype = self._layout.dtype
        self._masks = {
            cid: np.zeros(num_params, dtype=dtype) for cid in client_ids
        }
        ids = sorted(client_ids)
        for pos, i in enumerate(ids):
            for j in ids[pos + 1:]:
                pair_rng = np.random.default_rng(
                    (int(round_index), int(i), int(j)))
                pair_mask = standard_normal(pair_rng, num_params, dtype)
                pair_mask *= self.mask_scale
                self._masks[i] += pair_mask
                self._masks[j] -= pair_mask

    def on_send_update(self, client_id: int, weights: WeightsLike,
                       num_samples: int,
                       rng: np.random.Generator) -> WeightStore:
        """Transmit ``num_samples * weights + mask`` (pre-weighted)."""
        if client_id not in self._masks:
            raise RuntimeError(
                f"client {client_id} has no mask for this round; "
                "on_round_start must run first")
        masked = as_store(weights, layout=self._layout) \
            * float(num_samples)
        masked.buffer += self._masks[client_id]
        return masked

    # ------------------------------------------------------------------
    # executor state protocol: a client's state is its round mask
    # ------------------------------------------------------------------
    def export_client_state(self, client_id: int):
        return self._masks.get(client_id)

    def import_client_state(self, client_id: int, state) -> None:
        if state is None:
            self._masks.pop(client_id, None)
        else:
            self._masks[client_id] = state

    def export_round_state(self):
        return self._layout

    def import_round_state(self, state) -> None:
        if state is not None:
            self._layout = state

    def state_bytes(self) -> int:
        return sum(mask.nbytes for mask in self._masks.values())

    def describe(self) -> str:
        return f"sa(mask_scale={self.mask_scale})"
