"""Privacy attacks (MIAs) and defenses.

``attacks`` implements the membership-inference attacks of Shokri et
al. [41] (shadow models) and the loss-threshold attack, plus the AUC
metrics of the paper's Appendix A.  ``defenses`` implements the five
state-of-the-art baselines the paper compares against (LDP, CDP, WDP,
Gradient Compression, Secure Aggregation); DINAR itself lives in
:mod:`repro.core`.
"""

from repro.privacy import attacks, defenses

__all__ = ["attacks", "defenses"]
