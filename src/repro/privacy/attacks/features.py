"""Attack feature extraction.

A MIA observes a model's behaviour on a candidate sample.  The standard
black-box observation vector (Shokri et al. [41]; Jia et al. [13])
combines the per-sample loss with confidence-vector statistics; members
of the training set systematically show lower loss, higher confidence
and lower entropy than non-members.
"""

from __future__ import annotations

import numpy as np

from repro.nn.losses import log_softmax
from repro.nn.model import Model

#: Logit magnitude cap applied before feature extraction.  A defended
#: model can diverge to inf/NaN outputs (e.g. heavy CDP noise); the
#: attacker still has to produce finite scores, so non-finite logits
#: are mapped to this saturated-but-finite range (which makes a
#: destroyed model look like an uninformative one, AUC ~ 50).
LOGIT_CAP = 1e4

#: Column names of :func:`attack_features` output.
FEATURE_NAMES = (
    "loss",
    "true_class_prob",
    "max_prob",
    "entropy",
    "margin",
    "correct",
)


def attack_features(model: Model, x: np.ndarray,
                    y: np.ndarray) -> np.ndarray:
    """Per-sample observation matrix of shape ``(n, 6)``.

    Columns: cross-entropy loss, probability of the true class, max
    probability, prediction entropy, top1-top2 margin, and whether the
    prediction is correct.
    """
    if len(x) != len(y):
        raise ValueError(f"length mismatch: {len(x)} vs {len(y)}")
    logits = _sanitize_logits(model.predict_logits(x))
    logp = log_softmax(logits)
    probs = np.exp(logp)
    n = len(y)
    idx = np.arange(n)
    loss = -logp[idx, y]
    true_prob = probs[idx, y]
    sorted_probs = np.sort(probs, axis=1)
    max_prob = sorted_probs[:, -1]
    margin = max_prob - sorted_probs[:, -2]
    entropy = -(probs * np.clip(logp, -60.0, None)).sum(axis=1)
    correct = (logits.argmax(axis=1) == y).astype(np.float64)
    return np.column_stack(
        [loss, true_prob, max_prob, entropy, margin, correct])


def per_example_loss(model: Model, x: np.ndarray,
                     y: np.ndarray) -> np.ndarray:
    """Cross-entropy loss per sample (Fig. 3's raw material)."""
    logits = _sanitize_logits(model.predict_logits(x))
    logp = log_softmax(logits)
    return -logp[np.arange(len(y)), y]


def _sanitize_logits(logits: np.ndarray) -> np.ndarray:
    """Clamp logits to a finite range (see :data:`LOGIT_CAP`)."""
    return np.clip(np.nan_to_num(logits, nan=0.0, posinf=LOGIT_CAP,
                                 neginf=-LOGIT_CAP),
                   -LOGIT_CAP, LOGIT_CAP)
