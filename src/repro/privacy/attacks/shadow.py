"""Shadow-model membership inference (Shokri et al. [41]).

The attacker holds prior-knowledge data drawn from the same
distribution as the victims' (the paper gives it half of each dataset,
§5.1).  It trains ``num_shadows`` shadow models that imitate the victim
training procedure, labels its own data "in"/"out" per shadow, and
trains a binary attack classifier on the models' observable behaviour
(:func:`repro.privacy.attacks.features.attack_features`).  The fitted
classifier then scores candidates against any target model.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.data.loader import iterate_batches
from repro.data.synthetic import Dataset
from repro.nn.activations import ReLU
from repro.nn.layers import Dense
from repro.nn.losses import SoftmaxCrossEntropy, softmax
from repro.nn.model import Model
from repro.nn.optim import Adam
from repro.privacy.attacks.features import attack_features


class ShadowAttack:
    """Shokri-style shadow-model MIA."""

    name = "shadow"

    def __init__(self, model_factory: Callable[[np.random.Generator], Model],
                 *, num_shadows: int = 3, epochs: int = 8,
                 lr: float = 0.05, batch_size: int = 64,
                 attack_epochs: int = 60, per_class: bool = False,
                 seed: int = 0) -> None:
        """
        Parameters
        ----------
        per_class:
            Shokri et al.'s original formulation trains one attack
            model per target class; the pooled single-model variant
            (default) is standard when per-class data is thin.
        """
        if num_shadows < 1:
            raise ValueError(f"num_shadows must be >= 1, got {num_shadows}")
        self.model_factory = model_factory
        self.num_shadows = num_shadows
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.attack_epochs = attack_epochs
        self.per_class = per_class
        self.seed = seed
        self._attack_model: Model | None = None
        self._class_models: dict[int, Model] = {}
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    # ------------------------------------------------------------------
    def fit(self, attacker_data: Dataset) -> "ShadowAttack":
        """Train shadow models + the attack classifier(s)."""
        features, labels, classes = [], [], []
        for shadow_idx in range(self.num_shadows):
            in_feat, in_cls, out_feat, out_cls = self._one_shadow(
                attacker_data, shadow_idx)
            features.extend([in_feat, out_feat])
            labels.extend([np.ones(len(in_feat)),
                           np.zeros(len(out_feat))])
            classes.extend([in_cls, out_cls])
        x = np.concatenate(features)
        y = np.concatenate(labels).astype(np.int64)
        cls = np.concatenate(classes)
        self._mean = x.mean(axis=0)
        self._std = x.std(axis=0) + 1e-8
        x = (x - self._mean) / self._std

        self._attack_model = self._train_classifier(x, y, tag=99)
        if self.per_class:
            for target in np.unique(cls):
                mask = cls == target
                # a per-class model needs both labels well represented
                if mask.sum() >= 40 and 0 < y[mask].sum() < mask.sum():
                    self._class_models[int(target)] = \
                        self._train_classifier(x[mask], y[mask],
                                               tag=100 + int(target))
        return self

    def _train_classifier(self, x: np.ndarray, y: np.ndarray, *,
                          tag: int) -> Model:
        rng = np.random.default_rng((self.seed, tag))
        classifier = Model([
            Dense(x.shape[1], 32, rng),
            ReLU(),
            Dense(32, 2, rng),
        ], rng=rng, name=f"attack_classifier_{tag}")
        optimizer = Adam(classifier, 0.01)
        loss = SoftmaxCrossEntropy()
        for _ in range(self.attack_epochs):
            for bx, by in iterate_batches(x, y, 128, rng):
                classifier.loss_and_grad(bx, by, loss)
                optimizer.step()
        return classifier

    def _one_shadow(self, data: Dataset, shadow_idx: int
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                               np.ndarray]:
        """Train one shadow model; return features + class labels for
        its member and non-member halves."""
        rng = np.random.default_rng((self.seed, shadow_idx))
        order = rng.permutation(len(data))
        half = len(data) // 2
        member = data.subset(order[:half])
        nonmember = data.subset(order[half:])

        shadow = self.model_factory(rng)
        shadow.attach_rng(rng)
        loss = SoftmaxCrossEntropy()
        from repro.nn.optim import SGD  # local to avoid cycle at import
        optimizer = SGD(shadow, self.lr)
        for _ in range(self.epochs):
            for bx, by in iterate_batches(
                    member.x, member.y, self.batch_size, rng):
                shadow.loss_and_grad(bx, by, loss)
                optimizer.step()
        return (attack_features(shadow, member.x, member.y), member.y,
                attack_features(shadow, nonmember.x, nonmember.y),
                nonmember.y)

    # ------------------------------------------------------------------
    def score(self, model: Model, x: np.ndarray,
              y: np.ndarray) -> np.ndarray:
        """Membership probability for each candidate (higher = member)."""
        if self._attack_model is None:
            raise RuntimeError("call fit() before score()")
        feats = attack_features(model, x, y)
        feats = (feats - self._mean) / self._std
        scores = softmax(
            self._attack_model.predict_logits(feats))[:, 1]
        if self._class_models:
            for target, classifier in self._class_models.items():
                mask = y == target
                if mask.any():
                    scores[mask] = softmax(
                        classifier.predict_logits(feats[mask]))[:, 1]
        return scores
