"""Metric-threshold membership inference attacks.

The cheapest effective MIAs score candidates by a single observable:

* :class:`LossThresholdAttack` (Yeom et al., 2018) — members have
  systematically lower loss;
* :class:`ConfidenceThresholdAttack` (Salem et al., 2019) — members
  get higher predicted-class confidence;
* :class:`EntropyThresholdAttack` (Song & Mittal, 2021) — the
  *modified* prediction entropy, which also accounts for the true
  label, separates members from non-members better than raw entropy.

AUC over these scores needs no attack training at all, which makes
them the workhorse attackers for parameter sweeps; the shadow attack
(:mod:`repro.privacy.attacks.shadow`) is the paper's headline
Shokri-style attacker.
"""

from __future__ import annotations

import numpy as np

from repro.nn.losses import log_softmax
from repro.nn.model import Model
from repro.privacy.attacks.features import _sanitize_logits, per_example_loss


class LossThresholdAttack:
    """Score candidates by negative per-sample loss (Yeom et al.)."""

    name = "loss_threshold"

    def score(self, model: Model, x: np.ndarray,
              y: np.ndarray) -> np.ndarray:
        """Higher score = more likely a member."""
        return -per_example_loss(model, x, y)


class ConfidenceThresholdAttack:
    """Score candidates by the model's confidence in its prediction."""

    name = "confidence_threshold"

    def score(self, model: Model, x: np.ndarray,
              y: np.ndarray) -> np.ndarray:
        logits = _sanitize_logits(model.predict_logits(x))
        probs = np.exp(log_softmax(logits))
        return probs.max(axis=1)


class EntropyThresholdAttack:
    """Score candidates by negative *modified* prediction entropy.

    Modified entropy (Song & Mittal, 2021) treats the true class
    specially: ``-(1-p_y) log(p_y) - sum_{c!=y} p_c log(1-p_c)``.
    Members — confidently correct — have near-zero modified entropy.
    """

    name = "entropy_threshold"

    def score(self, model: Model, x: np.ndarray,
              y: np.ndarray) -> np.ndarray:
        logits = _sanitize_logits(model.predict_logits(x))
        probs = np.exp(log_softmax(logits))
        eps = 1e-12
        n = len(y)
        idx = np.arange(n)
        p_true = probs[idx, y]
        term_true = -(1.0 - p_true) * np.log(p_true + eps)
        log_one_minus = np.log(1.0 - probs + eps)
        term_rest = -(probs * log_one_minus).sum(axis=1) \
            + probs[idx, y] * log_one_minus[idx, y]
        return -(term_true + term_rest)
