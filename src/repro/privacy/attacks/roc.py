"""ROC curve construction.

The attack AUC (Appendix A) integrates the ROC over all thresholds;
this module exposes the curve itself for analysis and for reporting an
attacker's TPR at a fixed low FPR — the stricter evaluation style of
recent MIA literature (Carlini et al., 2022).
"""

from __future__ import annotations

import numpy as np


def roc_curve(positive_scores: np.ndarray, negative_scores: np.ndarray
              ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(fpr, tpr, thresholds), thresholds descending.

    At each threshold t, a candidate is called a member when its score
    is >= t.
    """
    pos = np.asarray(positive_scores, dtype=np.float64)
    neg = np.asarray(negative_scores, dtype=np.float64)
    if pos.size == 0 or neg.size == 0:
        raise ValueError("both score sets must be non-empty")
    thresholds = np.unique(np.concatenate([pos, neg]))[::-1]
    thresholds = np.concatenate([[np.inf], thresholds])
    tpr = np.array([(pos >= t).mean() for t in thresholds])
    fpr = np.array([(neg >= t).mean() for t in thresholds])
    return fpr, tpr, thresholds


def auc_from_curve(fpr: np.ndarray, tpr: np.ndarray) -> float:
    """Trapezoidal AUC of a (fpr, tpr) curve."""
    order = np.argsort(fpr, kind="mergesort")
    return float(np.trapezoid(tpr[order], fpr[order]))


def tpr_at_fpr(positive_scores: np.ndarray, negative_scores: np.ndarray,
               max_fpr: float = 0.01) -> float:
    """Best TPR achievable while keeping FPR <= ``max_fpr``.

    The "low-FPR" attack metric: an attacker who cannot afford false
    accusations.  Random guessing gives ~``max_fpr``; a defended model
    should pin the attacker there.
    """
    if not 0.0 < max_fpr <= 1.0:
        raise ValueError(f"max_fpr must be in (0, 1], got {max_fpr}")
    fpr, tpr, _ = roc_curve(positive_scores, negative_scores)
    feasible = tpr[fpr <= max_fpr]
    return float(feasible.max()) if feasible.size else 0.0
