"""Attack metrics — the paper's Appendix A, implemented exactly.

Attack AUC lives in [50%, 100%]: 50% is a random attacker (the paper's
"optimal" defended value), 100% a perfect one.  A raw rank AUC below
0.5 means the attacker's scores are anti-predictive; a real attacker
would invert its classifier, so the reported AUC is
``max(auc, 1 - auc)`` — which is what clamps defended models at ~50%.
"""

from __future__ import annotations

import numpy as np


def roc_auc(positive_scores: np.ndarray,
            negative_scores: np.ndarray) -> float:
    """Rank-based (Mann-Whitney) AUC; ties count half.

    Equivalent to integrating the ROC curve over every threshold, which
    is why the paper calls AUC "a robust overall measure ... because its
    calculation involves all possible attacker's binary classification
    thresholds".
    """
    pos = np.asarray(positive_scores, dtype=np.float64)
    neg = np.asarray(negative_scores, dtype=np.float64)
    if pos.size == 0 or neg.size == 0:
        raise ValueError("both score sets must be non-empty")
    combined = np.concatenate([pos, neg])
    order = combined.argsort(kind="mergesort")
    ranks = np.empty_like(combined)
    ranks[order] = np.arange(1, combined.size + 1, dtype=np.float64)
    # average ranks over ties
    sorted_vals = combined[order]
    i = 0
    while i < combined.size:
        j = i
        while j + 1 < combined.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        if j > i:
            ranks[order[i:j + 1]] = 0.5 * (i + 1 + j + 1)
        i = j + 1
    rank_sum = ranks[:pos.size].sum()
    u = rank_sum - pos.size * (pos.size + 1) / 2.0
    return float(u / (pos.size * neg.size))


def attack_auc(member_scores: np.ndarray,
               nonmember_scores: np.ndarray) -> float:
    """Paper-convention attack AUC in [0.5, 1.0].

    ``member_scores`` are the attacker's membership scores on true
    members, ``nonmember_scores`` on true non-members.
    """
    raw = roc_auc(member_scores, nonmember_scores)
    return max(raw, 1.0 - raw)


def global_model_auc(attack, simulation, *, max_samples: int = 500,
                     rng: np.random.Generator | None = None) -> float:
    """Attack AUC against the global FL model (Appendix A, metric 1).

    Members are drawn from all clients' training data, non-members from
    the held-out test pool — the client-side attacker's task: "whether a
    data sample has been used for training by other clients".
    """
    rng = rng or np.random.default_rng(0)
    model = simulation.global_model()
    members = simulation.split.members
    nonmembers = simulation.split.nonmembers
    m_idx = _sample(rng, len(members), max_samples)
    n_idx = _sample(rng, len(nonmembers), max_samples)
    m_scores = attack.score(model, members.x[m_idx], members.y[m_idx])
    n_scores = attack.score(model, nonmembers.x[n_idx], nonmembers.y[n_idx])
    return attack_auc(m_scores, n_scores)


def local_models_auc(attack, simulation, *, max_samples: int = 500,
                     rng: np.random.Generator | None = None) -> float:
    """Mean attack AUC over clients' transmitted models (Appendix A,
    metric 2: ``sum_i AUC(theta_i) / N``).

    For each client the attacker (sitting on the server) inspects the
    update that client actually uploaded — after any defense transform —
    and tries to separate that client's training samples from held-out
    data.
    """
    rng = rng or np.random.default_rng(0)
    nonmembers = simulation.split.nonmembers
    aucs = []
    # Ascending id over the round's participants — the same clients in
    # the same order as iterating the full fleet and skipping
    # non-participants, without materializing a single FLClient (at
    # fleet scale, most clients never trained).
    for client_id in sorted(simulation.last_updates):
        model = simulation.transmitted_model(client_id)
        data = simulation.client_dataset(client_id)
        m_idx = _sample(rng, len(data), max_samples)
        n_idx = _sample(rng, len(nonmembers), max_samples)
        m_scores = attack.score(model, data.x[m_idx], data.y[m_idx])
        n_scores = attack.score(
            model, nonmembers.x[n_idx], nonmembers.y[n_idx])
        aucs.append(attack_auc(m_scores, n_scores))
    if not aucs:
        raise RuntimeError("no client has transmitted an update yet")
    return float(np.mean(aucs))


def _sample(rng: np.random.Generator, n: int, max_samples: int) -> np.ndarray:
    if n <= max_samples:
        return np.arange(n)
    return rng.choice(n, size=max_samples, replace=False)
