"""Membership inference attacks and privacy metrics (Appendix A)."""

from repro.privacy.attacks.calibrated import ReferenceCalibratedAttack
from repro.privacy.attacks.features import attack_features, FEATURE_NAMES
from repro.privacy.attacks.gradient import (
    LayerGradientAttack,
    layer_gradient_scores,
    per_example_layer_gradient_norms,
)
from repro.privacy.attacks.inversion import (
    class_inversion_report,
    invert_class,
    inversion_fidelity,
)
from repro.privacy.attacks.metrics import (
    attack_auc,
    global_model_auc,
    local_models_auc,
    roc_auc,
)
from repro.privacy.attacks.roc import auc_from_curve, roc_curve, tpr_at_fpr
from repro.privacy.attacks.shadow import ShadowAttack
from repro.privacy.attacks.threshold import (
    ConfidenceThresholdAttack,
    EntropyThresholdAttack,
    LossThresholdAttack,
)

__all__ = [
    "ConfidenceThresholdAttack",
    "EntropyThresholdAttack",
    "FEATURE_NAMES",
    "LayerGradientAttack",
    "LossThresholdAttack",
    "ReferenceCalibratedAttack",
    "ShadowAttack",
    "attack_auc",
    "attack_features",
    "auc_from_curve",
    "class_inversion_report",
    "global_model_auc",
    "invert_class",
    "inversion_fidelity",
    "layer_gradient_scores",
    "local_models_auc",
    "per_example_layer_gradient_norms",
    "roc_auc",
    "roc_curve",
    "tpr_at_fpr",
]
