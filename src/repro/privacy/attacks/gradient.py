"""White-box per-layer gradient membership signals.

The §3 analysis measures how much each layer's gradients differ between
member and non-member samples.  The same signal can be weaponized: a
white-box attacker computes the gradient norm of a single layer for a
candidate sample (members, being already fit, induce smaller
gradients) and uses ``-norm`` as a membership score.
"""

from __future__ import annotations

import numpy as np

from repro.nn.losses import Loss, SoftmaxCrossEntropy
from repro.nn.model import Model


def per_example_layer_gradient_norms(
        model: Model, x: np.ndarray, y: np.ndarray, *,
        loss: Loss | None = None,
        max_samples: int | None = None) -> np.ndarray:
    """Gradient L2 norm per layer for each sample individually.

    Returns shape ``(n, J)`` where J is the number of trainable layers.
    Each sample requires its own backward pass, so cap with
    ``max_samples`` in sweeps.
    """
    loss = loss or SoftmaxCrossEntropy()
    n = len(y) if max_samples is None else min(len(y), max_samples)
    norms = np.zeros((n, model.num_trainable_layers))
    for i in range(n):
        vectors = model.per_layer_gradient_vectors(
            x[i:i + 1], y[i:i + 1], loss)
        norms[i] = [float(np.linalg.norm(v)) for v in vectors]
    return norms


def layer_gradient_scores(model: Model, x: np.ndarray, y: np.ndarray,
                          layer_index: int, *,
                          max_samples: int | None = None) -> np.ndarray:
    """Membership scores from one layer's per-sample gradient norms."""
    norms = per_example_layer_gradient_norms(
        model, x, y, max_samples=max_samples)
    if not 0 <= layer_index < norms.shape[1]:
        raise IndexError(
            f"layer_index {layer_index} out of range "
            f"[0, {norms.shape[1]})")
    return -norms[:, layer_index]


class LayerGradientAttack:
    """Attack adapter exposing the layer-gradient signal as ``score``."""

    name = "layer_gradient"

    def __init__(self, layer_index: int, *,
                 max_samples: int | None = None) -> None:
        self.layer_index = layer_index
        self.max_samples = max_samples

    def score(self, model: Model, x: np.ndarray,
              y: np.ndarray) -> np.ndarray:
        return layer_gradient_scores(
            model, x, y, self.layer_index, max_samples=self.max_samples)
