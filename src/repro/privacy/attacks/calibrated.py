"""Difficulty-calibrated membership inference (Watson et al., 2022).

The loss-threshold attack confuses *hard* samples with *non-members*:
an intrinsically difficult sample has high loss whether or not it was
trained on. Calibrating against reference models fixes this — the
attacker trains k reference models on its own data (the candidate is a
non-member of every reference) and scores

    score(x) = mean_ref_loss(x) - target_loss(x)

i.e. how much *better* the target model fits the sample than models
that provably never saw it. This is the strongest black-box attacker
in the suite and an extension beyond the paper's Shokri attacker.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.data.loader import iterate_batches
from repro.data.synthetic import Dataset
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import Model
from repro.nn.optim import SGD
from repro.privacy.attacks.features import per_example_loss


class ReferenceCalibratedAttack:
    """Score candidates by reference-calibrated loss."""

    name = "reference_calibrated"

    def __init__(self, model_factory: Callable[[np.random.Generator], Model],
                 *, num_references: int = 3, epochs: int = 8,
                 lr: float = 0.05, batch_size: int = 64,
                 subsample: float = 0.5, seed: int = 0) -> None:
        """
        Parameters
        ----------
        num_references:
            Reference models to train; more = smoother calibration.
        subsample:
            Fraction of the attacker data each reference trains on
            (independent draws decorrelate the references).
        """
        if num_references < 1:
            raise ValueError(
                f"num_references must be >= 1, got {num_references}")
        if not 0.0 < subsample <= 1.0:
            raise ValueError(f"subsample must be in (0,1], got {subsample}")
        self.model_factory = model_factory
        self.num_references = num_references
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.subsample = subsample
        self.seed = seed
        self._references: list[Model] = []

    def fit(self, attacker_data: Dataset) -> "ReferenceCalibratedAttack":
        """Train the reference models on the attacker's own data."""
        self._references = []
        for idx in range(self.num_references):
            rng = np.random.default_rng((self.seed, idx))
            take = max(1, int(len(attacker_data) * self.subsample))
            subset = attacker_data.subset(
                rng.choice(len(attacker_data), size=take, replace=False))
            reference = self.model_factory(rng)
            reference.attach_rng(rng)
            loss = SoftmaxCrossEntropy()
            optimizer = SGD(reference, self.lr)
            for _ in range(self.epochs):
                for bx, by in iterate_batches(
                        subset.x, subset.y, self.batch_size, rng):
                    reference.loss_and_grad(bx, by, loss)
                    optimizer.step()
            self._references.append(reference)
        return self

    def score(self, model: Model, x: np.ndarray,
              y: np.ndarray) -> np.ndarray:
        """Higher = more likely a member of the *target* model's set."""
        if not self._references:
            raise RuntimeError("call fit() before score()")
        target = per_example_loss(model, x, y)
        reference = np.mean(
            [per_example_loss(ref, x, y) for ref in self._references],
            axis=0)
        return reference - target
