"""Model inversion attack (extension — the paper's §6 future work).

Given white-box access to a model, reconstruct a representative input
for a target class by gradient ascent on the input: start from noise
and maximize the class logit (optionally with an L2 prior).  Against
an unprotected model the reconstruction correlates with the class's
true prototype; against a DINAR-obfuscated upload it does not — the
randomized layer severs the path from logits back to input space.
"""

from __future__ import annotations

import numpy as np

from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import Model


def invert_class(model: Model, target_class: int,
                 input_shape: tuple[int, ...], *,
                 rng: np.random.Generator | None = None,
                 steps: int = 120, lr: float = 0.5,
                 l2_prior: float = 1e-3) -> np.ndarray:
    """Reconstruct one representative input for ``target_class``.

    Returns an array of ``input_shape`` maximizing
    ``log p(target_class | x) - l2_prior * ||x||^2``.
    """
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    rng = rng or np.random.default_rng(0)
    x = rng.standard_normal((1, *input_shape)) * 0.1
    loss = SoftmaxCrossEntropy()
    y = np.array([target_class])
    for _ in range(steps):
        logits = model.forward(x, training=False)
        loss.forward(logits, y)
        grad_input = model.backward(loss.backward())
        # descend the loss (= ascend the class log-probability), with
        # an L2 pull toward small inputs as the image prior
        x = x - lr * (grad_input + l2_prior * x)
    return x[0]


def inversion_fidelity(reconstruction: np.ndarray,
                       class_samples: np.ndarray) -> float:
    """Pearson correlation between a reconstruction and the mean of
    real samples of the class (1.0 = perfect recovery, ~0 = nothing)."""
    if len(class_samples) == 0:
        raise ValueError("need at least one real sample of the class")
    target = class_samples.mean(axis=0).ravel()
    rec = reconstruction.ravel()
    if target.std() == 0 or rec.std() == 0:
        return 0.0
    return float(np.corrcoef(rec, target)[0, 1])


def class_inversion_report(model: Model, x: np.ndarray, y: np.ndarray,
                           classes: list[int] | None = None, *,
                           rng: np.random.Generator | None = None,
                           steps: int = 120) -> dict[int, float]:
    """Fidelity of inversion per class against real data ``(x, y)``."""
    rng = rng or np.random.default_rng(0)
    classes = classes if classes is not None \
        else sorted(np.unique(y).tolist())
    report = {}
    for cls in classes:
        reconstruction = invert_class(
            model, cls, x.shape[1:], rng=rng, steps=steps)
        report[cls] = inversion_fidelity(reconstruction, x[y == cls])
    return report
