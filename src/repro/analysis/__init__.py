"""Analysis utilities: divergence measures and loss distributions."""

from repro.analysis.divergence import (
    histogram_distribution,
    jensen_shannon_divergence,
    js_divergence_from_samples,
)
from repro.analysis.leakage_over_time import (
    LeakagePoint,
    LeakageTrajectory,
    leakage_over_training,
)
from repro.analysis.loss_distribution import (
    LossDistributions,
    loss_distributions,
)

__all__ = [
    "LeakagePoint",
    "LeakageTrajectory",
    "LossDistributions",
    "histogram_distribution",
    "jensen_shannon_divergence",
    "js_divergence_from_samples",
    "leakage_over_training",
    "loss_distributions",
]
