"""Leakage-over-training analysis.

Membership leakage is not static: each FL round fits the members a
little harder, so the attack AUC *grows* over training on an
unprotected run. This module drives a simulation round-by-round and
attacks the global model and the freshest client uploads after every
round, producing the leakage trajectory — and showing that DINAR pins
it at ~50% from the very first round.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fl.simulation import FederatedSimulation
from repro.privacy.attacks.metrics import (
    global_model_auc,
    local_models_auc,
)


@dataclass
class LeakagePoint:
    """Privacy and utility after one FL round."""

    round_index: int
    global_auc: float
    local_auc: float
    global_accuracy: float


@dataclass
class LeakageTrajectory:
    """The round-by-round leakage curve of one federated run."""

    points: list[LeakagePoint] = field(default_factory=list)

    @property
    def final(self) -> LeakagePoint:
        if not self.points:
            raise RuntimeError("trajectory is empty")
        return self.points[-1]

    @property
    def peak_local_auc(self) -> float:
        return max(p.local_auc for p in self.points)

    def series(self) -> tuple[list[int], list[float], list[float]]:
        """(rounds, global_aucs, local_aucs) for plotting/reporting."""
        return ([p.round_index for p in self.points],
                [p.global_auc for p in self.points],
                [p.local_auc for p in self.points])


def leakage_over_training(simulation: FederatedSimulation, attack, *,
                          max_samples: int = 300,
                          seed: int = 0) -> LeakageTrajectory:
    """Run the simulation to completion, attacking after every round.

    The simulation must be freshly constructed (round 0 not yet run).
    """
    if simulation.last_updates:
        raise ValueError("simulation has already run; pass a fresh one")
    trajectory = LeakageTrajectory()
    for round_index in range(simulation.config.rounds):
        simulation.run_round(round_index)
        rng = np.random.default_rng((seed, round_index))
        trajectory.points.append(LeakagePoint(
            round_index=round_index,
            global_auc=global_model_auc(
                attack, simulation, max_samples=max_samples, rng=rng),
            local_auc=local_models_auc(
                attack, simulation, max_samples=max_samples, rng=rng),
            global_accuracy=simulation.global_accuracy(),
        ))
    return trajectory
