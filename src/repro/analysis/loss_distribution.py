"""Member vs non-member loss distributions (Fig. 3).

The defining observable of membership leakage: when the two loss
distributions differ, a MIA can threshold between them; when they
match, the model offers "lack of insightful information to distinguish
members and non-members" (§5.4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.divergence import js_divergence_from_samples
from repro.nn.model import Model
from repro.privacy.attacks.features import per_example_loss


@dataclass
class LossDistributions:
    """Per-population loss samples and their summary statistics."""

    member_losses: np.ndarray
    nonmember_losses: np.ndarray

    @property
    def member_mean(self) -> float:
        return float(self.member_losses.mean())

    @property
    def nonmember_mean(self) -> float:
        return float(self.nonmember_losses.mean())

    @property
    def gap(self) -> float:
        """Mean-loss generalization gap (non-member minus member)."""
        return self.nonmember_mean - self.member_mean

    @property
    def divergence(self) -> float:
        """JS divergence between the two loss distributions."""
        return js_divergence_from_samples(
            self.member_losses, self.nonmember_losses)

    def histograms(self, num_bins: int = 30
                   ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(bin_edges, member_density, nonmember_density) for plotting."""
        lo = float(min(self.member_losses.min(),
                       self.nonmember_losses.min()))
        hi = float(max(self.member_losses.max(),
                       self.nonmember_losses.max()))
        bins = np.linspace(lo, hi if hi > lo else lo + 1.0, num_bins + 1)
        m, _ = np.histogram(self.member_losses, bins=bins, density=True)
        n, _ = np.histogram(self.nonmember_losses, bins=bins, density=True)
        return bins, m, n


def loss_distributions(model: Model, member_x: np.ndarray,
                       member_y: np.ndarray, nonmember_x: np.ndarray,
                       nonmember_y: np.ndarray) -> LossDistributions:
    """Collect per-sample losses for both populations."""
    return LossDistributions(
        member_losses=per_example_loss(model, member_x, member_y),
        nonmember_losses=per_example_loss(model, nonmember_x, nonmember_y),
    )
