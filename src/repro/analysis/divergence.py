"""Jensen-Shannon divergence (Menendez et al. [27]).

The paper's generalization-gap measure: JS divergence between the
distribution of a layer's gradients on member samples and on non-member
samples (§3, §4.1).  Computed here from shared-bin histograms; base-2
logs bound the result in [0, 1].
"""

from __future__ import annotations

import numpy as np


def histogram_distribution(samples: np.ndarray, bins: np.ndarray,
                           *, smoothing: float = 1e-12) -> np.ndarray:
    """Normalized histogram over fixed bin edges (a discrete pmf)."""
    counts, _ = np.histogram(samples, bins=bins)
    pmf = counts.astype(np.float64) + smoothing
    return pmf / pmf.sum()


def kl_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """KL(p || q) in bits over two aligned pmfs."""
    if p.shape != q.shape:
        raise ValueError(f"pmf shapes differ: {p.shape} vs {q.shape}")
    mask = p > 0
    return float(np.sum(p[mask] * np.log2(p[mask] / q[mask])))


def jensen_shannon_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """JS(p, q) in bits; symmetric, bounded in [0, 1]."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if not (np.isclose(p.sum(), 1.0, atol=1e-6)
            and np.isclose(q.sum(), 1.0, atol=1e-6)):
        raise ValueError("inputs must be normalized pmfs")
    m = 0.5 * (p + q)
    return 0.5 * kl_divergence(p, m) + 0.5 * kl_divergence(q, m)


def js_divergence_from_samples(a: np.ndarray, b: np.ndarray, *,
                               num_bins: int = 50) -> float:
    """JS divergence between two empirical samples via shared bins."""
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    if a.size == 0 or b.size == 0:
        raise ValueError("both sample sets must be non-empty")
    lo = min(a.min(), b.min())
    hi = max(a.max(), b.max())
    if lo == hi:
        return 0.0
    bins = np.linspace(lo, hi, num_bins + 1)
    return jensen_shannon_divergence(
        histogram_distribution(a, bins), histogram_distribution(b, bins))
