"""VGG-family stand-in for the paper's VGG11 (GTSRB / CelebA).

Keeps the family signature — stacked conv/ReLU groups with max pooling,
followed by fully-connected layers — at CPU width and depth.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import ReLU
from repro.nn.layers import Conv2d, Dense, Flatten, Layer, MaxPool2d
from repro.nn.model import Model


def build_vgg_small(input_shape: tuple[int, int, int], num_classes: int,
                    rng: np.random.Generator, *,
                    widths: tuple[int, ...] = (8, 16),
                    dense_width: int = 64,
                    dtype: np.dtype | str = np.float64) -> Model:
    """Small VGG: ``widths`` conv-pool groups, then two dense layers.

    Each group is ``Conv3x3 -> ReLU -> MaxPool2``, so input height/width
    must be divisible by ``2 ** len(widths)``.
    """
    in_c, h, w = input_shape
    factor = 2 ** len(widths)
    if h % factor or w % factor:
        raise ValueError(
            f"input {h}x{w} not divisible by pooling factor {factor}")
    layers: list[Layer] = []
    prev = in_c
    for width in widths:
        layers.extend([
            Conv2d(prev, width, 3, rng, padding=1, dtype=dtype),
            ReLU(),
            MaxPool2d(2),
        ])
        prev = width
    layers.extend([
        Flatten(),
        Dense(prev * (h // factor) * (w // factor), dense_width, rng,
              dtype=dtype),
        ReLU(),
        Dense(dense_width, num_classes, rng, dtype=dtype),
    ])
    return Model(layers, rng=rng, name=f"vgg{len(widths)+2}")
