"""Model registry: build the right architecture for a dataset by name."""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.models.audio import build_audio_m5
from repro.models.fcnn import build_fcnn
from repro.models.resnet import build_resnet_small
from repro.models.vgg import build_vgg_small
from repro.nn.model import Model

#: Signature of a model factory:
#: (input_shape, num_classes, rng, *, dtype=...) -> Model.
ModelBuilder = Callable[..., Model]

_REGISTRY: dict[str, ModelBuilder] = {
    "fcnn": lambda shape, classes, rng, **kw: build_fcnn(
        int(np.prod(shape)), classes, rng, **kw),
    "resnet": build_resnet_small,
    "vgg": build_vgg_small,
    "audio": build_audio_m5,
}


def available_models() -> list[str]:
    """Names accepted by :func:`build_model`."""
    return sorted(_REGISTRY)


def build_model(name: str, input_shape: tuple, num_classes: int,
                rng: np.random.Generator, *,
                dtype: np.dtype | str = np.float64) -> Model:
    """Build a model family by name for the given input shape.

    ``dtype`` fixes the precision every parameter, buffer and flat plane
    of the model is allocated in (float64 default, float32 optional).
    """
    try:
        builder = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown model {name!r}; known: {available_models()}") from None
    return builder(input_shape, num_classes, rng, dtype=np.dtype(dtype))
