"""Paper model architectures, CPU-scaled.

The paper trains ResNet20 (Cifar-10/100), VGG11 (GTSRB/CelebA), M18
(Speech Commands) and a 6-layer FCNN (Purchase100/Texas100).  This
package builds the same *families* at laptop scale: the FCNN keeps the
paper's exact layer structure (optionally at the paper's exact widths);
conv nets keep their family signature (residual blocks / VGG conv-pool
stacks / deep 1-D conv audio nets) at reduced width.
"""

from repro.models.audio import build_audio_m5
from repro.models.fcnn import PAPER_FCNN_HIDDEN, build_fcnn
from repro.models.registry import ModelBuilder, available_models, build_model
from repro.models.resnet import ResidualBlock, build_resnet_small
from repro.models.vgg import build_vgg_small

__all__ = [
    "ModelBuilder",
    "PAPER_FCNN_HIDDEN",
    "ResidualBlock",
    "available_models",
    "build_audio_m5",
    "build_fcnn",
    "build_model",
    "build_resnet_small",
    "build_vgg_small",
]
