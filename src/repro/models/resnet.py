"""ResNet-family stand-in for the paper's ResNet20 (Cifar-10/100).

A residual block is exposed as a *single* composite layer so that
DINAR's per-layer obfuscation treats it as one unit — the same
granularity the paper uses when it reports "layer" indices on conv nets.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import ReLU
from repro.nn.layers import AvgPool2d, Conv2d, Dense, Flatten, Layer
from repro.nn.model import Model


class ResidualBlock(Layer):
    """Two 3x3 convolutions with an identity skip: ``relu(F(x) + x)``.

    Exposes the sublayers' parameters as a merged live view
    (``conv1.W``, ``conv1.b``, ``conv2.W``, ``conv2.b``) so optimizers,
    FL aggregation and DINAR obfuscation all see one flat dict.
    """

    def __init__(self, channels: int, rng: np.random.Generator, *,
                 dtype: np.dtype | str = np.float64) -> None:
        super().__init__()
        self.channels = channels
        self.conv1 = Conv2d(channels, channels, 3, rng, padding=1,
                            dtype=dtype)
        self.conv2 = Conv2d(channels, channels, 3, rng, padding=1,
                            dtype=dtype)
        self.relu_inner = ReLU()
        self.relu_out = ReLU()

    @property
    def name(self) -> str:
        return f"ResBlock({self.channels})"

    @property
    def params(self) -> dict[str, np.ndarray]:
        merged = {f"conv1.{k}": v for k, v in self.conv1.params.items()}
        merged.update({f"conv2.{k}": v for k, v in self.conv2.params.items()})
        return merged

    @property
    def grads(self) -> dict[str, np.ndarray]:
        merged = {f"conv1.{k}": v for k, v in self.conv1.grads.items()}
        merged.update({f"conv2.{k}": v for k, v in self.conv2.grads.items()})
        return merged

    def adopt_views(self, params: dict[str, np.ndarray],
                    buffers: dict[str, np.ndarray],
                    grads: dict[str, np.ndarray]) -> None:
        """Route flat-plane views to the sublayers by name prefix.

        The merged ``conv1.W``-style names the block exposes are split
        back into each convolution's own keys, so the sublayers bind
        their slices of the model buffers directly.
        """
        if buffers:
            raise KeyError(f"{self.name} owns no buffers, got "
                           f"{sorted(buffers)}")

        def split(views: dict[str, np.ndarray]
                  ) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
            first: dict[str, np.ndarray] = {}
            second: dict[str, np.ndarray] = {}
            for key, view in views.items():
                if key.startswith("conv1."):
                    first[key[len("conv1."):]] = view
                elif key.startswith("conv2."):
                    second[key[len("conv2."):]] = view
                else:
                    raise KeyError(
                        f"{self.name} has no parameter {key!r}")
            return first, second

        params1, params2 = split(params)
        grads1, grads2 = split(grads)
        self.conv1.adopt_views(params1, {}, grads1)
        self.conv2.adopt_views(params2, {}, grads2)

    def forward(self, x: np.ndarray, *, training: bool = True,
                workspace=None) -> np.ndarray:
        # each sublayer requests its own arena scratch (the workspace
        # keys on the owning object, so conv1 and conv2 never collide
        # despite identical shapes); only the skip-sum buffer belongs
        # to the block itself.
        out = self.conv1.forward(x, training=training, workspace=workspace)
        out = self.relu_inner.forward(out, training=training,
                                      workspace=workspace)
        out = self.conv2.forward(out, training=training,
                                 workspace=workspace)
        if out.shape == x.shape and out.strides == x.strides:
            # both branches share a layout (e.g. conv-transposed): the
            # legacy ``out + x`` result kept it, so the sum buffer must.
            summed = self._scratch_like(workspace, "sum", out,
                                        np.result_type(out.dtype, x.dtype))
        else:
            summed = self._scratch(workspace, "sum", out.shape,
                                   np.result_type(out.dtype, x.dtype))
        np.add(out, x, out=summed)
        return self.relu_out.forward(summed, training=training,
                                     workspace=workspace)

    def backward(self, grad: np.ndarray, *, workspace=None) -> np.ndarray:
        grad = self.relu_out.backward(grad, workspace=workspace)
        skip = grad  # d(out + x)/dx through the identity branch
        grad = self.conv2.backward(grad, workspace=workspace)
        grad = self.relu_inner.backward(grad, workspace=workspace)
        grad = self.conv1.backward(grad, workspace=workspace)
        dsum = self._scratch(workspace, "dsum", grad.shape,
                             np.result_type(grad.dtype, skip.dtype))
        np.add(grad, skip, out=dsum)
        return dsum


def build_resnet_small(input_shape: tuple[int, int, int], num_classes: int,
                       rng: np.random.Generator, *, channels: int = 8,
                       num_blocks: int = 2,
                       dtype: np.dtype | str = np.float64) -> Model:
    """Small residual conv net: stem conv, residual blocks, pool, classifier.

    Parameters
    ----------
    input_shape:
        ``(channels, height, width)`` of the input images.
    channels:
        Width of the residual trunk (paper's ResNet20 uses 16–64).
    num_blocks:
        Number of residual blocks (paper's ResNet20 uses 9).
    """
    in_c, h, w = input_shape
    layers: list[Layer] = [
        Conv2d(in_c, channels, 3, rng, padding=1, dtype=dtype),
        ReLU(),
    ]
    for _ in range(num_blocks):
        layers.append(ResidualBlock(channels, rng, dtype=dtype))
    pool = 2
    layers.extend([
        AvgPool2d(pool),
        Flatten(),
        Dense(channels * (h // pool) * (w // pool), num_classes, rng,
              dtype=dtype),
    ])
    return Model(layers, rng=rng, name=f"resnet{num_blocks}x{channels}")
