"""M-series raw-waveform classifier stand-in for the paper's M18.

Dai et al. (2017)'s M-series nets are deep stacks of Conv1d/MaxPool1d
over raw audio; this builds the same shape (an "M5-like" net) sized for
synthetic 1-D waveforms.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import ReLU
from repro.nn.layers import Conv1d, Dense, Flatten, Layer, MaxPool1d
from repro.nn.model import Model


def build_audio_m5(input_shape: tuple[int, int], num_classes: int,
                   rng: np.random.Generator, *,
                   widths: tuple[int, ...] = (8, 16),
                   dtype: np.dtype | str = np.float64) -> Model:
    """Deep 1-D conv net over raw waveforms.

    Parameters
    ----------
    input_shape:
        ``(channels, length)``; length must survive an initial stride-4
        conv and a MaxPool1d(4) per width group.
    """
    in_c, length = input_shape
    layers: list[Layer] = [
        Conv1d(in_c, widths[0], 9, rng, stride=4, padding=4, dtype=dtype),
        ReLU(),
        MaxPool1d(4),
    ]
    current_len = ((length + 2 * 4 - 9) // 4 + 1) // 4
    prev = widths[0]
    for width in widths[1:]:
        layers.extend([
            Conv1d(prev, width, 3, rng, padding=1, dtype=dtype),
            ReLU(),
            MaxPool1d(4),
        ])
        current_len //= 4
        prev = width
    if current_len < 1:
        raise ValueError(f"waveform length {length} too short for "
                         f"{len(widths)} pooling stages")
    layers.extend([
        Flatten(),
        Dense(prev * current_len, num_classes, rng, dtype=dtype),
    ])
    return Model(layers, rng=rng, name=f"audio_m{2*len(widths)+1}")
