"""The paper's fully-connected classifier (Purchase100 / Texas100).

Per §5.1: "a fully-connected neural network architecture with layers of
sizes 4096, 2048, 1024, 512, 256, and 128, leveraging Tanh activation
functions and a fully-connected classification layer".  The default
widths here are proportionally scaled for CPU experiments; pass
``hidden=PAPER_FCNN_HIDDEN`` to build the paper-exact network.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.nn.activations import Tanh
from repro.nn.layers import Dense
from repro.nn.model import Model

#: Hidden widths exactly as printed in the paper (§5.1).
PAPER_FCNN_HIDDEN: tuple[int, ...] = (4096, 2048, 1024, 512, 256, 128)

#: CPU-scaled widths keeping the 6-layer narrowing shape while staying
#: wide enough at the end to separate 100 classes.
DEFAULT_HIDDEN: tuple[int, ...] = (256, 128, 128, 64, 64, 64)


def build_fcnn(input_dim: int, num_classes: int, rng: np.random.Generator, *,
               hidden: Sequence[int] = DEFAULT_HIDDEN,
               dtype: np.dtype | str = np.float64) -> Model:
    """Build the 6-hidden-layer Tanh FCNN plus a classification layer.

    The resulting model has ``len(hidden) + 1`` trainable layers; the
    penultimate trainable layer (index ``len(hidden) - 1``) is the one
    the paper's analysis finds most privacy-sensitive.
    """
    if not hidden:
        raise ValueError("hidden must contain at least one width")
    layers = []
    prev = input_dim
    for width in hidden:
        layers.append(Dense(prev, width, rng, scheme="xavier", dtype=dtype))
        layers.append(Tanh())
        prev = width
    layers.append(Dense(prev, num_classes, rng, scheme="xavier", dtype=dtype))
    return Model(layers, rng=rng, name=f"fcnn{len(hidden)}")
