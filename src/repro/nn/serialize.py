"""Weight and experiment serialization.

Weights round-trip through ``.npz`` archives (one array per
``layer<idx>/<name>`` key), which lets a deployment checkpoint global
models between rounds, ship shadow models to an attacker process, or
archive the exact model a benchmark attacked.

Precision round-trips for free: ``.npz`` stores each array's dtype,
and :meth:`~repro.nn.store.WeightStore.from_layers` infers the flat
plane's dtype from the loaded arrays (float32 only when *every* array
is float32), so a float32 store reloads as a float32 store.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.nn.model import Weights
from repro.nn.store import WeightsLike, WeightStore


def save_weights(weights: WeightsLike, path: str | pathlib.Path) -> None:
    """Write a weight structure to an ``.npz`` archive.

    A :class:`~repro.nn.store.WeightStore` is written straight from its
    layout's zero-copy views — no intermediate nested structure.
    """
    if isinstance(weights, WeightStore):
        arrays = {
            f"layer{e.layer_idx}/{e.key}":
                weights.buffer[e.offset:e.stop].reshape(e.shape)
            for e in weights.layout.entries
        }
    else:
        arrays = {
            f"layer{idx}/{key}": value
            for idx, layer in enumerate(weights)
            for key, value in layer.items()
        }
    if not arrays:
        raise ValueError("cannot save an empty weight structure")
    np.savez(path, **arrays)


def load_weights(path: str | pathlib.Path) -> Weights:
    """Read a weight structure written by :func:`save_weights`."""
    with np.load(path) as archive:
        layers: dict[int, dict[str, np.ndarray]] = {}
        for name in archive.files:
            prefix, key = name.split("/", 1)
            idx = int(prefix.removeprefix("layer"))
            layers.setdefault(idx, {})[key] = archive[name]
    if sorted(layers) != list(range(len(layers))):
        raise ValueError(f"archive has non-contiguous layer indices: "
                         f"{sorted(layers)}")
    return [layers[idx] for idx in range(len(layers))]


def load_store(path: str | pathlib.Path) -> WeightStore:
    """Read an archive written by :func:`save_weights` into a store."""
    return WeightStore.from_layers(load_weights(path))


def experiment_result_to_dict(result) -> dict:
    """JSON-ready summary of an ExperimentResult (drops the simulation)."""
    costs = result.costs
    return {
        "dataset": result.dataset,
        "defense": result.defense,
        "attack": result.attack,
        "global_auc": result.global_auc,
        "local_auc": result.local_auc,
        "global_accuracy": result.global_accuracy,
        "client_accuracy": result.client_accuracy,
        "costs": {
            "train_seconds_per_round": costs.train_seconds_per_round,
            "aggregate_seconds_per_round":
                costs.aggregate_seconds_per_round,
            "defense_state_bytes": costs.defense_state_bytes,
        },
    }


def save_experiment_result(result, path: str | pathlib.Path) -> None:
    """Write an ExperimentResult summary as JSON."""
    pathlib.Path(path).write_text(
        json.dumps(experiment_result_to_dict(result), indent=2) + "\n")
