"""Loss functions.

Losses expose both a batch-mean ``forward``/``backward`` pair for training
and a ``per_example`` view — per-sample losses are the raw material of
membership inference (Fig. 3's loss distributions, the Yeom attack, and
the attack-feature extraction all consume them).
"""

from __future__ import annotations

import numpy as np


def log_softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable log-softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    return np.exp(log_softmax(logits))


class Loss:
    """Loss protocol: forward caches, backward returns dL/dlogits."""

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        raise NotImplementedError

    def per_example(self, logits: np.ndarray,
                    targets: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class SoftmaxCrossEntropy(Loss):
    """Fused softmax + cross-entropy on integer class labels."""

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        self._probs = softmax(logits)
        self._targets = targets
        logp = log_softmax(logits)
        return float(-logp[np.arange(len(targets)), targets].mean())

    def backward(self) -> np.ndarray:
        n = len(self._targets)
        grad = self._probs.copy()
        grad[np.arange(n), self._targets] -= 1.0
        grad /= n
        self._probs = None
        self._targets = None
        return grad

    def per_example(self, logits: np.ndarray,
                    targets: np.ndarray) -> np.ndarray:
        logp = log_softmax(logits)
        return -logp[np.arange(len(targets)), targets]


class MSELoss(Loss):
    """Mean squared error against one-hot or real-valued targets."""

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        self._diff = logits - targets
        return float((self._diff ** 2).mean())

    def backward(self) -> np.ndarray:
        grad = 2.0 * self._diff / self._diff.size
        self._diff = None
        return grad

    def per_example(self, logits: np.ndarray,
                    targets: np.ndarray) -> np.ndarray:
        return ((logits - targets) ** 2).mean(axis=tuple(
            range(1, logits.ndim)))
