"""Loss functions.

Losses expose both a batch-mean ``forward``/``backward`` pair for training
and a ``per_example`` view — per-sample losses are the raw material of
membership inference (Fig. 3's loss distributions, the Yeom attack, and
the attack-feature extraction all consume them).

A loss can borrow a model's :class:`~repro.nn.workspace.Workspace` (the
train-step driver attaches it before ``forward``): the softmax /
cross-entropy temporaries then live in reusable arena buffers.  The
workspace path computes log-softmax once and derives the probabilities
as ``exp(log_softmax)`` — exactly how the plain path defines
:func:`softmax` — so results are bitwise identical either way.
"""

from __future__ import annotations

import numpy as np

from repro.nn.workspace import Workspace


def log_softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable log-softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    return np.exp(log_softmax(logits))


class Loss:
    """Loss protocol: forward caches, backward returns dL/dlogits."""

    #: Per-batch caches excluded from pickling, mirroring
    #: :attr:`repro.nn.layers.Layer._ephemeral`.
    _ephemeral: tuple[str, ...] = ()

    def __init__(self) -> None:
        self._ws: Workspace | None = None

    def attach_workspace(self, workspace: Workspace | None) -> None:
        """Borrow a model's scratch arena (or detach with ``None``)."""
        self._ws = workspace

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_ws", None)
        for key in self._ephemeral:
            state.pop(key, None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._ws = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        raise NotImplementedError

    def per_example(self, logits: np.ndarray,
                    targets: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class SoftmaxCrossEntropy(Loss):
    """Fused softmax + cross-entropy on integer class labels."""

    _ephemeral = ("_probs", "_targets", "_probs_in_arena", "_arange_cache")

    def __init__(self) -> None:
        super().__init__()
        # np.arange(n) reused across batches; an epoch sees at most two
        # batch lengths (full and final-partial).
        self._arange_cache: dict[int, np.ndarray] = {}

    def _arange(self, n: int) -> np.ndarray:
        cache = getattr(self, "_arange_cache", None)
        if cache is None:
            cache = self._arange_cache = {}
        arr = cache.get(n)
        if arr is None:
            arr = cache[n] = np.arange(n)
        return arr

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        n = len(targets)
        self._targets = targets
        ws = getattr(self, "_ws", None)
        if ws is None:
            self._probs = softmax(logits)
            self._probs_in_arena = False
            logp = log_softmax(logits)
            return float(-logp[self._arange(n), targets].mean())
        m = ws.request(self, "max", logits.shape[:-1] + (1,), logits.dtype)
        logits.max(axis=-1, keepdims=True, out=m)
        logp = ws.request(self, "logp", logits.shape, logits.dtype)
        np.subtract(logits, m, out=logp)
        expd = ws.request(self, "exp", logits.shape, logits.dtype)
        np.exp(logp, out=expd)
        s = ws.request(self, "sum", logits.shape[:-1] + (1,), logits.dtype)
        expd.sum(axis=-1, keepdims=True, out=s)
        np.log(s, out=s)
        np.subtract(logp, s, out=logp)
        probs = ws.request(self, "probs", logits.shape, logits.dtype)
        np.exp(logp, out=probs)
        self._probs = probs
        self._probs_in_arena = True
        return float(-logp[self._arange(n), targets].mean())

    def backward(self) -> np.ndarray:
        n = len(self._targets)
        # the arena-held probs buffer is refilled every forward, so the
        # workspace path mutates it in place instead of copying.
        grad = self._probs if self._probs_in_arena else self._probs.copy()
        grad[self._arange(n), self._targets] -= 1.0
        grad /= n
        self._probs = None
        self._targets = None
        return grad

    def per_example(self, logits: np.ndarray,
                    targets: np.ndarray) -> np.ndarray:
        logp = log_softmax(logits)
        return -logp[np.arange(len(targets)), targets]


class MSELoss(Loss):
    """Mean squared error against one-hot or real-valued targets."""

    _ephemeral = ("_diff",)

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        self._diff = logits - targets
        return float((self._diff ** 2).mean())

    def backward(self) -> np.ndarray:
        grad = 2.0 * self._diff / self._diff.size
        self._diff = None
        return grad

    def per_example(self, logits: np.ndarray,
                    targets: np.ndarray) -> np.ndarray:
        return ((logits - targets) ** 2).mean(axis=tuple(
            range(1, logits.ndim)))
