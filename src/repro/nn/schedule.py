"""Learning-rate schedules.

Schedules wrap an optimizer and adjust its ``lr`` per step or per
epoch. Kept deliberately simple: a schedule is a callable
``step_index -> multiplier`` applied to the optimizer's base rate.
"""

from __future__ import annotations

import math

from repro.nn.optim import Optimizer


class LRSchedule:
    """Base schedule: constant multiplier 1."""

    def multiplier(self, step: int) -> float:
        return 1.0


class StepDecay(LRSchedule):
    """Multiply the rate by ``gamma`` every ``step_size`` steps."""

    def __init__(self, step_size: int, gamma: float = 0.5) -> None:
        if step_size < 1:
            raise ValueError(f"step_size must be >= 1, got {step_size}")
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.step_size = step_size
        self.gamma = gamma

    def multiplier(self, step: int) -> float:
        return self.gamma ** (step // self.step_size)


class CosineDecay(LRSchedule):
    """Cosine annealing from 1 down to ``floor`` over ``total_steps``."""

    def __init__(self, total_steps: int, floor: float = 0.0) -> None:
        if total_steps < 1:
            raise ValueError(
                f"total_steps must be >= 1, got {total_steps}")
        if not 0.0 <= floor < 1.0:
            raise ValueError(f"floor must be in [0, 1), got {floor}")
        self.total_steps = total_steps
        self.floor = floor

    def multiplier(self, step: int) -> float:
        progress = min(step / self.total_steps, 1.0)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.floor + (1.0 - self.floor) * cosine


class WarmupSchedule(LRSchedule):
    """Linear ramp from 0 to 1 over ``warmup_steps``, then delegate."""

    def __init__(self, warmup_steps: int,
                 after: LRSchedule | None = None) -> None:
        if warmup_steps < 1:
            raise ValueError(
                f"warmup_steps must be >= 1, got {warmup_steps}")
        self.warmup_steps = warmup_steps
        self.after = after or LRSchedule()

    def multiplier(self, step: int) -> float:
        if step < self.warmup_steps:
            return (step + 1) / self.warmup_steps
        return self.after.multiplier(step - self.warmup_steps)


class ScheduledOptimizer:
    """Wrap an optimizer so every ``step()`` applies the schedule."""

    def __init__(self, optimizer: Optimizer,
                 schedule: LRSchedule) -> None:
        self.optimizer = optimizer
        self.schedule = schedule
        self.base_lr = optimizer.lr
        self._step = 0

    @property
    def lr(self) -> float:
        """The rate the *next* step will use."""
        return self.base_lr * self.schedule.multiplier(self._step)

    def step(self) -> None:
        self.optimizer.lr = self.lr
        self.optimizer.step()
        self._step += 1

    def notify_batch_size(self, batch_size: int) -> None:
        """Forward DP-SGD's batch-size hint when present."""
        notify = getattr(self.optimizer, "notify_batch_size", None)
        if notify is not None:
            notify(batch_size)

    def reset(self) -> None:
        self.optimizer.lr = self.base_lr
        self.optimizer.reset()
        self._step = 0
