"""Workspace plane: a per-model arena of reusable scratch buffers.

The train-step hot path used to re-allocate every batch-sized
temporary on every batch: im2col patch buffers, layer outputs,
activation masks, batch-norm centered/normalized arrays, `_col2im`
scatter targets, softmax/cross-entropy temporaries.  The
:class:`Workspace` arena makes those allocations one-time: each scratch
array is requested by ``(layer index, role, shape, dtype)``, sized
lazily on first use, and handed back — the *same* buffer — on every
later batch with the same key.

This mirrors how the ``WeightStore`` made the weight plane one buffer:
the workspace makes the *scratch* plane a fixed set of buffers.  The
arithmetic performed into those buffers is unchanged (every write uses
the ``out=`` form of the exact legacy expression), so float64 results
are bitwise identical with and without a workspace.

Keying rules
------------

* **owner** — the requesting layer (or loss) object.  Owners are
  interned to a small integer index in first-use order, so two layers
  with identical shapes never share a buffer, and composite layers
  (residual blocks) can let each sublayer request its own scratch.
* **role** — a short string naming the buffer's job (``"cols"``,
  ``"out"``, ``"mask"``, ...), distinguishing the several live scratch
  arrays one layer needs within a single forward/backward pair.
* **shape / dtype** — part of the key, not a constraint to check:
  a *partial final batch* simply resolves to different keys and gets
  its own (smaller) buffers instead of corrupting the cached
  full-batch ones.  In steady state an epoch touches at most two batch
  shapes, so the arena stays bounded.

Lifecycle and fork semantics
----------------------------

A workspace belongs to exactly one :class:`~repro.nn.model.Model` and
is **process-local**: it is excluded from model pickling (a fresh empty
arena is rebuilt on unpickle and on :meth:`Model.clone`), never appears
in defense ``export_state`` payloads, checkpoints, or executor
task/result messages, and attempting to pickle one directly raises
``TypeError``.  Forked executor workers inherit the parent's arena
pages copy-on-write and then fill their own private copies — scratch
contents never travel between processes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Workspace"]


class Workspace:
    """Arena of reusable scratch buffers keyed by
    ``(owner index, role, shape, dtype)``."""

    def __init__(self) -> None:
        self._buffers: dict[tuple, np.ndarray] = {}
        # id(owner) -> dense index; the parallel list keeps each owner
        # alive so a recycled id can never alias another layer's keys.
        self._owner_ids: dict[int, int] = {}
        self._owners: list[object] = []
        #: Buffers served from the arena (steady-state requests).
        self.hits = 0
        #: Buffers allocated because their key was new.
        self.misses = 0

    # ------------------------------------------------------------------
    # keying
    # ------------------------------------------------------------------
    def owner_index(self, owner: object) -> int:
        """The dense layer index of ``owner``, assigned on first use."""
        idx = self._owner_ids.get(id(owner))
        if idx is None:
            idx = len(self._owners)
            self._owner_ids[id(owner)] = idx
            self._owners.append(owner)
        return idx

    def request(self, owner: object, role: str, shape: tuple[int, ...],
                dtype: np.dtype | type | str) -> np.ndarray:
        """The scratch buffer for one ``(owner, role, shape, dtype)`` key.

        Contents are **unspecified** (uninitialized on a miss, the
        previous batch's values on a hit): the caller must fully
        overwrite the buffer before reading it.  Use :meth:`zeros` for
        scatter-add targets that rely on a zeroed start.
        """
        return self.request_info(owner, role, shape, dtype)[0]

    def request_info(self, owner: object, role: str, shape: tuple[int, ...],
                     dtype: np.dtype | type | str
                     ) -> tuple[np.ndarray, bool]:
        """Like :meth:`request`, also reporting whether the buffer is
        freshly allocated.  Lets callers run one-time initialization
        (e.g. zeroing a padded image's constant border) only on a miss.
        """
        key = (self.owner_index(owner), role, tuple(shape), np.dtype(dtype))
        buffer = self._buffers.get(key)
        if buffer is None:
            buffer = np.empty(key[2], dtype=key[3])
            self._buffers[key] = buffer
            self.misses += 1
            return buffer, True
        self.hits += 1
        return buffer, False

    def zeros(self, owner: object, role: str, shape: tuple[int, ...],
              dtype: np.dtype | type | str) -> np.ndarray:
        """Like :meth:`request`, but zero-filled on every call."""
        buffer = self.request(owner, role, shape, dtype)
        buffer.fill(0)
        return buffer

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def num_buffers(self) -> int:
        """How many distinct scratch buffers the arena holds."""
        return len(self._buffers)

    @property
    def nbytes(self) -> int:
        """Total bytes held across all scratch buffers."""
        return sum(buffer.nbytes for buffer in self._buffers.values())

    def keys(self) -> list[tuple]:
        """The arena's ``(owner index, role, shape, dtype)`` keys."""
        return sorted(self._buffers, key=repr)

    def clear(self) -> None:
        """Drop every buffer (and owner registration), keeping counters."""
        self._buffers.clear()
        self._owner_ids.clear()
        self._owners.clear()

    # ------------------------------------------------------------------
    # process-locality
    # ------------------------------------------------------------------
    def __reduce__(self):
        raise TypeError(
            "Workspace is process-local scratch and must never be "
            "pickled; models drop their workspace on pickling and "
            "rebuild a fresh one on load")

    def __repr__(self) -> str:
        return (f"Workspace({self.num_buffers} buffers, "
                f"{self.nbytes} bytes, hits={self.hits}, "
                f"misses={self.misses})")
