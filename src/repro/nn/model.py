"""Sequential model with layer-indexed weight access.

The federated substrate exchanges :data:`Weights` — a list with one
``{name: array}`` dict per *parameter-carrying* layer, ordered front to
back.  That layer-indexed representation is exactly the handle DINAR
needs: "obfuscate layer p" is ``weights[p] = random``, "personalize layer
p" is ``weights[p] = stored_private_layer``.
"""

from __future__ import annotations

import copy
from collections.abc import Callable, Sequence

import numpy as np

from repro.nn.layers import Layer
from repro.nn.losses import Loss, softmax
from repro.nn.store import Layout, WeightsLike, WeightStore

#: One dict of named arrays per parameter-carrying layer, front to back.
Weights = list[dict[str, np.ndarray]]


class Model:
    """A feed-forward stack of :class:`~repro.nn.layers.Layer` objects."""

    def __init__(self, layers: Sequence[Layer], *,
                 rng: np.random.Generator | None = None,
                 name: str = "model") -> None:
        self.layers = list(layers)
        self.name = name
        if rng is not None:
            self.attach_rng(rng)

    def attach_rng(self, rng: np.random.Generator) -> None:
        """Provide the random source consumed by stochastic layers."""
        for layer in self.layers:
            layer.attach_rng(rng)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def trainable(self) -> list[Layer]:
        """Parameter-carrying layers, the granularity of DINAR's index p."""
        return [layer for layer in self.layers if layer.has_params]

    @property
    def num_trainable_layers(self) -> int:
        """The paper's J: how many layers carry parameters."""
        return len(self.trainable)

    def layer_names(self) -> list[str]:
        """Names of the parameter-carrying layers, front to back."""
        return [layer.name for layer in self.trainable]

    def num_parameters(self) -> int:
        """Total trainable scalar count across the whole network."""
        return sum(layer.num_parameters() for layer in self.trainable)

    # ------------------------------------------------------------------
    # forward / backward
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def loss_and_grad(self, x: np.ndarray, y: np.ndarray,
                      loss: Loss) -> float:
        """One forward + backward pass; layer ``grads`` are left populated."""
        logits = self.forward(x, training=True)
        value = loss.forward(logits, y)
        self.backward(loss.backward())
        return value

    def per_layer_gradient_vectors(self, x: np.ndarray, y: np.ndarray,
                                   loss: Loss) -> list[np.ndarray]:
        """Flattened gradient per trainable layer for one batch.

        This is the measurement underlying the paper's §3 layer-leakage
        analysis: gradients of each layer produced by predictions on a
        batch of (member or non-member) samples.
        """
        self.loss_and_grad(x, y, loss)
        return [
            np.concatenate([g.ravel() for g in layer.grads.values()])
            for layer in self.trainable
        ]

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def predict_logits(self, x: np.ndarray, *,
                       batch_size: int = 256) -> np.ndarray:
        """Logits in evaluation mode, batched to bound memory."""
        outputs = [
            self.forward(x[i:i + batch_size], training=False)
            for i in range(0, len(x), batch_size)
        ]
        return np.concatenate(outputs, axis=0)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class probabilities in evaluation mode."""
        return softmax(self.predict_logits(x))

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard class predictions in evaluation mode."""
        return self.predict_logits(x).argmax(axis=-1)

    # ------------------------------------------------------------------
    # weight exchange
    # ------------------------------------------------------------------
    def get_weights(self) -> Weights:
        """Deep copy of all exchanged arrays, one dict per trainable layer."""
        return [layer.state() for layer in self.trainable]

    def set_weights(self, weights: WeightsLike) -> None:
        """Load weights produced by :meth:`get_weights` or
        :meth:`get_store` (shape-checked)."""
        if isinstance(weights, WeightStore):
            self.set_store(weights)
            return
        trainable = self.trainable
        if len(weights) != len(trainable):
            raise ValueError(
                f"{self.name}: got {len(weights)} layer dicts, "
                f"model has {len(trainable)} trainable layers")
        for layer, state in zip(trainable, weights):
            layer.set_state(state)

    # ------------------------------------------------------------------
    # store-native weight exchange
    # ------------------------------------------------------------------
    def weight_layout(self) -> Layout:
        """The model's flat-buffer layout (cached; structure is fixed)."""
        layout = getattr(self, "_weight_layout", None)
        if layout is None:
            layout = Layout.from_model(self)
            self._weight_layout = layout
        return layout

    def get_store(self) -> WeightStore:
        """All exchanged arrays as one fresh contiguous flat buffer."""
        layout = self.weight_layout()
        store = WeightStore(layout, np.empty(layout.num_params))
        buf = store.buffer
        entries = iter(layout.entries)
        for layer in self.trainable:
            for value in list(layer.params.values()) \
                    + list(layer.buffers.values()):
                entry = next(entries)
                buf[entry.offset:entry.stop] = value.reshape(-1)
        return store

    def set_store(self, store: WeightStore) -> None:
        """Load a store produced by :meth:`get_store` (shape-checked)."""
        layout = self.weight_layout()
        if store.layout is not layout and store.layout != layout:
            raise ValueError(
                f"{self.name}: store layout {store.layout} does not "
                f"match model layout {layout}")
        buf = store.buffer
        entries = iter(layout.entries)
        for layer in self.trainable:
            for value in list(layer.params.values()) \
                    + list(layer.buffers.values()):
                entry = next(entries)
                value[...] = buf[entry.offset:entry.stop] \
                    .reshape(entry.shape)

    def clone(self) -> "Model":
        """Structural deep copy (weights included)."""
        return copy.deepcopy(self)


# ----------------------------------------------------------------------
# weight arithmetic helpers (used by aggregation, defenses and attacks)
# ----------------------------------------------------------------------

def weights_map(fn: Callable[[np.ndarray], np.ndarray],
                weights: Weights) -> Weights:
    """Apply ``fn`` to every array, returning a new weight structure."""
    return [{k: fn(v) for k, v in layer.items()} for layer in weights]


def weights_zip_map(fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
                    a: Weights, b: Weights) -> Weights:
    """Combine two parallel weight structures element-wise."""
    if len(a) != len(b):
        raise ValueError(f"weight structures differ: {len(a)} vs {len(b)}")
    out: Weights = []
    for la, lb in zip(a, b):
        if la.keys() != lb.keys():
            raise ValueError(f"layer keys differ: {sorted(la)} vs {sorted(lb)}")
        out.append({k: fn(la[k], lb[k]) for k in la})
    return out


def zeros_like_weights(weights: Weights) -> Weights:
    """A zero-filled structure with the same shapes."""
    return weights_map(np.zeros_like, weights)


def weights_like(weights: Weights, rng: np.random.Generator, *,
                 scale: float = 1.0) -> Weights:
    """Gaussian random structure with the same shapes (obfuscation noise)."""
    return weights_map(
        lambda v: rng.standard_normal(v.shape) * scale, weights)


def flatten_weights(weights: WeightsLike) -> np.ndarray:
    """Every array as one vector, in layout (state-dict) order.

    For a :class:`~repro.nn.store.WeightStore` this is a zero-copy
    read-only view of the store's buffer — the vector *is* the store.
    """
    if isinstance(weights, WeightStore):
        return weights.readonly_vector()
    parts = [
        layer[k].ravel() for layer in weights for k in layer
    ]
    return np.concatenate(parts) if parts else np.zeros(0)


def unflatten_weights(vector: np.ndarray,
                      template: WeightsLike) -> Weights:
    """Inverse of :func:`flatten_weights` given a shape template."""
    out: Weights = []
    offset = 0
    for layer in template:
        rebuilt: dict[str, np.ndarray] = {}
        for k in layer:
            size = layer[k].size
            rebuilt[k] = vector[offset:offset + size] \
                .reshape(layer[k].shape).copy()
            offset += size
        out.append(rebuilt)
    if offset != vector.size:
        raise ValueError(
            f"vector has {vector.size} entries, template needs {offset}")
    return out


def weights_l2_norm(weights: WeightsLike) -> float:
    """Global L2 norm across every exchanged array."""
    if isinstance(weights, WeightStore):
        return weights.l2()
    total = sum(float((v ** 2).sum()) for layer in weights
                for v in layer.values())
    return float(np.sqrt(total))


def weights_allclose(a: WeightsLike, b: WeightsLike, *,
                     atol: float = 1e-9) -> bool:
    """Whether two weight structures are numerically identical."""
    if isinstance(a, WeightStore) and isinstance(b, WeightStore):
        return a.allclose(b, atol=atol)
    if len(a) != len(b):
        return False
    for la, lb in zip(a, b):
        if la.keys() != lb.keys():
            return False
        for k in la:
            if not np.allclose(la[k], lb[k], atol=atol):
                return False
    return True
