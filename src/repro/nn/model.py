"""Sequential model owning its parameters as one flat buffer.

The model's parameters live in a single contiguous
:class:`~repro.nn.store.WeightStore` buffer plus a parallel flat
gradient buffer; every parameter-carrying layer holds zero-copy shaped
views into those buffers (bound once at construction via
``Layer.adopt_views``).  Training, optimization, DP clipping and
FedProx therefore operate on whole flat vectors, and weight exchange
(`get_store`/`set_store`, `clone`) is a single buffer copy.

The federated substrate still exchanges :data:`Weights` — a list with
one ``{name: array}`` dict per *parameter-carrying* layer, ordered
front to back — as the legacy bridge format.  That layer-indexed
representation is exactly the handle DINAR needs: "obfuscate layer p"
is ``weights[p] = random``, "personalize layer p" is
``weights[p] = stored_private_layer``; store-native code uses
``Layout.layer_slice(p)`` for the same handle.
"""

from __future__ import annotations

import copy
from collections.abc import Callable, Sequence

import numpy as np

from repro.nn.layers import Layer
from repro.nn.losses import Loss, softmax
from repro.nn.store import Layout, SegmentedView, WeightsLike, WeightStore
from repro.nn.workspace import Workspace

#: One dict of named arrays per parameter-carrying layer, front to back.
Weights = list[dict[str, np.ndarray]]


class Model:
    """A feed-forward stack of :class:`~repro.nn.layers.Layer` objects."""

    def __init__(self, layers: Sequence[Layer], *,
                 rng: np.random.Generator | None = None,
                 name: str = "model") -> None:
        self.layers = list(layers)
        self.name = name
        # Scratch arena for forward/backward temporaries; process-local
        # and excluded from pickling/cloning (fresh arenas are rebuilt).
        self._workspace: Workspace | None = Workspace()
        self._bind_flat()
        if rng is not None:
            self.attach_rng(rng)

    def _bind_flat(self) -> None:
        """Move every parameter onto the flat plane (construction-time).

        Allocates the weight store and the parallel gradient buffer —
        both in the layers' common parameter dtype (``Layout.from_model``
        rejects mixed precisions) — then rebinds each trainable layer's
        params/buffers/grads to zero-copy views into them.  Gradient
        coordinates of non-trainable buffers (batch-norm running stats)
        are never written and stay exactly 0.0 — whole-buffer optimizer
        updates are bitwise no-ops there.
        """
        trainable = self.trainable
        if not trainable:
            self._layout = None
            self._store = None
            self._grad_buffer = None
            self._grads_ready = False
            return
        layout = Layout.from_model(self)
        self._layout = layout
        self._store = WeightStore(layout, np.empty(layout.num_params,
                                                   dtype=layout.dtype))
        self._grad_buffer = np.zeros(layout.num_params, dtype=layout.dtype)
        self._rebind_views()
        self._grads_ready = False

    def _rebind_views(self) -> None:
        """Bind every trainable layer's arrays onto the flat buffers.

        Used at construction and again on unpickle: a pickled model
        serializes the layers' view arrays as independent copies, so
        ``__setstate__`` re-adopts them onto the (also deserialized)
        flat weight/gradient buffers to restore the aliasing invariant.
        """
        layout = self._layout
        store = self._store
        grad_buffer = self._grad_buffer
        for idx, layer in enumerate(self.trainable):
            params: dict[str, np.ndarray] = {}
            buffers: dict[str, np.ndarray] = {}
            grads: dict[str, np.ndarray] = {}
            for entry in layout.layer_entries(idx):
                view = store.buffer[entry.offset:entry.stop] \
                    .reshape(entry.shape)
                if entry.trainable:
                    params[entry.key] = view
                    grads[entry.key] = \
                        grad_buffer[entry.offset:entry.stop] \
                        .reshape(entry.shape)
                else:
                    buffers[entry.key] = view
            layer.adopt_views(params, buffers, grads)

    def attach_rng(self, rng: np.random.Generator) -> None:
        """Provide the random source consumed by stochastic layers."""
        for layer in self.layers:
            layer.attach_rng(rng)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def trainable(self) -> list[Layer]:
        """Parameter-carrying layers, the granularity of DINAR's index p."""
        return [layer for layer in self.layers if layer.has_params]

    @property
    def dtype(self) -> np.dtype:
        """Precision of the flat compute plane (float64 if paramless)."""
        if self._layout is None:
            return np.dtype(np.float64)
        return self._layout.dtype

    @property
    def num_trainable_layers(self) -> int:
        """The paper's J: how many layers carry parameters."""
        return len(self.trainable)

    def layer_names(self) -> list[str]:
        """Names of the parameter-carrying layers, front to back."""
        return [layer.name for layer in self.trainable]

    def segment_view(self) -> "SegmentedView":
        """The model's named segment plane (cached on the layout).

        One :class:`~repro.nn.store.Segment` per trainable layer, named
        from :meth:`layer_names` — the typed handle for per-layer
        views, norms, masks and noise (see ``repro.nn.store``).
        """
        return self.weight_layout().segmented(tuple(self.layer_names()))

    def num_parameters(self) -> int:
        """Total trainable scalar count across the whole network."""
        return sum(layer.num_parameters() for layer in self.trainable)

    # ------------------------------------------------------------------
    # workspace plane
    # ------------------------------------------------------------------
    @property
    def workspace(self) -> Workspace | None:
        """The scratch arena threaded through forward/backward
        (``None`` when disabled via :meth:`use_workspace`)."""
        return self._workspace

    def use_workspace(self, enabled: bool = True) -> None:
        """Enable (default) or disable the scratch arena.

        Disabling reverts every forward/backward temporary to a fresh
        allocation — the pre-workspace behavior, bitwise identical and
        useful as a benchmark baseline.  Re-enabling starts from an
        empty arena.
        """
        if enabled:
            if self._workspace is None:
                self._workspace = Workspace()
        else:
            self._workspace = None

    # ------------------------------------------------------------------
    # forward / backward
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        """Logits for one batch.

        With the workspace enabled the returned array is an arena
        buffer: valid until the next forward pass, after which it is
        overwritten in place.  Callers that hold results across batches
        must copy (as :meth:`predict_logits` does).
        """
        ws = self._workspace
        for layer in self.layers:
            x = layer.forward(x, training=training, workspace=ws)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Input gradient for the last forward batch (same transient
        arena-buffer contract as :meth:`forward`)."""
        ws = self._workspace
        for layer in reversed(self.layers):
            grad = layer.backward(grad, workspace=ws)
        self._grads_ready = True
        return grad

    def loss_and_grad(self, x: np.ndarray, y: np.ndarray,
                      loss: Loss) -> float:
        """One forward + backward pass; layer ``grads`` are left populated."""
        attach = getattr(loss, "attach_workspace", None)
        if attach is not None:
            attach(self._workspace)
        logits = self.forward(x, training=True)
        value = loss.forward(logits, y)
        self.backward(loss.backward())
        return value

    def per_layer_gradient_vectors(self, x: np.ndarray, y: np.ndarray,
                                   loss: Loss, *,
                                   copy: bool = True) -> list[np.ndarray]:
        """Flattened gradient per trainable layer for one batch.

        This is the measurement underlying the paper's §3 layer-leakage
        analysis: gradients of each layer produced by predictions on a
        batch of (member or non-member) samples.  Each vector is a
        contiguous slice of the flat gradient buffer; with
        ``copy=False`` the slices are zero-copy views, valid until the
        next backward pass overwrites them.
        """
        self.loss_and_grad(x, y, loss)
        view = self.segment_view()
        vectors = []
        for seg in view:
            vector = view.view(self._grad_buffer, seg)
            vectors.append(vector.copy() if copy else vector)
        return vectors

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def predict_logits(self, x: np.ndarray, *,
                       batch_size: int = 256) -> np.ndarray:
        """Logits in evaluation mode, batched to bound memory.

        The first batch fixes the per-sample output shape and dtype;
        the full result is preallocated once and later batches write
        straight into it (no per-batch list + concatenate churn).
        """
        first = self.forward(x[:batch_size], training=False)
        n = len(x)
        if n <= batch_size:
            # with the workspace on, ``first`` is a transient arena
            # buffer — hand the caller an owned copy.
            return first.copy() if self._workspace is not None else first
        out = np.empty((n,) + first.shape[1:], dtype=first.dtype)
        out[:batch_size] = first
        for i in range(batch_size, n, batch_size):
            out[i:i + batch_size] = self.forward(
                x[i:i + batch_size], training=False)
        return out

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class probabilities in evaluation mode."""
        return softmax(self.predict_logits(x))

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard class predictions in evaluation mode."""
        return self.predict_logits(x).argmax(axis=-1)

    # ------------------------------------------------------------------
    # weight exchange
    # ------------------------------------------------------------------
    def get_weights(self) -> Weights:
        """Deep copy of all exchanged arrays, one dict per trainable layer.

        Legacy bridge format (per-array copies by construction); the
        hot paths use :meth:`get_store` / :attr:`weights`, which cost a
        single flat buffer copy (or none).
        """
        return [layer.state() for layer in self.trainable]

    def set_weights(self, weights: WeightsLike) -> None:
        """Load weights produced by :meth:`get_weights` or
        :meth:`get_store` (shape-checked)."""
        if isinstance(weights, WeightStore):
            self.set_store(weights)
            return
        trainable = self.trainable
        if len(weights) != len(trainable):
            raise ValueError(
                f"{self.name}: got {len(weights)} layer dicts, "
                f"model has {len(trainable)} trainable layers")
        for layer, state in zip(trainable, weights):
            layer.set_state(state)

    # ------------------------------------------------------------------
    # flat parameter plane
    # ------------------------------------------------------------------
    @property
    def weights(self) -> WeightStore:
        """The *live* flat weight store (zero-copy).

        Mutating its buffer mutates the model — every layer's params
        and buffers are views into it.  Use :meth:`get_store` for an
        independent snapshot.
        """
        if self._store is None:
            raise ValueError(f"{self.name} has no trainable layers")
        return self._store

    @property
    def grad_vector(self) -> np.ndarray:
        """The live flat gradient buffer, parallel to ``weights``.

        Coordinates of non-trainable buffers are permanently 0.0;
        trainable coordinates hold the last backward pass's gradients.
        """
        if self._grad_buffer is None:
            raise ValueError(f"{self.name} has no trainable layers")
        return self._grad_buffer

    @property
    def grads_ready(self) -> bool:
        """Whether a backward pass has populated the gradient buffer."""
        return self._grads_ready

    def weight_layout(self) -> Layout:
        """The model's flat-buffer layout (fixed at construction)."""
        if self._layout is None:
            raise ValueError(f"{self.name} has no trainable layers")
        return self._layout

    def get_store(self) -> WeightStore:
        """Snapshot of all exchanged arrays: one flat buffer copy."""
        return WeightStore(self.weight_layout(),
                           self.weights.buffer.copy())

    def set_store(self, store: WeightStore) -> None:
        """Load a store produced by :meth:`get_store`: one buffer copy."""
        layout = self.weight_layout()
        if store.layout is not layout and store.layout != layout:
            raise ValueError(
                f"{self.name}: store layout {store.layout} does not "
                f"match model layout {layout}")
        self._store.buffer[...] = store.buffer

    def __getstate__(self) -> dict:
        """Serialize without the process-local workspace arena.

        Layers drop their per-batch caches via ``Layer.__getstate__``,
        so a pickled model (checkpoints, executor dispatch, deepcopy)
        never ships batch-sized scratch.
        """
        state = self.__dict__.copy()
        state.pop("_workspace", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._workspace = Workspace()
        if self._layout is not None:
            # plain pickling serialized the layers' views as independent
            # arrays; re-adopt them onto the flat buffers.  (For clone()
            # the memo already mapped every view, making this a no-op
            # value-wise.)
            self._rebind_views()

    def clone(self) -> "Model":
        """Independent copy: buffer copies plus a cheap structure copy.

        The layout is immutable and shared; the weight and gradient
        buffers are copied once each, and every bound view is pre-mapped
        (via the deepcopy memo) to the matching view over the new
        buffers, so the clone's layers alias *its own* flat plane
        exactly as the original's alias the original's.
        """
        if self._store is None:
            return copy.deepcopy(self)
        layout = self._layout
        new_buffer = self._store.buffer.copy()
        new_grads = self._grad_buffer.copy()
        memo: dict[int, object] = {
            id(layout): layout,
            id(self._store.buffer): new_buffer,
            id(self._grad_buffer): new_grads,
        }
        for idx, layer in enumerate(self.trainable):
            params = layer.params
            buffers = layer.buffers
            grads = layer.grads
            for entry in layout.layer_entries(idx):
                source = params[entry.key] if entry.trainable \
                    else buffers[entry.key]
                memo[id(source)] = new_buffer[entry.offset:entry.stop] \
                    .reshape(entry.shape)
                if entry.trainable:
                    memo[id(grads[entry.key])] = \
                        new_grads[entry.offset:entry.stop] \
                        .reshape(entry.shape)
        return copy.deepcopy(self, memo)


# ----------------------------------------------------------------------
# weight arithmetic helpers (used by aggregation, defenses and attacks)
# ----------------------------------------------------------------------

def weights_map(fn: Callable[[np.ndarray], np.ndarray],
                weights: Weights) -> Weights:
    """Apply ``fn`` to every array, returning a new weight structure."""
    return [{k: fn(v) for k, v in layer.items()} for layer in weights]


def weights_zip_map(fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
                    a: Weights, b: Weights) -> Weights:
    """Combine two parallel weight structures element-wise."""
    if len(a) != len(b):
        raise ValueError(f"weight structures differ: {len(a)} vs {len(b)}")
    out: Weights = []
    for la, lb in zip(a, b):
        if la.keys() != lb.keys():
            raise ValueError(f"layer keys differ: {sorted(la)} vs {sorted(lb)}")
        out.append({k: fn(la[k], lb[k]) for k in la})
    return out


def flatten_weights(weights: WeightsLike) -> np.ndarray:
    """Every array as one vector, in layout (state-dict) order.

    For a :class:`~repro.nn.store.WeightStore` this is a zero-copy
    read-only view of the store's buffer — the vector *is* the store.
    """
    if isinstance(weights, WeightStore):
        return weights.readonly_vector()
    parts = [
        layer[k].ravel() for layer in weights for k in layer
    ]
    return np.concatenate(parts) if parts else np.zeros(0)


def unflatten_weights(vector: np.ndarray,
                      template: WeightsLike) -> Weights:
    """Inverse of :func:`flatten_weights` given a shape template."""
    out: Weights = []
    offset = 0
    for layer in template:
        rebuilt: dict[str, np.ndarray] = {}
        for k in layer:
            size = layer[k].size
            rebuilt[k] = vector[offset:offset + size] \
                .reshape(layer[k].shape).copy()
            offset += size
        out.append(rebuilt)
    if offset != vector.size:
        raise ValueError(
            f"vector has {vector.size} entries, template needs {offset}")
    return out


def weights_l2_norm(weights: WeightsLike) -> float:
    """Global L2 norm across every exchanged array."""
    if isinstance(weights, WeightStore):
        return weights.l2()
    total = sum(float((v ** 2).sum()) for layer in weights
                for v in layer.values())
    return float(np.sqrt(total))


def weights_allclose(a: WeightsLike, b: WeightsLike, *,
                     atol: float = 1e-9) -> bool:
    """Whether two weight structures are numerically identical."""
    if isinstance(a, WeightStore) and isinstance(b, WeightStore):
        return a.allclose(b, atol=atol)
    if len(a) != len(b):
        return False
    for la, lb in zip(a, b):
        if la.keys() != lb.keys():
            return False
        for k in la:
            if not np.allclose(la[k], lb[k], atol=atol):
                return False
    return True
