"""Neural-network layers with analytic backprop.

Layers follow a minimal protocol: ``forward`` caches what ``backward``
needs, ``backward`` returns the gradient w.r.t. the input and fills
``grads`` with gradients w.r.t. the layer's own ``params``.  ``buffers``
hold non-trainable state (batch-norm running statistics) that still
travels with the model in federated exchange.

Parameter-carrying layers are the unit of granularity for DINAR: the
paper's "layer index p" maps to an index into a model's trainable layers,
and obfuscation replaces *all* arrays of that layer.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init as init_schemes
from repro.nn.dtypes import DTypeLike


class Layer:
    """Base class for all layers.

    Subclasses with parameters populate ``self.params`` at construction
    time and write matching keys into ``self.grads`` during ``backward``.
    ``params``/``grads``/``buffers`` are properties so composite layers
    (e.g. residual blocks) can expose merged live views over sublayers.
    """

    def __init__(self) -> None:
        self._params: dict[str, np.ndarray] = {}
        self._grads: dict[str, np.ndarray] = {}
        self._buffers: dict[str, np.ndarray] = {}

    @property
    def params(self) -> dict[str, np.ndarray]:
        """Trainable arrays by name."""
        return self._params

    @property
    def grads(self) -> dict[str, np.ndarray]:
        """Gradients matching :attr:`params`, filled by ``backward``."""
        return self._grads

    @property
    def buffers(self) -> dict[str, np.ndarray]:
        """Non-trainable exchanged state (e.g. batch-norm running stats)."""
        return self._buffers

    @property
    def has_params(self) -> bool:
        """Whether this layer carries trainable parameters."""
        return bool(self.params)

    @property
    def name(self) -> str:
        """Human-readable layer name used in sensitivity reports."""
        return type(self).__name__

    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def attach_rng(self, rng: np.random.Generator) -> None:
        """Give stochastic layers (Dropout) their random source."""

    def state(self) -> dict[str, np.ndarray]:
        """Copy of all arrays exchanged in FL: params plus buffers."""
        out = {k: v.copy() for k, v in self.params.items()}
        out.update({k: v.copy() for k, v in self.buffers.items()})
        return out

    def set_state(self, state: dict[str, np.ndarray]) -> None:
        """Load arrays produced by :meth:`state` (in-place, shape-checked).

        Raises ``KeyError`` for any name the layer does not own — a
        silently dropped key would desynchronize FL weight exchange.
        """
        for key, value in state.items():
            if key in self.params:
                target = self.params[key]
            elif key in self.buffers:
                target = self.buffers[key]
            else:
                raise KeyError(f"{self.name} has no state array {key!r}")
            if target.shape != value.shape:
                raise ValueError(
                    f"{self.name}.{key}: shape {value.shape} != {target.shape}")
            target[...] = value

    def adopt_views(self, params: dict[str, np.ndarray],
                    buffers: dict[str, np.ndarray],
                    grads: dict[str, np.ndarray]) -> None:
        """Rebind this layer's arrays onto externally owned views.

        The model's flat parameter plane calls this once at
        construction: each view is a zero-copy window into the model's
        weight (or gradient) buffer.  Current values are copied into
        the param/buffer views, then the views *replace* the layer's
        private arrays — from here on, reading ``self.params["W"]``
        reads the model buffer and ``backward`` writes gradients
        straight into the flat gradient buffer.

        Raises ``KeyError`` if the mapping names an array the layer
        does not own, or leaves an owned array uncovered (a partial
        rebind would silently split the layer across two planes).
        """
        if set(params) != set(self._params) \
                or set(buffers) != set(self._buffers) \
                or set(grads) != set(self._params):
            given = sorted(set(params) | set(buffers) | set(grads))
            owned = sorted(set(self._params) | set(self._buffers))
            raise KeyError(
                f"{self.name}: view names {given} do not cover exactly "
                f"the owned arrays {owned}")
        for key, view in params.items():
            view[...] = self._params[key]
            self._params[key] = view
        for key, view in buffers.items():
            view[...] = self._buffers[key]
            self._buffers[key] = view
        self._grads.clear()
        self._grads.update(grads)

    def _grad_out(self, key: str) -> np.ndarray:
        """Destination array for one gradient write.

        The flat-plane view bound by :meth:`adopt_views` when the layer
        belongs to a model; a lazily allocated private array for
        standalone layers (gradient checks, unit tests).  ``backward``
        implementations must fill this in place (``out=`` / ``[...]=``)
        rather than rebind ``self.grads[key]``.
        """
        out = self._grads.get(key)
        if out is None:
            out = np.empty_like(self._params[key])
            self._grads[key] = out
        return out

    def num_parameters(self) -> int:
        """Total trainable scalar count."""
        return sum(p.size for p in self.params.values())


class Dense(Layer):
    """Fully-connected layer: ``y = x @ W + b``."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, *, scheme: str = "he",
                 dtype: DTypeLike = np.float64) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.params["W"] = init_schemes.initialize(
            rng, (in_features, out_features), in_features, out_features,
            scheme, dtype=dtype)
        self.params["b"] = np.zeros(out_features, dtype=dtype)

    @property
    def name(self) -> str:
        return f"Dense({self.in_features}x{self.out_features})"

    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        # backward never runs after an eval-mode forward; caching there
        # would only pin the last inference batch in memory.
        self._x = x if training else None
        return x @ self.params["W"] + self.params["b"]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        # after an eval-mode forward there is no cached input, so only
        # the input gradient is produced (all that e.g. the inversion
        # attack needs); weight gradients require a training forward.
        if self._x is not None:
            np.matmul(self._x.T, grad, out=self._grad_out("W"))
            grad.sum(axis=0, out=self._grad_out("b"))
        out = grad @ self.params["W"].T
        self._x = None
        return out


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int,
            pad: int) -> tuple[np.ndarray, int, int]:
    """Unfold (N, C, H, W) into (N, out_h, out_w, C*kh*kw) patches."""
    n, c, h, w = x.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    s0, s1, s2, s3 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(s0, s1, s2 * stride, s3 * stride, s2, s3),
        writeable=False,
    )
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n, out_h, out_w, -1)
    return cols, out_h, out_w


def _col2im(cols: np.ndarray, x_shape: tuple[int, int, int, int], kh: int,
            kw: int, stride: int, pad: int) -> np.ndarray:
    """Inverse of :func:`_im2col` — scatter-add patches back to an image."""
    n, c, h, w = x_shape
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    patches = cols.reshape(n, out_h, out_w, c, kh, kw)
    for i in range(kh):
        for j in range(kw):
            padded[:, :, i:i + stride * out_h:stride,
                   j:j + stride * out_w:stride] += patches[:, :, :, :, i, j] \
                .transpose(0, 3, 1, 2)
    if pad:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded


class Conv2d(Layer):
    """2-D convolution via im2col (NCHW layout)."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 rng: np.random.Generator, *, stride: int = 1, padding: int = 0,
                 scheme: str = "he", dtype: DTypeLike = np.float64) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        fan_out = out_channels * kernel_size * kernel_size
        self.params["W"] = init_schemes.initialize(
            rng, (out_channels, in_channels, kernel_size, kernel_size),
            fan_in, fan_out, scheme, dtype=dtype)
        self.params["b"] = np.zeros(out_channels, dtype=dtype)

    @property
    def name(self) -> str:
        return (f"Conv2d({self.in_channels}->{self.out_channels},"
                f"k{self.kernel_size})")

    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        k, s, p = self.kernel_size, self.stride, self.padding
        cols, out_h, out_w = _im2col(x, k, k, s, p)
        self._cols = cols if training else None
        self._x_shape = x.shape
        w_flat = self.params["W"].reshape(self.out_channels, -1)
        out = cols @ w_flat.T + self.params["b"]
        return out.transpose(0, 3, 1, 2)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        k, s, p = self.kernel_size, self.stride, self.padding
        n, _, out_h, out_w = grad.shape
        grad_flat = grad.transpose(0, 2, 3, 1)
        # no cached patches after an eval-mode forward: produce the
        # input gradient only (weight grads need a training forward).
        if self._cols is not None:
            cols2d = self._cols.reshape(-1, self._cols.shape[-1])
            grad2d = grad_flat.reshape(-1, self.out_channels)
            np.matmul(grad2d.T, cols2d,
                      out=self._grad_out("W").reshape(self.out_channels, -1))
            grad2d.sum(axis=0, out=self._grad_out("b"))
        w_flat = self.params["W"].reshape(self.out_channels, -1)
        dcols = grad_flat @ w_flat
        out = _col2im(dcols, self._x_shape, k, k, s, p)
        self._cols = None
        return out


class Conv1d(Layer):
    """1-D convolution (NCL layout) — used by the audio classifier."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 rng: np.random.Generator, *, stride: int = 1, padding: int = 0,
                 scheme: str = "he", dtype: DTypeLike = np.float64) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size
        self.params["W"] = init_schemes.initialize(
            rng, (out_channels, in_channels, kernel_size), fan_in,
            out_channels * kernel_size, scheme, dtype=dtype)
        self.params["b"] = np.zeros(out_channels, dtype=dtype)

    @property
    def name(self) -> str:
        return (f"Conv1d({self.in_channels}->{self.out_channels},"
                f"k{self.kernel_size})")

    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        k, s, p = self.kernel_size, self.stride, self.padding
        x4 = x[:, :, None, :]  # treat length as width of a height-1 image
        if p:
            x4 = np.pad(x4, ((0, 0), (0, 0), (0, 0), (p, p)))
        cols, _, _ = _im2col(x4, 1, k, s, 0)
        self._cols = cols if training else None
        self._x4_shape = x4.shape
        self._pad = p
        w_flat = self.params["W"].reshape(self.out_channels, -1)
        out = cols @ w_flat.T + self.params["b"]  # (n, 1, out_l, C_out)
        return out[:, 0].transpose(0, 2, 1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        k, s = self.kernel_size, self.stride
        grad4 = grad.transpose(0, 2, 1)[:, None, :, :]  # (n,1,out_l,C_out)
        # no cached patches after an eval-mode forward: produce the
        # input gradient only (weight grads need a training forward).
        if self._cols is not None:
            cols2d = self._cols.reshape(-1, self._cols.shape[-1])
            grad2d = grad4.reshape(-1, self.out_channels)
            np.matmul(grad2d.T, cols2d,
                      out=self._grad_out("W").reshape(self.out_channels, -1))
            grad2d.sum(axis=0, out=self._grad_out("b"))
        w_flat = self.params["W"].reshape(self.out_channels, -1)
        dcols = grad4 @ w_flat
        dx4 = _col2im(dcols, self._x4_shape, 1, k, s, 0)
        self._cols = None
        if self._pad:
            dx4 = dx4[:, :, :, self._pad:-self._pad]
        return dx4[:, :, 0, :]


class MaxPool2d(Layer):
    """Non-overlapping 2-D max pooling (stride == kernel size)."""

    def __init__(self, kernel_size: int) -> None:
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        n, c, h, w = x.shape
        k = self.kernel_size
        if h % k or w % k:
            raise ValueError(f"MaxPool2d({k}) needs H, W divisible by {k}, "
                             f"got {h}x{w}")
        blocks = x.reshape(n, c, h // k, k, w // k, k)
        out = blocks.max(axis=(3, 5))
        self._mask = blocks == out[:, :, :, None, :, None]
        self._x_shape = x.shape
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        n, c, h, w = self._x_shape
        k = self.kernel_size
        expanded = grad[:, :, :, None, :, None] * self._mask
        counts = self._mask.sum(axis=(3, 5), keepdims=True, dtype=grad.dtype)
        expanded = expanded / counts  # split ties evenly to keep grads exact
        self._mask = None
        return expanded.reshape(n, c, h, w)


class AvgPool2d(Layer):
    """Non-overlapping 2-D average pooling."""

    def __init__(self, kernel_size: int) -> None:
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        n, c, h, w = x.shape
        k = self.kernel_size
        if h % k or w % k:
            raise ValueError(f"AvgPool2d({k}) needs H, W divisible by {k}, "
                             f"got {h}x{w}")
        self._x_shape = x.shape
        return x.reshape(n, c, h // k, k, w // k, k).mean(axis=(3, 5))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        n, c, h, w = self._x_shape
        k = self.kernel_size
        scale = 1.0 / (k * k)
        out = np.broadcast_to(
            grad[:, :, :, None, :, None] * scale,
            (n, c, h // k, k, w // k, k))
        return out.reshape(n, c, h, w)


class MaxPool1d(Layer):
    """Non-overlapping 1-D max pooling for audio nets."""

    def __init__(self, kernel_size: int) -> None:
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        n, c, length = x.shape
        k = self.kernel_size
        if length % k:
            raise ValueError(f"MaxPool1d({k}) needs L divisible by {k}, "
                             f"got {length}")
        blocks = x.reshape(n, c, length // k, k)
        out = blocks.max(axis=3)
        self._mask = blocks == out[:, :, :, None]
        self._x_shape = x.shape
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        counts = self._mask.sum(axis=3, keepdims=True, dtype=grad.dtype)
        expanded = grad[:, :, :, None] * self._mask / counts
        self._mask = None
        return expanded.reshape(self._x_shape)


class Flatten(Layer):
    """Flatten all but the batch dimension."""

    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad.reshape(self._shape)


class Dropout(Layer):
    """Inverted dropout; identity at evaluation time."""

    def __init__(self, rate: float = 0.5) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng: np.random.Generator | None = None

    def attach_rng(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        if self._rng is None:
            raise RuntimeError("Dropout used without an attached rng")
        keep = 1.0 - self.rate
        # the keep/drop draw stays float64 for every compute dtype so the
        # generator stream matches the pinned trajectories; only the mask
        # itself adopts the input precision.
        self._mask = (self._rng.random(x.shape) < keep).astype(x.dtype) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        out = grad * self._mask
        self._mask = None
        return out


class BatchNorm1d(Layer):
    """Batch normalization over feature vectors (N, F)."""

    def __init__(self, num_features: int, *, momentum: float = 0.1,
                 eps: float = 1e-5,
                 dtype: DTypeLike = np.float64) -> None:
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.params["gamma"] = np.ones(num_features, dtype=dtype)
        self.params["beta"] = np.zeros(num_features, dtype=dtype)
        self.buffers["running_mean"] = np.zeros(num_features, dtype=dtype)
        self.buffers["running_var"] = np.ones(num_features, dtype=dtype)

    @property
    def name(self) -> str:
        return f"BatchNorm1d({self.num_features})"

    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        if training:
            mean = x.mean(axis=0)
            var = x.var(axis=0)
            self.buffers["running_mean"] *= 1.0 - self.momentum
            self.buffers["running_mean"] += self.momentum * mean
            self.buffers["running_var"] *= 1.0 - self.momentum
            self.buffers["running_var"] += self.momentum * var
        else:
            mean = self.buffers["running_mean"]
            var = self.buffers["running_var"]
        self._std = np.sqrt(var + self.eps)
        self._xhat = (x - mean) / self._std
        return self.params["gamma"] * self._xhat + self.params["beta"]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        xhat, std = self._xhat, self._std
        n = grad.shape[0]
        (grad * xhat).sum(axis=0, out=self._grad_out("gamma"))
        grad.sum(axis=0, out=self._grad_out("beta"))
        dxhat = grad * self.params["gamma"]
        out = (dxhat - dxhat.mean(axis=0)
               - xhat * (dxhat * xhat).mean(axis=0)) / std
        self._xhat = None
        self._std = None
        return out
