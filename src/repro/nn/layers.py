"""Neural-network layers with analytic backprop.

Layers follow a minimal protocol: ``forward`` caches what ``backward``
needs, ``backward`` returns the gradient w.r.t. the input and fills
``grads`` with gradients w.r.t. the layer's own ``params``.  ``buffers``
hold non-trainable state (batch-norm running statistics) that still
travels with the model in federated exchange.

Parameter-carrying layers are the unit of granularity for DINAR: the
paper's "layer index p" maps to an index into a model's trainable layers,
and obfuscation replaces *all* arrays of that layer.

``forward``/``backward`` accept an optional
:class:`~repro.nn.workspace.Workspace`: with one attached, every
batch-sized temporary (im2col patch buffers, layer outputs, masks,
``_col2im`` scatter targets) is written with the ``out=`` form of the
exact legacy expression into an arena buffer that is reused across
batches.  Without one (``workspace=None``, the standalone-layer
default) the same writes go into freshly allocated arrays.  Both paths
perform identical arithmetic in identical order, so results are
bitwise equal either way.

Per-batch caches (``_x``, ``_cols``, ``_mask``, ...) and workspace
buffers are execution scratch, not model state: ``__getstate__``
excludes them (see :attr:`Layer._ephemeral`), so pickling a layer —
for checkpointing or shipping across process boundaries — never
carries dead batch-sized buffers.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init as init_schemes
from repro.nn.dtypes import DTypeLike
from repro.nn.workspace import Workspace


def _memory_perm(x: np.ndarray) -> tuple[int, ...]:
    """Axes of ``x`` from largest to smallest stride (stable): the
    permutation mapping logical axes to memory order.  Identity for a
    C-contiguous array; ``(0, 2, 3, 1)`` for a conv layer's
    channels-last-in-memory NCHW view."""
    return tuple(sorted(range(x.ndim), key=lambda i: -abs(x.strides[i])))


class Layer:
    """Base class for all layers.

    Subclasses with parameters populate ``self.params`` at construction
    time and write matching keys into ``self.grads`` during ``backward``.
    ``params``/``grads``/``buffers`` are properties so composite layers
    (e.g. residual blocks) can expose merged live views over sublayers.
    """

    #: Per-batch cache attributes excluded from pickling: they hold
    #: batch-sized scratch (often views into a process-local workspace
    #: arena) that is dead weight across a process or disk boundary.
    _ephemeral: tuple[str, ...] = ()

    def __init__(self) -> None:
        self._params: dict[str, np.ndarray] = {}
        self._grads: dict[str, np.ndarray] = {}
        self._buffers: dict[str, np.ndarray] = {}

    @property
    def params(self) -> dict[str, np.ndarray]:
        """Trainable arrays by name."""
        return self._params

    @property
    def grads(self) -> dict[str, np.ndarray]:
        """Gradients matching :attr:`params`, filled by ``backward``."""
        return self._grads

    @property
    def buffers(self) -> dict[str, np.ndarray]:
        """Non-trainable exchanged state (e.g. batch-norm running stats)."""
        return self._buffers

    @property
    def has_params(self) -> bool:
        """Whether this layer carries trainable parameters."""
        return bool(self.params)

    @property
    def name(self) -> str:
        """Human-readable layer name used in sensitivity reports."""
        return type(self).__name__

    def forward(self, x: np.ndarray, *, training: bool = True,
                workspace: Workspace | None = None) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray, *,
                 workspace: Workspace | None = None) -> np.ndarray:
        raise NotImplementedError

    def attach_rng(self, rng: np.random.Generator) -> None:
        """Give stochastic layers (Dropout) their random source."""

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        for key in self._ephemeral:
            state.pop(key, None)
        return state

    def _scratch(self, workspace: Workspace | None, role: str,
                 shape: tuple[int, ...],
                 dtype: np.dtype | type | str) -> np.ndarray:
        """A scratch array for one role: arena-backed when a workspace
        is attached, freshly allocated otherwise.  Contents are
        unspecified — callers must fully overwrite before reading."""
        if workspace is None:
            return np.empty(shape, dtype=dtype)
        return workspace.request(self, role, shape, dtype)

    def _scratch_like(self, workspace: Workspace | None, role: str,
                      x: np.ndarray,
                      dtype: np.dtype | type | str | None = None
                      ) -> np.ndarray:
        """Scratch with ``x``'s shape *and memory order*.

        A ufunc allocating its own output for a transposed view (e.g.
        a conv layer's NCHW result) keeps that view's layout, and
        downstream cost depends on it — pooling reshapes such outputs
        into zero-copy block views.  Scratch destinations for
        elementwise results must therefore reproduce the layout the
        legacy expression produced, not default to C order.
        """
        if dtype is None:
            dtype = x.dtype
        perm = _memory_perm(x)
        if perm == tuple(range(x.ndim)):
            return self._scratch(workspace, role, x.shape, dtype)
        shape = tuple(x.shape[i] for i in perm)
        buffer = self._scratch(
            workspace, f"{role}~{''.join(map(str, perm))}", shape, dtype)
        return buffer.transpose(np.argsort(perm))

    def state(self) -> dict[str, np.ndarray]:
        """Copy of all arrays exchanged in FL: params plus buffers."""
        out = {k: v.copy() for k, v in self.params.items()}
        out.update({k: v.copy() for k, v in self.buffers.items()})
        return out

    def set_state(self, state: dict[str, np.ndarray]) -> None:
        """Load arrays produced by :meth:`state` (in-place, shape-checked).

        Raises ``KeyError`` for any name the layer does not own — a
        silently dropped key would desynchronize FL weight exchange.
        """
        for key, value in state.items():
            if key in self.params:
                target = self.params[key]
            elif key in self.buffers:
                target = self.buffers[key]
            else:
                raise KeyError(f"{self.name} has no state array {key!r}")
            if target.shape != value.shape:
                raise ValueError(
                    f"{self.name}.{key}: shape {value.shape} != {target.shape}")
            target[...] = value

    def adopt_views(self, params: dict[str, np.ndarray],
                    buffers: dict[str, np.ndarray],
                    grads: dict[str, np.ndarray]) -> None:
        """Rebind this layer's arrays onto externally owned views.

        The model's flat parameter plane calls this once at
        construction: each view is a zero-copy window into the model's
        weight (or gradient) buffer.  Current values are copied into
        the param/buffer views, then the views *replace* the layer's
        private arrays — from here on, reading ``self.params["W"]``
        reads the model buffer and ``backward`` writes gradients
        straight into the flat gradient buffer.

        Raises ``KeyError`` if the mapping names an array the layer
        does not own, or leaves an owned array uncovered (a partial
        rebind would silently split the layer across two planes).
        """
        if set(params) != set(self._params) \
                or set(buffers) != set(self._buffers) \
                or set(grads) != set(self._params):
            given = sorted(set(params) | set(buffers) | set(grads))
            owned = sorted(set(self._params) | set(self._buffers))
            raise KeyError(
                f"{self.name}: view names {given} do not cover exactly "
                f"the owned arrays {owned}")
        for key, view in params.items():
            view[...] = self._params[key]
            self._params[key] = view
        for key, view in buffers.items():
            view[...] = self._buffers[key]
            self._buffers[key] = view
        self._grads.clear()
        self._grads.update(grads)

    def _grad_out(self, key: str) -> np.ndarray:
        """Destination array for one gradient write.

        The flat-plane view bound by :meth:`adopt_views` when the layer
        belongs to a model; a lazily allocated private array for
        standalone layers (gradient checks, unit tests).  ``backward``
        implementations must fill this in place (``out=`` / ``[...]=``)
        rather than rebind ``self.grads[key]``.
        """
        out = self._grads.get(key)
        if out is None:
            out = np.empty_like(self._params[key])
            self._grads[key] = out
        return out

    def num_parameters(self) -> int:
        """Total trainable scalar count."""
        return sum(p.size for p in self.params.values())


class Dense(Layer):
    """Fully-connected layer: ``y = x @ W + b``."""

    _ephemeral = ("_x",)

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, *, scheme: str = "he",
                 dtype: DTypeLike = np.float64) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.params["W"] = init_schemes.initialize(
            rng, (in_features, out_features), in_features, out_features,
            scheme, dtype=dtype)
        self.params["b"] = np.zeros(out_features, dtype=dtype)

    @property
    def name(self) -> str:
        return f"Dense({self.in_features}x{self.out_features})"

    def forward(self, x: np.ndarray, *, training: bool = True,
                workspace: Workspace | None = None) -> np.ndarray:
        # backward never runs after an eval-mode forward; caching there
        # would only pin the last inference batch in memory.
        self._x = x if training else None
        w = self.params["W"]
        out = self._scratch(workspace, "out", (len(x), self.out_features),
                            np.result_type(x.dtype, w.dtype))
        np.matmul(x, w, out=out)
        out += self.params["b"]
        return out

    def backward(self, grad: np.ndarray, *,
                 workspace: Workspace | None = None) -> np.ndarray:
        # after an eval-mode forward there is no cached input, so only
        # the input gradient is produced (all that e.g. the inversion
        # attack needs); weight gradients require a training forward.
        if self._x is not None:
            np.matmul(self._x.T, grad, out=self._grad_out("W"))
            grad.sum(axis=0, out=self._grad_out("b"))
        w = self.params["W"]
        out = self._scratch(workspace, "dx", (len(grad), self.in_features),
                            np.result_type(grad.dtype, w.dtype))
        np.matmul(grad, w.T, out=out)
        self._x = None
        return out


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int, *,
            pad_out: np.ndarray | None = None,
            cols_out: np.ndarray | None = None
            ) -> tuple[np.ndarray, int, int]:
    """Unfold (N, C, H, W) into (N, out_h, out_w, C*kh*kw) patches.

    ``pad_out`` / ``cols_out`` are optional preallocated destinations
    (the padded image and the 6-D patch buffer); without them fresh
    arrays are allocated, exactly as the pre-workspace implementation
    did.  Element order and values are identical either way.  A given
    ``pad_out`` must arrive with its border already zeroed (it is
    constant across batches, so callers zero it once per buffer); only
    the interior is written here.
    """
    n, c, h, w = x.shape
    if pad:
        if pad_out is None:
            x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
        else:
            pad_out[:, :, pad:-pad, pad:-pad] = x
            x = pad_out
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    s0, s1, s2, s3 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(s0, s1, s2 * stride, s3 * stride, s2, s3),
        writeable=False,
    )
    patches = windows.transpose(0, 2, 3, 1, 4, 5)
    if cols_out is None:
        cols = patches.reshape(n, out_h, out_w, -1)
    else:
        np.copyto(cols_out, patches)
        cols = cols_out.reshape(n, out_h, out_w, -1)
    return cols, out_h, out_w


def _col2im(cols: np.ndarray, x_shape: tuple[int, int, int, int], kh: int,
            kw: int, stride: int, pad: int, *,
            padded_out: np.ndarray | None = None) -> np.ndarray:
    """Inverse of :func:`_im2col` — scatter-add patches back to an image.

    ``padded_out`` is an optional preallocated scatter target (zeroed
    here on every call, matching the fresh ``np.zeros`` it replaces).
    """
    n, c, h, w = x_shape
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    if padded_out is None:
        padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad),
                          dtype=cols.dtype)
    else:
        padded = padded_out
        padded.fill(0)
    patches = cols.reshape(n, out_h, out_w, c, kh, kw)
    for i in range(kh):
        for j in range(kw):
            padded[:, :, i:i + stride * out_h:stride,
                   j:j + stride * out_w:stride] += patches[:, :, :, :, i, j] \
                .transpose(0, 3, 1, 2)
    if pad:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded


class Conv2d(Layer):
    """2-D convolution via im2col (NCHW layout)."""

    _ephemeral = ("_cols", "_x_shape")

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 rng: np.random.Generator, *, stride: int = 1, padding: int = 0,
                 scheme: str = "he", dtype: DTypeLike = np.float64) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        fan_out = out_channels * kernel_size * kernel_size
        self.params["W"] = init_schemes.initialize(
            rng, (out_channels, in_channels, kernel_size, kernel_size),
            fan_in, fan_out, scheme, dtype=dtype)
        self.params["b"] = np.zeros(out_channels, dtype=dtype)

    @property
    def name(self) -> str:
        return (f"Conv2d({self.in_channels}->{self.out_channels},"
                f"k{self.kernel_size})")

    def _geometry(self, h: int, w: int) -> tuple[int, int]:
        k, s, p = self.kernel_size, self.stride, self.padding
        return (h + 2 * p - k) // s + 1, (w + 2 * p - k) // s + 1

    def forward(self, x: np.ndarray, *, training: bool = True,
                workspace: Workspace | None = None) -> np.ndarray:
        k, s, p = self.kernel_size, self.stride, self.padding
        n, c, h, w = x.shape
        out_h, out_w = self._geometry(h, w)
        pad_out = cols_out = None
        if workspace is not None:
            if p:
                pad_out, fresh = workspace.request_info(
                    self, "pad", (n, c, h + 2 * p, w + 2 * p), x.dtype)
                if fresh:
                    pad_out.fill(0)
            cols_out = workspace.request(
                self, "cols", (n, out_h, out_w, c, k, k), x.dtype)
        cols, _, _ = _im2col(x, k, k, s, p, pad_out=pad_out,
                             cols_out=cols_out)
        self._cols = cols if training else None
        self._x_shape = x.shape
        w_flat = self.params["W"].reshape(self.out_channels, -1)
        out = self._scratch(workspace, "out",
                            (n, out_h, out_w, self.out_channels),
                            np.result_type(x.dtype, w_flat.dtype))
        np.matmul(cols, w_flat.T, out=out)
        out += self.params["b"]
        return out.transpose(0, 3, 1, 2)

    def backward(self, grad: np.ndarray, *,
                 workspace: Workspace | None = None) -> np.ndarray:
        k, s, p = self.kernel_size, self.stride, self.padding
        grad_flat = grad.transpose(0, 2, 3, 1)
        # no cached patches after an eval-mode forward: produce the
        # input gradient only (weight grads need a training forward).
        if self._cols is not None:
            cols2d = self._cols.reshape(-1, self._cols.shape[-1])
            gout = self._scratch(workspace, "dout", grad_flat.shape,
                                 grad.dtype)
            np.copyto(gout, grad_flat)
            grad2d = gout.reshape(-1, self.out_channels)
            np.matmul(grad2d.T, cols2d,
                      out=self._grad_out("W").reshape(self.out_channels, -1))
            grad2d.sum(axis=0, out=self._grad_out("b"))
        w_flat = self.params["W"].reshape(self.out_channels, -1)
        dcols = self._scratch(
            workspace, "dcols", grad_flat.shape[:3] + (w_flat.shape[1],),
            np.result_type(grad.dtype, w_flat.dtype))
        np.matmul(grad_flat, w_flat, out=dcols)
        n, c, h, w = self._x_shape
        padded_out = None
        if workspace is not None:
            padded_out = workspace.request(
                self, "col2im", (n, c, h + 2 * p, w + 2 * p), dcols.dtype)
        out = _col2im(dcols, self._x_shape, k, k, s, p,
                      padded_out=padded_out)
        self._cols = None
        return out


class Conv1d(Layer):
    """1-D convolution (NCL layout) — used by the audio classifier."""

    _ephemeral = ("_cols", "_x_shape")

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 rng: np.random.Generator, *, stride: int = 1, padding: int = 0,
                 scheme: str = "he", dtype: DTypeLike = np.float64) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size
        self.params["W"] = init_schemes.initialize(
            rng, (out_channels, in_channels, kernel_size), fan_in,
            out_channels * kernel_size, scheme, dtype=dtype)
        self.params["b"] = np.zeros(out_channels, dtype=dtype)

    @property
    def name(self) -> str:
        return (f"Conv1d({self.in_channels}->{self.out_channels},"
                f"k{self.kernel_size})")

    def _padded4_shape(self, x_shape: tuple[int, int, int]
                       ) -> tuple[int, int, int, int]:
        """The height-1 padded image the length axis is convolved as."""
        n, c, length = x_shape
        return n, c, 1, length + 2 * self.padding

    def forward(self, x: np.ndarray, *, training: bool = True,
                workspace: Workspace | None = None) -> np.ndarray:
        k, s, p = self.kernel_size, self.stride, self.padding
        x4 = x[:, :, None, :]  # treat length as width of a height-1 image
        if p:
            if workspace is None:
                x4 = np.pad(x4, ((0, 0), (0, 0), (0, 0), (p, p)))
            else:
                pad_out, fresh = workspace.request_info(
                    self, "pad", self._padded4_shape(x.shape), x.dtype)
                if fresh:
                    pad_out.fill(0)
                pad_out[:, :, :, p:-p] = x4
                x4 = pad_out
        n, _, _, padded_len = x4.shape
        out_l = (padded_len - k) // s + 1
        cols_out = None
        if workspace is not None:
            cols_out = workspace.request(
                self, "cols", (n, 1, out_l, self.in_channels, 1, k),
                x.dtype)
        cols, _, _ = _im2col(x4, 1, k, s, 0, cols_out=cols_out)
        self._cols = cols if training else None
        self._x_shape = x.shape
        w_flat = self.params["W"].reshape(self.out_channels, -1)
        out = self._scratch(workspace, "out",
                            (n, 1, out_l, self.out_channels),
                            np.result_type(x.dtype, w_flat.dtype))
        np.matmul(cols, w_flat.T, out=out)  # (n, 1, out_l, C_out)
        out += self.params["b"]
        return out[:, 0].transpose(0, 2, 1)

    def backward(self, grad: np.ndarray, *,
                 workspace: Workspace | None = None) -> np.ndarray:
        k, s, p = self.kernel_size, self.stride, self.padding
        grad4 = grad.transpose(0, 2, 1)[:, None, :, :]  # (n,1,out_l,C_out)
        # no cached patches after an eval-mode forward: produce the
        # input gradient only (weight grads need a training forward).
        if self._cols is not None:
            cols2d = self._cols.reshape(-1, self._cols.shape[-1])
            gout = self._scratch(workspace, "dout", grad4.shape, grad.dtype)
            np.copyto(gout, grad4)
            grad2d = gout.reshape(-1, self.out_channels)
            np.matmul(grad2d.T, cols2d,
                      out=self._grad_out("W").reshape(self.out_channels, -1))
            grad2d.sum(axis=0, out=self._grad_out("b"))
        w_flat = self.params["W"].reshape(self.out_channels, -1)
        dcols = self._scratch(
            workspace, "dcols", grad4.shape[:3] + (w_flat.shape[1],),
            np.result_type(grad.dtype, w_flat.dtype))
        np.matmul(grad4, w_flat, out=dcols)
        x4_shape = self._padded4_shape(self._x_shape)
        padded_out = None
        if workspace is not None:
            padded_out = workspace.request(self, "col2im", x4_shape,
                                           dcols.dtype)
        dx4 = _col2im(dcols, x4_shape, 1, k, s, 0, padded_out=padded_out)
        self._cols = None
        if p:
            dx4 = dx4[:, :, :, p:-p]
        return dx4[:, :, 0, :]


class MaxPool2d(Layer):
    """Non-overlapping 2-D max pooling (stride == kernel size)."""

    _ephemeral = ("_mask", "_x_shape")

    def __init__(self, kernel_size: int) -> None:
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: np.ndarray, *, training: bool = True,
                workspace: Workspace | None = None) -> np.ndarray:
        n, c, h, w = x.shape
        k = self.kernel_size
        if h % k or w % k:
            raise ValueError(f"MaxPool2d({k}) needs H, W divisible by {k}, "
                             f"got {h}x{w}")
        blocks = x.reshape(n, c, h // k, k, w // k, k)
        # reductions bypass the arena: ``out=`` forces numpy's generic
        # strided reduce loop, ~3x slower than the allocating form on the
        # conv-transposed layouts that reach this layer.  The result is
        # k*k times smaller than the input, so the churn is minor.
        out = blocks.max(axis=(3, 5))
        mask = self._scratch_like(workspace, "mask", blocks, bool)
        np.equal(blocks, out[:, :, :, None, :, None], out=mask)
        self._mask = mask
        self._x_shape = x.shape
        return out

    def backward(self, grad: np.ndarray, *,
                 workspace: Workspace | None = None) -> np.ndarray:
        n, c, h, w = self._x_shape
        # Stage the incoming grad into a buffer that shares the mask's
        # (conv-transposed) memory order, then give dx that layout too:
        # elementwise values are layout-independent, the k*k broadcast
        # multiply runs coherently with the mask instead of gathering
        # from a foreign layout (~6x faster), and the 6D->4D reshape
        # stays zero-copy.
        staged = self._scratch_like(workspace, "dgrad",
                                    self._mask[:, :, :, 0, :, 0],
                                    grad.dtype)
        np.copyto(staged, grad)
        expanded = self._scratch_like(workspace, "dx", self._mask,
                                      grad.dtype)
        np.multiply(staged[:, :, :, None, :, None], self._mask,
                    out=expanded)
        counts = self._mask.sum(axis=(3, 5), keepdims=True, dtype=grad.dtype)
        expanded /= counts  # split ties evenly to keep grads exact
        self._mask = None
        return expanded.reshape(n, c, h, w)


class AvgPool2d(Layer):
    """Non-overlapping 2-D average pooling."""

    _ephemeral = ("_x_shape",)

    def __init__(self, kernel_size: int) -> None:
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: np.ndarray, *, training: bool = True,
                workspace: Workspace | None = None) -> np.ndarray:
        n, c, h, w = x.shape
        k = self.kernel_size
        if h % k or w % k:
            raise ValueError(f"AvgPool2d({k}) needs H, W divisible by {k}, "
                             f"got {h}x{w}")
        self._x_shape = x.shape
        blocks = x.reshape(n, c, h // k, k, w // k, k)
        # allocating reduce: see MaxPool2d.forward.
        return blocks.mean(axis=(3, 5))

    def backward(self, grad: np.ndarray, *,
                 workspace: Workspace | None = None) -> np.ndarray:
        n, c, h, w = self._x_shape
        k = self.kernel_size
        scale = 1.0 / (k * k)
        scaled = self._scratch(workspace, "scaled",
                               (n, c, h // k, 1, w // k, 1), grad.dtype)
        np.multiply(grad[:, :, :, None, :, None], scale, out=scaled)
        expanded = self._scratch(workspace, "dx",
                                 (n, c, h // k, k, w // k, k), grad.dtype)
        np.copyto(expanded, np.broadcast_to(scaled, expanded.shape))
        return expanded.reshape(n, c, h, w)


class MaxPool1d(Layer):
    """Non-overlapping 1-D max pooling for audio nets."""

    _ephemeral = ("_mask", "_x_shape")

    def __init__(self, kernel_size: int) -> None:
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: np.ndarray, *, training: bool = True,
                workspace: Workspace | None = None) -> np.ndarray:
        n, c, length = x.shape
        k = self.kernel_size
        if length % k:
            raise ValueError(f"MaxPool1d({k}) needs L divisible by {k}, "
                             f"got {length}")
        blocks = x.reshape(n, c, length // k, k)
        # allocating reduce: see MaxPool2d.forward.
        out = blocks.max(axis=3)
        mask = self._scratch_like(workspace, "mask", blocks, bool)
        np.equal(blocks, out[:, :, :, None], out=mask)
        self._mask = mask
        self._x_shape = x.shape
        return out

    def backward(self, grad: np.ndarray, *,
                 workspace: Workspace | None = None) -> np.ndarray:
        counts = self._mask.sum(axis=3, keepdims=True, dtype=grad.dtype)
        # staged grad + layout-matched dx: see MaxPool2d.backward.
        staged = self._scratch_like(workspace, "dgrad",
                                    self._mask[:, :, :, 0], grad.dtype)
        np.copyto(staged, grad)
        expanded = self._scratch_like(workspace, "dx", self._mask,
                                      grad.dtype)
        np.multiply(staged[:, :, :, None], self._mask, out=expanded)
        expanded /= counts
        self._mask = None
        return expanded.reshape(self._x_shape)


class Flatten(Layer):
    """Flatten all but the batch dimension."""

    _ephemeral = ("_shape",)

    def forward(self, x: np.ndarray, *, training: bool = True,
                workspace: Workspace | None = None) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray, *,
                 workspace: Workspace | None = None) -> np.ndarray:
        return grad.reshape(self._shape)


class Dropout(Layer):
    """Inverted dropout; identity at evaluation time."""

    _ephemeral = ("_mask",)

    def __init__(self, rate: float = 0.5) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng: np.random.Generator | None = None

    def attach_rng(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def forward(self, x: np.ndarray, *, training: bool = True,
                workspace: Workspace | None = None) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        if self._rng is None:
            raise RuntimeError("Dropout used without an attached rng")
        keep = 1.0 - self.rate
        # the keep/drop draw stays float64 for every compute dtype so the
        # generator stream matches the pinned trajectories; only the mask
        # itself adopts the input precision.
        draw = self._scratch(workspace, "draw", x.shape, np.float64)
        self._rng.random(out=draw)
        kept = self._scratch(workspace, "kept", x.shape, bool)
        np.less(draw, keep, out=kept)
        mask = self._scratch(workspace, "mask", x.shape, x.dtype)
        np.copyto(mask, kept)   # the bool -> compute-dtype cast of astype
        mask /= keep
        self._mask = mask
        out = self._scratch(workspace, "out", x.shape, x.dtype)
        np.multiply(x, mask, out=out)
        return out

    def backward(self, grad: np.ndarray, *,
                 workspace: Workspace | None = None) -> np.ndarray:
        if self._mask is None:
            return grad
        out = self._scratch(workspace, "dx", grad.shape, grad.dtype)
        np.multiply(grad, self._mask, out=out)
        self._mask = None
        return out


class BatchNorm1d(Layer):
    """Batch normalization over feature vectors (N, F)."""

    _ephemeral = ("_xhat", "_std")

    def __init__(self, num_features: int, *, momentum: float = 0.1,
                 eps: float = 1e-5,
                 dtype: DTypeLike = np.float64) -> None:
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.params["gamma"] = np.ones(num_features, dtype=dtype)
        self.params["beta"] = np.zeros(num_features, dtype=dtype)
        self.buffers["running_mean"] = np.zeros(num_features, dtype=dtype)
        self.buffers["running_var"] = np.ones(num_features, dtype=dtype)

    @property
    def name(self) -> str:
        return f"BatchNorm1d({self.num_features})"

    def forward(self, x: np.ndarray, *, training: bool = True,
                workspace: Workspace | None = None) -> np.ndarray:
        if training:
            mean = self._scratch(workspace, "mean", x.shape[1:], x.dtype)
            x.mean(axis=0, out=mean)
            var = self._scratch(workspace, "var", x.shape[1:], x.dtype)
            x.var(axis=0, out=var)
            self.buffers["running_mean"] *= 1.0 - self.momentum
            self.buffers["running_mean"] += self.momentum * mean
            self.buffers["running_var"] *= 1.0 - self.momentum
            self.buffers["running_var"] += self.momentum * var
        else:
            mean = self.buffers["running_mean"]
            var = self.buffers["running_var"]
        std = self._scratch(workspace, "std", var.shape, var.dtype)
        np.add(var, self.eps, out=std)
        np.sqrt(std, out=std)
        self._std = std
        xhat = self._scratch(workspace, "xhat", x.shape,
                             np.result_type(x.dtype, mean.dtype))
        np.subtract(x, mean, out=xhat)
        xhat /= std
        self._xhat = xhat
        gamma = self.params["gamma"]
        out = self._scratch(workspace, "out", x.shape,
                            np.result_type(gamma.dtype, xhat.dtype))
        np.multiply(gamma, xhat, out=out)
        out += self.params["beta"]
        return out

    def backward(self, grad: np.ndarray, *,
                 workspace: Workspace | None = None) -> np.ndarray:
        xhat, std = self._xhat, self._std
        tmp = self._scratch(workspace, "tmp", grad.shape,
                            np.result_type(grad.dtype, xhat.dtype))
        np.multiply(grad, xhat, out=tmp)
        tmp.sum(axis=0, out=self._grad_out("gamma"))
        grad.sum(axis=0, out=self._grad_out("beta"))
        gamma = self.params["gamma"]
        dxhat = self._scratch(workspace, "dxhat", grad.shape,
                              np.result_type(grad.dtype, gamma.dtype))
        np.multiply(grad, gamma, out=dxhat)
        mean1 = self._scratch(workspace, "mean1", dxhat.shape[1:],
                              dxhat.dtype)
        dxhat.mean(axis=0, out=mean1)
        np.multiply(dxhat, xhat, out=tmp)
        mean2 = self._scratch(workspace, "mean2", tmp.shape[1:], tmp.dtype)
        tmp.mean(axis=0, out=mean2)
        out = self._scratch(workspace, "dx", grad.shape, dxhat.dtype)
        np.subtract(dxhat, mean1, out=out)
        np.multiply(xhat, mean2, out=tmp)
        out -= tmp
        out /= std
        self._xhat = None
        self._std = None
        return out
