"""Seeded weight initializers.

All initializers take an explicit ``numpy.random.Generator`` so that every
model build in the simulator is reproducible from a single experiment seed.
The ``dtype`` argument fixes the precision of the returned array; the
float64 path consumes the generator stream exactly as the original
double-precision code did, so pinned trajectories stay bitwise intact.
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn.dtypes import DTypeLike, standard_normal


def xavier_uniform(rng: np.random.Generator, shape: tuple[int, ...],
                   fan_in: int, fan_out: int, *,
                   dtype: DTypeLike = np.float64) -> np.ndarray:
    """Glorot/Xavier uniform initialization, suited to Tanh/Sigmoid nets.

    ``Generator.uniform`` has no dtype parameter, so the draw is always
    double precision and cast once — identical stream for both dtypes.
    """
    limit = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(dtype, copy=False)


def he_normal(rng: np.random.Generator, shape: tuple[int, ...],
              fan_in: int, *, dtype: DTypeLike = np.float64) -> np.ndarray:
    """He/Kaiming normal initialization, suited to ReLU nets."""
    std = math.sqrt(2.0 / fan_in)
    return (standard_normal(rng, shape, dtype) * std).astype(dtype, copy=False)


def lecun_normal(rng: np.random.Generator, shape: tuple[int, ...],
                 fan_in: int, *, dtype: DTypeLike = np.float64) -> np.ndarray:
    """LeCun normal initialization (variance 1/fan_in)."""
    std = math.sqrt(1.0 / fan_in)
    return (standard_normal(rng, shape, dtype) * std).astype(dtype, copy=False)


def initialize(rng: np.random.Generator, shape: tuple[int, ...], fan_in: int,
               fan_out: int, scheme: str, *,
               dtype: DTypeLike = np.float64) -> np.ndarray:
    """Dispatch to a named initialization scheme.

    Parameters
    ----------
    scheme:
        One of ``"xavier"``, ``"he"`` or ``"lecun"``.
    dtype:
        Precision of the returned parameter array.
    """
    if scheme == "xavier":
        return xavier_uniform(rng, shape, fan_in, fan_out, dtype=dtype)
    if scheme == "he":
        return he_normal(rng, shape, fan_in, dtype=dtype)
    if scheme == "lecun":
        return lecun_normal(rng, shape, fan_in, dtype=dtype)
    raise ValueError(f"unknown initialization scheme: {scheme!r}")
