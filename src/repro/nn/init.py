"""Seeded weight initializers.

All initializers take an explicit ``numpy.random.Generator`` so that every
model build in the simulator is reproducible from a single experiment seed.
"""

from __future__ import annotations

import math

import numpy as np


def xavier_uniform(rng: np.random.Generator, shape: tuple[int, ...],
                   fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialization, suited to Tanh/Sigmoid nets."""
    limit = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float64)


def he_normal(rng: np.random.Generator, shape: tuple[int, ...],
              fan_in: int) -> np.ndarray:
    """He/Kaiming normal initialization, suited to ReLU nets."""
    std = math.sqrt(2.0 / fan_in)
    return (rng.standard_normal(shape) * std).astype(np.float64)


def lecun_normal(rng: np.random.Generator, shape: tuple[int, ...],
                 fan_in: int) -> np.ndarray:
    """LeCun normal initialization (variance 1/fan_in)."""
    std = math.sqrt(1.0 / fan_in)
    return (rng.standard_normal(shape) * std).astype(np.float64)


def initialize(rng: np.random.Generator, shape: tuple[int, ...], fan_in: int,
               fan_out: int, scheme: str) -> np.ndarray:
    """Dispatch to a named initialization scheme.

    Parameters
    ----------
    scheme:
        One of ``"xavier"``, ``"he"`` or ``"lecun"``.
    """
    if scheme == "xavier":
        return xavier_uniform(rng, shape, fan_in, fan_out)
    if scheme == "he":
        return he_normal(rng, shape, fan_in)
    if scheme == "lecun":
        return lecun_normal(rng, shape, fan_in)
    raise ValueError(f"unknown initialization scheme: {scheme!r}")
