"""Optimizers.

``Adagrad`` implements Algorithm 1 (lines 8–14) of the paper verbatim:
cumulative squared gradients ``G`` and the update
``theta <- theta - lr * g / sqrt(G + 1e-5)`` (the stabilizer sits *inside*
the square root, as written in the paper).  The remaining optimizers back
the Fig. 11 ablation study: Adam, AdaMax, RMSProp, plain/momentum SGD and
ADGD (Malitsky & Mishchenko's adaptive gradient descent without descent).
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn.model import Model


class Optimizer:
    """Base optimizer bound to a model.

    State is keyed by ``(trainable_layer_index, param_name)`` so that a
    client can keep its optimizer across FL rounds even though the model
    weights are overwritten by the server at the start of each round.
    """

    def __init__(self, model: Model, lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.model = model
        self.lr = lr
        self.state: dict[tuple[int, str], np.ndarray] = {}
        self.steps = 0

    def step(self) -> None:
        """Apply one update from the gradients currently on the model."""
        self.steps += 1
        for idx, layer in enumerate(self.model.trainable):
            for key, param in layer.params.items():
                grad = layer.grads.get(key)
                if grad is None:
                    raise RuntimeError(
                        f"no gradient for {layer.name}.{key}; run "
                        "loss_and_grad before step()")
                self._update(idx, key, param, grad)

    def _update(self, idx: int, key: str, param: np.ndarray,
                grad: np.ndarray) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        """Drop accumulated state (fresh start, e.g. for a new FL task)."""
        self.state.clear()
        self.steps = 0


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, model: Model, lr: float,
                 momentum: float = 0.0) -> None:
        super().__init__(model, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum

    def _update(self, idx: int, key: str, param: np.ndarray,
                grad: np.ndarray) -> None:
        if self.momentum:
            buf = self.state.setdefault((idx, key), np.zeros_like(param))
            buf *= self.momentum
            buf += grad
            param -= self.lr * buf
        else:
            param -= self.lr * grad


class Adagrad(Optimizer):
    """The paper's adaptive model training (Algorithm 1, lines 8–14)."""

    def __init__(self, model: Model, lr: float, eps: float = 1e-5) -> None:
        super().__init__(model, lr)
        self.eps = eps

    def _update(self, idx: int, key: str, param: np.ndarray,
                grad: np.ndarray) -> None:
        accum = self.state.setdefault((idx, key), np.zeros_like(param))
        accum += grad ** 2
        param -= self.lr * grad / np.sqrt(accum + self.eps)


class RMSProp(Optimizer):
    """RMSProp with exponentially decayed squared-gradient average."""

    def __init__(self, model: Model, lr: float, decay: float = 0.9,
                 eps: float = 1e-8) -> None:
        super().__init__(model, lr)
        self.decay = decay
        self.eps = eps

    def _update(self, idx: int, key: str, param: np.ndarray,
                grad: np.ndarray) -> None:
        accum = self.state.setdefault((idx, key), np.zeros_like(param))
        accum *= self.decay
        accum += (1.0 - self.decay) * grad ** 2
        param -= self.lr * grad / (np.sqrt(accum) + self.eps)


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(self, model: Model, lr: float, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8) -> None:
        super().__init__(model, lr)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps

    def _update(self, idx: int, key: str, param: np.ndarray,
                grad: np.ndarray) -> None:
        m = self.state.setdefault((idx, key, "m"), np.zeros_like(param))
        v = self.state.setdefault((idx, key, "v"), np.zeros_like(param))
        m *= self.beta1
        m += (1.0 - self.beta1) * grad
        v *= self.beta2
        v += (1.0 - self.beta2) * grad ** 2
        m_hat = m / (1.0 - self.beta1 ** self.steps)
        v_hat = v / (1.0 - self.beta2 ** self.steps)
        param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdaMax(Optimizer):
    """AdaMax — the infinity-norm variant of Adam (Kingma & Ba, 2015)."""

    def __init__(self, model: Model, lr: float, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8) -> None:
        super().__init__(model, lr)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps

    def _update(self, idx: int, key: str, param: np.ndarray,
                grad: np.ndarray) -> None:
        m = self.state.setdefault((idx, key, "m"), np.zeros_like(param))
        u = self.state.setdefault((idx, key, "u"), np.zeros_like(param))
        m *= self.beta1
        m += (1.0 - self.beta1) * grad
        np.maximum(self.beta2 * u, np.abs(grad), out=u)
        m_hat = m / (1.0 - self.beta1 ** self.steps)
        param -= self.lr * m_hat / (u + self.eps)


class ADGD(Optimizer):
    """Adaptive gradient descent without descent (Malitsky & Mishchenko).

    A single scalar step size is adapted from the observed local
    smoothness ``||x_k - x_{k-1}|| / (2 ||g_k - g_{k-1}||)``; no
    hyper-parameter beyond the initial step.

    The original rule targets deterministic gradients.  With minibatch
    noise the smoothness estimate ``dx / (2 dg)`` is corrupted in both
    directions — gradient noise inflates ``dg`` (collapsing the step
    to zero) while the ``sqrt(1 + theta)`` growth path can run away —
    so the adapted step is clamped to ``[lr / cap_factor,
    lr * cap_factor]``, a standard stochastic safeguard.
    """

    def __init__(self, model: Model, lr: float,
                 cap_factor: float = 2.0) -> None:
        super().__init__(model, lr)
        if cap_factor <= 1.0:
            raise ValueError(f"cap_factor must be > 1, got {cap_factor}")
        self._cap = cap_factor * lr
        self._floor = lr / cap_factor
        self._lam = lr
        self._theta = float("inf")
        self._prev_params: list[np.ndarray] | None = None
        self._prev_grads: list[np.ndarray] | None = None

    def step(self) -> None:
        self.steps += 1
        params, grads = [], []
        for layer in self.model.trainable:
            for key in layer.params:
                params.append(layer.params[key])
                grads.append(layer.grads[key].copy())

        if self._prev_params is not None:
            dx = math.sqrt(sum(
                float(((p - q) ** 2).sum())
                for p, q in zip(params, self._prev_params)))
            dg = math.sqrt(sum(
                float(((g - h) ** 2).sum())
                for g, h in zip(grads, self._prev_grads)))
            candidate = math.sqrt(1.0 + self._theta) * self._lam
            if dg > 1e-12:
                candidate = min(candidate, dx / (2.0 * dg))
            candidate = min(max(candidate, self._floor), self._cap)
            self._theta = candidate / self._lam
            self._lam = candidate

        self._prev_params = [p.copy() for p in params]
        self._prev_grads = grads
        for param, grad in zip(params, grads):
            param -= self._lam * grad

    def _update(self, idx: int, key: str, param: np.ndarray,
                grad: np.ndarray) -> None:  # pragma: no cover - unused
        raise RuntimeError("ADGD overrides step() directly")

    def reset(self) -> None:
        super().reset()
        self._lam = self.lr
        self._theta = float("inf")
        self._prev_params = None
        self._prev_grads = None


_REGISTRY = {
    "sgd": SGD,
    "adagrad": Adagrad,
    "rmsprop": RMSProp,
    "adam": Adam,
    "adamax": AdaMax,
    "adgd": ADGD,
}


def make_optimizer(name: str, model: Model, lr: float, **kwargs) -> Optimizer:
    """Build an optimizer by name (the Fig. 11 ablation switch)."""
    try:
        cls = _REGISTRY[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown optimizer {name!r}; known: {sorted(_REGISTRY)}") from None
    return cls(model, lr, **kwargs)


def optimizer_names() -> list[str]:
    """Names accepted by :func:`make_optimizer`."""
    return sorted(_REGISTRY)
