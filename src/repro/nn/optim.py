"""Optimizers over the flat parameter plane.

Every update rule operates on the model's whole flat weight buffer and
flat gradient buffer in one shot — no per-``(layer, key)`` Python loop
— with optimizer state held as flat vectors of the same length.
Gradient coordinates of non-trainable buffers (batch-norm running
statistics) are permanently zero, which makes every whole-buffer update
a bitwise no-op there, so the flat rules reproduce the legacy per-array
loops bit for bit.

``Adagrad`` implements Algorithm 1 (lines 8–14) of the paper verbatim:
cumulative squared gradients ``G`` and the update
``theta <- theta - lr * g / sqrt(G + 1e-5)`` (the stabilizer sits *inside*
the square root, as written in the paper).  The remaining optimizers back
the Fig. 11 ablation study: Adam, AdaMax, RMSProp, plain/momentum SGD and
ADGD (Malitsky & Mishchenko's adaptive gradient descent without descent).
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn.model import Model
from repro.nn.store import chunked_sq_sum


class Optimizer:
    """Base optimizer bound to a model's flat parameter plane.

    State slots (:meth:`_slot`) are flat vectors parallel to the weight
    buffer, keyed by name (``"momentum"``, ``"accum"``, ``"m"``, …), so
    a client can keep its optimizer across FL rounds even though the
    model weights are overwritten by the server at the start of each
    round.
    """

    def __init__(self, model: Model, lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.model = model
        self.lr = lr
        self.state: dict[str, np.ndarray] = {}
        self.steps = 0
        # Model structure is fixed after construction, so this is a
        # constant; a parameterless model makes step() a no-op.
        self._paramless = model.num_trainable_layers == 0

    def _flat_buffers(self) -> tuple[np.ndarray, np.ndarray]:
        """The live (weights, gradients) buffer pair, post-backward."""
        if not self.model.grads_ready:
            raise RuntimeError(
                f"no gradients on {self.model.name}; run "
                "loss_and_grad before step()")
        return self.model.weights.buffer, self.model.grad_vector

    def step(self) -> None:
        """Apply one update from the gradients currently on the model."""
        self.steps += 1
        if self._paramless:
            return
        params, grads = self._flat_buffers()
        self._update_flat(params, grads)

    def _update_flat(self, params: np.ndarray,
                     grads: np.ndarray) -> None:
        raise NotImplementedError

    def _slot(self, name: str) -> np.ndarray:
        """A named flat state vector, zero-initialized on first use.

        Allocated in the weight buffer's dtype so optimizer state never
        drags a float32 plane back up to double precision.
        """
        buf = self.state.get(name)
        if buf is None:
            buf = np.zeros_like(self.model.weights.buffer)
            self.state[name] = buf
        return buf

    def reset(self) -> None:
        """Drop accumulated state (fresh start, e.g. for a new FL task)."""
        self.state.clear()
        self.steps = 0


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, model: Model, lr: float,
                 momentum: float = 0.0) -> None:
        super().__init__(model, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum

    def _update_flat(self, params: np.ndarray,
                     grads: np.ndarray) -> None:
        if self.momentum:
            buf = self._slot("momentum")
            buf *= self.momentum
            buf += grads
            params -= self.lr * buf
        else:
            params -= self.lr * grads


class Adagrad(Optimizer):
    """The paper's adaptive model training (Algorithm 1, lines 8–14)."""

    def __init__(self, model: Model, lr: float, eps: float = 1e-5) -> None:
        super().__init__(model, lr)
        self.eps = eps

    def _update_flat(self, params: np.ndarray,
                     grads: np.ndarray) -> None:
        accum = self._slot("accum")
        accum += grads ** 2
        params -= self.lr * grads / np.sqrt(accum + self.eps)


class RMSProp(Optimizer):
    """RMSProp with exponentially decayed squared-gradient average."""

    def __init__(self, model: Model, lr: float, decay: float = 0.9,
                 eps: float = 1e-8) -> None:
        super().__init__(model, lr)
        self.decay = decay
        self.eps = eps

    def _update_flat(self, params: np.ndarray,
                     grads: np.ndarray) -> None:
        accum = self._slot("accum")
        accum *= self.decay
        accum += (1.0 - self.decay) * grads ** 2
        params -= self.lr * grads / (np.sqrt(accum) + self.eps)


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(self, model: Model, lr: float, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8) -> None:
        super().__init__(model, lr)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps

    def _update_flat(self, params: np.ndarray,
                     grads: np.ndarray) -> None:
        m = self._slot("m")
        v = self._slot("v")
        m *= self.beta1
        m += (1.0 - self.beta1) * grads
        v *= self.beta2
        v += (1.0 - self.beta2) * grads ** 2
        m_hat = m / (1.0 - self.beta1 ** self.steps)
        v_hat = v / (1.0 - self.beta2 ** self.steps)
        params -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdaMax(Optimizer):
    """AdaMax — the infinity-norm variant of Adam (Kingma & Ba, 2015)."""

    def __init__(self, model: Model, lr: float, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8) -> None:
        super().__init__(model, lr)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps

    def _update_flat(self, params: np.ndarray,
                     grads: np.ndarray) -> None:
        m = self._slot("m")
        u = self._slot("u")
        m *= self.beta1
        m += (1.0 - self.beta1) * grads
        np.maximum(self.beta2 * u, np.abs(grads), out=u)
        m_hat = m / (1.0 - self.beta1 ** self.steps)
        params -= self.lr * m_hat / (u + self.eps)


class ADGD(Optimizer):
    """Adaptive gradient descent without descent (Malitsky & Mishchenko).

    A single scalar step size is adapted from the observed local
    smoothness ``||x_k - x_{k-1}|| / (2 ||g_k - g_{k-1}||)``; no
    hyper-parameter beyond the initial step.

    The original rule targets deterministic gradients.  With minibatch
    noise the smoothness estimate ``dx / (2 dg)`` is corrupted in both
    directions — gradient noise inflates ``dg`` (collapsing the step
    to zero) while the ``sqrt(1 + theta)`` growth path can run away —
    so the adapted step is clamped to ``[lr / cap_factor,
    lr * cap_factor]``, a standard stochastic safeguard.

    Snapshots of the previous iterate/gradient are single flat buffer
    copies, and the norms fold per layout entry
    (:func:`~repro.nn.store.chunked_sq_sum`) over the trainable
    coordinates only, reproducing the legacy per-array reduction
    bitwise.
    """

    def __init__(self, model: Model, lr: float,
                 cap_factor: float = 2.0) -> None:
        super().__init__(model, lr)
        if cap_factor <= 1.0:
            raise ValueError(f"cap_factor must be > 1, got {cap_factor}")
        self._cap = cap_factor * lr
        self._floor = lr / cap_factor
        self._lam = lr
        self._theta = float("inf")
        self._prev_params: np.ndarray | None = None
        self._prev_grads: np.ndarray | None = None

    def step(self) -> None:
        self.steps += 1
        if self._paramless:
            return
        params, grads = self._flat_buffers()
        if self._prev_params is not None:
            chunks = self.model.weight_layout().param_entry_slices
            dx = math.sqrt(
                chunked_sq_sum(params - self._prev_params, chunks))
            dg = math.sqrt(
                chunked_sq_sum(grads - self._prev_grads, chunks))
            candidate = math.sqrt(1.0 + self._theta) * self._lam
            if dg > 1e-12:
                candidate = min(candidate, dx / (2.0 * dg))
            candidate = min(max(candidate, self._floor), self._cap)
            self._theta = candidate / self._lam
            self._lam = candidate

        self._prev_params = params.copy()
        self._prev_grads = grads.copy()
        params -= self._lam * grads

    def _update_flat(self, params: np.ndarray,
                     grads: np.ndarray) -> None:  # pragma: no cover
        raise RuntimeError("ADGD overrides step() directly")

    def reset(self) -> None:
        super().reset()
        self._lam = self.lr
        self._theta = float("inf")
        self._prev_params = None
        self._prev_grads = None


_REGISTRY = {
    "sgd": SGD,
    "adagrad": Adagrad,
    "rmsprop": RMSProp,
    "adam": Adam,
    "adamax": AdaMax,
    "adgd": ADGD,
}


def make_optimizer(name: str, model: Model, lr: float, **kwargs) -> Optimizer:
    """Build an optimizer by name (the Fig. 11 ablation switch)."""
    try:
        cls = _REGISTRY[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown optimizer {name!r}; known: {sorted(_REGISTRY)}") from None
    return cls(model, lr, **kwargs)


def optimizer_names() -> list[str]:
    """Names accepted by :func:`make_optimizer`."""
    return sorted(_REGISTRY)
