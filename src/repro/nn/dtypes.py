"""Precision policy of the compute plane.

The whole substrate computes in one configurable floating dtype —
``float64`` (the bitwise reproduction default) or ``float32`` (half the
memory traffic and upload bytes).  Two rules keep that honest:

* **The float64 path is untouchable.**  Every dtype-gated helper below
  executes the *exact* legacy NumPy call when the requested dtype is
  float64 — same arguments, same generator-stream consumption — so the
  golden trajectory pins stay bitwise intact.  Only the float32 branch
  takes a different route (native single-precision draws, which consume
  a different, but still fully seeded, portion of the bit stream).
* **No silent upcasts.**  Under NEP 50, Python-float scalars are weak
  (``float32_array * 0.5`` stays float32) but ``np.float64`` scalars
  are strong; code on the compute plane uses Python scalars for
  constants and these helpers for allocations and draws.
"""

from __future__ import annotations

import numpy as np

#: Dtype names the compute plane accepts (``FLConfig.dtype`` / CLI
#: ``--dtype`` values).
SUPPORTED_DTYPES = ("float32", "float64")

#: Like numpy dtype arguments: a name, a type object, or a dtype.
DTypeLike = str | type | np.dtype


def resolve_dtype(dtype: DTypeLike | None) -> np.dtype:
    """Normalize a dtype spec; ``None`` means the float64 default."""
    resolved = np.dtype(np.float64 if dtype is None else dtype)
    if resolved.name not in SUPPORTED_DTYPES:
        raise ValueError(
            f"unsupported compute dtype {resolved.name!r}; "
            f"supported: {', '.join(SUPPORTED_DTYPES)}")
    return resolved


def standard_normal(rng: np.random.Generator, shape,
                    dtype: DTypeLike) -> np.ndarray:
    """``rng.standard_normal`` in the requested precision.

    float64 issues the exact legacy call (bitwise-pinned stream);
    float32 draws natively in single precision.
    """
    dtype = np.dtype(dtype)
    if dtype == np.float64:
        return rng.standard_normal(shape)
    return rng.standard_normal(shape, dtype=dtype)


def gaussian(rng: np.random.Generator, sigma: float, size: int,
             dtype: DTypeLike) -> np.ndarray:
    """Centered Gaussian noise ``N(0, sigma^2)`` in the requested precision.

    float64 issues the exact legacy ``rng.normal(0.0, sigma, size)``
    call (bitwise-pinned stream); float32 scales a native
    single-precision standard-normal draw.
    """
    dtype = np.dtype(dtype)
    if dtype == np.float64:
        return rng.normal(0.0, sigma, size=size)
    out = rng.standard_normal(size, dtype=dtype)
    out *= sigma
    return out
