"""Activation layers.

Every activation is a parameter-free :class:`repro.nn.layers.Layer`; they
cache whatever the backward pass needs on ``forward`` and release it after
``backward``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn.layers import Layer


class ReLU(Layer):
    """Rectified linear unit, ``max(0, x)``."""

    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        out = grad * self._mask
        self._mask = None
        return out


class LeakyReLU(Layer):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = float(negative_slope)

    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, self.negative_slope * x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        out = np.where(self._mask, grad, self.negative_slope * grad)
        self._mask = None
        return out


class Tanh(Layer):
    """Hyperbolic tangent — the activation of the paper's 6-layer FCNN."""

    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        out = grad * (1.0 - self._out ** 2)
        self._out = None
        return out


class Sigmoid(Layer):
    """Logistic sigmoid."""

    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        self._out = 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
        return self._out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        out = grad * self._out * (1.0 - self._out)
        self._out = None
        return out


class ELU(Layer):
    """Exponential linear unit."""

    def __init__(self, alpha: float = 1.0) -> None:
        super().__init__()
        self.alpha = float(alpha)

    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        self._x = x
        self._neg = self.alpha * (np.exp(np.minimum(x, 0.0)) - 1.0)
        return np.where(x > 0, x, self._neg)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        out = np.where(self._x > 0, grad, grad * (self._neg + self.alpha))
        self._x = None
        self._neg = None
        return out


class GELU(Layer):
    """Gaussian error linear unit (tanh approximation)."""

    _C = math.sqrt(2.0 / math.pi)

    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        self._x = x
        inner = self._C * (x + 0.044715 * x ** 3)
        self._t = np.tanh(inner)
        return 0.5 * x * (1.0 + self._t)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x, t = self._x, self._t
        dinner = self._C * (1.0 + 3 * 0.044715 * x ** 2)
        dx = 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t ** 2) * dinner
        self._x = None
        self._t = None
        return grad * dx


class Softmax(Layer):
    """Standalone softmax over the last axis.

    Prefer :class:`repro.nn.losses.SoftmaxCrossEntropy` for training, which
    fuses softmax with the loss for numerical stability; this layer exists
    for models that must *emit* probabilities (e.g. attack feature
    extraction from a deployed model).
    """

    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        shifted = x - x.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        self._out = exp / exp.sum(axis=-1, keepdims=True)
        return self._out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        s = self._out
        self._out = None
        dot = (grad * s).sum(axis=-1, keepdims=True)
        return s * (grad - dot)
