"""Activation layers.

Every activation is a parameter-free :class:`repro.nn.layers.Layer`; they
cache whatever the backward pass needs on ``forward`` and release it after
``backward``.  With a workspace attached, outputs and masks land in
reusable arena buffers via the ``out=`` form of the exact legacy
expressions, so results are bitwise identical with and without one.
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn.layers import Layer
from repro.nn.workspace import Workspace


class ReLU(Layer):
    """Rectified linear unit, ``max(0, x)``."""

    _ephemeral = ("_mask",)

    def forward(self, x: np.ndarray, *, training: bool = True,
                workspace: Workspace | None = None) -> np.ndarray:
        mask = self._scratch_like(workspace, "mask", x, bool)
        np.greater(x, 0, out=mask)
        self._mask = mask
        out = self._scratch_like(workspace, "out", x)
        np.multiply(x, mask, out=out)
        return out

    def backward(self, grad: np.ndarray, *,
                 workspace: Workspace | None = None) -> np.ndarray:
        out = self._scratch_like(workspace, "dx", grad)
        np.multiply(grad, self._mask, out=out)
        self._mask = None
        return out


class LeakyReLU(Layer):
    """Leaky ReLU with configurable negative slope."""

    _ephemeral = ("_mask",)

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = float(negative_slope)

    def forward(self, x: np.ndarray, *, training: bool = True,
                workspace: Workspace | None = None) -> np.ndarray:
        mask = self._scratch_like(workspace, "mask", x, bool)
        np.greater(x, 0, out=mask)
        self._mask = mask
        # np.where(mask, x, slope * x) as a fill-then-overwrite: identical
        # selection, no extra arithmetic on the kept lanes.
        out = self._scratch_like(workspace, "out", x)
        np.multiply(self.negative_slope, x, out=out)
        np.copyto(out, x, where=mask)
        return out

    def backward(self, grad: np.ndarray, *,
                 workspace: Workspace | None = None) -> np.ndarray:
        out = self._scratch_like(workspace, "dx", grad)
        np.multiply(self.negative_slope, grad, out=out)
        np.copyto(out, grad, where=self._mask)
        self._mask = None
        return out


class Tanh(Layer):
    """Hyperbolic tangent — the activation of the paper's 6-layer FCNN."""

    _ephemeral = ("_out",)

    def forward(self, x: np.ndarray, *, training: bool = True,
                workspace: Workspace | None = None) -> np.ndarray:
        out = self._scratch_like(workspace, "out", x)
        np.tanh(x, out=out)
        self._out = out
        return out

    def backward(self, grad: np.ndarray, *,
                 workspace: Workspace | None = None) -> np.ndarray:
        tmp = self._scratch_like(workspace, "tmp", self._out)
        np.power(self._out, 2, out=tmp)
        np.subtract(1.0, tmp, out=tmp)
        out = self._scratch_like(workspace, "dx", grad,
                                 np.result_type(grad.dtype, tmp.dtype))
        np.multiply(grad, tmp, out=out)
        self._out = None
        return out


class Sigmoid(Layer):
    """Logistic sigmoid."""

    _ephemeral = ("_out",)

    def forward(self, x: np.ndarray, *, training: bool = True,
                workspace: Workspace | None = None) -> np.ndarray:
        out = self._scratch_like(workspace, "out", x)
        np.clip(x, -60.0, 60.0, out=out)
        np.negative(out, out=out)
        np.exp(out, out=out)
        np.add(1.0, out, out=out)
        np.divide(1.0, out, out=out)
        self._out = out
        return out

    def backward(self, grad: np.ndarray, *,
                 workspace: Workspace | None = None) -> np.ndarray:
        s = self._out
        tmp = self._scratch_like(workspace, "tmp", s)
        np.subtract(1.0, s, out=tmp)
        out = self._scratch_like(workspace, "dx", grad,
                                 np.result_type(grad.dtype, s.dtype))
        np.multiply(grad, s, out=out)
        out *= tmp
        self._out = None
        return out


class ELU(Layer):
    """Exponential linear unit."""

    _ephemeral = ("_mask", "_neg")

    def __init__(self, alpha: float = 1.0) -> None:
        super().__init__()
        self.alpha = float(alpha)

    def forward(self, x: np.ndarray, *, training: bool = True,
                workspace: Workspace | None = None) -> np.ndarray:
        neg = self._scratch_like(workspace, "neg", x)
        np.minimum(x, 0.0, out=neg)
        np.exp(neg, out=neg)
        neg -= 1.0
        np.multiply(self.alpha, neg, out=neg)
        self._neg = neg
        mask = self._scratch_like(workspace, "mask", x, bool)
        np.greater(x, 0, out=mask)
        self._mask = mask
        out = self._scratch_like(workspace, "out", x)
        out[...] = neg
        np.copyto(out, x, where=mask)
        return out

    def backward(self, grad: np.ndarray, *,
                 workspace: Workspace | None = None) -> np.ndarray:
        tmp = self._scratch_like(workspace, "tmp", self._neg)
        np.add(self._neg, self.alpha, out=tmp)
        out = self._scratch_like(workspace, "dx", grad,
                                 np.result_type(grad.dtype, tmp.dtype))
        np.multiply(grad, tmp, out=out)
        np.copyto(out, grad, where=self._mask)
        self._mask = None
        self._neg = None
        return out


class GELU(Layer):
    """Gaussian error linear unit (tanh approximation)."""

    _ephemeral = ("_x", "_t")

    _C = math.sqrt(2.0 / math.pi)

    def forward(self, x: np.ndarray, *, training: bool = True,
                workspace: Workspace | None = None) -> np.ndarray:
        self._x = x
        t = self._scratch_like(workspace, "t", x)
        np.power(x, 3, out=t)
        t *= 0.044715
        np.add(x, t, out=t)
        t *= self._C
        np.tanh(t, out=t)
        self._t = t
        out = self._scratch_like(workspace, "out", x)
        np.multiply(0.5, x, out=out)
        tmp = self._scratch_like(workspace, "tmp", x)
        np.add(1.0, t, out=tmp)
        out *= tmp
        return out

    def backward(self, grad: np.ndarray, *,
                 workspace: Workspace | None = None) -> np.ndarray:
        x, t = self._x, self._t
        dinner = self._scratch_like(workspace, "dinner", x)
        np.power(x, 2, out=dinner)
        dinner *= 3 * 0.044715
        np.add(1.0, dinner, out=dinner)
        dinner *= self._C
        dx = self._scratch_like(workspace, "dxfac", x)
        np.add(1.0, t, out=dx)
        dx *= 0.5
        curve = self._scratch_like(workspace, "curve", x)
        np.multiply(0.5, x, out=curve)
        sech2 = self._scratch_like(workspace, "sech2", x)
        np.power(t, 2, out=sech2)
        np.subtract(1.0, sech2, out=sech2)
        curve *= sech2
        curve *= dinner
        dx += curve
        out = self._scratch_like(workspace, "dx", grad,
                                 np.result_type(grad.dtype, dx.dtype))
        np.multiply(grad, dx, out=out)
        self._x = None
        self._t = None
        return out


class Softmax(Layer):
    """Standalone softmax over the last axis.

    Prefer :class:`repro.nn.losses.SoftmaxCrossEntropy` for training, which
    fuses softmax with the loss for numerical stability; this layer exists
    for models that must *emit* probabilities (e.g. attack feature
    extraction from a deployed model).
    """

    _ephemeral = ("_out",)

    def forward(self, x: np.ndarray, *, training: bool = True,
                workspace: Workspace | None = None) -> np.ndarray:
        m = self._scratch(workspace, "max", x.shape[:-1] + (1,), x.dtype)
        x.max(axis=-1, keepdims=True, out=m)
        out = self._scratch_like(workspace, "out", x)
        np.subtract(x, m, out=out)
        np.exp(out, out=out)
        s = self._scratch(workspace, "sum", x.shape[:-1] + (1,), x.dtype)
        out.sum(axis=-1, keepdims=True, out=s)
        out /= s
        self._out = out
        return out

    def backward(self, grad: np.ndarray, *,
                 workspace: Workspace | None = None) -> np.ndarray:
        s = self._out
        self._out = None
        tmp = self._scratch(workspace, "tmp", grad.shape,
                            np.result_type(grad.dtype, s.dtype))
        np.multiply(grad, s, out=tmp)
        dot = self._scratch(workspace, "dot", grad.shape[:-1] + (1,),
                            tmp.dtype)
        tmp.sum(axis=-1, keepdims=True, out=dot)
        np.subtract(grad, dot, out=tmp)
        np.multiply(s, tmp, out=tmp)
        return tmp
