"""Flat-buffer weight plane: ``Layout`` + ``WeightStore``.

Every subsystem exchanges model state.  The legacy representation —
``Weights = list[dict[str, np.ndarray]]`` — forces each consumer
(FedAvg, the defenses, DINAR, traffic accounting, serialization) to
re-walk a nested structure in Python loops.  This module provides the
store-native alternative: one contiguous vector per model plus an
immutable :class:`Layout` mapping each ``(layer, key)`` pair to a
coordinate range.  The layout also fixes the buffer's *precision*
(float64 by default, float32 for the reduced-precision compute plane —
see ``repro.nn.dtypes``); two layouts with the same geometry but
different dtypes are distinct, so stores of different precisions never
silently mix.

Design rules:

* **Layout order is state-dict order** — per layer, keys appear in the
  order the source dict yields them (a model's ``params`` before its
  ``buffers``).  This is the canonical flatten order: the store's
  buffer *is* ``flatten_weights`` of the same structure, and RNG-driven
  transforms (obfuscation noise, DP noise, SA masks) consume the
  generator stream in exactly the same order as the legacy per-array
  code, keeping them bit-for-bit reproducible.
* **Zero-copy views** — ``view``/``layer_flat``/``layer_dict`` return
  ndarray views into the buffer; mutating a view mutates the store.
* **Legacy bridge** — :meth:`WeightStore.from_layers` /
  :meth:`WeightStore.to_layers` convert to and from the nested
  structure, and the store implements the read side of the sequence
  protocol (``len``, ``[idx]``, iteration over per-layer dicts), so it
  can flow through code written against ``Weights``.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.nn.dtypes import DTypeLike, gaussian, resolve_dtype

#: The legacy nested structure (same alias as :data:`repro.nn.model.Weights`,
#: redeclared here so the store does not import the model module).
Weights = list[dict[str, np.ndarray]]


@dataclass(frozen=True)
class LayoutEntry:
    """One named array's coordinate range inside the flat buffer."""

    layer_idx: int
    key: str
    shape: tuple[int, ...]
    offset: int
    size: int
    #: Whether this entry is a trainable parameter (``False`` for
    #: non-trainable buffers such as batch-norm running statistics).
    #: Excluded from equality/hash so layouts derived from nested
    #: structures — where the distinction is unknowable — still compare
    #: equal to model-derived layouts with the same geometry.
    trainable: bool = field(default=True, compare=False)

    @property
    def stop(self) -> int:
        """One past the last buffer index of this array."""
        return self.offset + self.size


class Layout:
    """Immutable map from ``(layer, key)`` to a flat coordinate range.

    Entries are ordered front to back: layer indices are contiguous
    starting at 0, offsets are contiguous starting at 0, and every
    layer's entries occupy one contiguous range (so per-layer slices —
    DINAR's "layer p" — are single buffer slices).
    """

    __slots__ = ("entries", "num_params", "num_layers", "dtype",
                 "_by_key", "_layer_slices", "_hash",
                 "_param_entry_slices", "_param_segments",
                 "_layer_param_slices", "num_trainable", "_segmented")

    def __init__(self, entries: Sequence[LayoutEntry], *,
                 dtype: DTypeLike = np.float64) -> None:
        entries = tuple(entries)
        if not entries:
            raise ValueError("a layout needs at least one entry")
        offset = 0
        layer_idx = 0
        starts: list[int] = [0]
        for entry in entries:
            if entry.offset != offset:
                raise ValueError(
                    f"entry {entry.layer_idx}/{entry.key} at offset "
                    f"{entry.offset}, expected {offset}")
            if entry.size != int(np.prod(entry.shape, dtype=np.int64)):
                raise ValueError(
                    f"entry {entry.layer_idx}/{entry.key}: size "
                    f"{entry.size} != prod{entry.shape}")
            if entry.layer_idx == layer_idx + 1:
                layer_idx += 1
                starts.append(entry.offset)
            elif entry.layer_idx != layer_idx:
                raise ValueError(
                    f"layer indices must be contiguous and ascending; "
                    f"got {entry.layer_idx} after {layer_idx}")
            offset += entry.size
        starts.append(offset)
        self.entries = entries
        self.num_params = offset
        self.num_layers = layer_idx + 1
        self.dtype = resolve_dtype(dtype)
        self._by_key = {(e.layer_idx, e.key): e for e in entries}
        if len(self._by_key) != len(entries):
            raise ValueError("duplicate (layer, key) pair in layout")
        self._layer_slices = tuple(
            slice(starts[i], starts[i + 1])
            for i in range(self.num_layers))
        self._hash = hash((self.entries, self.dtype))
        self._segmented = {}
        self._index_trainable()

    def _index_trainable(self) -> None:
        """Precompute the trainable-coordinate geometry.

        ``_param_entry_slices`` keeps one slice per trainable entry —
        the reduction chunks of :func:`chunked_sq_sum`, matching the
        legacy per-array fold bitwise.  ``_param_segments`` merges
        adjacent trainable entries into maximal runs — the fewest
        slices that cover exactly the trainable coordinates, for
        elementwise ops and contiguous RNG draws.
        """
        entry_slices: list[slice] = []
        segments: list[slice] = []
        per_layer: list[list[slice]] = [[] for _ in range(self.num_layers)]
        for entry in self.entries:
            if not entry.trainable:
                continue
            entry_slices.append(slice(entry.offset, entry.stop))
            if segments and segments[-1].stop == entry.offset:
                segments[-1] = slice(segments[-1].start, entry.stop)
            else:
                segments.append(slice(entry.offset, entry.stop))
            per_layer[entry.layer_idx].append(
                slice(entry.offset, entry.stop))
        self._param_entry_slices = tuple(entry_slices)
        self._param_segments = tuple(segments)
        self.num_trainable = sum(s.stop - s.start for s in entry_slices)
        layer_param_slices: list[slice | None] = []
        for slices in per_layer:
            if not slices:
                layer_param_slices.append(
                    slice(self.num_params, self.num_params))
            elif all(a.stop == b.start
                     for a, b in zip(slices, slices[1:])):
                layer_param_slices.append(
                    slice(slices[0].start, slices[-1].stop))
            else:
                layer_param_slices.append(None)
        self._layer_param_slices = tuple(layer_param_slices)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_layers(cls, weights: Weights) -> "Layout":
        """Derive a layout from a legacy nested structure.

        The dtype is inferred: float32 when *every* array is float32,
        the float64 default otherwise (mixed or non-float inputs keep
        the legacy coerce-to-float64 behaviour).
        """
        entries: list[LayoutEntry] = []
        offset = 0
        all_f32 = True
        for layer_idx, layer in enumerate(weights):
            for key, value in layer.items():
                value = np.asarray(value)
                all_f32 = all_f32 and value.dtype == np.float32
                entries.append(LayoutEntry(
                    layer_idx=layer_idx, key=key,
                    shape=tuple(value.shape), offset=offset,
                    size=int(value.size)))
                offset += int(value.size)
        dtype = np.float32 if entries and all_f32 else np.float64
        return cls(entries, dtype=dtype)

    @classmethod
    def from_model(cls, model) -> "Layout":
        """Derive a layout from a model's trainable layers (no copies).

        Keys follow ``Layer.state()`` order: ``params`` before
        ``buffers``, each in insertion order.  The dtype is the layers'
        common parameter dtype; a model mixing precisions is rejected —
        the flat plane is single-precision by construction.
        """
        entries: list[LayoutEntry] = []
        offset = 0
        dtypes: set[np.dtype] = set()
        for layer_idx, layer in enumerate(model.trainable):
            arrays = [(k, v, True) for k, v in layer.params.items()] \
                + [(k, v, False) for k, v in layer.buffers.items()]
            for key, value, trainable in arrays:
                dtypes.add(np.asarray(value).dtype)
                entries.append(LayoutEntry(
                    layer_idx=layer_idx, key=key,
                    shape=tuple(value.shape), offset=offset,
                    size=int(value.size), trainable=trainable))
                offset += int(value.size)
        if len(dtypes) > 1:
            raise ValueError(
                f"model mixes parameter dtypes "
                f"{sorted(d.name for d in dtypes)}; the flat plane "
                f"needs one uniform precision")
        return cls(entries, dtype=dtypes.pop() if dtypes else np.float64)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def entry(self, layer_idx: int, key: str) -> LayoutEntry:
        """The entry for one named array (raises ``KeyError``)."""
        return self._by_key[(layer_idx, key)]

    def layer_slice(self, layer_idx: int) -> slice:
        """The contiguous buffer range covering one whole layer."""
        return self._layer_slices[layer_idx]

    def layer_entries(self, layer_idx: int) -> tuple[LayoutEntry, ...]:
        """All entries of one layer, in layout order."""
        return tuple(e for e in self.entries if e.layer_idx == layer_idx)

    def layer_keys(self, layer_idx: int) -> tuple[str, ...]:
        """Key names of one layer, in layout order."""
        return tuple(e.key for e in self.entries
                     if e.layer_idx == layer_idx)

    @property
    def param_entry_slices(self) -> tuple[slice, ...]:
        """One buffer slice per *trainable* entry, in layout order.

        These are the reduction chunks whenever a squared-norm over the
        trainable coordinates must reproduce the legacy per-array fold
        bitwise (DP-SGD clipping, ADGD smoothness estimates) — see
        :func:`chunked_sq_sum`.
        """
        return self._param_entry_slices

    @property
    def param_segments(self) -> tuple[slice, ...]:
        """Maximal contiguous runs of *trainable* coordinates.

        The fewest slices covering exactly the trainable coordinates;
        elementwise updates and contiguous Gaussian draws over these
        segments are bitwise identical to the legacy per-array loop
        while skipping non-trainable buffers entirely.
        """
        return self._param_segments

    def layer_param_slice(self, layer_idx: int) -> slice:
        """The contiguous buffer range of one layer's trainable entries.

        Well defined because per-layer layout order is params before
        buffers; raises for exotic layouts where a non-trainable entry
        interleaves a layer's parameters.
        """
        out = self._layer_param_slices[layer_idx]
        if out is None:
            raise ValueError(
                f"layer {layer_idx}: trainable entries are not "
                f"contiguous in this layout")
        return out

    @property
    def nbytes(self) -> int:
        """Dense wire size of a store with this layout (dtype-aware)."""
        return self.num_params * self.dtype.itemsize

    def with_dtype(self, dtype: DTypeLike) -> "Layout":
        """Same geometry in another precision (self when unchanged)."""
        if resolve_dtype(dtype) == self.dtype:
            return self
        return Layout(self.entries, dtype=dtype)

    def segmented(self,
                  names: Sequence[str] | None = None) -> "SegmentedView":
        """The named per-layer :class:`SegmentedView` of this layout.

        ``names`` gives one name per layer (``Model.segment_view``
        passes ``layer_names()``); omitted, layers are named
        ``layer{i}``.  Views are cached per name tuple — repeated
        lookups on hot paths (DP-SGD steps, per-round clipping) cost a
        dict hit.
        """
        key = None if names is None else tuple(names)
        view = self._segmented.get(key)
        if view is None:
            view = SegmentedView(self, names)
            self._segmented[key] = view
        return view

    # ------------------------------------------------------------------
    def __reduce__(self):
        # Rebuild from the constructor arguments: the trainable indexes
        # are recomputed (deterministic, cheap) and the segmented-view
        # cache never travels through pickle.
        return (_rebuild_layout, (self.entries, self.dtype.str))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Layout):
            return NotImplemented
        return self.dtype == other.dtype and self.entries == other.entries

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return (f"Layout(layers={self.num_layers}, "
                f"arrays={len(self.entries)}, params={self.num_params}, "
                f"dtype={self.dtype.name})")


def _rebuild_layout(entries, dtype_str) -> "Layout":
    """Unpickle helper for :meth:`Layout.__reduce__`."""
    return Layout(entries, dtype=dtype_str)


@dataclass(frozen=True)
class Segment:
    """One named layer of a :class:`SegmentedView`.

    A segment is the per-layer handle the segment plane deals in: the
    layer's contiguous *trainable* coordinate range (``params``), its
    full coordinate range including non-trainable buffers (``full``),
    and the per-entry slices that are the bitwise reduction chunks of
    :func:`chunked_sq_sum`.
    """

    index: int
    name: str
    #: Contiguous trainable range, or None for exotic layouts where a
    #: buffer interleaves the layer's parameters (use ``entry_slices``).
    params: slice | None
    #: The whole layer's coordinate range (params and buffers).
    full: slice
    #: One slice per trainable entry, in layout order.
    entry_slices: tuple[slice, ...]

    @property
    def num_params(self) -> int:
        """Trainable scalar count of this segment."""
        return sum(s.stop - s.start for s in self.entry_slices)

    @property
    def has_params(self) -> bool:
        """Whether this segment carries any trainable coordinates."""
        return bool(self.entry_slices)


class SegmentedView:
    """Named, typed per-layer view of a :class:`Layout`.

    The segment plane: every consumer that used to hand-roll a
    ``for segment in layout.param_segments`` loop goes through this
    object instead.  It exposes

    * zero-copy per-segment views of any flat vector
      (:meth:`view`) or ``(clients, params)`` batch (:meth:`batch`),
    * per-segment and whole-model squared norms whose reduction chunks
      reproduce the legacy per-array fold bitwise (:meth:`sq_sum`,
      :meth:`segment_sq_sums`),
    * boolean segment masks over the flat coordinate space
      (:meth:`mask`),
    * the elementwise/RNG primitives the defenses need — Gaussian
      noise drawn per maximal trainable run in layout order
      (:meth:`add_gaussian`), per-segment noise and scaling
      (:meth:`segment_add_gaussian`, :meth:`scale_segment`), the
      FedProx proximal term (:meth:`add_scaled_difference`), global
      norm clipping (:meth:`clip`) and top-k selection
      (:meth:`top_k_indices`) — each bitwise-equal to the hand-rolled
      loop it replaces.

    Obtained via :meth:`Layout.segmented` (cached) or
    ``Model.segment_view()`` (named from ``layer_names()``).
    """

    __slots__ = ("layout", "segments", "_by_name")

    def __init__(self, layout: Layout,
                 names: Sequence[str] | None = None) -> None:
        if names is None:
            names = [f"layer{i}" for i in range(layout.num_layers)]
        names = list(names)
        if len(names) != layout.num_layers:
            raise ValueError(
                f"got {len(names)} segment names for a layout with "
                f"{layout.num_layers} layers")
        self.layout = layout
        per_layer: list[list[slice]] = [
            [] for _ in range(layout.num_layers)]
        for entry in layout.entries:
            if entry.trainable:
                per_layer[entry.layer_idx].append(
                    slice(entry.offset, entry.stop))
        self.segments = tuple(
            Segment(
                index=i, name=names[i],
                params=layout._layer_param_slices[i],
                full=layout.layer_slice(i),
                entry_slices=tuple(per_layer[i]),
            )
            for i in range(layout.num_layers))
        by_name: dict[str, int] = {}
        for seg in self.segments:
            # A repeated name (two identically named layers) stays
            # listable but is rejected on lookup as ambiguous.
            by_name[seg.name] = -1 if seg.name in by_name else seg.index
        self._by_name = by_name

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.segments)

    def __iter__(self) -> Iterator[Segment]:
        return iter(self.segments)

    def __getitem__(self, key: int | str) -> Segment:
        return self.resolve(key)

    @property
    def names(self) -> tuple[str, ...]:
        """Segment names, front to back."""
        return tuple(seg.name for seg in self.segments)

    def resolve(self, key: "int | str | Segment") -> Segment:
        """Normalize an index, name or segment to a :class:`Segment`."""
        if isinstance(key, Segment):
            return key
        if isinstance(key, str):
            idx = self._by_name.get(key)
            if idx is None:
                raise KeyError(
                    f"no segment named {key!r}; known: "
                    f"{', '.join(self.names)}")
            if idx < 0:
                raise KeyError(
                    f"segment name {key!r} is ambiguous in this view; "
                    f"use the integer index")
            return self.segments[idx]
        n = len(self.segments)
        idx = int(key)
        if idx < 0:
            idx += n
        if not 0 <= idx < n:
            raise IndexError(f"segment {key} out of range ({n})")
        return self.segments[idx]

    # ------------------------------------------------------------------
    # trainable-coordinate geometry (the legacy loop shapes)
    # ------------------------------------------------------------------
    @property
    def runs(self) -> tuple[slice, ...]:
        """Maximal contiguous trainable runs, in layout order — the
        shape of elementwise updates and contiguous RNG draws
        (= :attr:`Layout.param_segments`)."""
        return self.layout.param_segments

    @property
    def entry_slices(self) -> tuple[slice, ...]:
        """One slice per trainable entry — the bitwise reduction
        chunks (= :attr:`Layout.param_entry_slices`)."""
        return self.layout.param_entry_slices

    # ------------------------------------------------------------------
    # zero-copy views
    # ------------------------------------------------------------------
    def _params_slice(self, seg: Segment) -> slice:
        if seg.params is None:
            raise ValueError(
                f"segment {seg.index} ({seg.name!r}): trainable "
                f"entries are not contiguous in this layout")
        return seg.params

    def view(self, vector: np.ndarray,
             seg: "int | str | Segment") -> np.ndarray:
        """Zero-copy view of one segment's trainable coordinates."""
        return vector[self._params_slice(self.resolve(seg))]

    def full_view(self, vector: np.ndarray,
                  seg: "int | str | Segment") -> np.ndarray:
        """Zero-copy view of one segment's full coordinate range
        (params and non-trainable buffers)."""
        return vector[self.resolve(seg).full]

    def batch(self, matrix: np.ndarray,
              seg: "int | str | Segment") -> np.ndarray:
        """Zero-copy per-segment column block of a ``(clients,
        params)`` batch — each row's slice of this segment."""
        if matrix.ndim != 2 or matrix.shape[1] != self.layout.num_params:
            raise ValueError(
                f"batch shape {matrix.shape} does not match layout "
                f"with {self.layout.num_params} params")
        return matrix[:, self._params_slice(self.resolve(seg))]

    # ------------------------------------------------------------------
    # norms
    # ------------------------------------------------------------------
    def sq_sum(self, vector: np.ndarray) -> float:
        """Whole-model trainable squared norm, folded per entry —
        bitwise-equal to the legacy per-``(layer, key)`` fold (this is
        DP-SGD's clip norm)."""
        return chunked_sq_sum(vector, self.layout.param_entry_slices)

    def segment_sq_sums(self, vector: np.ndarray) -> np.ndarray:
        """Per-segment trainable squared norms, shape ``(J,)``.

        Each segment folds over its own entry slices, so summing the
        returned array reproduces :meth:`sq_sum` exactly (same chunks,
        same order).  Segments without parameters read 0.0.
        """
        return np.array([
            chunked_sq_sum(vector, seg.entry_slices)
            for seg in self.segments])

    # ------------------------------------------------------------------
    # masks
    # ------------------------------------------------------------------
    def mask(self, include: "Sequence[int | str] | None" = None,
             exclude: "Sequence[int | str] | None" = None, *,
             full: bool = False) -> np.ndarray:
        """Boolean coordinate mask selecting whole segments.

        Exactly one of ``include`` / ``exclude`` names the segments;
        the mask is True on the selected segments' trainable
        coordinates (or their full coordinate ranges with
        ``full=True`` — the shape DINAR's whole-layer obfuscation
        protects) and False elsewhere.
        """
        if (include is None) == (exclude is None):
            raise ValueError("pass exactly one of include= / exclude=")
        mask = np.zeros(self.layout.num_params, dtype=bool)
        for key in (include if include is not None else exclude):
            seg = self.resolve(key)
            if full:
                mask[seg.full] = True
            else:
                for sl in seg.entry_slices:
                    mask[sl] = True
        return mask if include is not None else ~mask

    # ------------------------------------------------------------------
    # elementwise / RNG primitives (bitwise-pinned loop shapes)
    # ------------------------------------------------------------------
    def add_gaussian(self, vector: np.ndarray,
                     rng: np.random.Generator, std: float) -> None:
        """Add ``N(0, std^2)`` noise to every trainable coordinate.

        One contiguous draw per maximal trainable run, in layout
        order — the generator stream and addition order of the legacy
        DP-SGD per-array loop, so migrated noise is bitwise-unchanged
        while non-trainable buffers are skipped entirely.
        """
        for run in self.layout.param_segments:
            vector[run] += gaussian(
                rng, std, run.stop - run.start, vector.dtype)

    def segment_add_gaussian(self, vector: np.ndarray,
                             seg: "int | str | Segment",
                             rng: np.random.Generator,
                             std: float) -> None:
        """Add Gaussian noise to one segment's trainable coordinates
        (one contiguous draw per entry, in layout order)."""
        for sl in self.resolve(seg).entry_slices:
            vector[sl] += gaussian(
                rng, std, sl.stop - sl.start, vector.dtype)

    def scale_segment(self, vector: np.ndarray,
                      seg: "int | str | Segment",
                      factor: float) -> None:
        """Scale one segment's trainable coordinates in place."""
        for sl in self.resolve(seg).entry_slices:
            vector[sl] *= factor

    def add_scaled_difference(self, out: np.ndarray, factor: float,
                              a: np.ndarray, b: np.ndarray) -> None:
        """``out += factor * (a - b)`` over trainable coordinates.

        The FedProx proximal term: one vector op per maximal trainable
        run (bitwise-equal to the hand-rolled loop), leaving
        non-trainable coordinates — which carry no gradient — exactly
        untouched.
        """
        for run in self.layout.param_segments:
            out[run] += factor * (a[run] - b[run])

    def clip(self, store: "WeightStore",
             max_norm: float) -> "WeightStore":
        """Scale a store so its global L2 norm is <= ``max_norm``.

        The degenerate one-segment clip (whole-buffer norm, including
        non-trainable coordinates) — exactly the legacy ``clip_store``
        the CDP/WDP delta bound uses, kept bitwise.  Per-segment
        clipping composes :meth:`segment_sq_sums` +
        :meth:`scale_segment` instead (see the LaDP defense).
        """
        if max_norm <= 0:
            raise ValueError(
                f"max_norm must be positive, got {max_norm}")
        norm = store.l2()
        if norm <= max_norm:
            return store.copy()
        return store * (max_norm / norm)

    def top_k_indices(self, vector: np.ndarray, k: int) -> np.ndarray:
        """Indices of the ``k`` largest-magnitude coordinates.

        The gradient-compression threshold: whole-buffer
        ``argpartition``, exactly the legacy selection (unordered
        within the kept set, like the loop it replaces).
        """
        if not 1 <= k <= vector.size:
            raise ValueError(
                f"k must be in [1, {vector.size}], got {k}")
        return np.argpartition(np.abs(vector),
                               vector.size - k)[vector.size - k:]

    def segment_top_k_indices(self, vector: np.ndarray,
                              seg: "int | str | Segment",
                              k: int) -> np.ndarray:
        """Absolute indices of one segment's ``k`` largest-magnitude
        trainable coordinates (per-segment sparsification)."""
        seg = self.resolve(seg)
        sl = self._params_slice(seg)
        block = vector[sl]
        if not 1 <= k <= block.size:
            raise ValueError(
                f"k must be in [1, {block.size}] for segment "
                f"{seg.name!r}, got {k}")
        local = np.argpartition(np.abs(block),
                                block.size - k)[block.size - k:]
        return local + sl.start

    def __repr__(self) -> str:
        return (f"SegmentedView(segments={len(self.segments)}, "
                f"params={self.layout.num_params}, "
                f"names=[{', '.join(self.names)}])")


class WeightStore:
    """One model's weights as a contiguous vector + layout.

    The buffer lives in the layout's dtype (float64 unless the layout
    says otherwise); incoming buffers of another precision are coerced.

    Supports zero-copy per-layer/per-key views, vectorized arithmetic
    (``+``, ``-``, scalar ``*``, in-place variants), and the read side
    of the legacy sequence protocol: ``store[p]`` is a ``{key: view}``
    dict for layer ``p``, so code written against ``Weights`` can
    consume a store unchanged.
    """

    __slots__ = ("layout", "buffer")

    def __init__(self, layout: Layout,
                 buffer: np.ndarray | None = None) -> None:
        if buffer is None:
            buffer = np.zeros(layout.num_params, dtype=layout.dtype)
        buffer = np.asarray(buffer)
        if buffer.ndim != 1 or buffer.size != layout.num_params:
            raise ValueError(
                f"buffer shape {buffer.shape} does not match layout "
                f"with {layout.num_params} params")
        if buffer.dtype != layout.dtype:
            buffer = buffer.astype(layout.dtype)
        self.layout = layout
        self.buffer = buffer

    # ------------------------------------------------------------------
    # bridges to/from the legacy nested structure
    # ------------------------------------------------------------------
    @classmethod
    def from_layers(cls, weights: Weights,
                    layout: Layout | None = None) -> "WeightStore":
        """Copy a legacy nested structure into a fresh store."""
        if layout is None:
            layout = Layout.from_layers(weights)
        if len(weights) != layout.num_layers:
            raise ValueError(
                f"got {len(weights)} layer dicts, layout has "
                f"{layout.num_layers} layers")
        store = cls(layout, np.empty(layout.num_params,
                                     dtype=layout.dtype))
        buf = store.buffer
        counts = [0] * layout.num_layers
        for entry in layout.entries:
            value = np.asarray(weights[entry.layer_idx][entry.key])
            if tuple(value.shape) != entry.shape:
                raise ValueError(
                    f"layer {entry.layer_idx}/{entry.key}: shape "
                    f"{value.shape} != layout {entry.shape}")
            buf[entry.offset:entry.stop] = value.reshape(-1)
            counts[entry.layer_idx] += 1
        for layer_idx, layer in enumerate(weights):
            if len(layer) != counts[layer_idx]:
                extra = set(layer) - set(layout.layer_keys(layer_idx))
                raise KeyError(
                    f"layer {layer_idx} has keys the layout does not "
                    f"own: {sorted(extra)}")
        return store

    @classmethod
    def as_store(cls, weights: "WeightsLike", *,
                 layout: Layout | None = None,
                 copy: bool = False) -> "WeightStore":
        """Normalize ``Weights | WeightStore`` to a store.

        A store input passes through zero-copy (copied only when
        ``copy=True``); a nested input is copied into a fresh store.
        """
        if isinstance(weights, WeightStore):
            if layout is not None and weights.layout != layout:
                raise ValueError("store layout does not match the "
                                 "requested layout")
            return weights.copy() if copy else weights
        return cls.from_layers(weights, layout)

    def to_layers(self) -> Weights:
        """Copy out to the legacy nested structure."""
        out: Weights = [dict() for _ in range(self.layout.num_layers)]
        for entry in self.layout.entries:
            out[entry.layer_idx][entry.key] = \
                self.buffer[entry.offset:entry.stop] \
                    .reshape(entry.shape).copy()
        return out

    # ------------------------------------------------------------------
    # zero-copy views
    # ------------------------------------------------------------------
    def view(self, layer_idx: int, key: str) -> np.ndarray:
        """Writable zero-copy view of one named array."""
        entry = self.layout.entry(layer_idx, key)
        return self.buffer[entry.offset:entry.stop].reshape(entry.shape)

    def layer_flat(self, layer_idx: int) -> np.ndarray:
        """Writable flat view of one whole layer's coordinate range."""
        return self.buffer[self.layout.layer_slice(layer_idx)]

    def layer_dict(self, layer_idx: int, *,
                   copy: bool = False) -> dict[str, np.ndarray]:
        """One layer as a ``{key: array}`` dict (views by default)."""
        out = {}
        for entry in self.layout.layer_entries(layer_idx):
            value = self.buffer[entry.offset:entry.stop] \
                .reshape(entry.shape)
            out[entry.key] = value.copy() if copy else value
        return out

    def readonly_vector(self) -> np.ndarray:
        """The whole buffer as a read-only zero-copy view."""
        v = self.buffer.view()
        v.flags.writeable = False
        return v

    # ------------------------------------------------------------------
    # legacy sequence protocol (read side)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.layout.num_layers

    def __getitem__(self, layer_idx: int) -> dict[str, np.ndarray]:
        if not isinstance(layer_idx, (int, np.integer)):
            raise TypeError(
                f"layer index must be an int, got {type(layer_idx)}")
        n = self.layout.num_layers
        if layer_idx < 0:
            layer_idx += n
        if not 0 <= layer_idx < n:
            raise IndexError(f"layer {layer_idx} out of range ({n})")
        return self.layer_dict(layer_idx)

    def __iter__(self) -> Iterator[dict[str, np.ndarray]]:
        for layer_idx in range(self.layout.num_layers):
            yield self.layer_dict(layer_idx)

    # ------------------------------------------------------------------
    # vectorized arithmetic
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "WeightStore") -> None:
        if self.layout is not other.layout \
                and self.layout != other.layout:
            raise ValueError("stores have incompatible layouts")

    def __add__(self, other: "WeightStore") -> "WeightStore":
        self._check_compatible(other)
        return WeightStore(self.layout, self.buffer + other.buffer)

    def __sub__(self, other: "WeightStore") -> "WeightStore":
        self._check_compatible(other)
        return WeightStore(self.layout, self.buffer - other.buffer)

    def __mul__(self, factor: float) -> "WeightStore":
        return WeightStore(self.layout, self.buffer * float(factor))

    __rmul__ = __mul__

    def __truediv__(self, divisor: float) -> "WeightStore":
        return WeightStore(self.layout, self.buffer / float(divisor))

    def __neg__(self) -> "WeightStore":
        return WeightStore(self.layout, -self.buffer)

    def __iadd__(self, other: "WeightStore") -> "WeightStore":
        self._check_compatible(other)
        self.buffer += other.buffer
        return self

    def __isub__(self, other: "WeightStore") -> "WeightStore":
        self._check_compatible(other)
        self.buffer -= other.buffer
        return self

    def __imul__(self, factor: float) -> "WeightStore":
        self.buffer *= float(factor)
        return self

    # ------------------------------------------------------------------
    # reductions / comparisons
    # ------------------------------------------------------------------
    def l2(self) -> float:
        """Global L2 norm over the whole buffer."""
        return float(np.sqrt((self.buffer ** 2).sum()))

    def allclose(self, other: "WeightsLike", *,
                 atol: float = 1e-9) -> bool:
        """Numerical equality against a store or nested structure."""
        other = WeightStore.as_store(other)
        if self.layout != other.layout:
            return False
        return bool(np.allclose(self.buffer, other.buffer, atol=atol))

    # ------------------------------------------------------------------
    # allocation helpers
    # ------------------------------------------------------------------
    def copy(self) -> "WeightStore":
        """Independent store with the same layout and values."""
        return WeightStore(self.layout, self.buffer.copy())

    def zeros_like(self) -> "WeightStore":
        """Zero-filled store with the same layout."""
        return WeightStore(self.layout,
                           np.zeros(self.layout.num_params,
                                    dtype=self.layout.dtype))

    def astype(self, dtype: DTypeLike) -> "WeightStore":
        """Copy of this store in another precision (same geometry)."""
        layout = self.layout.with_dtype(dtype)
        if layout is self.layout:
            return self.copy()
        return WeightStore(layout, self.buffer.astype(layout.dtype))

    @property
    def num_params(self) -> int:
        return self.layout.num_params

    @property
    def nbytes(self) -> int:
        """Dense wire size in the store's dtype (= ``buffer.nbytes``)."""
        return self.buffer.nbytes

    def __repr__(self) -> str:
        return (f"WeightStore(layers={self.layout.num_layers}, "
                f"params={self.num_params}, "
                f"dtype={self.layout.dtype.name})")


#: Either representation of exchanged model state.
WeightsLike = Weights | WeightStore


def as_store(weights: WeightsLike, *, layout: Layout | None = None,
             copy: bool = False) -> WeightStore:
    """Module-level alias for :meth:`WeightStore.as_store`."""
    return WeightStore.as_store(weights, layout=layout, copy=copy)


def as_layers(weights: WeightsLike) -> Weights:
    """Normalize ``Weights | WeightStore`` to the nested structure."""
    if isinstance(weights, WeightStore):
        return weights.to_layers()
    return weights


def chunked_sq_sum(vector: np.ndarray,
                   chunks: Sequence[slice]) -> float:
    """Sum of squares of ``vector`` over ``chunks``, folded per chunk.

    ``float((vector ** 2).sum())`` over the whole buffer uses one
    pairwise-summation tree and is NOT bitwise equal to the legacy
    Python fold ``sum(float((g ** 2).sum()) for g in arrays)``.  This
    left fold over per-chunk sums *is* — pass
    :attr:`Layout.param_entry_slices` (one slice per legacy array) to
    reproduce dict-plane gradient norms exactly.

    The accumulator is always float64: squares are computed in the
    vector's own dtype, but each chunk reduction and the fold run in
    double precision (a no-op for float64 input, and the numerically
    sane choice for float32 buffers, whose clip norms would otherwise
    degrade with parameter count).
    """
    total = 0.0
    for chunk in chunks:
        total += float((vector[chunk] ** 2).sum(dtype=np.float64))
    return total
