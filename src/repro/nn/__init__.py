"""From-scratch NumPy neural-network substrate.

This subpackage replaces PyTorch in the original DINAR prototype.  It
provides layer-based sequential networks with exact analytic backprop,
layer-indexed parameter access (the handle DINAR's obfuscation and
personalization operate on), losses, initializers and the optimizer zoo
used in the paper's ablation study (Fig. 11).
"""

from repro.nn.activations import (
    ELU,
    GELU,
    LeakyReLU,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
)
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm1d,
    Conv1d,
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    Layer,
    MaxPool1d,
    MaxPool2d,
)
from repro.nn.losses import Loss, MSELoss, SoftmaxCrossEntropy
from repro.nn.model import Model, Weights
from repro.nn.optim import (
    ADGD,
    AdaMax,
    Adagrad,
    Adam,
    Optimizer,
    RMSProp,
    SGD,
    make_optimizer,
)
from repro.nn.schedule import (
    CosineDecay,
    LRSchedule,
    ScheduledOptimizer,
    StepDecay,
    WarmupSchedule,
)
from repro.nn.serialize import load_store, load_weights, save_weights
from repro.nn.store import (
    Layout,
    LayoutEntry,
    WeightsLike,
    WeightStore,
    as_layers,
    as_store,
    chunked_sq_sum,
)
from repro.nn.workspace import Workspace

__all__ = [
    "ADGD",
    "AdaMax",
    "Adagrad",
    "Adam",
    "AvgPool2d",
    "BatchNorm1d",
    "Conv1d",
    "Conv2d",
    "CosineDecay",
    "Dense",
    "Dropout",
    "ELU",
    "Flatten",
    "GELU",
    "LRSchedule",
    "Layer",
    "Layout",
    "LayoutEntry",
    "LeakyReLU",
    "Loss",
    "MSELoss",
    "MaxPool1d",
    "MaxPool2d",
    "Model",
    "Optimizer",
    "RMSProp",
    "ReLU",
    "SGD",
    "ScheduledOptimizer",
    "Sigmoid",
    "Softmax",
    "SoftmaxCrossEntropy",
    "StepDecay",
    "Tanh",
    "WarmupSchedule",
    "WeightStore",
    "Weights",
    "WeightsLike",
    "Workspace",
    "as_layers",
    "as_store",
    "chunked_sq_sum",
    "load_store",
    "load_weights",
    "make_optimizer",
    "save_weights",
]
