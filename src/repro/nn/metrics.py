"""Classification metrics used by the utility evaluation (Appendix A)."""

from __future__ import annotations

import numpy as np


def accuracy(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Fraction of correctly classified instances."""
    if len(predictions) != len(targets):
        raise ValueError(
            f"length mismatch: {len(predictions)} vs {len(targets)}")
    if len(targets) == 0:
        raise ValueError("cannot compute accuracy of an empty batch")
    return float((predictions == targets).mean())


def top_k_accuracy(logits: np.ndarray, targets: np.ndarray,
                   k: int = 5) -> float:
    """Fraction of instances whose label is in the top-k logits."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    top = np.argsort(logits, axis=-1)[:, -k:]
    return float((top == targets[:, None]).any(axis=1).mean())


def confusion_matrix(predictions: np.ndarray, targets: np.ndarray,
                     num_classes: int) -> np.ndarray:
    """(num_classes, num_classes) count matrix, rows = true class."""
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (targets, predictions), 1)
    return matrix
