"""Workspace-plane tests: arena keying, bitwise parity, pickling hygiene.

The workspace's contract has three legs:

* **Keying** — scratch buffers are interned by
  ``(owner index, role, shape, dtype)``; same key means same buffer,
  any differing component means a distinct one.
* **Bitwise parity** — training with the arena enabled produces the
  exact same float trajectory as with it disabled (which is the
  pre-workspace allocating path), at float64 *and* float32, including
  partial final batches that re-key mid-epoch.
* **Process-locality** — workspaces and per-batch layer caches never
  survive pickling; ``Workspace`` itself refuses to pickle, so a
  successful ``pickle.dumps`` of any payload doubles as proof that no
  workspace is reachable from it.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.fcnn import build_fcnn
from repro.models.vgg import build_vgg_small
from repro.nn.layers import Dense
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import Model
from repro.nn.optim import SGD
from repro.nn.workspace import Workspace


class TestArenaKeying:
    def test_same_key_reuses_buffer(self):
        ws = Workspace()
        owner = object()
        first = ws.request(owner, "out", (4, 3), np.float64)
        second = ws.request(owner, "out", (4, 3), np.float64)
        assert first is second
        assert ws.misses == 1 and ws.hits == 1
        assert ws.num_buffers == 1

    def test_distinct_owners_never_share(self):
        ws = Workspace()
        a, b = object(), object()
        assert ws.request(a, "out", (4, 3), np.float64) is not \
            ws.request(b, "out", (4, 3), np.float64)
        assert ws.num_buffers == 2

    def test_role_shape_dtype_all_key(self):
        ws = Workspace()
        owner = object()
        base = ws.request(owner, "out", (4, 3), np.float64)
        assert ws.request(owner, "mask", (4, 3), np.float64) is not base
        assert ws.request(owner, "out", (2, 3), np.float64) is not base
        assert ws.request(owner, "out", (4, 3), np.float32) is not base
        # the original key still resolves to the original buffer
        assert ws.request(owner, "out", (4, 3), np.float64) is base
        assert ws.num_buffers == 4

    def test_request_info_reports_freshness(self):
        ws = Workspace()
        owner = object()
        _, fresh = ws.request_info(owner, "pad", (2, 2), np.float64)
        assert fresh
        _, fresh = ws.request_info(owner, "pad", (2, 2), np.float64)
        assert not fresh

    def test_zeros_refills_every_call(self):
        ws = Workspace()
        owner = object()
        buf = ws.zeros(owner, "col2im", (3, 3), np.float64)
        buf += 7.0
        again = ws.zeros(owner, "col2im", (3, 3), np.float64)
        assert again is buf
        assert np.all(again == 0.0)

    def test_owner_interning_survives_id_reuse(self):
        # the arena keeps strong refs, so a dead owner's recycled id()
        # can never alias a live owner's buffers.
        ws = Workspace()
        owner = object()
        index = ws.owner_index(owner)
        del owner
        others = [object() for _ in range(64)]
        assert all(ws.owner_index(o) != index for o in others)

    def test_workspace_refuses_pickling(self):
        with pytest.raises(TypeError, match="process-local"):
            pickle.dumps(Workspace())


def _conv_setup(dtype, seed=3):
    model = build_vgg_small((3, 8, 8), 5, np.random.default_rng(seed),
                            dtype=dtype)
    rng = np.random.default_rng(seed + 1)
    x = rng.standard_normal((12, 3, 8, 8)).astype(dtype)
    y = rng.integers(0, 5, 12)
    return model, x, y


def _dense_setup(dtype, seed=3):
    model = build_fcnn(20, 4, np.random.default_rng(seed), dtype=dtype)
    rng = np.random.default_rng(seed + 1)
    x = rng.standard_normal((16, 20)).astype(dtype)
    y = rng.integers(0, 4, 16)
    return model, x, y


def _train(model, x, y, steps=3, batch_sizes=None):
    """A few SGD steps; returns (losses, final flat buffer copy)."""
    loss = SoftmaxCrossEntropy()
    optimizer = SGD(model, 0.05)
    losses = []
    start = 0
    for step in range(steps):
        if batch_sizes is None:
            xb, yb = x, y
        else:
            size = batch_sizes[step % len(batch_sizes)]
            xb, yb = x[:size], y[:size]
        losses.append(model.loss_and_grad(xb, yb, loss))
        optimizer.step()
        start += 1
    return losses, model.weights.buffer.copy()


@pytest.mark.parametrize("setup", [_conv_setup, _dense_setup],
                         ids=["conv", "dense"])
@pytest.mark.parametrize("dtype", ["float64", "float32"])
def test_workspace_on_off_bitwise_identical(setup, dtype):
    model_on, x, y = setup(dtype)
    model_off, _, _ = setup(dtype)
    model_off.use_workspace(False)
    assert model_off.workspace is None

    losses_on, final_on = _train(model_on, x, y)
    losses_off, final_off = _train(model_off, x, y)
    assert losses_on == losses_off
    assert np.array_equal(final_on, final_off)
    ws = model_on.workspace
    assert ws.num_buffers > 0 and ws.hits > 0


@pytest.mark.parametrize("setup", [_conv_setup, _dense_setup],
                         ids=["conv", "dense"])
@pytest.mark.parametrize("dtype", ["float64", "float32"])
@settings(max_examples=8, deadline=None)
@given(partial=st.integers(min_value=1, max_value=11),
       seed=st.integers(min_value=0, max_value=2**16))
def test_partial_batches_rekey_bitwise(setup, dtype, partial, seed):
    """full / partial / full batch alternation matches a fresh model.

    A smaller final batch resolves to different arena keys; it must get
    its own buffers rather than corrupt the cached full-batch ones, so
    the arena-backed run stays bitwise equal to an arena-free one.
    """
    sizes = [12, partial, 12]
    model_ws, x, y = setup(dtype, seed=seed % 97)
    model_fresh, _, _ = setup(dtype, seed=seed % 97)
    model_fresh.use_workspace(False)

    losses_ws, final_ws = _train(model_ws, x, y, steps=6,
                                 batch_sizes=sizes)
    losses_fresh, final_fresh = _train(model_fresh, x, y, steps=6,
                                       batch_sizes=sizes)
    assert losses_ws == losses_fresh
    assert np.array_equal(final_ws, final_fresh)


class TestPicklingHygiene:
    def test_trained_model_pickles_without_scratch(self):
        model, x, y = _conv_setup("float64")
        model.loss_and_grad(x, y, SoftmaxCrossEntropy())
        # Workspace.__reduce__ raises, so success here proves no
        # workspace is reachable from the pickled payload.
        payload = pickle.dumps(model)
        fresh = build_vgg_small((3, 8, 8), 5, np.random.default_rng(3))
        slack = 4096
        assert len(payload) <= len(pickle.dumps(fresh)) + slack, \
            "pickled model still ships batch-sized caches"

    def test_layer_caches_dropped_on_pickle(self):
        model, x, y = _conv_setup("float64")
        loss = SoftmaxCrossEntropy()
        model.loss_and_grad(x, y, loss)
        for layer in model.layers:
            state = layer.__getstate__()
            for name in type(layer)._ephemeral:
                assert name not in state, \
                    f"{layer.name} pickles ephemeral cache {name!r}"
        assert "_ws" not in loss.__getstate__()
        assert "_probs" not in loss.__getstate__()

    def test_unpickled_model_gets_fresh_workspace(self):
        model, x, y = _conv_setup("float64")
        loss = SoftmaxCrossEntropy()
        model.loss_and_grad(x, y, loss)
        restored = pickle.loads(pickle.dumps(model))
        assert isinstance(restored.workspace, Workspace)
        assert restored.workspace is not model.workspace
        assert restored.workspace.num_buffers == 0
        # and it still trains, bitwise in step with the original
        value = model.loss_and_grad(x, y, loss)
        assert restored.loss_and_grad(x, y, loss) == value
        assert np.array_equal(restored.weights.buffer,
                              model.weights.buffer)
        assert np.array_equal(restored.grad_vector, model.grad_vector)

    def test_clone_does_not_share_workspace(self):
        model, x, y = _conv_setup("float64")
        model.loss_and_grad(x, y, SoftmaxCrossEntropy())
        clone = model.clone()
        assert clone.workspace is not model.workspace
        assert clone.workspace.num_buffers == 0

    def test_workspace_disabled_model_roundtrips(self):
        model = Model([Dense(6, 3, np.random.default_rng(0))])
        model.use_workspace(False)
        restored = pickle.loads(pickle.dumps(model))
        # unpickling always rebuilds an arena (the default state)
        assert isinstance(restored.workspace, Workspace)
