"""Model contracts: weight exchange, layer indexing, inference, helpers."""

import numpy as np
import pytest

from repro.nn.activations import ReLU, Tanh
from repro.nn.layers import BatchNorm1d, Dense
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import (
    Model,
    flatten_weights,
    unflatten_weights,
    weights_allclose,
    weights_l2_norm,
    weights_map,
    weights_zip_map,
)


class TestModelStructure:
    def test_trainable_excludes_activations(self, tiny_model):
        assert tiny_model.num_trainable_layers == 3

    def test_layer_names(self, tiny_model):
        names = tiny_model.layer_names()
        assert names == ["Dense(20x16)", "Dense(16x8)", "Dense(8x4)"]

    def test_num_parameters(self, tiny_model):
        expected = (20 * 16 + 16) + (16 * 8 + 8) + (8 * 4 + 4)
        assert tiny_model.num_parameters() == expected


class TestWeightExchange:
    def test_get_set_roundtrip(self, tiny_model, rng):
        weights = tiny_model.get_weights()
        x = rng.standard_normal((5, 20))
        before = tiny_model.predict_logits(x)
        tiny_model.set_weights(weights)
        assert np.allclose(tiny_model.predict_logits(x), before)

    def test_get_weights_returns_copies(self, tiny_model):
        weights = tiny_model.get_weights()
        weights[0]["W"][...] = 42.0
        assert not np.any(tiny_model.trainable[0].params["W"] == 42.0)

    def test_set_weights_checks_layer_count(self, tiny_model):
        with pytest.raises(ValueError):
            tiny_model.set_weights(tiny_model.get_weights()[:-1])

    def test_batchnorm_buffers_travel(self, rng):
        model = Model([Dense(4, 6, rng), BatchNorm1d(6), Tanh(),
                       Dense(6, 2, rng)])
        model.forward(rng.standard_normal((32, 4)), training=True)
        weights = model.get_weights()
        assert "running_mean" in weights[1]
        fresh = Model([Dense(4, 6, rng), BatchNorm1d(6), Tanh(),
                       Dense(6, 2, rng)])
        fresh.set_weights(weights)
        assert np.allclose(
            fresh.trainable[1].buffers["running_mean"],
            model.trainable[1].buffers["running_mean"])

    def test_clone_is_independent(self, tiny_model, rng):
        clone = tiny_model.clone()
        clone.trainable[0].params["W"][...] = 7.0
        assert not np.any(tiny_model.trainable[0].params["W"] == 7.0)


class TestInference:
    def test_predict_proba_normalized(self, tiny_model, rng):
        probs = tiny_model.predict_proba(rng.standard_normal((6, 20)))
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_predict_matches_argmax(self, tiny_model, rng):
        x = rng.standard_normal((6, 20))
        assert np.array_equal(
            tiny_model.predict(x),
            tiny_model.predict_logits(x).argmax(axis=1))

    def test_batched_inference_matches_single_pass(self, tiny_model, rng):
        x = rng.standard_normal((300, 20))
        full = tiny_model.forward(x, training=False)
        batched = tiny_model.predict_logits(x, batch_size=64)
        assert np.allclose(full, batched)


class TestGradientViews:
    def test_per_layer_gradient_vectors_shapes(self, tiny_model, rng):
        x = rng.standard_normal((8, 20))
        y = rng.integers(0, 4, 8)
        vectors = tiny_model.per_layer_gradient_vectors(
            x, y, SoftmaxCrossEntropy())
        assert len(vectors) == 3
        assert vectors[0].shape == (20 * 16 + 16,)
        assert vectors[2].shape == (8 * 4 + 4,)


class TestWeightHelpers:
    def test_flatten_unflatten_roundtrip(self, tiny_model):
        weights = tiny_model.get_weights()
        flat = flatten_weights(weights)
        assert flat.ndim == 1
        rebuilt = unflatten_weights(flat, weights)
        assert weights_allclose(weights, rebuilt)

    def test_unflatten_rejects_wrong_size(self, tiny_model):
        weights = tiny_model.get_weights()
        with pytest.raises(ValueError):
            unflatten_weights(np.zeros(3), weights)

    def test_zeros_like_store(self, tiny_model):
        zeros = tiny_model.get_store().zeros_like()
        assert weights_l2_norm(zeros) == 0.0

    def test_weights_map_preserves_structure(self, tiny_model):
        weights = tiny_model.get_weights()
        doubled = weights_map(lambda v: 2 * v, weights)
        assert np.allclose(doubled[0]["W"], 2 * weights[0]["W"])

    def test_zip_map_addition(self, tiny_model):
        weights = tiny_model.get_weights()
        total = weights_zip_map(np.add, weights, weights)
        assert np.allclose(total[1]["b"], 2 * weights[1]["b"])

    def test_zip_map_rejects_mismatched_lengths(self, tiny_model):
        weights = tiny_model.get_weights()
        with pytest.raises(ValueError):
            weights_zip_map(np.add, weights, weights[:-1])

    def test_l2_norm_matches_flat_vector(self, tiny_model):
        weights = tiny_model.get_weights()
        assert np.isclose(weights_l2_norm(weights),
                          np.linalg.norm(flatten_weights(weights)))

    def test_allclose_detects_difference(self, tiny_model):
        a = tiny_model.get_weights()
        b = tiny_model.get_weights()
        b[0]["W"][0, 0] += 1.0
        assert not weights_allclose(a, b)
