"""Gradient-exactness and contract tests for every layer type."""

import numpy as np
import pytest

from repro.nn.activations import ReLU, Tanh
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm1d,
    Conv1d,
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    MaxPool1d,
    MaxPool2d,
)
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import Model
from tests.conftest import numeric_gradient_check

TOL = 1e-6


class TestDense:
    def test_forward_shape(self, rng):
        layer = Dense(10, 7, rng)
        out = layer.forward(rng.standard_normal((4, 10)))
        assert out.shape == (4, 7)

    def test_gradient_exact(self, rng):
        model = Model([Dense(10, 7, rng), Tanh(), Dense(7, 3, rng)])
        x = rng.standard_normal((8, 10))
        y = rng.integers(0, 3, 8)
        err = numeric_gradient_check(model, x, y, SoftmaxCrossEntropy(), rng)
        assert err < TOL

    def test_bias_initialized_to_zero(self, rng):
        layer = Dense(5, 5, rng)
        assert np.all(layer.params["b"] == 0.0)

    def test_num_parameters(self, rng):
        layer = Dense(10, 7, rng)
        assert layer.num_parameters() == 10 * 7 + 7

    def test_backward_returns_input_gradient_shape(self, rng):
        layer = Dense(10, 7, rng)
        x = rng.standard_normal((4, 10))
        layer.forward(x)
        dx = layer.backward(rng.standard_normal((4, 7)))
        assert dx.shape == x.shape


class TestConv2d:
    def test_forward_shape_with_padding(self, rng):
        layer = Conv2d(3, 5, 3, rng, padding=1)
        out = layer.forward(rng.standard_normal((2, 3, 8, 8)))
        assert out.shape == (2, 5, 8, 8)

    def test_forward_shape_with_stride(self, rng):
        layer = Conv2d(3, 5, 3, rng, stride=2, padding=1)
        out = layer.forward(rng.standard_normal((2, 3, 8, 8)))
        assert out.shape == (2, 5, 4, 4)

    def test_gradient_exact(self, rng):
        model = Model([Conv2d(2, 3, 3, rng, padding=1), ReLU(),
                       Flatten(), Dense(3 * 6 * 6, 4, rng)])
        x = rng.standard_normal((3, 2, 6, 6))
        y = rng.integers(0, 4, 3)
        err = numeric_gradient_check(model, x, y, SoftmaxCrossEntropy(), rng)
        assert err < TOL

    def test_gradient_exact_strided(self, rng):
        model = Model([Conv2d(2, 3, 3, rng, stride=2, padding=1),
                       Flatten(), Dense(3 * 4 * 4, 4, rng)])
        x = rng.standard_normal((3, 2, 8, 8))
        y = rng.integers(0, 4, 3)
        err = numeric_gradient_check(model, x, y, SoftmaxCrossEntropy(), rng)
        assert err < TOL

    def test_matches_manual_convolution(self, rng):
        """One output position equals the explicit dot product."""
        layer = Conv2d(1, 1, 2, rng)
        x = rng.standard_normal((1, 1, 3, 3))
        out = layer.forward(x)
        w = layer.params["W"][0, 0]
        expected = (x[0, 0, :2, :2] * w).sum() + layer.params["b"][0]
        assert np.isclose(out[0, 0, 0, 0], expected)


class TestConv1d:
    def test_forward_shape(self, rng):
        layer = Conv1d(1, 4, 9, rng, stride=4, padding=4)
        out = layer.forward(rng.standard_normal((2, 1, 64)))
        assert out.shape == (2, 4, 16)

    def test_gradient_exact(self, rng):
        model = Model([Conv1d(1, 3, 5, rng, stride=2, padding=2),
                       ReLU(), Flatten(), Dense(3 * 16, 4, rng)])
        x = rng.standard_normal((3, 1, 32))
        y = rng.integers(0, 4, 3)
        err = numeric_gradient_check(model, x, y, SoftmaxCrossEntropy(), rng)
        assert err < TOL


class TestPooling:
    def test_maxpool2d_selects_maxima(self, rng):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = MaxPool2d(2).forward(x)
        assert out.tolist() == [[[[5.0, 7.0], [13.0, 15.0]]]]

    def test_maxpool2d_rejects_indivisible(self, rng):
        with pytest.raises(ValueError):
            MaxPool2d(3).forward(np.zeros((1, 1, 4, 4)))

    def test_avgpool2d_averages(self):
        x = np.ones((1, 1, 4, 4))
        out = AvgPool2d(2).forward(x)
        assert np.allclose(out, 1.0)

    def test_maxpool2d_gradient_exact(self, rng):
        model = Model([Conv2d(1, 2, 3, rng, padding=1), MaxPool2d(2),
                       Flatten(), Dense(2 * 3 * 3, 3, rng)])
        x = rng.standard_normal((2, 1, 6, 6))
        y = rng.integers(0, 3, 2)
        err = numeric_gradient_check(model, x, y, SoftmaxCrossEntropy(), rng)
        assert err < TOL

    def test_avgpool2d_gradient_exact(self, rng):
        model = Model([Conv2d(1, 2, 3, rng, padding=1), AvgPool2d(2),
                       Flatten(), Dense(2 * 3 * 3, 3, rng)])
        x = rng.standard_normal((2, 1, 6, 6))
        y = rng.integers(0, 3, 2)
        err = numeric_gradient_check(model, x, y, SoftmaxCrossEntropy(), rng)
        assert err < TOL

    def test_maxpool1d_gradient_exact(self, rng):
        model = Model([Conv1d(1, 2, 3, rng, padding=1), MaxPool1d(4),
                       Flatten(), Dense(2 * 4, 3, rng)])
        x = rng.standard_normal((2, 1, 16))
        y = rng.integers(0, 3, 2)
        err = numeric_gradient_check(model, x, y, SoftmaxCrossEntropy(), rng)
        assert err < TOL

    def test_maxpool1d_rejects_indivisible(self):
        with pytest.raises(ValueError):
            MaxPool1d(3).forward(np.zeros((1, 1, 16)))


class TestFlatten:
    def test_roundtrip(self, rng):
        layer = Flatten()
        x = rng.standard_normal((3, 2, 4, 4))
        out = layer.forward(x)
        assert out.shape == (3, 32)
        back = layer.backward(out)
        assert back.shape == x.shape


class TestDropout:
    def test_identity_at_eval(self, rng):
        layer = Dropout(0.5)
        layer.attach_rng(rng)
        x = rng.standard_normal((4, 10))
        assert np.array_equal(layer.forward(x, training=False), x)

    def test_scales_kept_units(self, rng):
        layer = Dropout(0.5)
        layer.attach_rng(rng)
        x = np.ones((2000, 10))
        out = layer.forward(x, training=True)
        kept = out[out > 0]
        assert np.allclose(kept, 2.0)  # inverted dropout scaling
        assert abs(out.mean() - 1.0) < 0.1

    def test_requires_rng_when_training(self):
        with pytest.raises(RuntimeError):
            Dropout(0.5).forward(np.ones((2, 2)), training=True)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_zero_rate_is_identity(self, rng):
        layer = Dropout(0.0)
        layer.attach_rng(rng)
        x = rng.standard_normal((3, 3))
        assert np.array_equal(layer.forward(x, training=True), x)


class TestBatchNorm1d:
    def test_normalizes_batch(self, rng):
        layer = BatchNorm1d(5)
        x = rng.standard_normal((64, 5)) * 3.0 + 2.0
        out = layer.forward(x, training=True)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-7)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_running_stats_updated(self, rng):
        layer = BatchNorm1d(5, momentum=1.0)
        x = rng.standard_normal((64, 5)) + 4.0
        layer.forward(x, training=True)
        assert np.allclose(layer.buffers["running_mean"], x.mean(axis=0))

    def test_eval_uses_running_stats(self, rng):
        layer = BatchNorm1d(3, momentum=1.0)
        x = rng.standard_normal((32, 3))
        layer.forward(x, training=True)
        single = layer.forward(x[:1], training=False)
        expected = (x[:1] - layer.buffers["running_mean"]) / np.sqrt(
            layer.buffers["running_var"] + layer.eps)
        assert np.allclose(single, expected)

    def test_gradient_exact(self, rng):
        model = Model([Dense(6, 8, rng), BatchNorm1d(8, momentum=0.0),
                       Tanh(), Dense(8, 3, rng)])
        x = rng.standard_normal((10, 6))
        y = rng.integers(0, 3, 10)
        err = numeric_gradient_check(
            model, x, y, SoftmaxCrossEntropy(), rng, training_forward=True)
        assert err < 1e-5

    def test_state_includes_buffers(self, rng):
        layer = BatchNorm1d(4)
        state = layer.state()
        assert set(state) == {"gamma", "beta", "running_mean",
                              "running_var"}


class TestLayerStateContract:
    def test_set_state_rejects_unknown_key(self, rng):
        layer = Dense(4, 4, rng)
        with pytest.raises(KeyError):
            layer.set_state({"nope": np.zeros((4, 4))})

    def test_set_state_rejects_bad_shape(self, rng):
        layer = Dense(4, 4, rng)
        with pytest.raises(ValueError):
            layer.set_state({"W": np.zeros((3, 3))})

    def test_state_returns_copies(self, rng):
        layer = Dense(4, 4, rng)
        state = layer.state()
        state["W"][...] = 99.0
        assert not np.any(layer.params["W"] == 99.0)

    def test_set_state_writes_in_place(self, rng):
        layer = Dense(4, 4, rng)
        original = layer.params["W"]
        layer.set_state({"W": np.ones((4, 4)), "b": np.zeros(4)})
        assert layer.params["W"] is original
        assert np.all(original == 1.0)
