"""Weight/result serialization tests."""

import json

import numpy as np
import pytest

from repro.nn.model import weights_allclose
from repro.nn.serialize import (
    experiment_result_to_dict,
    load_weights,
    save_experiment_result,
    save_weights,
)


def test_weights_roundtrip(tiny_model, tmp_path):
    path = tmp_path / "weights.npz"
    weights = tiny_model.get_weights()
    save_weights(weights, path)
    assert weights_allclose(load_weights(path), weights, atol=0.0)


def test_loaded_weights_restore_model(tiny_model, tmp_path, rng):
    path = tmp_path / "weights.npz"
    save_weights(tiny_model.get_weights(), path)
    x = rng.standard_normal((4, 20))
    expected = tiny_model.predict_logits(x)
    clone = tiny_model.clone()
    clone.trainable[0].params["W"][...] = 0.0
    clone.set_weights(load_weights(path))
    assert np.allclose(clone.predict_logits(x), expected)


def test_save_rejects_empty(tmp_path):
    with pytest.raises(ValueError):
        save_weights([], tmp_path / "empty.npz")


def test_batchnorm_buffers_roundtrip(rng, tmp_path):
    from repro.nn.activations import Tanh
    from repro.nn.layers import BatchNorm1d, Dense
    from repro.nn.model import Model
    model = Model([Dense(4, 6, rng), BatchNorm1d(6), Tanh(),
                   Dense(6, 2, rng)])
    model.forward(rng.standard_normal((16, 4)), training=True)
    path = tmp_path / "bn.npz"
    save_weights(model.get_weights(), path)
    loaded = load_weights(path)
    assert "running_mean" in loaded[1]


def test_experiment_result_json(tmp_path):
    from repro.bench.harness import quick_experiment
    from repro.fl.config import FLConfig
    result = quick_experiment(
        "purchase100", "none", attack="yeom", n_samples=600,
        config=FLConfig(num_clients=2, rounds=1, local_epochs=1))
    summary = experiment_result_to_dict(result)
    assert summary["dataset"] == "purchase100"
    assert 0.5 <= summary["local_auc"] <= 1.0
    path = tmp_path / "result.json"
    save_experiment_result(result, path)
    assert json.loads(path.read_text())["defense"] == "none"
