"""Weight initializer tests."""

import numpy as np
import pytest

from repro.nn.init import he_normal, initialize, lecun_normal, xavier_uniform


def test_xavier_bounds(rng):
    fan_in, fan_out = 100, 50
    w = xavier_uniform(rng, (100, 50), fan_in, fan_out)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    assert np.all(np.abs(w) <= limit)


def test_he_variance(rng):
    w = he_normal(rng, (200, 200), fan_in=200)
    assert np.isclose(w.std(), np.sqrt(2.0 / 200), rtol=0.05)


def test_lecun_variance(rng):
    w = lecun_normal(rng, (200, 200), fan_in=200)
    assert np.isclose(w.std(), np.sqrt(1.0 / 200), rtol=0.05)


def test_initialize_dispatch(rng):
    for scheme in ("xavier", "he", "lecun"):
        w = initialize(rng, (10, 10), 10, 10, scheme)
        assert w.shape == (10, 10)


def test_initialize_rejects_unknown(rng):
    with pytest.raises(ValueError):
        initialize(rng, (2, 2), 2, 2, "glorot")


def test_seeded_determinism():
    a = xavier_uniform(np.random.default_rng(7), (5, 5), 5, 5)
    b = xavier_uniform(np.random.default_rng(7), (5, 5), 5, 5)
    assert np.array_equal(a, b)
