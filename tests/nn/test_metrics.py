"""Classification metric tests."""

import numpy as np
import pytest

from repro.nn.metrics import accuracy, confusion_matrix, top_k_accuracy


class TestAccuracy:
    def test_perfect(self):
        assert accuracy(np.array([0, 1, 2]), np.array([0, 1, 2])) == 1.0

    def test_zero(self):
        assert accuracy(np.array([1, 2, 0]), np.array([0, 1, 2])) == 0.0

    def test_fractional(self):
        assert accuracy(np.array([0, 1, 0, 0]),
                        np.array([0, 1, 1, 1])) == 0.5

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.array([0]), np.array([0, 1]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))


class TestTopK:
    def test_top1_matches_accuracy(self, rng):
        logits = rng.standard_normal((20, 5))
        y = rng.integers(0, 5, 20)
        assert np.isclose(top_k_accuracy(logits, y, k=1),
                          accuracy(logits.argmax(axis=1), y))

    def test_top_all_is_one(self, rng):
        logits = rng.standard_normal((10, 4))
        y = rng.integers(0, 4, 10)
        assert top_k_accuracy(logits, y, k=4) == 1.0

    def test_monotone_in_k(self, rng):
        logits = rng.standard_normal((50, 8))
        y = rng.integers(0, 8, 50)
        values = [top_k_accuracy(logits, y, k=k) for k in (1, 2, 4, 8)]
        assert values == sorted(values)

    def test_rejects_bad_k(self, rng):
        with pytest.raises(ValueError):
            top_k_accuracy(np.zeros((2, 3)), np.zeros(2, dtype=int), k=0)


class TestConfusionMatrix:
    def test_diagonal_for_perfect_predictions(self):
        y = np.array([0, 1, 2, 2])
        matrix = confusion_matrix(y, y, 3)
        assert np.array_equal(matrix, np.diag([1, 1, 2]))

    def test_counts_sum_to_samples(self, rng):
        preds = rng.integers(0, 4, 30)
        targets = rng.integers(0, 4, 30)
        assert confusion_matrix(preds, targets, 4).sum() == 30

    def test_rows_are_true_classes(self):
        matrix = confusion_matrix(np.array([1]), np.array([0]), 2)
        assert matrix[0, 1] == 1
        assert matrix[1, 0] == 0
