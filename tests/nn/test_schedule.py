"""Learning-rate schedule tests."""

import numpy as np
import pytest

from repro.nn.activations import Tanh
from repro.nn.layers import Dense
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import Model
from repro.nn.optim import SGD
from repro.nn.schedule import (
    CosineDecay,
    LRSchedule,
    ScheduledOptimizer,
    StepDecay,
    WarmupSchedule,
)


class TestSchedules:
    def test_base_is_constant(self):
        schedule = LRSchedule()
        assert schedule.multiplier(0) == schedule.multiplier(1000) == 1.0

    def test_step_decay_levels(self):
        schedule = StepDecay(step_size=10, gamma=0.5)
        assert schedule.multiplier(0) == 1.0
        assert schedule.multiplier(9) == 1.0
        assert schedule.multiplier(10) == 0.5
        assert schedule.multiplier(25) == 0.25

    def test_cosine_endpoints(self):
        schedule = CosineDecay(total_steps=100)
        assert schedule.multiplier(0) == pytest.approx(1.0)
        assert schedule.multiplier(100) == pytest.approx(0.0)
        assert schedule.multiplier(1000) == pytest.approx(0.0)

    def test_cosine_floor(self):
        schedule = CosineDecay(total_steps=10, floor=0.1)
        assert schedule.multiplier(10) == pytest.approx(0.1)

    def test_cosine_monotone_decreasing(self):
        schedule = CosineDecay(total_steps=50)
        values = [schedule.multiplier(s) for s in range(51)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_warmup_ramps(self):
        schedule = WarmupSchedule(warmup_steps=4)
        assert schedule.multiplier(0) == pytest.approx(0.25)
        assert schedule.multiplier(3) == pytest.approx(1.0)
        assert schedule.multiplier(10) == 1.0

    def test_warmup_delegates_after(self):
        schedule = WarmupSchedule(4, after=StepDecay(1, gamma=0.5))
        assert schedule.multiplier(4) == 1.0      # first post-warmup step
        assert schedule.multiplier(5) == 0.5

    @pytest.mark.parametrize("bad", [
        lambda: StepDecay(0),
        lambda: StepDecay(1, gamma=0.0),
        lambda: CosineDecay(0),
        lambda: CosineDecay(1, floor=1.0),
        lambda: WarmupSchedule(0),
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            bad()


class TestScheduledOptimizer:
    def _setup(self, rng):
        model = Model([Dense(6, 8, rng), Tanh(), Dense(8, 3, rng)])
        x = rng.standard_normal((10, 6))
        y = rng.integers(0, 3, 10)
        return model, x, y

    def test_lr_follows_schedule(self, rng):
        model, x, y = self._setup(rng)
        scheduled = ScheduledOptimizer(
            SGD(model, 0.1), StepDecay(step_size=2, gamma=0.5))
        loss = SoftmaxCrossEntropy()
        assert scheduled.lr == pytest.approx(0.1)
        for _ in range(2):
            model.loss_and_grad(x, y, loss)
            scheduled.step()
        assert scheduled.lr == pytest.approx(0.05)

    def test_reset_restores_base_lr(self, rng):
        model, x, y = self._setup(rng)
        scheduled = ScheduledOptimizer(
            SGD(model, 0.1), StepDecay(step_size=1, gamma=0.5))
        model.loss_and_grad(x, y, SoftmaxCrossEntropy())
        scheduled.step()
        scheduled.reset()
        assert scheduled.lr == pytest.approx(0.1)

    def test_still_trains(self, rng):
        model, x, y = self._setup(rng)
        scheduled = ScheduledOptimizer(
            SGD(model, 0.2), CosineDecay(total_steps=80))
        loss = SoftmaxCrossEntropy()
        start = loss.forward(model.predict_logits(x), y)
        for _ in range(60):
            model.loss_and_grad(x, y, loss)
            scheduled.step()
        assert loss.forward(model.predict_logits(x), y) < start

    def test_forwards_batch_size_hint(self, rng):
        from repro.privacy.defenses.dpsgd import DPSGD
        model, *_ = self._setup(rng)
        scheduled = ScheduledOptimizer(
            DPSGD(model, 0.1, noise_multiplier=0.0), LRSchedule())
        scheduled.notify_batch_size(32)
        assert scheduled.optimizer._last_batch_size == 32
