"""Optimizer tests: update rules, convergence, and the Algorithm-1 form."""

import numpy as np
import pytest

from repro.nn.activations import Tanh
from repro.nn.layers import Dense
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.metrics import accuracy
from repro.nn.model import Model
from repro.nn.optim import (
    ADGD,
    AdaMax,
    Adagrad,
    Adam,
    RMSProp,
    SGD,
    make_optimizer,
    optimizer_names,
)


def _blob_problem(rng, n_per_class=40):
    protos = rng.standard_normal((3, 10)) * 3
    x = np.concatenate(
        [protos[i] + 0.5 * rng.standard_normal((n_per_class, 10))
         for i in range(3)])
    y = np.repeat(np.arange(3), n_per_class)
    return x, y


def _fresh_model():
    rng = np.random.default_rng(42)
    return Model([Dense(10, 16, rng), Tanh(), Dense(16, 3, rng)])


@pytest.mark.parametrize("name,lr", [
    ("sgd", 0.1), ("adagrad", 0.02), ("adam", 0.01),
    ("adamax", 0.01), ("rmsprop", 0.005), ("adgd", 0.05),
])
def test_optimizer_converges(name, lr, rng):
    x, y = _blob_problem(rng)
    model = _fresh_model()
    optimizer = make_optimizer(name, model, lr)
    loss = SoftmaxCrossEntropy()
    for _ in range(60):
        model.loss_and_grad(x, y, loss)
        optimizer.step()
    assert accuracy(model.predict(x), y) > 0.95


class TestSGD:
    def test_single_step_matches_formula(self, rng):
        model = _fresh_model()
        before = model.get_weights()
        loss = SoftmaxCrossEntropy()
        x, y = _blob_problem(rng)
        model.loss_and_grad(x, y, loss)
        grad = model.trainable[0].grads["W"].copy()
        SGD(model, 0.5).step()
        after = model.get_weights()
        assert np.allclose(after[0]["W"], before[0]["W"] - 0.5 * grad)

    def test_momentum_accumulates(self, rng):
        model = _fresh_model()
        optimizer = SGD(model, 0.1, momentum=0.9)
        loss = SoftmaxCrossEntropy()
        x, y = _blob_problem(rng)
        model.loss_and_grad(x, y, loss)
        optimizer.step()
        assert optimizer.state  # momentum buffers exist

    def test_rejects_bad_momentum(self):
        with pytest.raises(ValueError):
            SGD(_fresh_model(), 0.1, momentum=1.0)

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            SGD(_fresh_model(), 0.0)


class TestAdagrad:
    def test_first_step_is_sign_scaled(self, rng):
        """With G = g^2 on the first step the update is roughly
        lr * sign(g) wherever |g| >> sqrt(eps) — Algorithm 1's shape."""
        model = _fresh_model()
        before = model.get_weights()
        loss = SoftmaxCrossEntropy()
        x, y = _blob_problem(rng)
        model.loss_and_grad(x, y, loss)
        grad = model.trainable[0].grads["W"].copy()
        Adagrad(model, 0.01).step()
        delta = model.get_weights()[0]["W"] - before[0]["W"]
        big = np.abs(grad) > 0.01
        assert np.allclose(delta[big], -0.01 * np.sign(grad[big]),
                           atol=0.002)

    def test_eps_inside_sqrt(self, rng):
        """The stabilizer sits inside the sqrt exactly as the paper
        writes: theta -= lr * g / sqrt(G + 1e-5)."""
        model = _fresh_model()
        optimizer = Adagrad(model, 0.1)
        loss = SoftmaxCrossEntropy()
        x, y = _blob_problem(rng)
        model.loss_and_grad(x, y, loss)
        grad = model.trainable[0].grads["W"].copy()
        before = model.trainable[0].params["W"].copy()
        optimizer.step()
        expected = before - 0.1 * grad / np.sqrt(grad ** 2 + 1e-5)
        assert np.allclose(model.trainable[0].params["W"], expected)

    def test_steps_shrink_over_time(self, rng):
        model = _fresh_model()
        optimizer = Adagrad(model, 0.1)
        loss = SoftmaxCrossEntropy()
        x, y = _blob_problem(rng)
        deltas = []
        for _ in range(5):
            before = model.trainable[0].params["W"].copy()
            model.loss_and_grad(x, y, loss)
            optimizer.step()
            deltas.append(np.abs(
                model.trainable[0].params["W"] - before).mean())
        assert deltas[-1] < deltas[0]

    def test_reset_clears_accumulator(self, rng):
        model = _fresh_model()
        optimizer = Adagrad(model, 0.1)
        loss = SoftmaxCrossEntropy()
        x, y = _blob_problem(rng)
        model.loss_and_grad(x, y, loss)
        optimizer.step()
        optimizer.reset()
        assert not optimizer.state
        assert optimizer.steps == 0


class TestAdamFamily:
    def test_adam_bias_correction_first_step(self, rng):
        """After bias correction the first Adam step is ~lr*sign(g)."""
        model = _fresh_model()
        loss = SoftmaxCrossEntropy()
        x, y = _blob_problem(rng)
        model.loss_and_grad(x, y, loss)
        grad = model.trainable[0].grads["W"].copy()
        before = model.trainable[0].params["W"].copy()
        Adam(model, 0.01).step()
        delta = model.trainable[0].params["W"] - before
        big = np.abs(grad) > 1e-3
        assert np.allclose(delta[big], -0.01 * np.sign(grad[big]),
                           atol=1e-3)

    def test_adamax_uses_infinity_norm(self, rng):
        model = _fresh_model()
        optimizer = AdaMax(model, 0.01)
        loss = SoftmaxCrossEntropy()
        x, y = _blob_problem(rng)
        model.loss_and_grad(x, y, loss)
        optimizer.step()
        u = optimizer.state["u"]
        assert u.shape == (model.num_parameters(),)
        assert np.all(u >= 0)

    def test_rmsprop_decays_accumulator(self, rng):
        model = _fresh_model()
        optimizer = RMSProp(model, 0.01, decay=0.5)
        loss = SoftmaxCrossEntropy()
        x, y = _blob_problem(rng)
        model.loss_and_grad(x, y, loss)
        optimizer.step()
        first = optimizer.state["accum"].copy()
        model.loss_and_grad(x, y, loss)
        optimizer.step()
        assert not np.allclose(first, optimizer.state["accum"])


class TestADGD:
    def test_adapts_step_size(self, rng):
        model = _fresh_model()
        optimizer = ADGD(model, 0.05)
        loss = SoftmaxCrossEntropy()
        x, y = _blob_problem(rng)
        for _ in range(3):
            model.loss_and_grad(x, y, loss)
            optimizer.step()
        assert optimizer._lam != 0.05  # stepsize has adapted

    def test_reset_restores_initial_state(self, rng):
        model = _fresh_model()
        optimizer = ADGD(model, 0.05)
        loss = SoftmaxCrossEntropy()
        x, y = _blob_problem(rng)
        model.loss_and_grad(x, y, loss)
        optimizer.step()
        optimizer.reset()
        assert optimizer._lam == 0.05
        assert optimizer._prev_params is None


class TestRegistry:
    def test_all_names_buildable(self):
        for name in optimizer_names():
            assert make_optimizer(name, _fresh_model(), 0.01) is not None

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_optimizer("sgdm", _fresh_model(), 0.01)

    def test_step_without_gradients_fails(self):
        with pytest.raises(RuntimeError):
            SGD(_fresh_model(), 0.1).step()
