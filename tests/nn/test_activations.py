"""Value and gradient tests for every activation."""

import numpy as np
import pytest

from repro.nn.activations import (
    ELU,
    GELU,
    LeakyReLU,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
)
from repro.nn.layers import Dense
from repro.nn.losses import MSELoss, SoftmaxCrossEntropy
from repro.nn.model import Model
from tests.conftest import numeric_gradient_check


@pytest.mark.parametrize("activation_cls", [
    ReLU, LeakyReLU, Tanh, Sigmoid, ELU, GELU,
])
def test_gradient_exact_through_activation(activation_cls, rng):
    model = Model([Dense(6, 8, rng), activation_cls(), Dense(8, 3, rng)])
    x = rng.standard_normal((7, 6))
    y = rng.integers(0, 3, 7)
    err = numeric_gradient_check(model, x, y, SoftmaxCrossEntropy(), rng)
    assert err < 1e-6


def test_relu_zeroes_negatives():
    out = ReLU().forward(np.array([[-1.0, 0.0, 2.0]]))
    assert out.tolist() == [[0.0, 0.0, 2.0]]


def test_leaky_relu_slope():
    out = LeakyReLU(0.1).forward(np.array([[-10.0, 10.0]]))
    assert np.allclose(out, [[-1.0, 10.0]])


def test_tanh_bounded(rng):
    out = Tanh().forward(rng.standard_normal((10, 10)) * 100)
    assert np.all(np.abs(out) <= 1.0)


def test_sigmoid_extremes_stable():
    out = Sigmoid().forward(np.array([[-1000.0, 0.0, 1000.0]]))
    assert np.allclose(out, [[0.0, 0.5, 1.0]], atol=1e-12)
    assert np.all(np.isfinite(out))


def test_elu_continuous_at_zero():
    layer = ELU(alpha=1.0)
    out = layer.forward(np.array([[-1e-9, 0.0, 1e-9]]))
    assert np.allclose(out, 0.0, atol=1e-8)


def test_gelu_known_values():
    out = GELU().forward(np.array([[0.0, 100.0]]))
    assert np.isclose(out[0, 0], 0.0)
    assert np.isclose(out[0, 1], 100.0)  # acts as identity far right


def test_softmax_rows_sum_to_one(rng):
    out = Softmax().forward(rng.standard_normal((5, 9)) * 10)
    assert np.allclose(out.sum(axis=1), 1.0)
    assert np.all(out >= 0)


def test_softmax_gradient_exact(rng):
    model = Model([Dense(4, 6, rng), Softmax()])
    x = rng.standard_normal((5, 4))
    targets = rng.random((5, 6))
    err = numeric_gradient_check(model, x, targets, MSELoss(), rng)
    assert err < 1e-6


def test_softmax_invariant_to_shift(rng):
    logits = rng.standard_normal((3, 5))
    a = Softmax().forward(logits)
    b = Softmax().forward(logits + 1000.0)
    assert np.allclose(a, b)
