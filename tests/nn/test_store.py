"""Unit tests for the flat-buffer weight plane (Layout + WeightStore)."""

import numpy as np
import pytest

from repro.nn.model import flatten_weights
from repro.nn.serialize import load_store, save_weights
from repro.nn.store import (
    Layout,
    LayoutEntry,
    WeightStore,
    as_layers,
    as_store,
)


@pytest.fixture
def nested():
    return [
        {"W": np.arange(6.0).reshape(2, 3), "b": np.array([1.0, 2.0, 3.0])},
        {"W": np.full((3, 2), 0.5), "b": np.zeros(2)},
    ]


class TestLayout:
    def test_entries_follow_insertion_order(self, nested):
        layout = Layout.from_layers(nested)
        assert [(e.layer_idx, e.key) for e in layout.entries] == \
            [(0, "W"), (0, "b"), (1, "W"), (1, "b")]
        assert [e.offset for e in layout.entries] == [0, 6, 9, 15]
        assert layout.num_params == 17
        assert layout.num_layers == 2
        assert layout.nbytes == 17 * 8

    def test_layer_slice_covers_whole_layer(self, nested):
        layout = Layout.from_layers(nested)
        assert layout.layer_slice(0) == slice(0, 9)
        assert layout.layer_slice(1) == slice(9, 17)
        assert layout.layer_keys(1) == ("W", "b")

    def test_entry_lookup(self, nested):
        layout = Layout.from_layers(nested)
        entry = layout.entry(1, "W")
        assert (entry.offset, entry.stop, entry.shape) == (9, 15, (3, 2))
        with pytest.raises(KeyError):
            layout.entry(0, "missing")

    def test_rejects_gapped_offsets(self):
        with pytest.raises(ValueError):
            Layout([
                LayoutEntry(0, "W", (2,), 0, 2),
                LayoutEntry(0, "b", (2,), 3, 2),
            ])

    def test_rejects_non_contiguous_layers(self):
        with pytest.raises(ValueError):
            Layout([
                LayoutEntry(0, "W", (2,), 0, 2),
                LayoutEntry(2, "W", (2,), 2, 2),
            ])

    def test_rejects_duplicate_keys(self):
        with pytest.raises(ValueError):
            Layout([
                LayoutEntry(0, "W", (2,), 0, 2),
                LayoutEntry(0, "W", (2,), 2, 2),
            ])

    def test_rejects_size_shape_mismatch(self):
        with pytest.raises(ValueError):
            Layout([LayoutEntry(0, "W", (2, 3), 0, 5)])

    def test_equality_and_hash(self, nested):
        a = Layout.from_layers(nested)
        b = Layout.from_layers(nested)
        assert a == b and a is not b
        assert hash(a) == hash(b)
        assert a != Layout.from_layers(nested[:1])

    def test_matches_model_layout(self, tiny_model):
        from_model = tiny_model.weight_layout()
        from_weights = Layout.from_layers(tiny_model.get_weights())
        assert from_model == from_weights


class TestBridges:
    def test_roundtrip_is_exact(self, nested):
        rebuilt = WeightStore.from_layers(nested).to_layers()
        for layer, original in zip(rebuilt, nested):
            for key in original:
                assert np.array_equal(layer[key], original[key])
                assert layer[key].shape == original[key].shape

    def test_buffer_is_flatten_order(self, nested):
        store = WeightStore.from_layers(nested)
        assert np.array_equal(store.buffer, flatten_weights(nested))

    def test_from_layers_copies(self, nested):
        store = WeightStore.from_layers(nested)
        store.buffer[:] = -1.0
        assert nested[0]["W"][0, 0] == 0.0

    def test_shape_mismatch_is_rejected(self, nested):
        layout = Layout.from_layers(nested)
        bad = [{k: v.T.copy() for k, v in layer.items()}
               for layer in nested]
        with pytest.raises(ValueError):
            WeightStore.from_layers(bad, layout)

    def test_as_store_passes_stores_through(self, nested):
        store = WeightStore.from_layers(nested)
        assert as_store(store) is store
        assert as_store(store, copy=True) is not store
        assert as_store(store, copy=True).allclose(store, atol=0.0)

    def test_as_store_rejects_wrong_layout(self, nested):
        store = WeightStore.from_layers(nested)
        other = Layout.from_layers(nested[:1])
        with pytest.raises(ValueError):
            as_store(store, layout=other)

    def test_as_layers_normalizes(self, nested):
        assert as_layers(nested) is nested
        out = as_layers(WeightStore.from_layers(nested))
        assert isinstance(out, list)
        assert np.array_equal(out[0]["W"], nested[0]["W"])


class TestViews:
    def test_view_is_writable_zero_copy(self, nested):
        store = WeightStore.from_layers(nested)
        store.view(0, "b")[:] = 9.0
        assert np.all(store.buffer[6:9] == 9.0)

    def test_layer_flat_aliases_buffer(self, nested):
        store = WeightStore.from_layers(nested)
        store.layer_flat(1)[:] = 7.0
        assert np.all(store.buffer[9:] == 7.0)
        assert np.all(store.buffer[:9] != 7.0)

    def test_layer_dict_views_and_copies(self, nested):
        store = WeightStore.from_layers(nested)
        store.layer_dict(0)["W"][0, 0] = 42.0
        assert store.buffer[0] == 42.0
        store.layer_dict(0, copy=True)["W"][0, 0] = -1.0
        assert store.buffer[0] == 42.0

    def test_readonly_vector(self, nested):
        vector = WeightStore.from_layers(nested).readonly_vector()
        with pytest.raises(ValueError):
            vector[0] = 1.0


class TestSequenceProtocol:
    def test_len_and_iteration(self, nested):
        store = WeightStore.from_layers(nested)
        assert len(store) == 2
        layers = list(store)
        assert [sorted(layer) for layer in layers] == \
            [["W", "b"], ["W", "b"]]

    def test_indexing(self, nested):
        store = WeightStore.from_layers(nested)
        assert np.array_equal(store[0]["W"], nested[0]["W"])
        assert np.array_equal(store[-1]["b"], nested[1]["b"])
        with pytest.raises(IndexError):
            store[2]
        with pytest.raises(TypeError):
            store["W"]


class TestArithmetic:
    def test_add_sub_scale(self, nested):
        a = WeightStore.from_layers(nested)
        b = a * 2.0
        assert np.array_equal((b - a).buffer, a.buffer)
        assert np.array_equal((a + a).buffer, b.buffer)
        assert np.array_equal((b / 2.0).buffer, a.buffer)
        assert np.array_equal((-a).buffer, -a.buffer)
        assert np.array_equal((3.0 * a).buffer, (a * 3.0).buffer)

    def test_inplace_ops_keep_identity(self, nested):
        a = WeightStore.from_layers(nested)
        expected = a.buffer * 2.0 + a.buffer
        before = a
        a *= 2.0
        a += WeightStore.from_layers(nested)
        assert a is before
        assert np.array_equal(a.buffer, expected)

    def test_incompatible_layouts_raise(self, nested):
        a = WeightStore.from_layers(nested)
        b = WeightStore.from_layers(nested[:1])
        with pytest.raises(ValueError):
            a + b

    def test_l2_matches_numpy(self, nested):
        store = WeightStore.from_layers(nested)
        assert store.l2() == pytest.approx(
            float(np.linalg.norm(store.buffer)), abs=1e-12)

    def test_allclose_against_nested(self, nested):
        store = WeightStore.from_layers(nested)
        assert store.allclose(nested, atol=0.0)
        perturbed = store.copy()
        perturbed.buffer[0] += 1.0
        assert not store.allclose(perturbed)

    def test_zeros_like(self, nested):
        zeros = WeightStore.from_layers(nested).zeros_like()
        assert np.all(zeros.buffer == 0.0)
        assert zeros.layout == Layout.from_layers(nested)


class TestModelStoreExchange:
    def test_get_set_store_roundtrip(self, tiny_model):
        store = tiny_model.get_store()
        store.buffer += 0.25
        tiny_model.set_store(store)
        again = tiny_model.get_store()
        assert np.array_equal(again.buffer, store.buffer)
        assert again.buffer is not store.buffer

    def test_set_weights_accepts_store(self, tiny_model):
        store = tiny_model.get_store() * 0.5
        tiny_model.set_weights(store)
        assert tiny_model.get_store().allclose(store, atol=0.0)

    def test_set_store_rejects_foreign_layout(self, tiny_model, nested):
        with pytest.raises(ValueError):
            tiny_model.set_store(WeightStore.from_layers(nested))

    def test_store_matches_get_weights(self, tiny_model):
        store = tiny_model.get_store()
        nested = tiny_model.get_weights()
        for layer_store, layer_nested in zip(store, nested):
            for key in layer_nested:
                assert np.array_equal(layer_store[key],
                                      layer_nested[key])


class TestSerialization:
    def test_store_roundtrips_through_npz(self, tiny_model, tmp_path):
        store = tiny_model.get_store()
        save_weights(store, tmp_path / "w.npz")
        loaded = load_store(tmp_path / "w.npz")
        assert loaded.layout == store.layout
        assert np.array_equal(loaded.buffer, store.buffer)

    def test_store_and_nested_archives_agree(self, tiny_model, tmp_path):
        save_weights(tiny_model.get_store(), tmp_path / "a.npz")
        save_weights(tiny_model.get_weights(), tmp_path / "b.npz")
        a = load_store(tmp_path / "a.npz")
        b = load_store(tmp_path / "b.npz")
        assert a.layout == b.layout
        assert np.array_equal(a.buffer, b.buffer)
