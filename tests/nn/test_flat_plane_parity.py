"""Bitwise parity: flat-plane training vs the legacy dict-plane loops.

Each test trains two identically seeded models side by side — one with
the flat-plane implementation under ``src/``, one with the dict-plane
reference reproduced *verbatim* below (the per-``(layer, key)`` loops
the refactor replaced) — and requires the resulting weight buffers to
be bit-for-bit equal.  Unlike the fixture-based trajectory pins, these
comparisons run both planes in the same process on the same BLAS, so
``np.array_equal`` holds exactly with no ULP concession.

The legacy loops run fine on the new view-backed ``params``/``grads``
dicts because they only read arrays and update them in place.
"""

import math

import numpy as np
import pytest

from repro.data.loader import iterate_batches
from repro.fl.client import add_proximal_term
from repro.nn.activations import Tanh
from repro.nn.layers import BatchNorm1d, Dense
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import Model
from repro.nn.optim import make_optimizer
from repro.privacy.defenses.dpsgd import DPSGD

STEPS = 8


def _make_model():
    rng = np.random.default_rng(3)
    return Model([Dense(10, 16, rng), BatchNorm1d(16), Tanh(),
                  Dense(16, 4, rng)])


def _batches():
    rng = np.random.default_rng(7)
    protos = rng.standard_normal((4, 10)) * 3.0
    x = np.concatenate(
        [protos[c] + 0.5 * rng.standard_normal((32, 10))
         for c in range(4)])
    y = np.repeat(np.arange(4), 32)
    return list(iterate_batches(x, y, 32, np.random.default_rng(9)))


# ----------------------------------------------------------------------
# dict-plane reference implementations (pre-refactor optim.py, verbatim
# update rules, looping per (layer, key) with per-key optimizer state)
# ----------------------------------------------------------------------

class _LegacyOptimizer:
    def __init__(self, model, lr, **kwargs):
        self.model = model
        self.lr = lr
        self.state = {}
        self.steps = 0
        self.__dict__.update(kwargs)

    def step(self):
        self.steps += 1
        for idx, layer in enumerate(self.model.trainable):
            for key, param in layer.params.items():
                self._update(idx, key, param, layer.grads[key])


class _LegacySGD(_LegacyOptimizer):
    momentum = 0.0

    def _update(self, idx, key, param, grad):
        if self.momentum:
            buf = self.state.setdefault((idx, key), np.zeros_like(param))
            buf *= self.momentum
            buf += grad
            param -= self.lr * buf
        else:
            param -= self.lr * grad


class _LegacyAdagrad(_LegacyOptimizer):
    eps = 1e-5

    def _update(self, idx, key, param, grad):
        accum = self.state.setdefault((idx, key), np.zeros_like(param))
        accum += grad ** 2
        param -= self.lr * grad / np.sqrt(accum + self.eps)


class _LegacyRMSProp(_LegacyOptimizer):
    decay = 0.9
    eps = 1e-8

    def _update(self, idx, key, param, grad):
        accum = self.state.setdefault((idx, key), np.zeros_like(param))
        accum *= self.decay
        accum += (1.0 - self.decay) * grad ** 2
        param -= self.lr * grad / (np.sqrt(accum) + self.eps)


class _LegacyAdam(_LegacyOptimizer):
    beta1, beta2, eps = 0.9, 0.999, 1e-8

    def _update(self, idx, key, param, grad):
        m = self.state.setdefault((idx, key, "m"), np.zeros_like(param))
        v = self.state.setdefault((idx, key, "v"), np.zeros_like(param))
        m *= self.beta1
        m += (1.0 - self.beta1) * grad
        v *= self.beta2
        v += (1.0 - self.beta2) * grad ** 2
        m_hat = m / (1.0 - self.beta1 ** self.steps)
        v_hat = v / (1.0 - self.beta2 ** self.steps)
        param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class _LegacyAdaMax(_LegacyOptimizer):
    beta1, beta2, eps = 0.9, 0.999, 1e-8

    def _update(self, idx, key, param, grad):
        m = self.state.setdefault((idx, key, "m"), np.zeros_like(param))
        u = self.state.setdefault((idx, key, "u"), np.zeros_like(param))
        m *= self.beta1
        m += (1.0 - self.beta1) * grad
        np.maximum(self.beta2 * u, np.abs(grad), out=u)
        m_hat = m / (1.0 - self.beta1 ** self.steps)
        param -= self.lr * m_hat / (u + self.eps)


class _LegacyADGD(_LegacyOptimizer):
    cap_factor = 2.0

    def __init__(self, model, lr, **kwargs):
        super().__init__(model, lr, **kwargs)
        self._cap = self.cap_factor * lr
        self._floor = lr / self.cap_factor
        self._lam = lr
        self._theta = float("inf")
        self._prev_params = None
        self._prev_grads = None

    def step(self):
        self.steps += 1
        params, grads = [], []
        for layer in self.model.trainable:
            for key in layer.params:
                params.append(layer.params[key])
                grads.append(layer.grads[key].copy())
        if self._prev_params is not None:
            dx = math.sqrt(sum(
                float(((p - q) ** 2).sum())
                for p, q in zip(params, self._prev_params)))
            dg = math.sqrt(sum(
                float(((g - h) ** 2).sum())
                for g, h in zip(grads, self._prev_grads)))
            candidate = math.sqrt(1.0 + self._theta) * self._lam
            if dg > 1e-12:
                candidate = min(candidate, dx / (2.0 * dg))
            candidate = min(max(candidate, self._floor), self._cap)
            self._theta = candidate / self._lam
            self._lam = candidate
        self._prev_params = [p.copy() for p in params]
        self._prev_grads = grads
        for param, grad in zip(params, grads):
            param -= self._lam * grad


class _LegacyDPSGD(_LegacyOptimizer):
    def __init__(self, model, lr, *, clip_norm, noise_multiplier, rng):
        super().__init__(model, lr)
        self.clip_norm = clip_norm
        self.noise_multiplier = noise_multiplier
        self.rng = rng
        self._last_batch_size = 1

    def notify_batch_size(self, batch_size):
        self._last_batch_size = max(1, int(batch_size))

    def step(self):
        self.steps += 1
        grads = []
        for layer in self.model.trainable:
            for key in layer.params:
                grads.append(layer.grads[key])
        total_sq = sum(float((g ** 2).sum()) for g in grads)
        norm = math.sqrt(total_sq)
        scale = min(1.0, self.clip_norm / max(norm, 1e-12))
        noise_std = (self.noise_multiplier * self.clip_norm
                     / self._last_batch_size)
        for layer in self.model.trainable:
            for key, param in layer.params.items():
                grad = layer.grads[key] * scale
                if noise_std > 0:
                    grad = grad + self.rng.normal(
                        0.0, noise_std, size=grad.shape)
                param -= self.lr * grad


def _legacy_add_proximal_term(model, mu, anchors):
    for layer, anchor in zip(model.trainable, anchors):
        for key, param in layer.params.items():
            layer.grads[key] += mu * (param - anchor[key])


_LEGACY = {
    "sgd": _LegacySGD,
    "adagrad": _LegacyAdagrad,
    "rmsprop": _LegacyRMSProp,
    "adam": _LegacyAdam,
    "adamax": _LegacyAdaMax,
    "adgd": _LegacyADGD,
}

_LRS = {"sgd": 0.1, "adagrad": 0.02, "adam": 0.01, "adamax": 0.01,
        "rmsprop": 0.005, "adgd": 0.05}


def _train(model, optimizer, *, mu=0.0, prox=None, notify=False):
    loss = SoftmaxCrossEntropy()
    anchor = None
    if mu > 0:
        anchor = prox(model)
    for bx, by in _batches() * 2:
        if notify:
            optimizer.notify_batch_size(len(bx))
        model.loss_and_grad(bx, by, loss)
        if mu > 0:
            if isinstance(anchor, np.ndarray):
                add_proximal_term(model, mu, anchor)
            else:
                _legacy_add_proximal_term(model, mu, anchor)
        optimizer.step()
    return model.weights.buffer


@pytest.mark.parametrize("name", sorted(_LEGACY))
def test_optimizer_matches_legacy_loop_bitwise(name):
    flat_model = _make_model()
    legacy_model = _make_model()
    flat = make_optimizer(name, flat_model, _LRS[name])
    legacy = _LEGACY[name](legacy_model, _LRS[name])
    assert np.array_equal(_train(flat_model, flat),
                          _train(legacy_model, legacy))


@pytest.mark.parametrize("momentum", [0.5, 0.9])
def test_sgd_momentum_matches_legacy_loop_bitwise(momentum):
    flat_model = _make_model()
    legacy_model = _make_model()
    flat = make_optimizer("sgd", flat_model, 0.1, momentum=momentum)
    legacy = _LegacySGD(legacy_model, 0.1, momentum=momentum)
    assert np.array_equal(_train(flat_model, flat),
                          _train(legacy_model, legacy))


def test_dpsgd_matches_legacy_loop_bitwise():
    """Clip norm, noise draws AND the consumed RNG stream must match."""
    flat_model = _make_model()
    legacy_model = _make_model()
    flat = DPSGD(flat_model, 0.05, clip_norm=0.5, noise_multiplier=1.1,
                 rng=np.random.default_rng(77))
    legacy = _LegacyDPSGD(legacy_model, 0.05, clip_norm=0.5,
                          noise_multiplier=1.1,
                          rng=np.random.default_rng(77))
    assert np.array_equal(_train(flat_model, flat, notify=True),
                          _train(legacy_model, legacy, notify=True))


def test_fedprox_matches_legacy_loop_bitwise():
    flat_model = _make_model()
    legacy_model = _make_model()
    flat = make_optimizer("sgd", flat_model, 0.05)
    legacy = _LegacySGD(legacy_model, 0.05)
    flat_final = _train(
        flat_model, flat, mu=0.1,
        prox=lambda m: m.weights.buffer.copy())
    legacy_final = _train(
        legacy_model, legacy, mu=0.1,
        prox=lambda m: m.get_weights())
    assert np.array_equal(flat_final, legacy_final)


def test_fedprox_never_touches_buffer_gradients():
    """Batch-norm running stats must keep exactly zero gradient even
    when the proximal pull ``mu * (w - anchor)`` is nonzero there."""
    model = _make_model()
    loss = SoftmaxCrossEntropy()
    bx, by = _batches()[0]
    anchor = model.weights.buffer.copy()
    model.loss_and_grad(bx, by, loss)  # moves the running stats
    add_proximal_term(model, 0.5, anchor)
    layout = model.weight_layout()
    mask = np.ones(layout.num_params, dtype=bool)
    for segment in layout.param_segments:
        mask[segment] = False
    assert mask.any()  # the model does have buffer coordinates
    assert np.all(model.grad_vector[mask] == 0.0)
