"""Flat-plane aliasing contracts.

The refactored ``Model`` owns one contiguous weight buffer and one
gradient buffer; every ``Layer`` holds zero-copy shaped views into
them.  These tests pin the aliasing rules down: writes through either
side must be visible on the other, clones must alias their *own*
buffers, and binding/loading with wrong names must fail loudly.
"""

import numpy as np
import pytest

from repro.models.resnet import ResidualBlock
from repro.nn.activations import ReLU, Tanh
from repro.nn.layers import BatchNorm1d, Conv2d, Dense
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import Model
from repro.nn.optim import SGD
from repro.nn.store import Layout, WeightStore


def _bn_model(seed=0):
    rng = np.random.default_rng(seed)
    return Model([Dense(6, 8, rng), BatchNorm1d(8), Tanh(),
                  Dense(8, 3, rng)])


class TestViewAliasing:
    def test_every_param_view_aliases_the_buffer(self):
        model = _bn_model()
        buffer = model.weights.buffer
        for idx, layer in enumerate(model.trainable):
            for entry in model.weight_layout().layer_entries(idx):
                view = (layer.params if entry.trainable
                        else layer.buffers)[entry.key]
                assert view.base is buffer
                assert view.shape == entry.shape

    def test_layer_write_shows_up_in_buffer(self, rng):
        model = _bn_model()
        layout = model.weight_layout()
        for idx, layer in enumerate(model.trainable):
            for entry in layout.layer_entries(idx):
                view = (layer.params if entry.trainable
                        else layer.buffers)[entry.key]
                noise = rng.standard_normal(entry.shape)
                view[...] = noise
                segment = model.weights.buffer[entry.offset:entry.stop]
                assert np.array_equal(segment, noise.ravel())

    def test_buffer_write_shows_up_in_layer(self, rng):
        model = _bn_model()
        fresh = rng.standard_normal(model.weights.buffer.size)
        model.weights.buffer[...] = fresh
        layout = model.weight_layout()
        for idx, layer in enumerate(model.trainable):
            for entry in layout.layer_entries(idx):
                view = (layer.params if entry.trainable
                        else layer.buffers)[entry.key]
                assert np.array_equal(
                    view.ravel(), fresh[entry.offset:entry.stop])

    def test_backward_writes_into_grad_vector(self, rng):
        model = _bn_model()
        x = rng.standard_normal((16, 6))
        y = rng.integers(0, 3, 16)
        model.loss_and_grad(x, y, SoftmaxCrossEntropy())
        layout = model.weight_layout()
        for idx, layer in enumerate(model.trainable):
            for key, grad in layer.grads.items():
                assert grad.base is model.grad_vector
        # trainable coordinates received gradient, buffers stayed zero
        mask = np.zeros(layout.num_params, dtype=bool)
        for segment in layout.param_segments:
            mask[segment] = True
        assert np.any(model.grad_vector[mask] != 0.0)
        assert np.all(model.grad_vector[~mask] == 0.0)

    def test_residual_block_views_alias_inner_convs(self):
        rng = np.random.default_rng(1)
        model = Model([Conv2d(2, 4, 3, rng, padding=1), ReLU(),
                       ResidualBlock(4, rng)])
        block = model.trainable[1]
        buffer = model.weights.buffer
        assert block.conv1.params["W"].base is buffer
        assert block.conv2.params["b"].base is buffer
        assert np.shares_memory(block.params["conv1.W"],
                                block.conv1.params["W"])


class TestCloneAliasing:
    def test_clone_views_alias_clone_buffer_not_original(self):
        model = _bn_model()
        clone = model.clone()
        assert clone.weights.buffer is not model.weights.buffer
        assert np.array_equal(clone.weights.buffer,
                              model.weights.buffer)
        for layer in clone.trainable:
            for view in layer.params.values():
                assert view.base is clone.weights.buffer
            for view in layer.buffers.values():
                assert view.base is clone.weights.buffer
            for view in layer.grads.values():
                assert view.base is clone.grad_vector

    def test_clone_shares_layout_object(self):
        model = _bn_model()
        clone = model.clone()
        assert clone.weight_layout() is model.weight_layout()

    def test_clone_trains_independently(self, rng):
        model = _bn_model()
        clone = model.clone()
        x = rng.standard_normal((16, 6))
        y = rng.integers(0, 3, 16)
        clone.loss_and_grad(x, y, SoftmaxCrossEntropy())
        SGD(clone, 0.5).step()
        assert not np.array_equal(clone.weights.buffer,
                                  model.weights.buffer)
        assert np.all(model.grad_vector == 0.0)

    def test_paramless_model_clone(self):
        model = Model([Tanh(), ReLU()])
        clone = model.clone()
        assert clone.num_trainable_layers == 0
        with pytest.raises(ValueError):
            clone.weights


class TestStoreExchange:
    def test_get_store_is_a_snapshot(self):
        model = _bn_model()
        snap = model.get_store()
        snap.buffer[:] = -1.0
        assert not np.any(model.weights.buffer == -1.0)

    def test_set_store_copies_into_live_buffer(self):
        model = _bn_model()
        live = model.weights.buffer
        snap = model.get_store()
        snap.buffer[:] = 0.25
        model.set_store(snap)
        assert model.weights.buffer is live  # no rebind, pure copy
        assert np.all(live == 0.25)
        assert np.all(model.trainable[0].params["W"] == 0.25)

    def test_set_store_rejects_foreign_layout(self):
        model = _bn_model()
        other = Model([Dense(3, 2, np.random.default_rng(0))])
        with pytest.raises(ValueError):
            model.set_store(other.get_store())


class TestBindingStrictness:
    def test_adopt_views_rejects_unknown_param(self):
        rng = np.random.default_rng(0)
        layer = Dense(4, 3, rng)
        params = {k: v.copy() for k, v in layer.params.items()}
        grads = {k: np.zeros_like(v) for k, v in layer.params.items()}
        params["V"] = np.zeros((4, 3))
        with pytest.raises(KeyError):
            layer.adopt_views(params, {}, grads)

    def test_adopt_views_rejects_missing_param(self):
        rng = np.random.default_rng(0)
        layer = Dense(4, 3, rng)
        params = {"W": layer.params["W"].copy()}  # "b" missing
        grads = {k: np.zeros_like(v) for k, v in layer.params.items()}
        with pytest.raises(KeyError):
            layer.adopt_views(params, {}, grads)

    def test_residual_adopt_views_rejects_unrouted_key(self):
        rng = np.random.default_rng(0)
        block = ResidualBlock(4, rng)
        params = {k: v.copy() for k, v in block.params.items()}
        grads = {k: np.zeros_like(v) for k, v in block.params.items()}
        params["conv3.W"] = np.zeros(1)
        grads["conv3.W"] = np.zeros(1)
        with pytest.raises(KeyError):
            block.adopt_views(params, {}, grads)

    def test_set_state_rejects_unknown_key(self):
        rng = np.random.default_rng(0)
        layer = Dense(4, 3, rng)
        state = layer.state()
        state["mystery"] = np.zeros(3)
        with pytest.raises(KeyError):
            layer.set_state(state)

    def test_from_layers_rejects_extra_key(self):
        model = _bn_model()
        layout = model.weight_layout()
        dicts = model.get_weights()
        dicts[0]["extra"] = np.zeros(3)
        with pytest.raises(KeyError):
            WeightStore.from_layers(dicts, layout)

    def test_from_layers_rejects_wrong_layer_count(self):
        model = _bn_model()
        layout = model.weight_layout()
        with pytest.raises(ValueError):
            WeightStore.from_layers(model.get_weights()[:-1], layout)


class TestLayoutIndexing:
    def test_param_segments_cover_exactly_the_trainable_entries(self):
        model = _bn_model()
        layout = model.weight_layout()
        from_segments = np.zeros(layout.num_params, dtype=bool)
        for segment in layout.param_segments:
            from_segments[segment] = True
        from_entries = np.zeros(layout.num_params, dtype=bool)
        for entry in layout.entries:
            if entry.trainable:
                from_entries[entry.offset:entry.stop] = True
        assert np.array_equal(from_segments, from_entries)
        assert layout.num_trainable == int(from_entries.sum())

    def test_segments_are_maximal_and_sorted(self):
        layout = _bn_model().weight_layout()
        segments = layout.param_segments
        for a, b in zip(segments, segments[1:]):
            assert a.stop < b.start  # merged runs never touch

    def test_trainable_flag_does_not_affect_layout_equality(self):
        model = _bn_model()
        layout = model.weight_layout()
        rebuilt = Layout(
            [type(e)(e.layer_idx, e.key, e.shape, e.offset, e.size)
             for e in layout.entries])
        assert rebuilt == layout
        assert hash(rebuilt) == hash(layout)
