"""Segment-plane unit tests: Segment + SegmentedView on Layout."""

import math
import pickle

import numpy as np
import pytest

from repro.nn.activations import ReLU, Tanh
from repro.nn.layers import BatchNorm1d, Dense
from repro.nn.model import Model
from repro.nn.store import (
    Layout,
    LayoutEntry,
    SegmentedView,
    WeightStore,
    chunked_sq_sum,
)


def _buffer_only_layout() -> Layout:
    """Three layers; the middle one carries only non-trainable state."""
    return Layout([
        LayoutEntry(0, "W", (4,), 0, 4),
        LayoutEntry(1, "mean", (3,), 4, 3, trainable=False),
        LayoutEntry(1, "var", (3,), 7, 3, trainable=False),
        LayoutEntry(2, "W", (5,), 10, 5),
    ])


@pytest.fixture
def bn_model(rng) -> Model:
    """A model whose layout carries non-trainable buffers (batch norm
    running statistics) between trainable runs."""
    return Model([
        Dense(6, 5, rng), BatchNorm1d(5), Tanh(),
        Dense(5, 4, rng), ReLU(),
        Dense(4, 3, rng),
    ], rng=rng, name="bn")


@pytest.fixture
def view(bn_model) -> SegmentedView:
    return bn_model.segment_view()


def _vector(layout, rng):
    return rng.standard_normal(layout.num_params)


class TestConstruction:
    def test_named_from_model_layer_names(self, bn_model, view):
        assert view.names == tuple(bn_model.layer_names())
        assert len(view) == bn_model.weight_layout().num_layers

    def test_default_names_without_model(self, bn_model):
        layout = bn_model.weight_layout()
        anon = layout.segmented()
        assert anon.names == tuple(
            f"layer{i}" for i in range(layout.num_layers))

    def test_cached_on_layout(self, bn_model):
        layout = bn_model.weight_layout()
        assert layout.segmented() is layout.segmented()
        names = tuple(bn_model.layer_names())
        assert layout.segmented(names) is layout.segmented(names)
        assert layout.segmented(names) is not layout.segmented()
        assert bn_model.segment_view() is bn_model.segment_view()

    def test_rejects_wrong_name_count(self, bn_model):
        with pytest.raises(ValueError, match="segment names"):
            SegmentedView(bn_model.weight_layout(), ["a", "b"])

    def test_segments_partition_the_buffer(self, view):
        stops = [seg.full for seg in view]
        assert stops[0].start == 0
        assert stops[-1].stop == view.layout.num_params
        for a, b in zip(stops, stops[1:]):
            assert a.stop == b.start

    def test_buffer_only_segment_has_no_params(self):
        seg = _buffer_only_layout().segmented()[1]
        assert not seg.has_params
        assert seg.num_params == 0
        assert seg.entry_slices == ()
        assert seg.full == slice(4, 10)

    def test_num_params_sums_to_trainable(self, view):
        assert sum(seg.num_params for seg in view) \
            == view.layout.num_trainable

    def test_runs_and_entry_slices_mirror_layout(self, view):
        assert view.runs == view.layout.param_segments
        assert view.entry_slices == view.layout.param_entry_slices


class TestResolve:
    def test_by_index_name_negative_and_segment(self, view):
        seg = view.segments[0]
        assert view.resolve(0) is seg
        assert view.resolve(seg.name) is seg
        assert view.resolve(-len(view)) is seg
        assert view.resolve(seg) is seg
        assert view[seg.name] is seg

    def test_unknown_name_and_out_of_range(self, view):
        with pytest.raises(KeyError, match="no segment named"):
            view.resolve("nope")
        with pytest.raises(IndexError):
            view.resolve(len(view))

    def test_duplicate_names_are_ambiguous(self, bn_model):
        layout = bn_model.weight_layout()
        dup = SegmentedView(layout, ["x"] * layout.num_layers)
        assert dup.names == ("x",) * layout.num_layers
        with pytest.raises(KeyError, match="ambiguous"):
            dup.resolve("x")
        assert dup.resolve(1) is dup.segments[1]


class TestViews:
    def test_view_is_zero_copy(self, view, rng):
        vec = _vector(view.layout, rng)
        seg = next(s for s in view if s.has_params)
        window = view.view(vec, seg)
        window[:] = 7.0
        assert np.all(vec[seg.params] == 7.0)

    def test_full_view_covers_buffers(self, view, rng):
        vec = _vector(view.layout, rng)
        bn = next(s for s in view
                  if (s.full.stop - s.full.start) > s.num_params)
        assert view.full_view(vec, bn).size > view.view(vec, bn).size

    def test_batch_views_rows(self, view, rng):
        matrix = rng.standard_normal((3, view.layout.num_params))
        seg = next(s for s in view if s.has_params)
        block = view.batch(matrix, seg)
        assert block.base is matrix
        assert block.shape == (3, seg.num_params)
        np.testing.assert_array_equal(block[1], matrix[1][seg.params])

    def test_batch_validates_shape(self, view, rng):
        seg = next(s for s in view if s.has_params)
        with pytest.raises(ValueError, match="batch shape"):
            view.batch(rng.standard_normal(view.layout.num_params), seg)
        with pytest.raises(ValueError, match="batch shape"):
            view.batch(rng.standard_normal((2, 3)), seg)


class TestNorms:
    def test_sq_sum_matches_legacy_fold(self, view, rng):
        vec = _vector(view.layout, rng)
        assert view.sq_sum(vec) == chunked_sq_sum(
            vec, view.layout.param_entry_slices)

    def test_segment_sq_sums_fold_to_whole(self, view, rng):
        vec = _vector(view.layout, rng)
        per_seg = view.segment_sq_sums(vec)
        assert per_seg.shape == (len(view),)
        # Same chunks in the same order: bitwise, not just close.
        assert math.fsum(per_seg) == pytest.approx(view.sq_sum(vec))
        for seg in view:
            assert per_seg[seg.index] == chunked_sq_sum(
                vec, seg.entry_slices)

    def test_paramless_segment_reads_zero(self, rng):
        anon = _buffer_only_layout().segmented()
        per_seg = anon.segment_sq_sums(
            rng.standard_normal(anon.layout.num_params))
        assert per_seg[1] == 0.0
        assert per_seg[0] > 0.0 and per_seg[2] > 0.0


class TestMask:
    def test_include_exclude_are_complements(self, view):
        inc = view.mask(include=[0, 3])
        exc = view.mask(exclude=[0, 3])
        np.testing.assert_array_equal(inc, ~exc)

    def test_trainable_mask_counts_params(self, view):
        for seg in view:
            assert view.mask(include=[seg.index]).sum() == seg.num_params

    def test_full_mask_covers_buffers(self, view):
        bn = next(s for s in view
                  if (s.full.stop - s.full.start) > s.num_params)
        trainable = view.mask(include=[bn.index])
        full = view.mask(include=[bn.index], full=True)
        assert full.sum() == bn.full.stop - bn.full.start
        assert full.sum() > trainable.sum()

    def test_by_name(self, view):
        seg = next(s for s in view if s.has_params)
        np.testing.assert_array_equal(
            view.mask(include=[seg.name]),
            view.mask(include=[seg.index]))

    def test_requires_exactly_one_side(self, view):
        with pytest.raises(ValueError, match="exactly one"):
            view.mask()
        with pytest.raises(ValueError, match="exactly one"):
            view.mask(include=[0], exclude=[1])


class TestPrimitives:
    def test_add_gaussian_matches_legacy_loop(self, view, rng):
        from repro.nn.dtypes import gaussian
        vec = _vector(view.layout, rng)
        mine, legacy = vec.copy(), vec.copy()
        view.add_gaussian(mine, np.random.default_rng(3), 0.5)
        g = np.random.default_rng(3)
        for run in view.layout.param_segments:
            legacy[run] += gaussian(g, 0.5, run.stop - run.start,
                                    legacy.dtype)
        np.testing.assert_array_equal(mine, legacy)

    def test_segment_add_gaussian_touches_only_segment(self, view, rng):
        vec = _vector(view.layout, rng)
        before = vec.copy()
        seg = next(s for s in view if s.has_params)
        view.segment_add_gaussian(vec, seg, np.random.default_rng(4), 1.0)
        changed = vec != before
        inside = view.mask(include=[seg.index])
        assert changed.any()
        assert not changed[~inside].any()

    def test_scale_segment(self, view, rng):
        vec = _vector(view.layout, rng)
        before = vec.copy()
        seg = next(s for s in view if s.has_params)
        view.scale_segment(vec, seg, 2.0)
        inside = view.mask(include=[seg.index])
        np.testing.assert_array_equal(vec[inside], 2.0 * before[inside])
        np.testing.assert_array_equal(vec[~inside], before[~inside])

    def test_add_scaled_difference_matches_loop(self, view, rng):
        a = _vector(view.layout, rng)
        b = _vector(view.layout, rng)
        mine = np.zeros(view.layout.num_params)
        legacy = np.zeros(view.layout.num_params)
        view.add_scaled_difference(mine, 0.3, a, b)
        for run in view.layout.param_segments:
            legacy[run] += 0.3 * (a[run] - b[run])
        np.testing.assert_array_equal(mine, legacy)
        # Non-trainable coordinates stay exactly zero.
        trainable = np.zeros(view.layout.num_params, dtype=bool)
        for run in view.layout.param_segments:
            trainable[run] = True
        assert not mine[~trainable].any()

    def test_clip_semantics(self, view, rng):
        store = WeightStore(view.layout,
                            rng.standard_normal(view.layout.num_params))
        clipped = view.clip(store, 0.5)
        assert clipped.l2() == pytest.approx(0.5)
        assert clipped is not store
        loose = view.clip(store, 1e9)
        np.testing.assert_array_equal(loose.buffer, store.buffer)
        assert loose is not store  # a copy, matching legacy clip_store
        with pytest.raises(ValueError, match="max_norm"):
            view.clip(store, 0.0)

    def test_top_k_matches_legacy_argpartition(self, view, rng):
        vec = _vector(view.layout, rng)
        k = 17
        mine = view.top_k_indices(vec, k)
        legacy = np.argpartition(np.abs(vec),
                                 vec.size - k)[vec.size - k:]
        np.testing.assert_array_equal(mine, legacy)
        with pytest.raises(ValueError, match="k must be"):
            view.top_k_indices(vec, 0)
        with pytest.raises(ValueError, match="k must be"):
            view.top_k_indices(vec, vec.size + 1)

    def test_segment_top_k_is_absolute_and_inside(self, view, rng):
        vec = _vector(view.layout, rng)
        seg = next(s for s in view if s.has_params)
        idx = view.segment_top_k_indices(vec, seg, 3)
        assert len(idx) == 3
        assert all(seg.params.start <= i < seg.params.stop for i in idx)
        kept = np.sort(np.abs(vec[idx]))
        block = np.sort(np.abs(vec[seg.params]))
        np.testing.assert_array_equal(kept, block[-3:])


class TestLayoutPickle:
    def test_round_trip_preserves_equality(self, bn_model):
        layout = bn_model.weight_layout()
        clone = pickle.loads(pickle.dumps(layout))
        assert clone == layout
        assert clone.param_segments == layout.param_segments
        assert clone.param_entry_slices == layout.param_entry_slices
        assert clone.dtype == layout.dtype

    def test_segmented_cache_does_not_travel(self, bn_model):
        layout = bn_model.weight_layout()
        layout.segmented()  # populate the cache
        clone = pickle.loads(pickle.dumps(layout))
        assert clone._segmented == {}
        # ... and rebuilds fine on the far side.
        assert clone.segmented().names == layout.segmented().names
