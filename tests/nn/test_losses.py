"""Loss function contracts: values, gradients, per-example views."""

import numpy as np
import pytest

from repro.nn.losses import (
    MSELoss,
    SoftmaxCrossEntropy,
    log_softmax,
    softmax,
)


class TestSoftmaxHelpers:
    def test_log_softmax_matches_naive(self, rng):
        logits = rng.standard_normal((4, 6))
        naive = np.log(np.exp(logits)
                       / np.exp(logits).sum(axis=1, keepdims=True))
        assert np.allclose(log_softmax(logits), naive)

    def test_log_softmax_stable_for_large_logits(self):
        out = log_softmax(np.array([[1e4, 0.0]]))
        assert np.all(np.isfinite(out))

    def test_softmax_normalized(self, rng):
        assert np.allclose(
            softmax(rng.standard_normal((3, 7))).sum(axis=1), 1.0)


class TestSoftmaxCrossEntropy:
    def test_uniform_logits_give_log_classes(self):
        loss = SoftmaxCrossEntropy()
        value = loss.forward(np.zeros((5, 10)), np.zeros(5, dtype=int))
        assert np.isclose(value, np.log(10))

    def test_perfect_prediction_near_zero(self):
        loss = SoftmaxCrossEntropy()
        logits = np.full((3, 4), -100.0)
        logits[np.arange(3), [0, 1, 2]] = 100.0
        assert loss.forward(logits, np.array([0, 1, 2])) < 1e-6

    def test_backward_is_probs_minus_onehot(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.standard_normal((4, 5))
        y = np.array([0, 1, 2, 3])
        loss.forward(logits, y)
        grad = loss.backward()
        probs = softmax(logits)
        expected = probs.copy()
        expected[np.arange(4), y] -= 1.0
        assert np.allclose(grad, expected / 4)

    def test_per_example_mean_matches_forward(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.standard_normal((6, 3))
        y = rng.integers(0, 3, 6)
        batch = loss.forward(logits, y)
        per = loss.per_example(logits, y)
        assert per.shape == (6,)
        assert np.isclose(per.mean(), batch)

    def test_per_example_nonnegative(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.standard_normal((20, 5)) * 5
        y = rng.integers(0, 5, 20)
        assert np.all(loss.per_example(logits, y) >= 0)


class TestMSELoss:
    def test_zero_for_exact_match(self, rng):
        loss = MSELoss()
        x = rng.standard_normal((4, 3))
        assert loss.forward(x, x.copy()) == 0.0

    def test_value(self):
        loss = MSELoss()
        value = loss.forward(np.array([[1.0, 1.0]]), np.array([[0.0, 0.0]]))
        assert np.isclose(value, 1.0)

    def test_gradient_direction(self):
        loss = MSELoss()
        loss.forward(np.array([[2.0]]), np.array([[0.0]]))
        grad = loss.backward()
        assert grad[0, 0] > 0  # pushing the prediction down

    def test_per_example_shape(self, rng):
        loss = MSELoss()
        per = loss.per_example(rng.standard_normal((5, 4)),
                               rng.standard_normal((5, 4)))
        assert per.shape == (5,)
        assert np.all(per >= 0)
