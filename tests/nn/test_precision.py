"""Precision plane: no silent float64 upcasts under a float32 config.

The compute plane's contract (repro.nn.dtypes) is that every array a
model touches — activations, gradients, optimizer state, the flat
buffers themselves — carries the configured dtype end to end.  These
tests build each model family at float32 and assert the dtype survives
forward, backward, every optimizer's state, and the store round-trips;
plus float32 gradient checks with dtype-scaled tolerances and the
mixed-dtype guards.
"""

import math

import numpy as np
import pytest

from repro.models.audio import build_audio_m5
from repro.models.fcnn import build_fcnn
from repro.models.resnet import build_resnet_small
from repro.models.vgg import build_vgg_small
from repro.nn.dtypes import gaussian, resolve_dtype, standard_normal
from repro.nn.layers import BatchNorm1d, Conv2d, Dense, Dropout, Flatten
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import Model
from repro.nn.optim import make_optimizer, optimizer_names
from repro.nn.store import Layout, WeightStore
from repro.privacy.defenses.dpsgd import DPSGD
from tests.conftest import numeric_gradient_check

#: float32 gradient checks difference quotients at ~sqrt(eps_f32) and
#: tolerate relative error scaled accordingly (vs 1e-6 at float64).
F32_EPS = 1e-2
F32_TOL = 5e-2


def _families(dtype):
    rng = np.random.default_rng
    return {
        "fcnn": (build_fcnn(40, 5, rng(0), hidden=(16, 8), dtype=dtype),
                 (6, 40)),
        "vgg": (build_vgg_small((3, 8, 8), 5, rng(0), dtype=dtype),
                (4, 3, 8, 8)),
        "resnet": (build_resnet_small((3, 8, 8), 5, rng(0), channels=4,
                                      num_blocks=1, dtype=dtype),
                   (4, 3, 8, 8)),
        "audio": (build_audio_m5((1, 64), 5, rng(0), widths=(4, 8),
                                 dtype=dtype),
                  (4, 1, 64)),
    }


@pytest.mark.parametrize("family", ["fcnn", "vgg", "resnet", "audio"])
@pytest.mark.parametrize("dtype", ["float32", "float64"])
def test_forward_backward_preserve_dtype(family, dtype):
    model, x_shape = _families(dtype)[family]
    expected = np.dtype(dtype)
    assert model.dtype == expected
    assert model.weights.buffer.dtype == expected
    assert model.grad_vector.dtype == expected
    for layer in model.trainable:
        for value in list(layer.params.values()) \
                + list(layer.buffers.values()):
            assert value.dtype == expected

    rng = np.random.default_rng(1)
    x = rng.standard_normal(x_shape).astype(dtype)
    y = rng.integers(0, 5, x_shape[0])
    logits = model.forward(x, training=True)
    assert logits.dtype == expected

    model.loss_and_grad(x, y, SoftmaxCrossEntropy())
    assert model.grad_vector.dtype == expected
    for layer in model.trainable:
        for grad in layer.grads.values():
            assert grad.dtype == expected

    eval_logits = model.predict_logits(x, batch_size=2)
    assert eval_logits.dtype == expected
    assert eval_logits.shape == logits.shape


@pytest.mark.parametrize("name", optimizer_names())
def test_optimizer_state_stays_float32(name):
    model = build_fcnn(12, 4, np.random.default_rng(0), hidden=(8,),
                       dtype="float32")
    rng = np.random.default_rng(1)
    x = rng.standard_normal((6, 12)).astype(np.float32)
    y = rng.integers(0, 4, 6)
    kwargs = {"momentum": 0.9} if name == "sgd" else {}
    optimizer = make_optimizer(name, model, 0.05, **kwargs)
    for _ in range(3):
        model.loss_and_grad(x, y, SoftmaxCrossEntropy())
        optimizer.step()
    assert model.weights.buffer.dtype == np.float32
    for key, slot in optimizer.state.items():
        assert slot.dtype == np.float32, f"{name} slot {key!r} upcast"
    assert np.all(np.isfinite(model.weights.buffer))


def test_dpsgd_noise_stays_float32():
    model = build_fcnn(12, 4, np.random.default_rng(0), hidden=(8,),
                       dtype="float32")
    rng = np.random.default_rng(1)
    x = rng.standard_normal((6, 12)).astype(np.float32)
    y = rng.integers(0, 4, 6)
    optimizer = DPSGD(model, 0.05, clip_norm=1.0, noise_multiplier=0.5,
                      rng=np.random.default_rng(7))
    optimizer.notify_batch_size(6)
    model.loss_and_grad(x, y, SoftmaxCrossEntropy())
    optimizer.step()
    assert model.weights.buffer.dtype == np.float32
    assert np.all(np.isfinite(model.weights.buffer))


def test_float32_conv2d_gradient_check(rng):
    model = Model([Conv2d(2, 3, 3, rng, padding=1, dtype="float32"),
                   Flatten(),
                   Dense(3 * 6 * 6, 4, rng, dtype="float32")])
    x = rng.standard_normal((3, 2, 6, 6)).astype(np.float32)
    y = rng.integers(0, 4, 3)
    err = numeric_gradient_check(model, x, y, SoftmaxCrossEntropy(), rng,
                                 eps=F32_EPS)
    assert err < F32_TOL


def test_float32_batchnorm_gradient_check(rng):
    model = Model([Dense(10, 6, rng, dtype="float32"),
                   BatchNorm1d(6, dtype="float32"),
                   Dense(6, 3, rng, dtype="float32")])
    x = rng.standard_normal((8, 10)).astype(np.float32)
    y = rng.integers(0, 3, 8)
    loss = SoftmaxCrossEntropy()
    model.loss_and_grad(x, y, loss)
    analytic = {
        (i, k): layer.grads[k].copy()
        for i, layer in enumerate(model.trainable)
        for k in layer.params
    }
    # float32 loss values quantize at ~1e-7, so the central difference
    # carries ~1e-5 absolute noise — near-zero coordinates need an
    # absolute floor on top of the dtype-scaled relative tolerance.
    # batch-norm couples every sample, so the numeric side must run the
    # same training-mode forward the analytic pass used.
    for i, layer in enumerate(model.trainable):
        for key, param in layer.params.items():
            flat = param.ravel()
            for j in rng.choice(flat.size, size=min(4, flat.size),
                                replace=False):
                orig = flat[j]
                flat[j] = orig + F32_EPS
                up = loss.forward(model.forward(x, training=True), y)
                flat[j] = orig - F32_EPS
                down = loss.forward(model.forward(x, training=True), y)
                flat[j] = orig
                numeric = (up - down) / (2 * F32_EPS)
                value = analytic[(i, key)].ravel()[j]
                assert abs(numeric - value) <= \
                    F32_TOL * (abs(numeric) + abs(value)) + 2e-3, \
                    f"layer {i} {key}[{j}]: {numeric} vs {value}"


def test_dropout_mask_adopts_input_dtype(rng):
    layer = Dropout(0.5)
    layer.attach_rng(np.random.default_rng(0))
    x = rng.standard_normal((16, 8)).astype(np.float32)
    out = layer.forward(x, training=True)
    assert out.dtype == np.float32
    assert layer.backward(out).dtype == np.float32


def test_set_store_rejects_mismatched_dtype():
    model = build_fcnn(12, 4, np.random.default_rng(0), hidden=(8,),
                       dtype="float32")
    other = build_fcnn(12, 4, np.random.default_rng(0), hidden=(8,),
                       dtype="float64")
    with pytest.raises(ValueError, match="layout"):
        model.set_store(other.get_store())
    # the float32 rendition of the same store loads fine
    model.set_store(other.get_store().astype(np.float32))


def test_from_model_rejects_mixed_dtypes(rng):
    model = Model.__new__(Model)  # bypass __init__'s _bind_flat
    model.layers = [Dense(4, 4, rng, dtype="float32"),
                    Dense(4, 2, rng, dtype="float64")]
    with pytest.raises(ValueError, match="mixes parameter dtypes"):
        Layout.from_model(model)


def test_store_astype_round_trip(rng):
    model = build_fcnn(12, 4, np.random.default_rng(0), hidden=(8,),
                       dtype="float64")
    store = model.get_store()
    f32 = store.astype(np.float32)
    assert f32.layout.dtype == np.float32
    assert f32.buffer.dtype == np.float32
    assert f32.layout.nbytes == store.layout.nbytes // 2
    back = f32.astype(np.float64)
    np.testing.assert_allclose(back.buffer, store.buffer, rtol=1e-6,
                               atol=1e-7)
    assert store.astype(np.float64).layout == store.layout


def test_layout_equality_includes_dtype(rng):
    f32 = build_fcnn(12, 4, np.random.default_rng(0), hidden=(8,),
                     dtype="float32").weight_layout()
    f64 = build_fcnn(12, 4, np.random.default_rng(0), hidden=(8,),
                     dtype="float64").weight_layout()
    assert f32 != f64
    assert f32 == f64.with_dtype(np.float32)
    assert f64.with_dtype(np.float64) is f64


def test_from_layers_infers_float32_only_when_uniform():
    f32_layers = [{"W": np.ones((2, 2), dtype=np.float32)}]
    mixed = [{"W": np.ones((2, 2), dtype=np.float32),
              "b": np.ones(2)}]
    assert WeightStore.from_layers(f32_layers).layout.dtype == np.float32
    assert WeightStore.from_layers(mixed).layout.dtype == np.float64


def test_resolve_dtype_rejects_unsupported():
    assert resolve_dtype(None) == np.float64
    assert resolve_dtype("float32") == np.float32
    with pytest.raises(ValueError, match="unsupported"):
        resolve_dtype(np.int32)


def test_dtype_gated_draws_match_legacy_float64_bitwise():
    """The float64 helpers must consume the stream exactly as the
    pre-dtype code did — this is what keeps the trajectory pins valid."""
    a, b = np.random.default_rng(3), np.random.default_rng(3)
    assert np.array_equal(standard_normal(a, (5, 2), np.float64),
                          b.standard_normal((5, 2)))
    assert np.array_equal(gaussian(a, 0.7, 9, np.float64),
                          b.normal(0.0, 0.7, size=9))
    assert standard_normal(a, 4, np.float32).dtype == np.float32
    assert gaussian(a, 0.7, 4, np.float32).dtype == np.float32


def test_eval_forward_releases_caches(rng):
    dense = Dense(6, 4, rng)
    conv = Conv2d(2, 3, 3, rng, padding=1)
    dense.forward(rng.standard_normal((5, 6)), training=False)
    conv.forward(rng.standard_normal((2, 2, 6, 6)), training=False)
    assert dense._x is None
    assert conv._cols is None
    # training-mode forward still caches for backward
    dense.forward(rng.standard_normal((5, 6)), training=True)
    assert dense._x is not None


def test_eval_backward_yields_input_gradient(rng):
    """Backward after an eval forward (the inversion attack's path)
    produces the input gradient without touching weight grads."""
    model = Model([Dense(6, 4, rng), Flatten(), Dense(4, 3, rng)])
    x = rng.standard_normal((5, 6))
    y = rng.integers(0, 3, 5)
    loss = SoftmaxCrossEntropy()
    # reference input gradient from a training-mode pass
    model.loss_and_grad(x, y, loss)
    logits = model.forward(x, training=True)
    loss.forward(logits, y)
    ref = model.backward(loss.backward())
    # eval-mode pass: same statistics for this model, same input grad
    loss.forward(model.forward(x, training=False), y)
    got = model.backward(loss.backward())
    np.testing.assert_allclose(got, ref, rtol=1e-12, atol=0)


def test_predict_logits_matches_concatenate(rng):
    model = build_fcnn(12, 4, np.random.default_rng(0), hidden=(8,))
    x = rng.standard_normal((23, 12))
    batched = model.predict_logits(x, batch_size=5)
    whole = model.forward(x, training=False)
    assert batched.shape == (23, 4)
    np.testing.assert_array_equal(batched, whole)
    # chunk boundary exactness: batch that divides n evenly
    np.testing.assert_array_equal(
        model.predict_logits(x[:20], batch_size=5), whole[:20])


def test_float32_training_reduces_loss():
    model = build_fcnn(20, 4, np.random.default_rng(0), hidden=(16,),
                       dtype="float32")
    rng = np.random.default_rng(1)
    x = rng.standard_normal((64, 20)).astype(np.float32)
    y = rng.integers(0, 4, 64)
    loss = SoftmaxCrossEntropy()
    optimizer = make_optimizer("adam", model, 0.01)
    first = model.loss_and_grad(x, y, loss)
    for _ in range(30):
        model.loss_and_grad(x, y, loss)
        optimizer.step()
    last = loss.forward(model.forward(x, training=False), y)
    assert math.isfinite(last)
    assert last < first * 0.7
