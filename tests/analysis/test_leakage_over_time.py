"""Leakage-trajectory tests."""

import numpy as np
import pytest

from repro.analysis.leakage_over_time import (
    LeakagePoint,
    LeakageTrajectory,
    leakage_over_training,
)
from repro.core.dinar import DINAR
from repro.data.partition import split_for_membership
from repro.data.synthetic import synthetic_tabular
from repro.fl.config import FLConfig
from repro.fl.simulation import FederatedSimulation
from repro.privacy.attacks.threshold import LossThresholdAttack


@pytest.fixture
def make_sim(rng, tiny_model_factory):
    data = synthetic_tabular(rng, 600, 20, 4, noise=0.35)
    split = split_for_membership(data, np.random.default_rng(1))

    def build(defense=None, rounds=4):
        return FederatedSimulation(
            split, tiny_model_factory,
            FLConfig(num_clients=3, rounds=rounds, local_epochs=3,
                     lr=0.15, batch_size=32, seed=0,
                     eval_every=rounds), defense)
    return build


def test_trajectory_has_one_point_per_round(make_sim):
    trajectory = leakage_over_training(
        make_sim(), LossThresholdAttack(), max_samples=100)
    assert len(trajectory.points) == 4
    assert trajectory.final.round_index == 3


def test_unprotected_leakage_grows(make_sim):
    trajectory = leakage_over_training(
        make_sim(rounds=6), LossThresholdAttack(), max_samples=150)
    rounds, _, local = trajectory.series()
    # training memorizes: late-round leakage exceeds round-0 leakage
    assert local[-1] > local[0]
    assert trajectory.peak_local_auc > 0.6


def test_dinar_flat_at_optimum(make_sim):
    trajectory = leakage_over_training(
        make_sim(DINAR(private_layer=-2, lr=0.05)),
        LossThresholdAttack(), max_samples=150)
    for point in trajectory.points:
        assert point.local_auc < 0.6  # pinned from the first round


def test_rejects_used_simulation(make_sim):
    sim = make_sim()
    sim.run()
    with pytest.raises(ValueError):
        leakage_over_training(sim, LossThresholdAttack())


def test_empty_trajectory_raises():
    with pytest.raises(RuntimeError):
        LeakageTrajectory().final
