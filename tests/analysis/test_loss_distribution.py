"""Member/non-member loss distribution tests (Fig. 3 machinery)."""

import numpy as np

from repro.analysis.loss_distribution import (
    LossDistributions,
    loss_distributions,
)


def test_gap_sign():
    dist = LossDistributions(np.array([0.1, 0.2]), np.array([1.0, 2.0]))
    assert dist.gap > 0
    assert dist.member_mean < dist.nonmember_mean


def test_divergence_nonnegative(rng):
    dist = LossDistributions(rng.random(100), rng.random(100) + 0.5)
    assert dist.divergence >= 0


def test_histograms_share_bins(rng):
    dist = LossDistributions(rng.random(100), rng.random(100) * 2)
    bins, member, nonmember = dist.histograms(num_bins=20)
    assert len(bins) == 21
    assert len(member) == 20
    assert len(nonmember) == 20


def test_loss_distributions_from_model(tiny_model, tiny_dataset):
    dist = loss_distributions(
        tiny_model, tiny_dataset.x[:50], tiny_dataset.y[:50],
        tiny_dataset.x[50:], tiny_dataset.y[50:])
    assert len(dist.member_losses) == 50
    assert np.all(dist.member_losses >= 0)


def test_untrained_model_has_small_gap(tiny_model, tiny_dataset):
    """Without training there is no member/non-member asymmetry."""
    dist = loss_distributions(
        tiny_model, tiny_dataset.x[:60], tiny_dataset.y[:60],
        tiny_dataset.x[60:], tiny_dataset.y[60:])
    assert abs(dist.gap) < 0.5
