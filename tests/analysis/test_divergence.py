"""Jensen-Shannon divergence tests."""

import numpy as np
import pytest

from repro.analysis.divergence import (
    histogram_distribution,
    jensen_shannon_divergence,
    js_divergence_from_samples,
    kl_divergence,
)


class TestHistogram:
    def test_normalized(self, rng):
        bins = np.linspace(0, 1, 11)
        pmf = histogram_distribution(rng.random(100), bins)
        assert np.isclose(pmf.sum(), 1.0)
        assert np.all(pmf > 0)  # smoothing keeps support


class TestKL:
    def test_zero_for_identical(self):
        p = np.array([0.25, 0.25, 0.5])
        assert kl_divergence(p, p) == 0.0

    def test_positive_for_different(self):
        p = np.array([0.9, 0.1])
        q = np.array([0.1, 0.9])
        assert kl_divergence(p, q) > 0

    def test_asymmetric(self):
        p = np.array([0.9, 0.1])
        q = np.array([0.5, 0.5])
        assert kl_divergence(p, q) != kl_divergence(q, p)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            kl_divergence(np.array([1.0]), np.array([0.5, 0.5]))


class TestJS:
    def test_zero_for_identical(self):
        p = np.array([0.3, 0.3, 0.4])
        assert jensen_shannon_divergence(p, p) == 0.0

    def test_symmetric(self, rng):
        p = rng.random(10)
        p /= p.sum()
        q = rng.random(10)
        q /= q.sum()
        assert np.isclose(jensen_shannon_divergence(p, q),
                          jensen_shannon_divergence(q, p))

    def test_bounded_by_one_bit(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert np.isclose(jensen_shannon_divergence(p, q), 1.0)

    def test_rejects_unnormalized(self):
        with pytest.raises(ValueError):
            jensen_shannon_divergence(np.array([1.0, 1.0]),
                                      np.array([0.5, 0.5]))


class TestFromSamples:
    def test_identical_samples_near_zero(self, rng):
        a = rng.standard_normal(1000)
        assert js_divergence_from_samples(a, a) < 0.01

    def test_disjoint_samples_near_one(self, rng):
        a = rng.standard_normal(1000)
        b = rng.standard_normal(1000) + 100
        assert js_divergence_from_samples(a, b) > 0.9

    def test_monotone_in_shift(self, rng):
        a = rng.standard_normal(5000)
        values = [
            js_divergence_from_samples(a, a + shift)
            for shift in (0.0, 0.5, 2.0, 8.0)
        ]
        assert values == sorted(values)

    def test_constant_samples(self):
        assert js_divergence_from_samples(np.ones(10), np.ones(10)) == 0.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            js_divergence_from_samples(np.array([]), np.array([1.0]))
