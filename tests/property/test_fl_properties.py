"""Property-based tests on FL substrate invariants."""

import multiprocessing
import pathlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.partition import partition_dirichlet, partition_iid
from repro.data.synthetic import synthetic_tabular
from repro.fl.network import LinkSpec, dense_nbytes, sparse_nbytes
from repro.fl.shm import shm_available
from repro.privacy.defenses.accounting import gaussian_sigma
from tests.fl.trajectory_recipes import simulation_trajectory

_PINS = (pathlib.Path(__file__).resolve().parent.parent
         / "fixtures" / "trajectory_pins.npz")


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 200), st.integers(1, 20), st.integers(0, 1000))
def test_iid_partition_is_exact_cover(n_samples, num_clients, seed):
    if n_samples < num_clients:
        return
    shards = partition_iid(n_samples, num_clients,
                           np.random.default_rng(seed))
    joined = np.concatenate(shards)
    assert len(joined) == n_samples
    assert len(np.unique(joined)) == n_samples
    sizes = [len(s) for s in shards]
    assert max(sizes) - min(sizes) <= 1


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 6), st.floats(min_value=0.1, max_value=100,
                                    allow_nan=False),
       st.integers(0, 100))
def test_dirichlet_partition_is_exact_cover(num_clients, alpha, seed):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 5, 300)
    shards = partition_dirichlet(labels, num_clients, alpha, rng)
    joined = np.concatenate([s for s in shards if len(s)])
    assert len(joined) == len(labels)
    assert len(np.unique(joined)) == len(labels)


@settings(max_examples=30, deadline=None)
@given(st.integers(10, 500), st.integers(2, 20), st.integers(0, 50),
       st.floats(min_value=0.01, max_value=0.49, allow_nan=False))
def test_synthetic_tabular_labels_cover_classes(n, k, seed, noise):
    if n < k:
        return
    ds = synthetic_tabular(np.random.default_rng(seed), n, 10, k,
                           noise=noise)
    assert ds.class_counts().min() >= n // k - 1
    assert set(np.unique(ds.x)) <= {0.0, 1.0}


@pytest.mark.skipif(
    not shm_available()
    or "fork" not in multiprocessing.get_all_start_methods(),
    reason="shm executor needs shared memory + fork")
@settings(max_examples=8, deadline=None)
@given(st.sampled_from([1, 2, 4]),
       st.sampled_from(["none", "dinar", "sa"]),
       st.sampled_from([1, 2, 8]))
def test_shm_parallel_matches_golden_pin(workers, defense,
                                         max_materialized):
    """Every (worker count, defense, model-pool bound) lands on the
    recorded golden trajectory over the shm transport.

    The pin was recorded on the serial dict-plane path, so matching it
    proves shm-parallel == serial bitwise without re-running serial —
    the transport, the fan-out width, and the virtual-client pool size
    are all invisible to the trajectory.
    """
    vector = simulation_trajectory(defense, workers=workers, ipc="shm",
                                   max_materialized=max_materialized)
    with np.load(_PINS) as pins:
        expected = pins[f"defense/{defense}"]
    assert vector.shape == expected.shape
    if not np.array_equal(vector, expected):
        np.testing.assert_array_almost_equal_nulp(vector, expected,
                                                  nulp=2)


@settings(max_examples=30, deadline=None)
@given(st.floats(min_value=1e-4, max_value=100, allow_nan=False),
       st.floats(min_value=1e-4, max_value=100, allow_nan=False))
def test_gaussian_sigma_monotone_in_epsilon(eps_a, eps_b):
    lo, hi = sorted((eps_a, eps_b))
    if lo == hi:
        return
    assert gaussian_sigma(lo, 1e-5) >= gaussian_sigma(hi, 1e-5)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000_000), st.integers(0, 10_000_000))
def test_link_transfer_time_additive_in_bytes(a, b):
    link = LinkSpec(latency_seconds=0.0,
                    bandwidth_bytes_per_second=1e6)
    combined = link.transfer_seconds(a + b)
    split = link.transfer_seconds(a) + link.transfer_seconds(b)
    assert abs(combined - split) < 1e-9


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 8), st.integers(1, 8), st.integers(0, 100))
def test_sparse_encoding_never_beats_zero_and_bounds_dense(rows, cols,
                                                           seed):
    rng = np.random.default_rng(seed)
    weights = [{"W": rng.standard_normal((rows, cols))}]
    sparse = sparse_nbytes(weights)
    dense = dense_nbytes(weights)
    assert 0 <= sparse <= (8 + 4) * rows * cols
    # fully dense array: sparse encoding costs more per coordinate
    if np.count_nonzero(weights[0]["W"]) == rows * cols:
        assert sparse >= dense * 1.0  # 12 bytes vs 8 per coordinate
