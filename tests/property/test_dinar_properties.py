"""Property-based tests on DINAR's obfuscation/personalization
invariants and the SA mask-cancellation identity."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dinar import DINAR
from repro.nn.model import weights_allclose, weights_zip_map
from repro.privacy.defenses.secure_aggregation import SecureAggregation


def _structure(rng, num_layers):
    return [
        {"W": rng.standard_normal((3, 3)), "b": rng.standard_normal(3)}
        for _ in range(num_layers)
    ]


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 6), st.integers(0, 5), st.integers(0, 1000))
def test_obfuscate_then_personalize_is_identity_on_p(num_layers, p_raw,
                                                     seed):
    """For any layer index, what a client stores at upload time is
    exactly what personalization restores next round."""
    p = p_raw % num_layers
    rng = np.random.default_rng(seed)
    weights = _structure(rng, num_layers)
    defense = DINAR(private_layer=p)
    defense.on_send_update(0, weights, 10, rng)
    garbage = [{k: np.full_like(v, 123.0) for k, v in layer.items()}
               for layer in weights]
    received = defense.on_receive_global(0, garbage)
    assert np.array_equal(received[p]["W"], weights[p]["W"])
    assert np.array_equal(received[p]["b"], weights[p]["b"])
    for j in range(num_layers):
        if j != p:
            assert np.all(received[j]["W"] == 123.0)


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 6), st.integers(0, 1000))
def test_obfuscated_layer_carries_no_information(num_layers, seed):
    """In ``gaussian`` mode, two different private layers produce
    obfuscations that are statistically identical (both pure noise
    from the same rng stream) — the transmitted layer cannot depend on
    the secret.  (``scaled`` mode intentionally leaks only the layer's
    std, which carries no membership information.)"""
    rng_a = np.random.default_rng(seed)
    rng_b = np.random.default_rng(seed)
    data_rng = np.random.default_rng(seed + 1)
    weights_a = _structure(data_rng, num_layers)
    weights_b = _structure(data_rng, num_layers)  # different secrets

    sent_a = DINAR(private_layer=0, obfuscation="gaussian") \
        .on_send_update(0, weights_a, 1, rng_a)
    sent_b = DINAR(private_layer=0, obfuscation="gaussian") \
        .on_send_update(0, weights_b, 1, rng_b)
    # same rng stream => identical noise regardless of the layer values
    assert np.array_equal(sent_a[0]["W"], sent_b[0]["W"])


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 5), st.integers(0, 500), st.integers(1, 30))
def test_sa_masks_cancel_for_any_cohort(num_clients, seed, round_index):
    rng = np.random.default_rng(seed)
    template = _structure(rng, 2)
    defense = SecureAggregation(mask_scale=10.0)
    cohort = list(range(num_clients))
    defense.on_round_start(round_index, cohort, template, rng)
    zeros = [{k: np.zeros_like(v) for k, v in layer.items()}
             for layer in template]
    total = zeros
    for cid in cohort:
        sent = defense.on_send_update(cid, zeros, 1, rng)
        total = weights_zip_map(np.add, total, sent)
    # zero updates + masks: the sum must be exactly the zero structure
    assert weights_allclose(total, zeros, atol=1e-6)
