"""Property-based tests (hypothesis) on core invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.divergence import (
    jensen_shannon_divergence,
    js_divergence_from_samples,
)
from repro.fl.aggregation import fedavg, scale_weights, sum_updates
from repro.nn.model import (
    flatten_weights,
    unflatten_weights,
    weights_allclose,
    weights_l2_norm,
)
from repro.privacy.attacks.metrics import attack_auc, roc_auc
from repro.privacy.defenses.ldp import clip_weights

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

finite_floats = st.floats(min_value=-100, max_value=100,
                          allow_nan=False, allow_infinity=False)


@st.composite
def weight_structures(draw):
    """Random Weights: 1-3 layers, each with 1-2 small arrays."""
    num_layers = draw(st.integers(1, 3))
    structure = []
    for _ in range(num_layers):
        layer = {}
        for key in draw(st.sampled_from([["W"], ["W", "b"]])):
            rows = draw(st.integers(1, 4))
            cols = draw(st.integers(1, 4))
            values = draw(st.lists(finite_floats,
                                   min_size=rows * cols,
                                   max_size=rows * cols))
            layer[key] = np.array(values).reshape(rows, cols)
        structure.append(layer)
    return structure


@st.composite
def pmfs(draw):
    raw = draw(st.lists(st.floats(min_value=1e-6, max_value=1.0),
                        min_size=2, max_size=20))
    values = np.array(raw)
    return values / values.sum()


# ----------------------------------------------------------------------
# FedAvg
# ----------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(weight_structures(), st.integers(1, 5))
def test_fedavg_of_identical_updates_is_identity(weights, n_clients):
    out = fedavg([weights] * n_clients, [10] * n_clients)
    assert weights_allclose(out, weights, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(weight_structures(), st.integers(1, 100), st.integers(1, 100))
def test_fedavg_is_convex_combination(weights, n_a, n_b):
    """The average of w and 2w lies between them coordinate-wise."""
    double = scale_weights(weights, 2.0)
    out = fedavg([weights, double], [n_a, n_b])
    for layer_out, layer_w in zip(out, weights):
        for key in layer_out:
            low = np.minimum(layer_w[key], 2 * layer_w[key])
            high = np.maximum(layer_w[key], 2 * layer_w[key])
            assert np.all(layer_out[key] >= low - 1e-9)
            assert np.all(layer_out[key] <= high + 1e-9)


@settings(max_examples=40, deadline=None)
@given(weight_structures(), st.integers(2, 5))
def test_sum_scale_matches_fedavg_equal_counts(weights, n_clients):
    """The secure-aggregation server computation reproduces FedAvg."""
    updates = [weights] * n_clients
    pre_weighted = [scale_weights(u, 7) for u in updates]
    via_sum = scale_weights(sum_updates(pre_weighted),
                            1.0 / (7 * n_clients))
    via_avg = fedavg(updates, [7] * n_clients)
    assert weights_allclose(via_sum, via_avg, atol=1e-9)


# ----------------------------------------------------------------------
# weight vector round trips
# ----------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(weight_structures())
def test_flatten_roundtrip(weights):
    rebuilt = unflatten_weights(flatten_weights(weights), weights)
    assert weights_allclose(weights, rebuilt, atol=0.0)


@settings(max_examples=40, deadline=None)
@given(weight_structures(), st.floats(min_value=0.01, max_value=50,
                                      allow_nan=False))
def test_clip_never_exceeds_bound(weights, bound):
    clipped = clip_weights(weights, bound)
    assert weights_l2_norm(clipped) <= bound * (1 + 1e-9)


@settings(max_examples=40, deadline=None)
@given(weight_structures(), st.floats(min_value=0.01, max_value=50,
                                      allow_nan=False))
def test_clip_is_idempotent(weights, bound):
    once = clip_weights(weights, bound)
    twice = clip_weights(once, bound)
    assert weights_allclose(once, twice, atol=1e-12)


# ----------------------------------------------------------------------
# divergence
# ----------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(pmfs(), pmfs())
def test_js_symmetric_and_bounded(p, q):
    if p.shape != q.shape:
        return
    a = jensen_shannon_divergence(p, q)
    b = jensen_shannon_divergence(q, p)
    assert math.isclose(a, b, abs_tol=1e-9)
    assert -1e-12 <= a <= 1.0 + 1e-9


@settings(max_examples=40, deadline=None)
@given(st.lists(finite_floats, min_size=5, max_size=100))
def test_js_of_sample_with_itself_is_zero(values):
    samples = np.array(values)
    assert js_divergence_from_samples(samples, samples) < 1e-9


# ----------------------------------------------------------------------
# AUC
# ----------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(st.lists(finite_floats, min_size=1, max_size=50),
       st.lists(finite_floats, min_size=1, max_size=50))
def test_roc_auc_complement(pos, neg):
    """Swapping populations complements the AUC."""
    p = np.array(pos)
    n = np.array(neg)
    assert math.isclose(roc_auc(p, n), 1.0 - roc_auc(n, p),
                        abs_tol=1e-9)


@settings(max_examples=40, deadline=None)
@given(st.lists(finite_floats, min_size=1, max_size=50),
       st.lists(finite_floats, min_size=1, max_size=50))
def test_attack_auc_range(pos, neg):
    value = attack_auc(np.array(pos), np.array(neg))
    assert 0.5 <= value <= 1.0


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(-1000, 1000), min_size=2, max_size=50),
       st.sampled_from([0.5, 1.0, 2.0, 4.0]),
       st.integers(-5, 5))
def test_roc_auc_invariant_to_monotone_transform(scores, scale, shift):
    """AUC is rank-based: positive affine transforms don't change it.

    Scores and transforms are restricted to exactly-representable
    floats so the transform cannot create or destroy ties.
    """
    values = np.array(scores, dtype=np.float64)
    half = len(values) // 2
    pos, neg = values[:half], values[half:]
    if pos.size == 0 or neg.size == 0:
        return
    base = roc_auc(pos, neg)
    transformed = roc_auc(pos * scale + shift, neg * scale + shift)
    assert math.isclose(base, transformed, abs_tol=1e-9)
