"""Property-based tests for the flat weight plane.

Two families of invariants:

* **Round trips** — the store bridges lose nothing: nested -> store ->
  nested is exact, and the store buffer *is* the canonical flatten
  vector.
* **Bitwise agreement** — the vectorized aggregation rules reproduce
  the legacy nested-dict implementations bit for bit (same floats, not
  just close), and DINAR's obfuscation consumes the RNG stream exactly
  as the legacy per-array loop did.  One deliberate exception: the
  einsum-backed weighted reduction in ``fedavg`` may contract with
  fused multiply-adds, whose different rounding points can move single
  coordinates by 1 ULP relative to the sequential reference sum — those
  two comparisons allow a 2-ULP tolerance instead.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dinar import DINAR
from repro.fl.aggregation import (
    UpdateBatch,
    coordinate_median,
    fedavg,
    fedavg_reference,
    sum_updates,
    trimmed_mean,
)
from repro.nn.model import flatten_weights, unflatten_weights
from repro.nn.store import WeightStore, as_store

finite_floats = st.floats(min_value=-100, max_value=100,
                          allow_nan=False, allow_infinity=False)


@st.composite
def weight_structures(draw, min_layers=1):
    """Random Weights: ``min_layers``-3 layers of 1-2 small arrays."""
    num_layers = draw(st.integers(min_layers, 3))
    structure = []
    for _ in range(num_layers):
        layer = {}
        for key in draw(st.sampled_from([["W"], ["W", "b"]])):
            rows = draw(st.integers(1, 4))
            cols = draw(st.integers(1, 4))
            values = draw(st.lists(finite_floats,
                                   min_size=rows * cols,
                                   max_size=rows * cols))
            layer[key] = np.array(values).reshape(rows, cols)
        structure.append(layer)
    return structure


@st.composite
def client_cohorts(draw, min_clients=1, max_clients=6):
    """A base structure plus per-client perturbed copies of it."""
    base = draw(weight_structures())
    n = draw(st.integers(min_clients, max_clients))
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    updates = [
        [{k: v + rng.standard_normal(v.shape) for k, v in layer.items()}
         for layer in base]
        for _ in range(n)
    ]
    samples = [draw(st.integers(1, 50)) for _ in range(n)]
    return updates, samples


def assert_bitwise_equal(store: WeightStore, nested) -> None:
    """The store holds the exact same floats as the nested structure."""
    reference = WeightStore.from_layers(nested, store.layout)
    assert np.array_equal(store.buffer, reference.buffer)


def assert_ulp_close(store: WeightStore, nested, nulp: int = 2) -> None:
    """Same floats up to ``nulp`` units in the last place.

    Used only where FMA contraction inside einsum can legitimately
    round differently from a sequential sum.
    """
    reference = WeightStore.from_layers(nested, store.layout)
    np.testing.assert_array_almost_equal_nulp(
        store.buffer, reference.buffer, nulp=nulp)


# ----------------------------------------------------------------------
# round trips
# ----------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(weight_structures())
def test_from_layers_to_layers_is_exact(weights):
    rebuilt = WeightStore.from_layers(weights).to_layers()
    assert len(rebuilt) == len(weights)
    for layer, original in zip(rebuilt, weights):
        assert layer.keys() == original.keys()
        for key in original:
            assert np.array_equal(layer[key], original[key])


@settings(max_examples=60, deadline=None)
@given(weight_structures())
def test_store_buffer_is_the_flatten_vector(weights):
    store = WeightStore.from_layers(weights)
    flat = flatten_weights(weights)
    assert np.array_equal(store.buffer, flat)
    # and flattening the store is zero-copy over the same values
    assert np.array_equal(flatten_weights(store), flat)


@settings(max_examples=60, deadline=None)
@given(weight_structures())
def test_unflatten_matches_store_bridge(weights):
    store = WeightStore.from_layers(weights)
    via_unflatten = unflatten_weights(store.readonly_vector(), weights)
    via_store = store.to_layers()
    for a, b in zip(via_unflatten, via_store):
        assert a.keys() == b.keys()
        for key in a:
            assert np.array_equal(a[key], b[key])


# ----------------------------------------------------------------------
# old vs new aggregation: bitwise agreement
# ----------------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(client_cohorts())
def test_vectorized_fedavg_matches_reference(cohort):
    updates, samples = cohort
    expected = fedavg_reference(updates, samples)
    out = fedavg(updates, samples)
    assert_ulp_close(out, expected)


@settings(max_examples=50, deadline=None)
@given(client_cohorts())
def test_fedavg_over_stores_and_batch_matches_reference(cohort):
    updates, samples = cohort
    expected = fedavg_reference(updates, samples)
    stores = [as_store(u) for u in updates]
    assert_ulp_close(fedavg(stores, samples), expected)
    batch = UpdateBatch(stores[0].layout, capacity=1)
    for update in updates:
        batch.add(update)
    assert_ulp_close(fedavg(batch, samples), expected)


@settings(max_examples=50, deadline=None)
@given(client_cohorts())
def test_sum_updates_matches_legacy_sum_bitwise(cohort):
    updates, _ = cohort
    expected = [
        {key: sum(u[layer_idx][key] for u in updates)
         for key in updates[0][layer_idx]}
        for layer_idx in range(len(updates[0]))
    ]
    assert_bitwise_equal(sum_updates(updates), expected)


@settings(max_examples=50, deadline=None)
@given(client_cohorts(min_clients=3))
def test_trimmed_mean_matches_legacy_bitwise(cohort):
    updates, _ = cohort
    n = len(updates)
    expected = [
        {key: np.sort(np.stack([u[layer_idx][key] for u in updates]),
                      axis=0)[1:n - 1].mean(axis=0)
         for key in updates[0][layer_idx]}
        for layer_idx in range(len(updates[0]))
    ]
    assert_bitwise_equal(trimmed_mean(updates, trim=1), expected)


@settings(max_examples=50, deadline=None)
@given(client_cohorts())
def test_coordinate_median_matches_legacy_bitwise(cohort):
    updates, _ = cohort
    expected = [
        {key: np.median(np.stack([u[layer_idx][key] for u in updates]),
                        axis=0)
         for key in updates[0][layer_idx]}
        for layer_idx in range(len(updates[0]))
    ]
    assert_bitwise_equal(coordinate_median(updates), expected)


# ----------------------------------------------------------------------
# DINAR obfuscation: same RNG stream as the legacy per-array loop
# ----------------------------------------------------------------------

def legacy_obfuscate(weights, protected, rng, mode, scale):
    """The seed implementation of Algorithm 1 lines 15-17, verbatim."""
    def noise_std(array):
        if mode == "gaussian":
            return scale
        return scale * max(float(array.std()), 1e-3)

    out = [{k: v.copy() for k, v in layer.items()} for layer in weights]
    for layer_idx in protected:
        out[layer_idx] = {
            k: rng.standard_normal(v.shape) * noise_std(v)
            for k, v in weights[layer_idx].items()
        }
    return out


@settings(max_examples=50, deadline=None)
@given(weight_structures(min_layers=2),
       st.sampled_from(["scaled", "gaussian"]),
       st.integers(0, 2**32 - 1))
def test_obfuscation_bitwise_matches_legacy(weights, mode, seed):
    defense = DINAR(private_layer=-2, obfuscation=mode)
    protected = defense.protected_indices(len(weights))
    expected = legacy_obfuscate(
        weights, protected, np.random.default_rng(seed), mode,
        defense.obfuscation_scale)

    sent = defense.on_send_update(
        0, as_store(weights), num_samples=10,
        rng=np.random.default_rng(seed))
    assert_bitwise_equal(sent, expected)

    # the stored private layer is the exact pre-obfuscation content
    for layer_idx in protected:
        for key, value in defense._stored[0][layer_idx].items():
            assert np.array_equal(value, weights[layer_idx][key])


@settings(max_examples=50, deadline=None)
@given(weight_structures(min_layers=2), st.integers(0, 2**32 - 1))
def test_obfuscation_identical_for_store_and_nested_input(weights, seed):
    sent_nested = DINAR().on_send_update(
        0, weights, num_samples=10, rng=np.random.default_rng(seed))
    sent_store = DINAR().on_send_update(
        0, as_store(weights), num_samples=10,
        rng=np.random.default_rng(seed))
    assert np.array_equal(sent_nested.buffer, sent_store.buffer)
