"""Dataset registry tests — the Table 2 inventory."""

import numpy as np
import pytest

from repro.data.datasets import (
    DATASET_SPECS,
    available_datasets,
    load_dataset,
)

PAPER_TABLE2 = {
    # name: (records, classes, model family)
    "cifar10": (50_000, 10, "ResNet20"),
    "cifar100": (50_000, 100, "ResNet20"),
    "gtsrb": (51_389, 43, "VGG11"),
    "celeba": (202_599, 32, "VGG11"),
    "speech_commands": (64_727, 36, "M18"),
    "purchase100": (97_324, 100, "6-layer FCNN"),
    "texas100": (67_330, 100, "6-layer FCNN"),
}


def test_registry_covers_all_paper_datasets():
    assert set(available_datasets()) == set(PAPER_TABLE2)


@pytest.mark.parametrize("name", sorted(PAPER_TABLE2))
def test_spec_matches_paper_row(name):
    records, classes, model = PAPER_TABLE2[name]
    spec = DATASET_SPECS[name]
    assert spec.paper_records == records
    assert spec.paper_classes == classes
    assert spec.paper_model == model
    # built class counts are kept equal to the paper's
    assert spec.num_classes == classes


@pytest.mark.parametrize("name", sorted(PAPER_TABLE2))
def test_load_produces_expected_shape(name):
    ds = load_dataset(name, 0, n_samples=200)
    spec = DATASET_SPECS[name]
    assert len(ds) == 200
    assert ds.feature_shape == tuple(spec.shape)
    assert ds.num_classes == spec.num_classes
    assert ds.metadata["spec"] is spec


def test_load_is_deterministic():
    a = load_dataset("purchase100", 3, n_samples=100)
    b = load_dataset("purchase100", 3, n_samples=100)
    assert np.array_equal(a.x, b.x)


def test_different_seeds_differ():
    a = load_dataset("purchase100", 1, n_samples=100)
    b = load_dataset("purchase100", 2, n_samples=100)
    assert not np.array_equal(a.x, b.x)


def test_noise_override(rng):
    quiet = load_dataset("cifar10", 0, n_samples=100, noise=0.01)
    loud = load_dataset("cifar10", 0, n_samples=100, noise=3.0)
    assert loud.x.std() > quiet.x.std()


def test_unknown_dataset_rejected():
    with pytest.raises(ValueError):
        load_dataset("imagenet")


def test_accepts_generator_seed():
    ds = load_dataset("celeba", np.random.default_rng(0), n_samples=50)
    assert len(ds) == 50
