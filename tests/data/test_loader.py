"""Mini-batch iterator tests."""

import numpy as np
import pytest

from repro.data.loader import iterate_batches


def test_covers_all_samples(rng):
    x = np.arange(25).reshape(25, 1).astype(float)
    y = np.arange(25)
    seen = []
    for bx, by in iterate_batches(x, y, 4, rng):
        assert len(bx) == len(by)
        seen.extend(by.tolist())
    assert sorted(seen) == list(range(25))


def test_batch_sizes(rng):
    x = np.zeros((10, 2))
    y = np.zeros(10, dtype=int)
    sizes = [len(bx) for bx, _ in iterate_batches(x, y, 4, rng)]
    assert sizes == [4, 4, 2]


def test_drop_last(rng):
    x = np.zeros((10, 2))
    y = np.zeros(10, dtype=int)
    sizes = [len(bx) for bx, _ in iterate_batches(x, y, 4, rng,
                                                  drop_last=True)]
    assert sizes == [4, 4]


def test_features_follow_labels(rng):
    x = np.arange(20).reshape(20, 1).astype(float)
    y = np.arange(20)
    for bx, by in iterate_batches(x, y, 6, rng):
        assert np.array_equal(bx[:, 0].astype(int), by)


def test_no_shuffle_is_sequential():
    x = np.arange(8).reshape(8, 1).astype(float)
    y = np.arange(8)
    batches = list(iterate_batches(x, y, 3, shuffle=False))
    assert batches[0][1].tolist() == [0, 1, 2]


def test_shuffle_requires_rng():
    with pytest.raises(ValueError):
        next(iterate_batches(np.zeros((4, 1)), np.zeros(4, dtype=int), 2))


def test_rejects_mismatched_lengths(rng):
    with pytest.raises(ValueError):
        next(iterate_batches(np.zeros((4, 1)), np.zeros(3, dtype=int), 2,
                             rng))


def test_rejects_bad_batch_size(rng):
    with pytest.raises(ValueError):
        next(iterate_batches(np.zeros((4, 1)), np.zeros(4, dtype=int), 0,
                             rng))


def test_deterministic_given_seed():
    x = np.arange(30).reshape(30, 1).astype(float)
    y = np.arange(30)
    a = [by.tolist() for _, by in iterate_batches(
        x, y, 7, np.random.default_rng(4))]
    b = [by.tolist() for _, by in iterate_batches(
        x, y, 7, np.random.default_rng(4))]
    assert a == b
