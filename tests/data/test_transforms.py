"""Preprocessing transform tests."""

import numpy as np
import pytest

from repro.data.synthetic import synthetic_tabular
from repro.data.transforms import (
    MinMaxScaler,
    Standardizer,
    standardize_split,
)


class TestStandardizer:
    def test_fitted_stats(self, rng):
        x = rng.standard_normal((200, 5)) * 3 + 7
        scaled = Standardizer().fit(x).transform(x)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-6)

    def test_inverse_roundtrip(self, rng):
        x = rng.standard_normal((50, 4)) * 2 + 1
        scaler = Standardizer().fit(x)
        assert np.allclose(scaler.inverse_transform(
            scaler.transform(x)), x)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            Standardizer().transform(np.zeros((2, 2)))

    def test_fit_rejects_empty(self):
        with pytest.raises(ValueError):
            Standardizer().fit(np.zeros((0, 3)))

    def test_applies_train_statistics_to_test(self, rng):
        """The test pool is scaled with TRAIN statistics, not its own."""
        train = rng.standard_normal((100, 3))
        test = rng.standard_normal((100, 3)) + 10
        scaler = Standardizer().fit(train)
        scaled_test = scaler.transform(test)
        assert scaled_test.mean() > 5  # still shifted: fit on train only


class TestMinMaxScaler:
    def test_range(self, rng):
        x = rng.standard_normal((100, 4)) * 5
        scaled = MinMaxScaler().fit(x).transform(x)
        assert scaled.min() >= 0.0
        assert scaled.max() <= 1.0 + 1e-9

    def test_constant_feature_handled(self):
        x = np.ones((10, 2))
        scaled = MinMaxScaler().fit(x).transform(x)
        assert np.all(np.isfinite(scaled))


class TestStandardizeSplit:
    def test_shared_statistics(self, rng):
        members = synthetic_tabular(rng, 100, 10, 3, binary=False)
        others = synthetic_tabular(rng, 40, 10, 3, binary=False)
        std_members, std_others = standardize_split(members, others)
        assert np.allclose(
            std_members.x.mean(axis=0), 0.0, atol=1e-9)
        assert std_others.x.shape == others.x.shape
        assert std_others.name.endswith("/std")

    def test_preserves_labels(self, rng):
        members = synthetic_tabular(rng, 60, 8, 3)
        (scaled,) = standardize_split(members)
        assert np.array_equal(scaled.y, members.y)
