"""Synthetic generator tests: shapes, determinism, noise semantics."""

import numpy as np
import pytest

from repro.data.synthetic import (
    Dataset,
    synthetic_audio,
    synthetic_images,
    synthetic_tabular,
)


class TestDataset:
    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            Dataset("bad", np.zeros((3, 2)), np.zeros(2, dtype=int), 2)

    def test_rejects_out_of_range_labels(self):
        with pytest.raises(ValueError):
            Dataset("bad", np.zeros((2, 2)), np.array([0, 5]), 2)

    def test_subset_copies(self, tiny_dataset):
        sub = tiny_dataset.subset(np.arange(10))
        sub.x[...] = 99.0
        assert not np.any(tiny_dataset.x[:10] == 99.0)

    def test_feature_shape(self, tiny_dataset):
        assert tiny_dataset.feature_shape == (20,)

    def test_class_counts_sum(self, tiny_dataset):
        assert tiny_dataset.class_counts().sum() == len(tiny_dataset)


class TestTabular:
    def test_shape_and_range(self, rng):
        ds = synthetic_tabular(rng, 100, 30, 5, noise=0.2)
        assert ds.x.shape == (100, 30)
        assert set(np.unique(ds.x)) <= {0.0, 1.0}
        assert ds.num_classes == 5

    def test_balanced_classes(self, rng):
        ds = synthetic_tabular(rng, 100, 30, 5)
        assert np.all(ds.class_counts() == 20)

    def test_noise_controls_intra_class_distance(self, rng):
        low = synthetic_tabular(np.random.default_rng(1), 400, 50, 2,
                                noise=0.05)
        high = synthetic_tabular(np.random.default_rng(1), 400, 50, 2,
                                 noise=0.4)

        def mean_intra_class_distance(ds):
            dists = []
            for c in range(ds.num_classes):
                xc = ds.x[ds.y == c]
                dists.append(np.abs(xc[0] - xc[1:]).mean())
            return np.mean(dists)

        assert mean_intra_class_distance(low) \
            < mean_intra_class_distance(high)

    def test_continuous_mode(self, rng):
        ds = synthetic_tabular(rng, 50, 10, 3, binary=False, noise=0.1)
        assert len(set(np.unique(ds.x))) > 2

    def test_deterministic(self):
        a = synthetic_tabular(np.random.default_rng(3), 50, 10, 3)
        b = synthetic_tabular(np.random.default_rng(3), 50, 10, 3)
        assert np.array_equal(a.x, b.x)
        assert np.array_equal(a.y, b.y)

    def test_rejects_bad_arguments(self, rng):
        with pytest.raises(ValueError):
            synthetic_tabular(rng, 10, 5, 1)


class TestImages:
    def test_shape(self, rng):
        ds = synthetic_images(rng, 40, (3, 8, 8), 4)
        assert ds.x.shape == (40, 3, 8, 8)
        assert ds.data_type == "image"

    def test_rejects_indivisible_sides(self, rng):
        with pytest.raises(ValueError):
            synthetic_images(rng, 10, (3, 6, 6), 2)

    def test_prototypes_are_spatially_smooth(self, rng):
        """Low noise images have strong 4x4 block structure."""
        ds = synthetic_images(rng, 20, (1, 8, 8), 2, noise=0.01)
        img = ds.x[0, 0]
        block = img[:4, :4]
        assert np.abs(block - block[0, 0]).max() < 0.1


class TestAudio:
    def test_shape(self, rng):
        ds = synthetic_audio(rng, 30, 256, 6)
        assert ds.x.shape == (30, 1, 256)
        assert ds.data_type == "audio"

    def test_same_class_waveforms_correlate(self, rng):
        ds = synthetic_audio(rng, 200, 256, 4, noise=0.1)
        c0 = ds.x[ds.y == 0][:, 0, :]
        c1 = ds.x[ds.y == 1][:, 0, :]
        same = np.corrcoef(c0[0], c0[1])[0, 1]
        cross = np.corrcoef(c0[0], c1[0])[0, 1]
        assert same > cross

    def test_deterministic(self):
        a = synthetic_audio(np.random.default_rng(5), 20, 128, 3)
        b = synthetic_audio(np.random.default_rng(5), 20, 128, 3)
        assert np.array_equal(a.x, b.x)
