"""Membership split and FL partitioning tests (§5.1, §5.3, §5.8)."""

import math

import numpy as np
import pytest

from repro.data.partition import (
    partition_dirichlet,
    partition_iid,
    split_for_membership,
)
from repro.data.synthetic import synthetic_tabular


class TestMembershipSplit:
    def test_pools_are_disjoint_and_complete(self, tiny_dataset, rng):
        split = split_for_membership(tiny_dataset, rng)
        total = (len(split.members) + len(split.nonmembers)
                 + len(split.attacker))
        assert total == len(tiny_dataset)

    def test_paper_fractions(self, rng):
        ds = synthetic_tabular(rng, 1000, 10, 4)
        split = split_for_membership(ds, rng)
        assert len(split.attacker) == 500   # half for the attacker
        assert len(split.members) == 400    # 80% of the rest
        assert len(split.nonmembers) == 100  # 20% of the rest

    def test_custom_fractions(self, rng):
        ds = synthetic_tabular(rng, 100, 10, 4)
        split = split_for_membership(ds, rng, attacker_fraction=0.2,
                                     train_fraction=0.5)
        assert len(split.attacker) == 20
        assert len(split.members) == 40

    def test_rejects_bad_fractions(self, tiny_dataset, rng):
        with pytest.raises(ValueError):
            split_for_membership(tiny_dataset, rng, attacker_fraction=1.0)
        with pytest.raises(ValueError):
            split_for_membership(tiny_dataset, rng, train_fraction=0.0)

    def test_deterministic_given_rng(self, tiny_dataset):
        a = split_for_membership(tiny_dataset, np.random.default_rng(1))
        b = split_for_membership(tiny_dataset, np.random.default_rng(1))
        assert np.array_equal(a.members.x, b.members.x)


class TestIIDPartition:
    def test_covers_all_samples_disjointly(self, rng):
        shards = partition_iid(100, 7, rng)
        joined = np.concatenate(shards)
        assert len(joined) == 100
        assert len(np.unique(joined)) == 100

    def test_near_equal_sizes(self, rng):
        sizes = [len(s) for s in partition_iid(100, 7, rng)]
        assert max(sizes) - min(sizes) <= 1

    def test_rejects_more_clients_than_samples(self, rng):
        with pytest.raises(ValueError):
            partition_iid(3, 5, rng)

    def test_rejects_zero_clients(self, rng):
        with pytest.raises(ValueError):
            partition_iid(10, 0, rng)


class TestDirichletPartition:
    def _labels(self, rng, n=600, k=6):
        return rng.integers(0, k, n)

    def test_covers_all_samples(self, rng):
        labels = self._labels(rng)
        shards = partition_dirichlet(labels, 5, 1.0, rng)
        joined = np.concatenate(shards)
        assert len(joined) == len(labels)
        assert len(np.unique(joined)) == len(labels)

    def test_low_alpha_is_more_skewed(self):
        """Lower alpha concentrates classes on fewer clients (§5.8)."""
        labels = np.random.default_rng(0).integers(0, 6, 3000)

        def skew(alpha, seed):
            shards = partition_dirichlet(
                labels, 5, alpha, np.random.default_rng(seed))
            stds = []
            for cls in range(6):
                counts = [np.sum(labels[s] == cls) for s in shards]
                stds.append(np.std(counts))
            return np.mean(stds)

        low = np.mean([skew(0.2, s) for s in range(3)])
        high = np.mean([skew(50.0, s) for s in range(3)])
        assert low > high

    def test_infinite_alpha_degenerates_to_iid(self, rng):
        labels = self._labels(rng)
        shards = partition_dirichlet(labels, 4, math.inf, rng)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_min_samples_respected(self, rng):
        labels = self._labels(rng)
        shards = partition_dirichlet(labels, 5, 0.3, rng, min_samples=10)
        assert min(len(s) for s in shards) >= 10

    def test_rejects_nonpositive_alpha(self, rng):
        with pytest.raises(ValueError):
            partition_dirichlet(self._labels(rng), 3, 0.0, rng)

    def test_impossible_min_samples_raises(self, rng):
        labels = rng.integers(0, 2, 10)
        with pytest.raises(RuntimeError):
            partition_dirichlet(labels, 5, 0.5, rng, min_samples=10)
