"""Membership split and FL partitioning tests (§5.1, §5.3, §5.8)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.partition import (
    partition_dirichlet,
    partition_iid,
    split_for_membership,
)
from repro.data.synthetic import synthetic_tabular


class TestMembershipSplit:
    def test_pools_are_disjoint_and_complete(self, tiny_dataset, rng):
        split = split_for_membership(tiny_dataset, rng)
        total = (len(split.members) + len(split.nonmembers)
                 + len(split.attacker))
        assert total == len(tiny_dataset)

    def test_paper_fractions(self, rng):
        ds = synthetic_tabular(rng, 1000, 10, 4)
        split = split_for_membership(ds, rng)
        assert len(split.attacker) == 500   # half for the attacker
        assert len(split.members) == 400    # 80% of the rest
        assert len(split.nonmembers) == 100  # 20% of the rest

    def test_custom_fractions(self, rng):
        ds = synthetic_tabular(rng, 100, 10, 4)
        split = split_for_membership(ds, rng, attacker_fraction=0.2,
                                     train_fraction=0.5)
        assert len(split.attacker) == 20
        assert len(split.members) == 40

    def test_rejects_bad_fractions(self, tiny_dataset, rng):
        with pytest.raises(ValueError):
            split_for_membership(tiny_dataset, rng, attacker_fraction=1.0)
        with pytest.raises(ValueError):
            split_for_membership(tiny_dataset, rng, train_fraction=0.0)

    def test_deterministic_given_rng(self, tiny_dataset):
        a = split_for_membership(tiny_dataset, np.random.default_rng(1))
        b = split_for_membership(tiny_dataset, np.random.default_rng(1))
        assert np.array_equal(a.members.x, b.members.x)


class TestIIDPartition:
    def test_covers_all_samples_disjointly(self, rng):
        shards = partition_iid(100, 7, rng)
        joined = np.concatenate(shards)
        assert len(joined) == 100
        assert len(np.unique(joined)) == 100

    def test_near_equal_sizes(self, rng):
        sizes = [len(s) for s in partition_iid(100, 7, rng)]
        assert max(sizes) - min(sizes) <= 1

    def test_rejects_more_clients_than_samples(self, rng):
        with pytest.raises(ValueError):
            partition_iid(3, 5, rng)

    def test_rejects_zero_clients(self, rng):
        with pytest.raises(ValueError):
            partition_iid(10, 0, rng)


class TestDirichletPartition:
    def _labels(self, rng, n=600, k=6):
        return rng.integers(0, k, n)

    def test_covers_all_samples(self, rng):
        labels = self._labels(rng)
        shards = partition_dirichlet(labels, 5, 1.0, rng)
        joined = np.concatenate(shards)
        assert len(joined) == len(labels)
        assert len(np.unique(joined)) == len(labels)

    def test_low_alpha_is_more_skewed(self):
        """Lower alpha concentrates classes on fewer clients (§5.8)."""
        labels = np.random.default_rng(0).integers(0, 6, 3000)

        def skew(alpha, seed):
            shards = partition_dirichlet(
                labels, 5, alpha, np.random.default_rng(seed))
            stds = []
            for cls in range(6):
                counts = [np.sum(labels[s] == cls) for s in shards]
                stds.append(np.std(counts))
            return np.mean(stds)

        low = np.mean([skew(0.2, s) for s in range(3)])
        high = np.mean([skew(50.0, s) for s in range(3)])
        assert low > high

    def test_infinite_alpha_degenerates_to_iid(self, rng):
        labels = self._labels(rng)
        shards = partition_dirichlet(labels, 4, math.inf, rng)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_min_samples_respected(self, rng):
        labels = self._labels(rng)
        shards = partition_dirichlet(labels, 5, 0.3, rng, min_samples=10)
        assert min(len(s) for s in shards) >= 10

    def test_rejects_nonpositive_alpha(self, rng):
        with pytest.raises(ValueError):
            partition_dirichlet(self._labels(rng), 3, 0.0, rng)

    def test_impossible_min_samples_raises(self, rng):
        labels = rng.integers(0, 2, 10)
        with pytest.raises(RuntimeError):
            partition_dirichlet(labels, 5, 0.5, rng, min_samples=10)


# ----------------------------------------------------------------------
# Dirichlet partition properties (hypothesis)
# ----------------------------------------------------------------------

class TestDirichletProperties:
    """Partition invariants over the whole (n, k, clients, alpha)
    space, including the degenerate corners the example-based tests
    above skip: single-sample classes, empty classes, and cohorts
    larger than the dataset."""

    @given(n=st.integers(8, 200), k=st.integers(1, 6),
           num_clients=st.integers(1, 8),
           alpha=st.floats(0.05, 50.0),
           seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_every_sample_assigned_exactly_once(self, n, k, num_clients,
                                                alpha, seed):
        labels = np.random.default_rng(seed).integers(0, k, n)
        shards = partition_dirichlet(
            labels, num_clients, alpha, np.random.default_rng(seed + 1),
            min_samples=0)
        assert len(shards) == num_clients
        joined = np.concatenate(shards)
        np.testing.assert_array_equal(np.sort(joined), np.arange(n))
        for shard in shards:
            assert shard.dtype == np.int64
            np.testing.assert_array_equal(shard, np.sort(shard))

    @given(seed=st.integers(0, 2**16), alpha=st.floats(0.1, 10.0))
    @settings(max_examples=25, deadline=None)
    def test_single_sample_class_is_assigned(self, seed, alpha):
        """A class with one sample can't be lost to floor rounding."""
        rng = np.random.default_rng(seed)
        labels = np.concatenate([np.zeros(40, dtype=np.int64),
                                 np.array([1], dtype=np.int64)])
        rng.shuffle(labels)
        rare = int(np.flatnonzero(labels == 1)[0])
        shards = partition_dirichlet(labels, 3, alpha,
                                     np.random.default_rng(seed),
                                     min_samples=0)
        assert sum(rare in shard for shard in shards) == 1

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_missing_class_ids_are_tolerated(self, seed):
        """num_classes > ids actually present: empty classes skip."""
        labels = np.random.default_rng(seed).integers(0, 2, 60)
        shards = partition_dirichlet(
            labels, 4, 0.5, np.random.default_rng(seed),
            num_classes=10, min_samples=0)
        assert len(np.concatenate(shards)) == 60

    def test_more_clients_than_samples(self):
        labels = np.arange(3) % 2  # 3 samples, 5 clients
        # alpha=inf delegates to partition_iid, which refuses outright.
        with pytest.raises(ValueError, match="cannot cover"):
            partition_dirichlet(labels, 5, math.inf,
                                np.random.default_rng(0))
        # Finite alpha with the default min_samples=1 is unsatisfiable
        # by pigeonhole: the redraw loop exhausts and says so.
        with pytest.raises(RuntimeError, match="100 attempts"):
            partition_dirichlet(labels, 5, 0.5,
                                np.random.default_rng(0))
        # Relaxing the floor makes it legal: some clients stay empty.
        shards = partition_dirichlet(labels, 5, 0.5,
                                     np.random.default_rng(0),
                                     min_samples=0)
        assert len(shards) == 5
        np.testing.assert_array_equal(
            np.sort(np.concatenate(shards)), np.arange(3))

    @given(seed=st.integers(0, 2**16), n=st.integers(12, 100),
           num_clients=st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_infinite_alpha_is_exactly_iid(self, seed, n, num_clients):
        """alpha=inf is a true delegation: identical shards to
        partition_iid under an identically seeded generator."""
        labels = np.random.default_rng(seed).integers(0, 4, n)
        via_dirichlet = partition_dirichlet(
            labels, num_clients, math.inf, np.random.default_rng(seed))
        via_iid = partition_iid(n, num_clients,
                                np.random.default_rng(seed))
        assert len(via_dirichlet) == len(via_iid)
        for a, b in zip(via_dirichlet, via_iid):
            np.testing.assert_array_equal(a, b)
