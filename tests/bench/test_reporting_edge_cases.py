"""Reporting edge cases."""

from repro.bench.reporting import format_table, paper_vs_measured


def test_empty_rows():
    table = format_table(["a", "b"], [])
    lines = table.splitlines()
    assert len(lines) == 2  # header + separator only


def test_number_formatting():
    table = format_table(["x"], [[3.14159], [123.456], [7]])
    assert "3.142" in table
    assert "123.5" in table
    assert "7" in table


def test_paper_vs_measured_defaults():
    row = paper_vs_measured("ldp", 50, 64.8)
    assert row == ["ldp", "50", "64.8", ""]


def test_wide_cells_align():
    table = format_table(["metric"], [["a-very-long-cell-value"], ["x"]])
    lines = table.splitlines()
    assert len(lines[1]) == len(lines[2])  # separator spans the column
