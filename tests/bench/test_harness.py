"""Experiment harness tests (kept tiny for speed)."""

import math

import pytest

from repro.bench.harness import (
    build_attack,
    default_config,
    make_model_factory,
    quick_experiment,
    run_experiment,
)
from repro.bench.reporting import format_table, paper_vs_measured
from repro.core.dinar import DINAR
from repro.fl.config import FLConfig
import numpy as np


TINY = FLConfig(num_clients=2, rounds=2, local_epochs=2, lr=0.1,
                batch_size=32, seed=0)


class TestHarness:
    def test_model_factory_matches_dataset(self):
        factory = make_model_factory("purchase100")
        model = factory(np.random.default_rng(0))
        assert model.num_trainable_layers == 7

    def test_default_config_per_dataset(self):
        assert default_config("purchase100").num_clients == 10
        assert default_config("cifar10").num_clients == 5

    def test_run_experiment_metrics_in_range(self):
        result = run_experiment("purchase100", "none", config=TINY,
                                n_samples=600, attack="yeom")
        assert 0.5 <= result.global_auc <= 1.0
        assert 0.5 <= result.local_auc <= 1.0
        assert 0.0 <= result.client_accuracy <= 1.0
        assert result.costs.server_rounds == 2

    def test_defense_by_name(self):
        result = run_experiment("purchase100", "dinar", config=TINY,
                                n_samples=600, attack="yeom")
        assert result.defense == "dinar"

    def test_defense_by_object(self):
        result = run_experiment(
            "purchase100", DINAR(private_layer=-1), config=TINY,
            n_samples=600, attack="yeom")
        assert result.defense == "dinar"

    def test_dirichlet_alpha_forwarded(self):
        result = run_experiment("purchase100", "none", config=TINY,
                                n_samples=600, attack="yeom",
                                dirichlet_alpha=0.5)
        sizes = [len(d) for d in result.simulation.client_data]
        assert sum(sizes) == len(result.simulation.split.members)

    def test_quick_experiment_defaults(self):
        result = quick_experiment("purchase100", "none", attack="yeom")
        assert result.dataset == "purchase100"

    def test_privacy_utility_point(self):
        result = run_experiment("purchase100", "none", config=TINY,
                                n_samples=600, attack="yeom")
        acc, auc = result.privacy_utility()
        assert 0 <= acc <= 100
        assert 50 <= auc <= 100

    def test_unknown_attack_rejected(self):
        with pytest.raises(ValueError):
            run_experiment("purchase100", "none", config=TINY,
                           n_samples=600, attack="oracle")

    def test_build_attack_shadow(self):
        from repro.data import load_dataset, split_for_membership
        split = split_for_membership(
            load_dataset("purchase100", 0, n_samples=400),
            np.random.default_rng(0))
        attack = build_attack("shadow", "purchase100", split,
                              num_shadows=1, shadow_epochs=1)
        assert attack._attack_model is not None


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["a", "bbb"], [[1, 2.5], ["xx", 3.0]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0]

    def test_format_table_with_title(self):
        table = format_table(["x"], [[1]], title="T1")
        assert table.splitlines()[0] == "T1"

    def test_paper_vs_measured_row(self):
        row = paper_vs_measured("none", 76.0, 71.9, note="global")
        assert row[0] == "none"
        assert "76" in row[1]
