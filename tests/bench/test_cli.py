"""CLI tests."""

import json

import pytest

from repro.cli import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "purchase100" in out
    assert "dinar" in out


def test_run_command_prints_metrics(capsys, tmp_path):
    out_path = tmp_path / "summary.json"
    code = main([
        "run", "--dataset", "purchase100", "--defense", "none",
        "--rounds", "1", "--clients", "2", "--local-epochs", "1",
        "--samples", "600", "--out", str(out_path),
    ])
    assert code == 0
    printed = capsys.readouterr().out
    assert "attack AUC" in printed
    summary = json.loads(out_path.read_text())
    assert summary["dataset"] == "purchase100"


def test_run_rejects_unknown_dataset():
    with pytest.raises(SystemExit):
        main(["run", "--dataset", "imagenet"])


def test_run_rejects_unknown_defense():
    with pytest.raises(SystemExit):
        main(["run", "--dataset", "cifar10", "--defense", "magic"])
