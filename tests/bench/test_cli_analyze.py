"""CLI analyze-command tests (kept tiny: it trains a model)."""

from repro.cli import main


def test_analyze_prints_layer_table(capsys, monkeypatch):
    # shrink the analysis: monkeypatch the default config used by the
    # CLI so the test stays fast
    from repro.fl.config import FLConfig
    import repro.cli as cli

    def tiny_config(dataset, *, seed=0):
        return FLConfig(num_clients=2, rounds=1, local_epochs=1,
                        batch_size=32, seed=seed)

    monkeypatch.setattr(cli, "default_config", tiny_config)
    code = main(["analyze", "--dataset", "purchase100"])
    assert code == 0
    out = capsys.readouterr().out
    assert "membership leakage per layer" in out
    assert "obfuscate this one" in out
