"""End-to-end middleware deployment over the benchmark harness's real
dataset registry (small scale)."""

import numpy as np
import pytest

from repro.bench.harness import make_model_factory
from repro.core.middleware import DINARMiddleware
from repro.data import load_dataset, split_for_membership
from repro.fl.config import FLConfig
from repro.privacy.attacks.metrics import (
    global_model_auc,
    local_models_auc,
)
from repro.privacy.attacks.threshold import LossThresholdAttack


@pytest.mark.parametrize("dataset", ["purchase100", "cifar10"])
def test_middleware_on_registry_dataset(dataset):
    config = FLConfig(num_clients=3, rounds=3, local_epochs=2,
                      lr=0.1, batch_size=64, seed=0, eval_every=3)
    split = split_for_membership(
        load_dataset(dataset, 0, n_samples=900),
        np.random.default_rng(1))
    middleware = DINARMiddleware(
        make_model_factory(dataset), config, warmup_epochs=2,
        dinar_kwargs={"lr": 0.01})
    simulation = middleware.deploy(split)
    simulation.run()

    attack = LossThresholdAttack()
    assert local_models_auc(attack, simulation, max_samples=150) < 0.62
    assert global_model_auc(attack, simulation, max_samples=150) < 0.62
    assert "private layer" in middleware.describe()


def test_middleware_noniid_deployment():
    config = FLConfig(num_clients=3, rounds=2, local_epochs=2,
                      lr=0.1, batch_size=64, seed=0, eval_every=2)
    split = split_for_membership(
        load_dataset("purchase100", 0, n_samples=900),
        np.random.default_rng(1))
    middleware = DINARMiddleware(
        make_model_factory("purchase100"), config, warmup_epochs=2)
    simulation = middleware.deploy(split, dirichlet_alpha=1.0)
    simulation.run()
    sizes = [len(d) for d in simulation.client_data]
    assert sum(sizes) == len(split.members)
