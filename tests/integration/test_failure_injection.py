"""Failure injection: Byzantine voters, garbage updates, client
dropouts, and exhausted privacy budgets."""

import numpy as np
import pytest

from repro.core.consensus import agree_on_private_layer
from repro.data.partition import split_for_membership
from repro.data.synthetic import synthetic_tabular
from repro.fl.aggregation import coordinate_median, fedavg, trimmed_mean
from repro.fl.client import ClientUpdate
from repro.fl.config import FLConfig
from repro.fl.simulation import FederatedSimulation
from repro.models.fcnn import build_fcnn
from repro.nn.model import weights_map


def _factory(rng):
    return build_fcnn(30, 4, rng, hidden=(24, 16))


@pytest.fixture
def split(rng):
    data = synthetic_tabular(rng, 600, 30, 4, noise=0.3, name="fail")
    return split_for_membership(data, rng)


class TestByzantineConsensus:
    def test_minority_byzantine_never_wins(self):
        """Sweep seeds: 2 Byzantine voters out of 7 can never flip an
        honest 5-vote majority."""
        for seed in range(10):
            proposals = {i: 4 for i in range(5)}
            proposals.update({5: 0, 6: 1})
            result = agree_on_private_layer(
                proposals, byzantine={5: "equivocate", 6: "random"},
                num_layers=8, seed=seed)
            assert result.decided_value == 4

    def test_all_silent_byzantine_keeps_honest_value(self):
        proposals = {0: 3, 1: 3, 2: 0, 3: 0}
        result = agree_on_private_layer(
            proposals, byzantine={2: "silent", 3: "silent"},
            num_layers=4)
        assert result.decided_value == 3


class TestGarbageUpdates:
    def _updates(self, sim, garbage_clients=()):
        updates = []
        rng = np.random.default_rng(0)
        template = sim.server.global_weights
        for cid in range(sim.config.num_clients):
            if cid in garbage_clients:
                weights = weights_map(lambda v: v * 0 + 1e6, template)
            else:
                weights = weights_map(np.copy, template)
            updates.append(ClientUpdate(cid, weights, 10, 0.0))
        return updates

    def test_fedavg_is_poisoned_by_garbage(self, split):
        sim = FederatedSimulation(split, _factory,
                                  FLConfig(num_clients=4, rounds=1))
        updates = self._updates(sim, garbage_clients=(3,))
        out = fedavg([u.weights for u in updates],
                     [u.num_samples for u in updates])
        assert np.abs(out[0]["W"]).max() > 1e4  # poisoned

    def test_median_survives_garbage(self, split):
        sim = FederatedSimulation(split, _factory,
                                  FLConfig(num_clients=4, rounds=1))
        updates = self._updates(sim, garbage_clients=(3,))
        out = coordinate_median([u.weights for u in updates])
        assert np.abs(out[0]["W"]).max() < 10

    def test_trimmed_mean_survives_garbage(self, split):
        sim = FederatedSimulation(split, _factory,
                                  FLConfig(num_clients=5, rounds=1))
        updates = self._updates(sim, garbage_clients=(4,))
        out = trimmed_mean([u.weights for u in updates], trim=1)
        assert np.abs(out[0]["W"]).max() < 10


class TestClientDropout:
    def test_partial_cohorts_still_converge(self, split):
        config = FLConfig(num_clients=5, rounds=8, local_epochs=2,
                          lr=0.15, batch_size=32, clients_per_round=3,
                          eval_every=8, seed=0)
        sim = FederatedSimulation(split, _factory, config)
        history = sim.run()
        assert history.final_global_accuracy > 0.5

    def test_nonparticipants_have_no_recorded_update(self, split):
        config = FLConfig(num_clients=5, rounds=1, local_epochs=1,
                          clients_per_round=2, seed=0)
        sim = FederatedSimulation(split, _factory, config)
        sim.run()
        assert len(sim.last_updates) == 2


class TestMalformedWeights:
    def test_set_weights_rejects_wrong_layer_count(self, rng):
        model = _factory(rng)
        with pytest.raises(ValueError):
            model.set_weights(model.get_weights()[:1])

    def test_set_weights_rejects_wrong_shapes(self, rng):
        model = _factory(rng)
        weights = model.get_weights()
        weights[0]["W"] = weights[0]["W"][:, :2]
        with pytest.raises(ValueError):
            model.set_weights(weights)

    def test_obfuscated_weights_still_load(self, rng):
        """Random garbage of the right shape must load fine — DINAR's
        whole mechanism depends on that."""
        model = _factory(rng)
        garbage = model.get_store()
        garbage.buffer[:] = 100.0 * rng.standard_normal(
            garbage.num_params)
        model.set_weights(garbage)
        out = model.predict_logits(rng.standard_normal((2, 30)))
        assert out.shape == (2, 4)


class TestBudgetExhaustion:
    def test_accountant_flags_overdraft(self):
        from repro.privacy.defenses.accounting import PrivacyAccountant
        accountant = PrivacyAccountant(1.0, 1e-5)
        for _ in range(11):
            accountant.spend(0.1, 0.0)
        assert accountant.exhausted
