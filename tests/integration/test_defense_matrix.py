"""Integration: every defense runs end-to-end through the simulator and
produces the qualitative behaviour Table 1 / Fig. 6 report."""

import numpy as np
import pytest

from repro.data.partition import split_for_membership
from repro.data.synthetic import synthetic_tabular
from repro.fl.config import FLConfig
from repro.fl.simulation import FederatedSimulation
from repro.models.fcnn import build_fcnn
from repro.privacy.attacks.metrics import (
    global_model_auc,
    local_models_auc,
)
from repro.privacy.attacks.threshold import LossThresholdAttack
from repro.privacy.defenses.make import make_defense_for_config

CONFIG = FLConfig(num_clients=3, rounds=3, local_epochs=4, lr=0.15,
                  batch_size=32, seed=0)


def _factory(rng):
    return build_fcnn(40, 6, rng, hidden=(32, 24, 16))


@pytest.fixture(scope="module")
def split():
    rng = np.random.default_rng(1)
    data = synthetic_tabular(rng, 900, 40, 6, noise=0.35, name="matrix")
    return split_for_membership(data, rng)


def _run(split, name, **kwargs):
    defense = make_defense_for_config(name, CONFIG, **kwargs)
    sim = FederatedSimulation(split, _factory, CONFIG, defense)
    sim.run()
    attack = LossThresholdAttack()
    return (sim,
            global_model_auc(attack, sim, max_samples=150),
            local_models_auc(attack, sim, max_samples=150))


@pytest.mark.parametrize("name", ["none", "ldp", "cdp", "wdp", "gc",
                                  "sa", "dinar"])
def test_defense_runs_end_to_end(split, name):
    sim, g_auc, l_auc = _run(split, name)
    assert 0.5 <= g_auc <= 1.0
    assert 0.5 <= l_auc <= 1.0
    assert len(sim.history.records) >= 1


def test_sa_protects_local_but_not_global(split):
    _, g_none, l_none = _run(split, "none")
    _, g_sa, l_sa = _run(split, "sa")
    # global model identical to FedAvg: same leak as no defense
    assert abs(g_sa - g_none) < 0.03
    # individual masked updates are useless to the attacker
    assert l_sa < l_none - 0.05


def test_sa_global_model_matches_plain_fedavg(split):
    sim_none, *_ = _run(split, "none")
    sim_sa, *_ = _run(split, "sa")
    from repro.nn.model import flatten_weights
    a = flatten_weights(sim_none.server.global_weights)
    b = flatten_weights(sim_sa.server.global_weights)
    # identical training seeds + masks cancel => same global model
    assert np.allclose(a, b, atol=1e-6)


def test_dinar_is_best_tradeoff(split):
    """DINAR should dominate: near-optimal AUC at near-baseline
    accuracy (the Fig. 7 bottom-right corner)."""
    sim_none, _, l_none = _run(split, "none")
    sim_dinar, _, l_dinar = _run(split, "dinar")
    assert l_dinar < l_none
    assert sim_dinar.history.final_client_accuracy \
        >= sim_none.history.final_client_accuracy - 0.05
