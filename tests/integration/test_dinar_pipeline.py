"""Integration: the full DINAR pipeline of Fig. 2 — initialization
(consensus), then per-round personalize -> train -> obfuscate — wired
through the real FL simulator, and the paper's two headline claims:

* the obfuscated updates defeat the MIA (attack AUC ~ 50%);
* personalization preserves client utility.
"""

import numpy as np
import pytest

from repro.core.dinar import DINAR, dinar_initialization
from repro.data.partition import split_for_membership
from repro.data.synthetic import synthetic_tabular
from repro.fl.config import FLConfig
from repro.fl.simulation import FederatedSimulation
from repro.privacy.attacks.metrics import (
    global_model_auc,
    local_models_auc,
)
from repro.privacy.attacks.threshold import LossThresholdAttack


@pytest.fixture(scope="module")
def pipeline():
    """One no-defense and one DINAR run over the same split."""
    rng = np.random.default_rng(0)
    data = synthetic_tabular(rng, 900, 40, 6, noise=0.35, name="pipe")
    split = split_for_membership(data, rng)

    def factory(model_rng):
        from repro.models.fcnn import build_fcnn
        return build_fcnn(40, 6, model_rng, hidden=(32, 24, 16))

    config = FLConfig(num_clients=3, rounds=4, local_epochs=4, lr=0.15,
                      batch_size=32, seed=0)

    init = dinar_initialization(factory, [
        data.subset(np.arange(i * 100, (i + 1) * 100))
        for i in range(3)
    ], warmup_epochs=4, lr=0.01, batch_size=32, seed=0)

    baseline = FederatedSimulation(split, factory, config)
    baseline.run()
    defended = FederatedSimulation(
        split, factory, config,
        DINAR(private_layer=init.private_layer, lr=0.02))
    defended.run()
    return init, baseline, defended


def test_consensus_picks_valid_layer(pipeline):
    init, baseline, _ = pipeline
    assert 0 <= init.private_layer \
        < baseline.global_model().num_trainable_layers


def test_baseline_leaks_membership(pipeline):
    _, baseline, _ = pipeline
    attack = LossThresholdAttack()
    assert local_models_auc(attack, baseline, max_samples=150) > 0.60


def test_dinar_protects_local_models(pipeline):
    _, baseline, defended = pipeline
    attack = LossThresholdAttack()
    protected = local_models_auc(attack, defended, max_samples=150)
    unprotected = local_models_auc(attack, baseline, max_samples=150)
    assert protected < unprotected
    assert protected < 0.58  # near the 50% optimum


def test_dinar_protects_global_model(pipeline):
    _, baseline, defended = pipeline
    attack = LossThresholdAttack()
    protected = global_model_auc(attack, defended, max_samples=150)
    assert protected < 0.58


def test_dinar_preserves_client_utility(pipeline):
    _, baseline, defended = pipeline
    assert defended.history.final_client_accuracy \
        >= baseline.history.final_client_accuracy - 0.05


def test_transmitted_layer_is_obfuscated(pipeline):
    init, _, defended = pipeline
    p = init.private_layer
    client = defended.clients[0]
    sent = defended.last_updates[0]
    personal = client.personal_weights
    # transmitted private layer differs from the client's real one...
    assert not np.allclose(sent[p]["W"], personal[p]["W"])
    # ...while the other layers match exactly
    for j in range(len(sent)):
        if j != p:
            assert np.array_equal(sent[j]["W"], personal[j]["W"])


def test_personalized_model_beats_global_for_client(pipeline):
    """The client predicts with its personalized model, not the
    (obfuscated) global model — and it is strictly better."""
    _, _, defended = pipeline
    test = defended.split.nonmembers
    personalized = defended.clients[0].evaluate(test.x, test.y)
    global_acc = defended.history.final_global_accuracy
    assert personalized > global_acc
