"""Public API surface tests: the names README and the docs promise."""

import importlib

import pytest


def test_top_level_exports():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), name


@pytest.mark.parametrize("module", [
    "repro.nn", "repro.models", "repro.data", "repro.fl",
    "repro.privacy", "repro.privacy.attacks", "repro.privacy.defenses",
    "repro.core", "repro.analysis", "repro.bench", "repro.cli",
])
def test_subpackage_imports_and_all_resolves(module):
    mod = importlib.import_module(module)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{module}.{name}"


def test_readme_quickstart_names_exist():
    from repro import (  # noqa: F401 — existence is the test
        DINAR,
        DINARMiddleware,
        FederatedSimulation,
        FLConfig,
        LossThresholdAttack,
        ShadowAttack,
        dinar_initialization,
        load_dataset,
        make_defense,
        quick_experiment,
        run_experiment,
        split_for_membership,
    )


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2
