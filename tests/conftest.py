"""Shared fixtures: tiny seeded datasets and models for fast tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import Dataset, synthetic_tabular
from repro.models.fcnn import build_fcnn
from repro.nn.activations import ReLU, Tanh
from repro.nn.layers import Dense
from repro.nn.model import Model


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture
def tiny_dataset(rng) -> Dataset:
    """120 samples, 20 features, 4 classes — separable but noisy."""
    return synthetic_tabular(rng, 120, 20, 4, noise=0.2, name="tiny")


@pytest.fixture
def tiny_model(rng) -> Model:
    """3 trainable layers over 20 features, 4 classes."""
    return Model([
        Dense(20, 16, rng), Tanh(),
        Dense(16, 8, rng), ReLU(),
        Dense(8, 4, rng),
    ], rng=rng, name="tiny")


@pytest.fixture
def tiny_model_factory():
    """Factory building fresh tiny models (3 trainable layers)."""
    def factory(rng: np.random.Generator) -> Model:
        return Model([
            Dense(20, 16, rng), Tanh(),
            Dense(16, 8, rng), ReLU(),
            Dense(8, 4, rng),
        ], rng=rng, name="tiny")
    return factory


@pytest.fixture
def small_fcnn_factory():
    """Factory for a small 4-hidden-layer FCNN (5 trainable layers)."""
    def factory(rng: np.random.Generator) -> Model:
        return build_fcnn(20, 4, rng, hidden=(16, 12, 8, 8))
    return factory


def numeric_gradient_check(model: Model, x: np.ndarray, y: np.ndarray,
                           loss, rng: np.random.Generator, *,
                           eps: float = 1e-5, samples_per_param: int = 4,
                           training_forward: bool = False) -> float:
    """Max relative error between analytic and numeric gradients."""
    model.loss_and_grad(x, y, loss)
    analytic = {
        (i, k): layer.grads[k].copy()
        for i, layer in enumerate(model.trainable)
        for k in layer.params
    }
    max_err = 0.0
    for i, layer in enumerate(model.trainable):
        for key, param in layer.params.items():
            flat = param.ravel()
            idxs = rng.choice(flat.size,
                              size=min(samples_per_param, flat.size),
                              replace=False)
            for j in idxs:
                orig = flat[j]
                flat[j] = orig + eps
                up = loss.forward(
                    model.forward(x, training=training_forward), y)
                flat[j] = orig - eps
                down = loss.forward(
                    model.forward(x, training=training_forward), y)
                flat[j] = orig
                numeric = (up - down) / (2 * eps)
                value = analytic[(i, key)].ravel()[j]
                denom = max(1e-8, abs(numeric) + abs(value))
                max_err = max(max_err, abs(numeric - value) / denom)
    return max_err
