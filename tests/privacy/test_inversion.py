"""Model inversion attack tests (extension)."""

import numpy as np
import pytest

from repro.data.loader import iterate_batches
from repro.data.synthetic import synthetic_tabular
from repro.nn.activations import Tanh
from repro.nn.layers import Dense
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import Model
from repro.nn.optim import SGD
from repro.privacy.attacks.inversion import (
    class_inversion_report,
    invert_class,
    inversion_fidelity,
)


@pytest.fixture(scope="module")
def trained():
    """A model trained to high accuracy on continuous prototype data."""
    rng = np.random.default_rng(0)
    data = synthetic_tabular(rng, 300, 16, 3, binary=False, noise=0.3)
    model = Model([Dense(16, 24, np.random.default_rng(1)), Tanh(),
                   Dense(24, 3, np.random.default_rng(2))])
    loss = SoftmaxCrossEntropy()
    optimizer = SGD(model, 0.1)
    for _ in range(80):
        for bx, by in iterate_batches(data.x, data.y, 32, rng):
            model.loss_and_grad(bx, by, loss)
            optimizer.step()
    return model, data


def test_inversion_output_shape(trained):
    model, data = trained
    reconstruction = invert_class(model, 0, (16,), steps=50)
    assert reconstruction.shape == (16,)
    assert np.all(np.isfinite(reconstruction))


def test_inversion_is_classified_as_target(trained):
    model, data = trained
    for cls in range(3):
        reconstruction = invert_class(model, cls, (16,), steps=150)
        assert model.predict(reconstruction[None])[0] == cls


def test_inversion_recovers_class_direction(trained):
    """The reconstruction correlates with the true class prototype far
    more than with other classes'."""
    model, data = trained
    reconstruction = invert_class(model, 0, (16,), steps=150)
    own = inversion_fidelity(reconstruction, data.x[data.y == 0])
    other = inversion_fidelity(reconstruction, data.x[data.y == 1])
    assert own > 0.5
    assert own > other


def test_untrained_model_gives_low_fidelity(trained):
    _, data = trained
    fresh = Model([Dense(16, 24, np.random.default_rng(7)), Tanh(),
                   Dense(24, 3, np.random.default_rng(8))])
    reconstruction = invert_class(fresh, 0, (16,), steps=150)
    assert inversion_fidelity(
        reconstruction, data.x[data.y == 0]) < 0.5


def test_obfuscation_blocks_inversion(trained):
    """Randomizing the penultimate layer (DINAR's transmitted form)
    severs the reconstruction path."""
    model, data = trained
    garbled = model.clone()
    rng = np.random.default_rng(3)
    weights = garbled.get_weights()
    weights[0] = {k: rng.standard_normal(v.shape) * v.std()
                  for k, v in weights[0].items()}
    garbled.set_weights(weights)
    reconstruction = invert_class(garbled, 0, (16,), steps=150)
    fidelity = inversion_fidelity(reconstruction, data.x[data.y == 0])
    clean = inversion_fidelity(
        invert_class(model, 0, (16,), steps=150), data.x[data.y == 0])
    assert fidelity < clean


def test_report_covers_classes(trained):
    model, data = trained
    report = class_inversion_report(model, data.x, data.y,
                                    classes=[0, 1], steps=40)
    assert set(report) == {0, 1}


def test_rejects_bad_steps(trained):
    model, _ = trained
    with pytest.raises(ValueError):
        invert_class(model, 0, (16,), steps=0)


def test_fidelity_rejects_empty():
    with pytest.raises(ValueError):
        inversion_fidelity(np.zeros(4), np.zeros((0, 4)))
