"""Layer-wise adaptive DP (LaDP): shares, plan math, mechanism, and
end-to-end determinism.

The plan — per-segment (epsilon, clip, sigma) — must be a pure
function of the layout so parent and workers re-derive it identically
from the round state; the mechanism itself is per-segment clip+noise
on SegmentedView masked views.
"""

from __future__ import annotations

import math
import pickle

import numpy as np
import pytest

from repro.data.partition import split_for_membership
from repro.data.synthetic import synthetic_tabular
from repro.fl.config import FLConfig
from repro.fl.simulation import FederatedSimulation
from repro.nn.activations import Tanh
from repro.nn.layers import BatchNorm1d, Dense
from repro.nn.model import Model
from repro.nn.store import WeightStore
from repro.privacy.defenses import make_defense
from repro.privacy.defenses.make import make_defense_for_config
from repro.privacy.defenses.accounting import gaussian_sigma
from repro.privacy.defenses.ladp import LayerwiseDP, allocate_shares

HAS_FORK = "fork" in __import__("multiprocessing").get_all_start_methods()


# ----------------------------------------------------------------------
# share allocation
# ----------------------------------------------------------------------

class TestAllocateShares:
    def test_sums_to_one_and_respects_floor(self):
        shares = allocate_shares([0.1, 0.4, 0.0, 0.2], floor=0.2)
        assert shares.sum() == pytest.approx(1.0)
        # Every layer keeps at least floor/J, even at zero divergence.
        assert np.all(shares >= 0.2 / 4 - 1e-12)

    def test_monotone_in_divergence(self):
        shares = allocate_shares([0.1, 0.3, 0.2])
        assert shares[1] > shares[2] > shares[0]

    def test_all_zero_degrades_to_uniform(self):
        np.testing.assert_allclose(allocate_shares([0.0, 0.0, 0.0]),
                                   np.full(3, 1 / 3))

    def test_floor_one_is_uniform(self):
        np.testing.assert_allclose(allocate_shares([5.0, 1.0], floor=1.0),
                                   np.full(2, 0.5))

    def test_validation(self):
        with pytest.raises(ValueError, match="floor"):
            allocate_shares([1.0], floor=1.5)
        with pytest.raises(ValueError, match="non-empty"):
            allocate_shares([])
        with pytest.raises(ValueError, match="non-negative"):
            allocate_shares([0.2, -0.1])


# ----------------------------------------------------------------------
# constructor + plan math
# ----------------------------------------------------------------------

class TestPlan:
    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="epsilon"):
            LayerwiseDP(epsilon=0.0)
        with pytest.raises(ValueError, match="delta"):
            LayerwiseDP(delta=1.5)
        with pytest.raises(ValueError, match="clip_norm"):
            LayerwiseDP(clip_norm=-1.0)
        with pytest.raises(ValueError, match="rounds"):
            LayerwiseDP(rounds=0)
        with pytest.raises(ValueError, match="positive"):
            LayerwiseDP(shares=[0.5, 0.5, 0.0])
        with pytest.raises(ValueError, match="sum to 1"):
            LayerwiseDP(shares=[0.5, 0.2])

    def test_plan_splits_round_budget(self, tiny_model):
        defense = LayerwiseDP(epsilon=2.2, delta=1e-5, clip_norm=3.0,
                              rounds=4)
        defense.on_round_start(0, [0], tiny_model.weights,
                               np.random.default_rng(0))
        plan = defense.segment_report()
        j = len(plan)
        assert j == tiny_model.weight_layout().num_layers
        eps_round = 2.2 / math.sqrt(4)
        assert sum(e["epsilon"] for e in plan) \
            == pytest.approx(eps_round)
        for entry in plan:
            assert entry["clip"] == pytest.approx(3.0 / math.sqrt(j))
            assert entry["sigma"] == pytest.approx(gaussian_sigma(
                entry["epsilon"], 1e-5 / j, entry["clip"]))

    def test_sensitive_layer_gets_less_noise(self, tiny_model):
        defense = LayerwiseDP(divergences=[0.05, 0.5, 0.1])
        defense.on_round_start(0, [0], tiny_model.weights,
                               np.random.default_rng(0))
        plan = defense.segment_report()
        assert plan[1]["share"] > plan[0]["share"]
        assert plan[1]["sigma"] < plan[0]["sigma"]

    def test_share_count_must_match_layers(self, tiny_model):
        defense = LayerwiseDP(divergences=[0.5, 0.5])
        with pytest.raises(ValueError, match="3 layers"):
            defense.on_round_start(0, [0], tiny_model.weights,
                                   np.random.default_rng(0))

    def test_buffer_layer_share_respreads(self, rng):
        """A buffer-only release slot is impossible; its budget share
        re-spreads so the per-round epsilon spend is unchanged."""
        model = Model([Dense(6, 5, rng), BatchNorm1d(5), Tanh(),
                       Dense(5, 3, rng)], rng=rng, name="bn")
        defense = LayerwiseDP(epsilon=1.0, rounds=1)
        defense.on_round_start(0, [0], model.weights,
                               np.random.default_rng(0))
        plan = defense.segment_report()
        view = model.weights.layout.segmented()
        assert len(plan) == sum(1 for s in view if s.has_params)
        assert sum(e["epsilon"] for e in plan) == pytest.approx(1.0)

    def test_accountant_spends_per_round(self, tiny_model):
        defense = LayerwiseDP(epsilon=2.0, delta=1e-5, rounds=4)
        for r in range(4):
            defense.on_round_start(r, [0], tiny_model.weights,
                                   np.random.default_rng(r))
        assert defense.accountant.releases == 4
        assert defense.accountant.spent_epsilon \
            == pytest.approx(4 * 2.0 / math.sqrt(4))

    def test_describe_names_share_source(self):
        assert "shares=uniform" in LayerwiseDP().describe()
        assert "shares=sensitivity" in \
            LayerwiseDP(divergences=[1.0, 2.0]).describe()
        assert "shares=explicit" in \
            LayerwiseDP(shares=[0.3, 0.7]).describe()


# ----------------------------------------------------------------------
# mechanism
# ----------------------------------------------------------------------

class TestMechanism:
    def test_requires_round_start(self, tiny_model):
        with pytest.raises(RuntimeError, match="on_round_start"):
            LayerwiseDP().on_send_update(
                0, tiny_model.weights, 10, np.random.default_rng(0))

    def test_clips_each_segment(self, tiny_model):
        """With sigma effectively irrelevant (huge epsilon → tiny
        noise), every released segment delta lands within its clip."""
        defense = LayerwiseDP(epsilon=1e9, clip_norm=0.01, rounds=1)
        global_w = tiny_model.weights
        defense.on_round_start(0, [0], global_w,
                               np.random.default_rng(0))
        # Large uniform drift touching every coordinate.
        update = WeightStore(global_w.layout, global_w.buffer + 5.0)
        released = defense.on_send_update(
            0, update, 10, np.random.default_rng(1))
        delta = released - global_w
        view = delta.layout.segmented()
        sq = view.segment_sq_sums(delta.buffer)
        clip_j = 0.01 / math.sqrt(len(defense.segment_report()))
        for entry in defense.segment_report():
            norm = math.sqrt(sq[entry["segment"]])
            assert norm <= clip_j * (1 + 1e-6)

    def test_small_delta_not_scaled(self, tiny_model):
        defense = LayerwiseDP(epsilon=1e12, clip_norm=10.0, rounds=1)
        global_w = tiny_model.weights
        defense.on_round_start(0, [0], global_w,
                               np.random.default_rng(0))
        update = WeightStore(global_w.layout,
                             global_w.buffer + 1e-3)
        released = defense.on_send_update(
            0, update, 10, np.random.default_rng(1))
        # Inside the clip: only the (negligible) noise separates the
        # release from the honest update.
        np.testing.assert_allclose(released.buffer, update.buffer,
                                   atol=1e-8)

    def test_deterministic_given_rng(self, tiny_model):
        outs = []
        for _ in range(2):
            defense = LayerwiseDP(epsilon=2.2, rounds=2)
            defense.on_round_start(0, [0], tiny_model.weights,
                                   np.random.default_rng(7))
            update = WeightStore(tiny_model.weights.layout,
                                 tiny_model.weights.buffer + 0.5)
            outs.append(defense.on_send_update(
                0, update, 10, np.random.default_rng(13)).buffer)
        np.testing.assert_array_equal(outs[0], outs[1])

    def test_round_state_round_trip_bitwise(self, tiny_model):
        """Export → pickle → import rebuilds the identical plan and
        the identical release on the worker side."""
        parent = LayerwiseDP(epsilon=2.2, divergences=[0.1, 0.5, 0.2],
                             rounds=3)
        parent.on_round_start(0, [0, 1], tiny_model.weights,
                              np.random.default_rng(0))
        state = pickle.loads(pickle.dumps(parent.export_round_state()))

        worker = LayerwiseDP(epsilon=2.2, divergences=[0.1, 0.5, 0.2],
                             rounds=3)
        worker.import_round_state(state)
        assert worker.segment_report() == parent.segment_report()

        update = WeightStore(tiny_model.weights.layout,
                             tiny_model.weights.buffer + 0.25)
        a = parent.on_send_update(0, update, 10,
                                  np.random.default_rng(9))
        b = worker.on_send_update(0, update, 10,
                                  np.random.default_rng(9))
        np.testing.assert_array_equal(a.buffer, b.buffer)
        assert worker.state_bytes() == update.buffer.nbytes

    def test_make_defense_wires_rounds(self):
        config = FLConfig(rounds=9)
        defense = make_defense_for_config("ladp", config, epsilon=1.5)
        assert isinstance(defense, LayerwiseDP)
        assert defense.rounds == 9
        assert defense.epsilon == 1.5


# ----------------------------------------------------------------------
# end-to-end
# ----------------------------------------------------------------------

@pytest.fixture
def small_split(rng):
    ds = synthetic_tabular(rng, 400, 20, 4, noise=0.2)
    return split_for_membership(ds, rng)


def _run(small_split, tiny_model_factory, **cfg_kwargs):
    defaults = dict(num_clients=4, rounds=2, local_epochs=1, lr=0.1,
                    batch_size=32, seed=5)
    defaults.update(cfg_kwargs)
    config = FLConfig(**defaults)
    sim = FederatedSimulation(
        small_split, tiny_model_factory, config,
        make_defense_for_config("ladp", config, epsilon=4.0))
    history = sim.run()
    return sim, history


class TestEndToEnd:
    def test_simulation_records_segment_budget(self, small_split,
                                               tiny_model_factory):
        sim, history = _run(small_split, tiny_model_factory)
        budget = sim.cost_meter.report.segment_budget
        assert len(budget) == 3  # tiny model: 3 trainable layers
        assert {row["name"] for row in budget} \
            == {"layer0", "layer1", "layer2"}
        summary = sim.cost_meter.report.segment_budget_summary()
        assert "eps=" in summary and "sigma=" in summary
        assert history.records

    @pytest.mark.skipif(not HAS_FORK,
                        reason="parallel executor requires fork")
    @pytest.mark.parametrize("ipc", ["pickle", "shm"])
    def test_serial_parallel_bitwise(self, small_split,
                                     tiny_model_factory, ipc):
        serial, _ = _run(small_split, tiny_model_factory, workers=0)
        parallel, _ = _run(small_split, tiny_model_factory, workers=2,
                           ipc=ipc)
        np.testing.assert_array_equal(
            serial.server.global_weights.buffer,
            parallel.server.global_weights.buffer)
        assert serial.last_updates.keys() == parallel.last_updates.keys()
        for cid in serial.last_updates:
            np.testing.assert_array_equal(
                serial.last_updates[cid].buffer,
                parallel.last_updates[cid].buffer)
