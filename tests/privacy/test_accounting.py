"""DP accounting tests."""

import numpy as np
import pytest

from repro.privacy.defenses.accounting import (
    PrivacyAccountant,
    advanced_composition,
    basic_composition,
    gaussian_sigma,
)
from repro.privacy.defenses.dpsgd import dp_sgd_noise_multiplier


class TestGaussianSigma:
    def test_decreases_with_epsilon(self):
        assert gaussian_sigma(0.1, 1e-5) > gaussian_sigma(1.0, 1e-5)

    def test_scales_with_sensitivity(self):
        assert np.isclose(gaussian_sigma(1.0, 1e-5, sensitivity=2.0),
                          2.0 * gaussian_sigma(1.0, 1e-5))

    def test_classic_value(self):
        # sigma = sqrt(2 ln(1.25/delta)) / eps
        expected = np.sqrt(2 * np.log(1.25 / 1e-5)) / 2.2
        assert np.isclose(gaussian_sigma(2.2, 1e-5), expected)

    @pytest.mark.parametrize("eps,delta", [(0, 1e-5), (-1, 1e-5),
                                           (1, 0.0), (1, 1.0)])
    def test_rejects_bad_budget(self, eps, delta):
        with pytest.raises(ValueError):
            gaussian_sigma(eps, delta)


class TestComposition:
    def test_basic_is_linear(self):
        eps, delta = basic_composition(0.1, 1e-6, 10)
        assert np.isclose(eps, 1.0)
        assert np.isclose(delta, 1e-5)

    def test_advanced_beats_basic_for_many_steps(self):
        basic_eps, _ = basic_composition(0.1, 1e-6, 1000)
        adv_eps, _ = advanced_composition(0.1, 1e-6, 1000,
                                          delta_slack=1e-6)
        assert adv_eps < basic_eps

    def test_advanced_adds_delta_slack(self):
        _, delta = advanced_composition(0.1, 1e-6, 10, delta_slack=1e-4)
        assert delta > 10 * 1e-6

    def test_rejects_bad_steps(self):
        with pytest.raises(ValueError):
            basic_composition(0.1, 1e-6, 0)


class TestAccountant:
    def test_tracks_spend(self):
        accountant = PrivacyAccountant(1.0, 1e-5)
        accountant.spend(0.3, 1e-6)
        accountant.spend(0.3, 1e-6)
        assert np.isclose(accountant.spent_epsilon, 0.6)
        assert accountant.releases == 2
        assert not accountant.exhausted

    def test_exhaustion(self):
        accountant = PrivacyAccountant(0.5, 1e-5)
        accountant.spend(0.6, 0.0)
        assert accountant.exhausted

    def test_per_step_division(self):
        accountant = PrivacyAccountant(2.0, 1e-5)
        assert accountant.per_step_epsilon(4) == 0.5
        with pytest.raises(ValueError):
            accountant.per_step_epsilon(0)


class TestDPSGDCalibration:
    def test_more_steps_need_more_noise(self):
        a = dp_sgd_noise_multiplier(1.0, 1e-5, sample_rate=0.1, steps=100)
        b = dp_sgd_noise_multiplier(1.0, 1e-5, sample_rate=0.1, steps=400)
        assert b > a
        assert np.isclose(b, 2 * a)  # sqrt scaling

    def test_tighter_budget_needs_more_noise(self):
        a = dp_sgd_noise_multiplier(2.0, 1e-5, sample_rate=0.1, steps=100)
        b = dp_sgd_noise_multiplier(0.5, 1e-5, sample_rate=0.1, steps=100)
        assert b > a

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            dp_sgd_noise_multiplier(0, 1e-5, sample_rate=0.1, steps=10)
        with pytest.raises(ValueError):
            dp_sgd_noise_multiplier(1, 1e-5, sample_rate=0.0, steps=10)
        with pytest.raises(ValueError):
            dp_sgd_noise_multiplier(1, 1e-5, sample_rate=0.1, steps=0)
