"""Per-class shadow attack tests (Shokri et al.'s original variant)."""

import numpy as np
import pytest

from repro.data.synthetic import synthetic_tabular
from repro.privacy.attacks.metrics import attack_auc
from repro.privacy.attacks.shadow import ShadowAttack


@pytest.fixture(scope="module")
def setup(tiny_model_factory=None):
    from repro.nn.activations import Tanh
    from repro.nn.layers import Dense
    from repro.nn.model import Model

    def factory(rng):
        return Model([Dense(20, 16, rng), Tanh(), Dense(16, 4, rng)])

    rng = np.random.default_rng(0)
    data = synthetic_tabular(rng, 600, 20, 4, noise=0.35)
    victim_members = data.subset(np.arange(100))
    victim_nonmembers = data.subset(np.arange(100, 200))
    attacker = data.subset(np.arange(200, 600))

    # train the victim to memorization
    from repro.data.loader import iterate_batches
    from repro.nn.losses import SoftmaxCrossEntropy
    from repro.nn.optim import SGD
    victim = factory(np.random.default_rng(1))
    loss = SoftmaxCrossEntropy()
    optimizer = SGD(victim, 0.2)
    for _ in range(80):
        for bx, by in iterate_batches(victim_members.x,
                                      victim_members.y, 32, rng):
            victim.loss_and_grad(bx, by, loss)
            optimizer.step()
    return factory, victim, victim_members, victim_nonmembers, attacker


def test_per_class_attack_fits_class_models(setup):
    factory, victim, members, nonmembers, attacker = setup
    attack = ShadowAttack(factory, num_shadows=2, epochs=20, lr=0.2,
                          batch_size=32, per_class=True)
    attack.fit(attacker)
    assert attack._class_models  # at least some classes got a model


def test_per_class_attack_detects_membership(setup):
    factory, victim, members, nonmembers, attacker = setup
    attack = ShadowAttack(factory, num_shadows=2, epochs=20, lr=0.2,
                          batch_size=32, per_class=True)
    attack.fit(attacker)
    auc = attack_auc(
        attack.score(victim, members.x, members.y),
        attack.score(victim, nonmembers.x, nonmembers.y))
    assert auc > 0.6


def test_pooled_fallback_for_unseen_class(setup):
    """Scoring a class with no dedicated model uses the pooled one."""
    factory, victim, members, *_ = setup
    attack = ShadowAttack(factory, num_shadows=1, epochs=5, lr=0.2,
                          batch_size=32, per_class=True)
    # fit on a single-class slice so most classes lack a model
    rng = np.random.default_rng(3)
    data = synthetic_tabular(rng, 200, 20, 4, noise=0.35)
    attack.fit(data)
    scores = attack.score(victim, members.x, members.y)
    assert np.all((0 <= scores) & (scores <= 1))
