"""Non-finite-logit handling in attack features.

A destroyed model (e.g. under heavy CDP noise) can emit inf/NaN
logits; the attacker must see it as *uninformative*, never as an
accidental perfect separator through NaN ordering.
"""

import numpy as np

from repro.nn.layers import Dense
from repro.nn.model import Model
from repro.privacy.attacks.features import (
    LOGIT_CAP,
    _sanitize_logits,
    attack_features,
    per_example_loss,
)
from repro.privacy.attacks.metrics import attack_auc
from repro.privacy.attacks.threshold import LossThresholdAttack


def test_sanitize_maps_nonfinite():
    logits = np.array([[np.inf, -np.inf, np.nan, 3.0]])
    out = _sanitize_logits(logits)
    assert np.all(np.isfinite(out))
    assert out[0, 0] == LOGIT_CAP
    assert out[0, 1] == -LOGIT_CAP
    assert out[0, 2] == 0.0
    assert out[0, 3] == 3.0


def test_sanitize_caps_huge_values():
    out = _sanitize_logits(np.array([[1e30, -1e30]]))
    assert np.abs(out).max() == LOGIT_CAP


def _exploded_model(rng):
    model = Model([Dense(5, 4, rng)])
    model.trainable[0].params["W"][...] = 1e300  # overflows in matmul
    return model


def test_exploded_model_gives_finite_features(rng):
    model = _exploded_model(rng)
    x = rng.standard_normal((10, 5))
    y = rng.integers(0, 4, 10)
    with np.errstate(over="ignore", invalid="ignore"):
        feats = attack_features(model, x, y)
        losses = per_example_loss(model, x, y)
    assert np.all(np.isfinite(feats))
    assert np.all(np.isfinite(losses))


def test_exploded_model_reads_near_chance(rng):
    """Saturated outputs collapse to ties: AUC near the 0.5 floor."""
    model = _exploded_model(rng)
    attack = LossThresholdAttack()
    x = rng.standard_normal((40, 5))
    y = rng.integers(0, 4, 40)
    with np.errstate(over="ignore", invalid="ignore"):
        auc = attack_auc(attack.score(model, x[:20], y[:20]),
                         attack.score(model, x[20:], y[20:]))
    assert auc < 0.7  # far from the pathological 1.0
