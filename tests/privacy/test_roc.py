"""ROC curve tests."""

import numpy as np
import pytest

from repro.privacy.attacks.metrics import roc_auc
from repro.privacy.attacks.roc import auc_from_curve, roc_curve, tpr_at_fpr


def test_curve_endpoints(rng):
    pos = rng.standard_normal(50) + 1
    neg = rng.standard_normal(50)
    fpr, tpr, thresholds = roc_curve(pos, neg)
    assert fpr[0] == 0.0 and tpr[0] == 0.0   # threshold = +inf
    assert fpr[-1] == 1.0 and tpr[-1] == 1.0  # lowest threshold


def test_curve_monotone(rng):
    pos = rng.standard_normal(100) + 0.5
    neg = rng.standard_normal(100)
    fpr, tpr, _ = roc_curve(pos, neg)
    assert np.all(np.diff(fpr) >= 0)
    assert np.all(np.diff(tpr) >= 0)


def test_curve_auc_matches_rank_auc(rng):
    pos = rng.standard_normal(200) + 1
    neg = rng.standard_normal(200)
    fpr, tpr, _ = roc_curve(pos, neg)
    assert auc_from_curve(fpr, tpr) == pytest.approx(
        roc_auc(pos, neg), abs=1e-9)


def test_perfect_separation_curve():
    fpr, tpr, _ = roc_curve(np.array([2.0, 3.0]), np.array([0.0, 1.0]))
    assert auc_from_curve(fpr, tpr) == 1.0


def test_tpr_at_low_fpr_random_scores(rng):
    pos = rng.standard_normal(3000)
    neg = rng.standard_normal(3000)
    assert tpr_at_fpr(pos, neg, max_fpr=0.01) < 0.05


def test_tpr_at_low_fpr_strong_attack(rng):
    pos = rng.standard_normal(1000) + 5
    neg = rng.standard_normal(1000)
    assert tpr_at_fpr(pos, neg, max_fpr=0.01) > 0.9


def test_tpr_at_fpr_validates(rng):
    with pytest.raises(ValueError):
        tpr_at_fpr(np.array([1.0]), np.array([0.0]), max_fpr=0.0)
    with pytest.raises(ValueError):
        roc_curve(np.array([]), np.array([1.0]))
