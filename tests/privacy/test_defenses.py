"""Unit tests for the five baseline defenses and their helpers."""

import numpy as np
import pytest

from repro.fl.config import FLConfig
from repro.nn.model import (
    flatten_weights,
    weights_allclose,
    weights_l2_norm,
    weights_zip_map,
)
from repro.privacy.defenses import make_defense
from repro.privacy.defenses.base import Defense
from repro.privacy.defenses.cdp import CentralDP
from repro.privacy.defenses.compression import GradientCompression
from repro.privacy.defenses.ldp import LocalDP, clip_weights
from repro.privacy.defenses.make import make_defense_for_config
from repro.privacy.defenses.secure_aggregation import SecureAggregation
from repro.privacy.defenses.wdp import WeakDP


@pytest.fixture
def template(tiny_model):
    return tiny_model.get_weights()


class TestBaseDefense:
    def test_noop_passthrough(self, template, rng):
        defense = Defense()
        assert defense.on_receive_global(0, template) is template
        assert defense.on_send_update(0, template, 10, rng) is template
        assert defense.on_aggregate(template, rng) is template
        assert defense.make_optimizer(None, 0.1) is None
        assert defense.state_bytes() == 0


class TestClipWeights:
    def test_noop_below_bound(self, template):
        clipped = clip_weights(template, 1e9)
        assert weights_allclose(clipped, template)

    def test_clips_to_bound(self, template):
        clipped = clip_weights(template, 0.5)
        assert np.isclose(weights_l2_norm(clipped), 0.5)

    def test_preserves_direction(self, template):
        clipped = clip_weights(template, 0.5)
        a = flatten_weights(template)
        b = flatten_weights(clipped)
        cos = a @ b / (np.linalg.norm(a) * np.linalg.norm(b))
        assert np.isclose(cos, 1.0)

    def test_rejects_bad_bound(self, template):
        with pytest.raises(ValueError):
            clip_weights(template, 0.0)


class TestWeakDP:
    def test_noise_added_to_delta(self, template, rng):
        defense = WeakDP(sigma=0.1)
        defense.on_round_start(0, [0], template, rng)
        sent = defense.on_send_update(0, template, 10, rng)
        # update == round global, so sent - global is pure noise
        delta = weights_zip_map(np.subtract, sent, template)
        values = flatten_weights(delta)
        assert 0.05 < values.std() < 0.2

    def test_requires_round_start(self, template, rng):
        with pytest.raises(RuntimeError):
            WeakDP().on_send_update(0, template, 10, rng)

    def test_delta_norm_bounded(self, template, rng):
        defense = WeakDP(norm_bound=0.5, sigma=0.0)
        defense.on_round_start(0, [0], template, rng)
        far = [{k: v + 10.0 for k, v in layer.items()}
               for layer in template]
        sent = defense.on_send_update(0, far, 10, rng)
        delta = weights_zip_map(np.subtract, sent, template)
        assert weights_l2_norm(delta) <= 0.5 + 1e-9

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            WeakDP(sigma=-1.0)
        with pytest.raises(ValueError):
            WeakDP(norm_bound=0.0)


class TestLocalDP:
    def test_imposes_dpsgd_optimizer(self, tiny_model):
        from repro.privacy.defenses.dpsgd import DPSGD
        defense = LocalDP(noise_multiplier=1.0)
        optimizer = defense.make_optimizer(tiny_model, 0.1)
        assert isinstance(optimizer, DPSGD)

    def test_noise_multiplier_from_budget(self):
        tight = LocalDP(epsilon=0.1, sample_rate=0.1, steps=100)
        loose = LocalDP(epsilon=10.0, sample_rate=0.1, steps=100)
        assert tight.noise_multiplier > loose.noise_multiplier

    def test_counts_releases(self, template, rng):
        defense = LocalDP(noise_multiplier=1.0)
        defense.on_send_update(0, template, 10, rng)
        defense.on_send_update(1, template, 10, rng)
        assert defense.updates_released == 2

    def test_state_bytes_after_optimizer(self, tiny_model):
        defense = LocalDP(noise_multiplier=1.0)
        defense.make_optimizer(tiny_model, 0.1)
        assert defense.state_bytes() > 0


class TestCentralDP:
    def _run_round(self, defense, template, rng):
        defense.on_round_start(0, [0, 1], template, rng)
        sent = defense.on_send_update(0, template, 10, rng)
        return defense.on_aggregate(sent, rng)

    def test_adds_noise_on_aggregate(self, template, rng):
        defense = CentralDP(noise_multiplier=1.0, num_clients=2)
        out = self._run_round(defense, template, rng)
        assert not weights_allclose(out, template)

    def test_noise_scales_inversely_with_cohort(self, template, rng):
        small = CentralDP(noise_multiplier=1.0, num_clients=2)
        large = CentralDP(noise_multiplier=1.0, num_clients=100)
        out_small = self._run_round(small, template,
                                    np.random.default_rng(0))
        out_large = self._run_round(large, template,
                                    np.random.default_rng(0))
        def noise(out):
            return weights_l2_norm(
                weights_zip_map(np.subtract, out, template))
        assert noise(out_small) > noise(out_large)

    def test_accountant_spends(self, template, rng):
        defense = CentralDP(noise_multiplier=1.0, rounds=4)
        self._run_round(defense, template, rng)
        assert defense.accountant.spent_epsilon > 0

    def test_requires_round_start(self, template, rng):
        with pytest.raises(RuntimeError):
            CentralDP().on_aggregate(template, rng)


class TestGradientCompression:
    def test_sparsifies_delta(self, template, rng):
        defense = GradientCompression(keep_ratio=0.1)
        defense.on_round_start(0, [0], template, rng)
        update = [{k: v + rng.standard_normal(v.shape)
                   for k, v in layer.items()} for layer in template]
        sent = defense.on_send_update(0, update, 10, rng)
        delta = flatten_weights(
            weights_zip_map(np.subtract, sent, template))
        nonzero = np.count_nonzero(delta)
        assert nonzero <= int(0.1 * delta.size) + 1

    def test_keeps_largest_coordinates(self, template, rng):
        defense = GradientCompression(keep_ratio=0.01)
        defense.on_round_start(0, [0], template, rng)
        update = [{k: v.copy() for k, v in layer.items()}
                  for layer in template]
        update[0]["W"][0, 0] += 100.0  # dominant coordinate
        sent = defense.on_send_update(0, update, 10, rng)
        assert np.isclose(sent[0]["W"][0, 0], update[0]["W"][0, 0])

    def test_error_feedback_accumulates(self, template, rng):
        """Coordinates dropped in round 1 are carried into round 2."""
        defense = GradientCompression(keep_ratio=0.01)
        defense.on_round_start(0, [0], template, rng)
        update = [{k: v + 0.01 for k, v in layer.items()}
                  for layer in template]
        defense.on_send_update(0, update, 10, rng)
        assert defense.state_bytes() > 0
        residual = defense._residuals[0]
        assert np.abs(residual).sum() > 0

    def test_full_keep_is_lossless(self, template, rng):
        defense = GradientCompression(keep_ratio=1.0)
        defense.on_round_start(0, [0], template, rng)
        update = [{k: v + rng.standard_normal(v.shape)
                   for k, v in layer.items()} for layer in template]
        sent = defense.on_send_update(0, update, 10, rng)
        assert weights_allclose(sent, update, atol=1e-12)

    def test_rejects_bad_ratio(self):
        with pytest.raises(ValueError):
            GradientCompression(keep_ratio=0.0)

    def test_requires_round_start(self, template, rng):
        with pytest.raises(RuntimeError):
            GradientCompression().on_send_update(0, template, 10, rng)


class TestSecureAggregation:
    def test_masks_cancel_in_sum(self, template, rng):
        defense = SecureAggregation()
        cohort = [0, 1, 2]
        defense.on_round_start(0, cohort, template, rng)
        masked = [defense.on_send_update(c, template, 10, rng)
                  for c in cohort]
        total = masked[0]
        for m in masked[1:]:
            total = weights_zip_map(np.add, total, m)
        # each client sent 10 * weights + mask; masks sum to zero
        expected = [{k: 30.0 * v for k, v in layer.items()}
                    for layer in template]
        assert weights_allclose(total, expected, atol=1e-6)

    def test_individual_update_is_garbled(self, template, rng):
        defense = SecureAggregation(mask_scale=50.0)
        defense.on_round_start(0, [0, 1], template, rng)
        sent = defense.on_send_update(0, template, 10, rng)
        assert weights_l2_norm(sent) > 10 * weights_l2_norm(template)

    def test_is_pre_weighted(self):
        assert SecureAggregation.pre_weighted is True

    def test_requires_round_start(self, template, rng):
        with pytest.raises(RuntimeError):
            SecureAggregation().on_send_update(0, template, 10, rng)

    def test_single_client_has_zero_mask(self, template, rng):
        defense = SecureAggregation()
        defense.on_round_start(0, [0], template, rng)
        sent = defense.on_send_update(0, template, 1, rng)
        assert weights_allclose(sent, template)

    def test_state_bytes_nonzero_with_cohort(self, template, rng):
        defense = SecureAggregation()
        defense.on_round_start(0, [0, 1], template, rng)
        assert defense.state_bytes() > 0


class TestFactories:
    @pytest.mark.parametrize("name,cls_name", [
        ("none", "Defense"), ("ldp", "LocalDP"), ("cdp", "CentralDP"),
        ("wdp", "WeakDP"), ("gc", "GradientCompression"),
        ("sa", "SecureAggregation"), ("dinar", "DINAR"),
    ])
    def test_make_defense(self, name, cls_name):
        assert type(make_defense(name)).__name__ == cls_name

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_defense("homomorphic")

    def test_config_aware_cdp(self):
        config = FLConfig(num_clients=7, rounds=9)
        defense = make_defense_for_config("cdp", config)
        assert defense.num_clients == 7
        assert defense.rounds == 9

    def test_config_aware_ldp_steps(self):
        config = FLConfig(rounds=10, local_epochs=4)
        defense = make_defense_for_config("ldp", config)
        assert defense.noise_multiplier > 0

    def test_describe_strings(self):
        for name in ("none", "ldp", "cdp", "wdp", "gc", "sa", "dinar"):
            assert isinstance(make_defense(name).describe(), str)
