"""Tests for the confidence- and entropy-threshold attack variants."""

import numpy as np
import pytest

from repro.data.loader import iterate_batches
from repro.data.synthetic import synthetic_tabular
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.optim import SGD
from repro.privacy.attacks.metrics import attack_auc
from repro.privacy.attacks.threshold import (
    ConfidenceThresholdAttack,
    EntropyThresholdAttack,
    LossThresholdAttack,
)


@pytest.fixture(scope="module")
def overfit():
    rng = np.random.default_rng(0)
    data = synthetic_tabular(rng, 240, 20, 4, noise=0.35)
    members = data.subset(np.arange(100))
    nonmembers = data.subset(np.arange(100, 200))
    from repro.nn.activations import Tanh
    from repro.nn.layers import Dense
    from repro.nn.model import Model
    model = Model([Dense(20, 16, np.random.default_rng(1)), Tanh(),
                   Dense(16, 4, np.random.default_rng(2))])
    loss = SoftmaxCrossEntropy()
    optimizer = SGD(model, 0.2)
    for _ in range(150):  # drive to full memorization of the members
        for bx, by in iterate_batches(members.x, members.y, 32, rng):
            model.loss_and_grad(bx, by, loss)
            optimizer.step()
    return model, members, nonmembers


ATTACKS = [LossThresholdAttack, ConfidenceThresholdAttack,
           EntropyThresholdAttack]


@pytest.mark.parametrize("attack_cls,floor", [
    (LossThresholdAttack, 0.6),
    # confidence-only attacks are the weakest of the family: they are
    # fooled by confidently-wrong predictions
    (ConfidenceThresholdAttack, 0.55),
    (EntropyThresholdAttack, 0.6),
])
def test_detects_membership(attack_cls, floor, overfit):
    model, members, nonmembers = overfit
    attack = attack_cls()
    auc = attack_auc(
        attack.score(model, members.x, members.y),
        attack.score(model, nonmembers.x, nonmembers.y))
    assert auc > floor


@pytest.mark.parametrize("attack_cls", ATTACKS)
def test_scores_finite(attack_cls, overfit):
    model, members, _ = overfit
    scores = attack_cls().score(model, members.x, members.y)
    assert np.all(np.isfinite(scores))
    assert scores.shape == (len(members),)


def test_modified_entropy_favors_confident_correct(overfit):
    """A confidently-correct sample has near-zero modified entropy,
    i.e. the highest membership score."""
    model, members, _ = overfit
    attack = EntropyThresholdAttack()
    scores = attack.score(model, members.x, members.y)
    losses = LossThresholdAttack().score(model, members.x, members.y)
    # the most confidently-correct member (lowest loss) should rank in
    # the top half of entropy scores
    best = np.argmax(losses)
    assert scores[best] >= np.median(scores)


def test_entropy_attack_beats_plain_confidence_on_wrong_labels(overfit):
    """Modified entropy uses the true label; confidence does not.  For
    a sample the model confidently MISclassifies, modified entropy
    correctly scores it as a non-member while raw confidence is
    fooled."""
    model, members, nonmembers = overfit
    conf = ConfidenceThresholdAttack()
    entropy = EntropyThresholdAttack()
    logits = model.predict_logits(nonmembers.x)
    wrong = logits.argmax(axis=1) != nonmembers.y
    if not wrong.any():
        pytest.skip("model classified every non-member correctly")
    x = nonmembers.x[wrong]
    y = nonmembers.y[wrong]
    high_conf = conf.score(model, x, y) > 0.9
    if not high_conf.any():
        pytest.skip("no confidently-wrong non-member found")
    entropy_scores = entropy.score(model, x[high_conf], y[high_conf])
    member_scores = entropy.score(model, members.x, members.y)
    # confidently-wrong non-members score below the typical member
    assert entropy_scores.mean() < np.median(member_scores)