"""Attack AUC metric tests (Appendix A)."""

import numpy as np
import pytest

from repro.privacy.attacks.metrics import attack_auc, roc_auc


class TestRocAuc:
    def test_perfect_separation(self):
        assert roc_auc(np.array([3.0, 4.0]), np.array([1.0, 2.0])) == 1.0

    def test_perfectly_inverted(self):
        assert roc_auc(np.array([1.0, 2.0]), np.array([3.0, 4.0])) == 0.0

    def test_random_overlap_near_half(self, rng):
        pos = rng.standard_normal(2000)
        neg = rng.standard_normal(2000)
        assert abs(roc_auc(pos, neg) - 0.5) < 0.03

    def test_ties_count_half(self):
        assert roc_auc(np.array([1.0]), np.array([1.0])) == 0.5

    def test_matches_pairwise_definition(self, rng):
        pos = rng.standard_normal(30)
        neg = rng.standard_normal(40)
        wins = sum((p > n) + 0.5 * (p == n) for p in pos for n in neg)
        assert np.isclose(roc_auc(pos, neg), wins / (30 * 40))

    def test_known_shift(self, rng):
        pos = rng.standard_normal(3000) + 1.0
        neg = rng.standard_normal(3000)
        # AUC of unit shift between unit gaussians = Phi(1/sqrt(2))
        from scipy.stats import norm
        assert abs(roc_auc(pos, neg) - norm.cdf(1 / np.sqrt(2))) < 0.02

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            roc_auc(np.array([]), np.array([1.0]))


class TestAttackAuc:
    def test_clamped_to_half(self, rng):
        """An anti-predictive attacker is as good as its inverse."""
        pos = np.array([1.0, 2.0])
        neg = np.array([3.0, 4.0])
        assert attack_auc(pos, neg) == 1.0

    def test_never_below_half(self, rng):
        for _ in range(5):
            pos = rng.standard_normal(50)
            neg = rng.standard_normal(50)
            assert attack_auc(pos, neg) >= 0.5

    def test_preserves_strong_signal(self, rng):
        pos = rng.standard_normal(500) + 3
        neg = rng.standard_normal(500)
        assert attack_auc(pos, neg) > 0.95
