"""Bitwise pins for the segment-plane migration.

Every consumer that moved off a hand-rolled ``param_segments`` loop
onto :class:`~repro.nn.store.SegmentedView` is pinned here against a
verbatim reimplementation of its legacy path — exact equality, no
tolerance.  The 19 golden trajectory pins cover the end-to-end
composition; these cover each migrated primitive in isolation so a
future segment-plane change that breaks one consumer fails with its
name on the test.
"""

import math

import numpy as np
import pytest

from repro.nn.activations import Tanh
from repro.nn.dtypes import gaussian
from repro.nn.layers import BatchNorm1d, Dense
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import Model
from repro.nn.store import WeightStore, chunked_sq_sum
from repro.privacy.defenses.dpsgd import DPSGD
from repro.privacy.defenses.ldp import clip_store


@pytest.fixture
def bn_model(rng) -> Model:
    """Trainable runs interrupted by batch-norm buffers — the layout
    shape the legacy loops were written against."""
    return Model([
        Dense(12, 10, rng), BatchNorm1d(10), Tanh(),
        Dense(10, 6, rng), Tanh(),
        Dense(6, 4, rng),
    ], rng=rng, name="bn")


def _batch(rng, n=16, d=12, k=4):
    return rng.standard_normal((n, d)), rng.integers(0, k, n)


def _legacy_dpsgd_step(model, lr, clip_norm, noise_multiplier,
                       batch_size, rng):
    """The pre-migration DPSGD.step body, verbatim."""
    params = model.weights.buffer
    grads = model.grad_vector
    layout = model.weight_layout()
    norm = math.sqrt(chunked_sq_sum(grads, layout.param_entry_slices))
    scale = min(1.0, clip_norm / max(norm, 1e-12))
    noise_std = noise_multiplier * clip_norm / batch_size
    update = grads * scale
    if noise_std > 0:
        for segment in layout.param_segments:
            update[segment] += gaussian(
                rng, noise_std, segment.stop - segment.start,
                update.dtype)
    params -= lr * update


def test_dpsgd_step_bitwise(bn_model, rng):
    x, y = _batch(rng)
    twin = bn_model.clone()
    loss = SoftmaxCrossEntropy()

    bn_model.loss_and_grad(x, y, loss)
    optimizer = DPSGD(bn_model, 0.1, clip_norm=0.5,
                      noise_multiplier=1.3,
                      rng=np.random.default_rng(11))
    optimizer.notify_batch_size(len(x))
    optimizer.step()

    twin.loss_and_grad(x, y, loss)
    _legacy_dpsgd_step(twin, 0.1, 0.5, 1.3, len(x),
                       np.random.default_rng(11))

    np.testing.assert_array_equal(bn_model.weights.buffer,
                                  twin.weights.buffer)


def test_dpsgd_noise_skips_buffers(bn_model, rng):
    x, y = _batch(rng)
    bn_model.loss_and_grad(x, y, SoftmaxCrossEntropy())
    before = bn_model.weights.buffer.copy()
    optimizer = DPSGD(bn_model, 1.0, clip_norm=1e-9,
                      noise_multiplier=100.0,
                      rng=np.random.default_rng(5))
    optimizer.step()
    layout = bn_model.weight_layout()
    trainable = np.zeros(layout.num_params, dtype=bool)
    for run in layout.param_segments:
        trainable[run] = True
    delta = bn_model.weights.buffer - before
    assert np.abs(delta[trainable]).max() > 0
    np.testing.assert_array_equal(delta[~trainable], 0.0)


def test_clip_store_bitwise(bn_model, rng):
    layout = bn_model.weight_layout()
    store = WeightStore(layout,
                        rng.standard_normal(layout.num_params))
    for max_norm in (0.25, 1e9):
        clipped = clip_store(store, max_norm)
        # Legacy body, verbatim.
        norm = store.l2()
        legacy = store.copy() if norm <= max_norm \
            else store * (max_norm / norm)
        np.testing.assert_array_equal(clipped.buffer, legacy.buffer)
    with pytest.raises(ValueError):
        clip_store(store, -1.0)


def test_gc_top_k_bitwise(bn_model, rng):
    layout = bn_model.weight_layout()
    flat = rng.standard_normal(layout.num_params)
    k = max(1, int(0.1 * flat.size))
    mine = layout.segmented().top_k_indices(flat, k)
    legacy = np.argpartition(np.abs(flat),
                             flat.size - k)[flat.size - k:]
    np.testing.assert_array_equal(mine, legacy)


def test_proximal_term_bitwise(bn_model, rng):
    from repro.fl.client import add_proximal_term
    x, y = _batch(rng)
    anchor = rng.standard_normal(
        bn_model.weight_layout().num_params)
    twin = bn_model.clone()

    bn_model.loss_and_grad(x, y, SoftmaxCrossEntropy())
    add_proximal_term(bn_model, 0.7, anchor)

    twin.loss_and_grad(x, y, SoftmaxCrossEntropy())
    params = twin.weights.buffer
    grads = twin.grad_vector
    for segment in twin.weight_layout().param_segments:
        grads[segment] += 0.7 * (params[segment] - anchor[segment])

    np.testing.assert_array_equal(bn_model.grad_vector,
                                  twin.grad_vector)


def test_per_layer_gradient_vectors_bitwise(bn_model, rng):
    x, y = _batch(rng)
    vectors = bn_model.per_layer_gradient_vectors(
        x, y, SoftmaxCrossEntropy(), copy=True)
    layout = bn_model.weight_layout()
    twin = bn_model.clone()
    twin.loss_and_grad(x, y, SoftmaxCrossEntropy())
    assert len(vectors) == layout.num_layers
    for idx, vector in enumerate(vectors):
        legacy = twin.grad_vector[layout.layer_param_slice(idx)]
        np.testing.assert_array_equal(vector, legacy)
