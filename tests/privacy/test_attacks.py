"""Attack behaviour tests: features, threshold, shadow, gradient."""

import numpy as np
import pytest

from repro.data.loader import iterate_batches
from repro.data.synthetic import synthetic_tabular
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.optim import SGD
from repro.privacy.attacks.features import (
    FEATURE_NAMES,
    attack_features,
    per_example_loss,
)
from repro.privacy.attacks.gradient import (
    LayerGradientAttack,
    layer_gradient_scores,
    per_example_layer_gradient_norms,
)
from repro.privacy.attacks.metrics import attack_auc
from repro.privacy.attacks.shadow import ShadowAttack
from repro.privacy.attacks.threshold import LossThresholdAttack


@pytest.fixture
def overfit_setup(rng, tiny_model_factory):
    """A model memorizing 60 members, with 60 held-out non-members."""
    data = synthetic_tabular(rng, 200, 20, 4, noise=0.35, name="mia")
    members = data.subset(np.arange(60))
    nonmembers = data.subset(np.arange(60, 120))
    attacker = data.subset(np.arange(120, 200))
    model = tiny_model_factory(np.random.default_rng(1))
    loss = SoftmaxCrossEntropy()
    optimizer = SGD(model, 0.2)
    for _ in range(60):
        for bx, by in iterate_batches(members.x, members.y, 16, rng):
            model.loss_and_grad(bx, by, loss)
            optimizer.step()
    return model, members, nonmembers, attacker


class TestFeatures:
    def test_shape_and_names(self, overfit_setup):
        model, members, *_ = overfit_setup
        feats = attack_features(model, members.x, members.y)
        assert feats.shape == (60, len(FEATURE_NAMES))
        assert np.all(np.isfinite(feats))

    def test_members_have_lower_loss(self, overfit_setup):
        model, members, nonmembers, _ = overfit_setup
        m = per_example_loss(model, members.x, members.y)
        n = per_example_loss(model, nonmembers.x, nonmembers.y)
        assert m.mean() < n.mean()

    def test_members_have_higher_confidence(self, overfit_setup):
        model, members, nonmembers, _ = overfit_setup
        mf = attack_features(model, members.x, members.y)
        nf = attack_features(model, nonmembers.x, nonmembers.y)
        true_prob = FEATURE_NAMES.index("true_class_prob")
        assert mf[:, true_prob].mean() > nf[:, true_prob].mean()

    def test_rejects_length_mismatch(self, overfit_setup):
        model, members, *_ = overfit_setup
        with pytest.raises(ValueError):
            attack_features(model, members.x, members.y[:-1])


class TestLossThreshold:
    def test_detects_membership_on_overfit_model(self, overfit_setup):
        model, members, nonmembers, _ = overfit_setup
        attack = LossThresholdAttack()
        auc = attack_auc(
            attack.score(model, members.x, members.y),
            attack.score(model, nonmembers.x, nonmembers.y))
        assert auc > 0.65

    def test_random_model_near_chance(self, rng, tiny_model_factory,
                                      overfit_setup):
        _, members, nonmembers, _ = overfit_setup
        fresh = tiny_model_factory(rng)  # untrained: no membership signal
        attack = LossThresholdAttack()
        auc = attack_auc(
            attack.score(fresh, members.x, members.y),
            attack.score(fresh, nonmembers.x, nonmembers.y))
        assert auc < 0.62


class TestShadowAttack:
    def test_fit_and_score(self, overfit_setup, tiny_model_factory):
        model, members, nonmembers, attacker = overfit_setup
        attack = ShadowAttack(tiny_model_factory, num_shadows=2,
                              epochs=25, lr=0.2, batch_size=16)
        attack.fit(attacker)
        m = attack.score(model, members.x, members.y)
        n = attack.score(model, nonmembers.x, nonmembers.y)
        assert np.all((0 <= m) & (m <= 1))
        assert attack_auc(m, n) > 0.6

    def test_score_before_fit_raises(self, overfit_setup,
                                     tiny_model_factory):
        model, members, *_ = overfit_setup
        attack = ShadowAttack(tiny_model_factory)
        with pytest.raises(RuntimeError):
            attack.score(model, members.x, members.y)

    def test_rejects_zero_shadows(self, tiny_model_factory):
        with pytest.raises(ValueError):
            ShadowAttack(tiny_model_factory, num_shadows=0)


class TestGradientAttack:
    def test_norm_matrix_shape(self, overfit_setup):
        model, members, *_ = overfit_setup
        norms = per_example_layer_gradient_norms(
            model, members.x, members.y, max_samples=10)
        assert norms.shape == (10, model.num_trainable_layers)
        assert np.all(norms >= 0)

    def test_members_have_smaller_gradients(self, overfit_setup):
        model, members, nonmembers, _ = overfit_setup
        m = per_example_layer_gradient_norms(
            model, members.x, members.y, max_samples=40)
        n = per_example_layer_gradient_norms(
            model, nonmembers.x, nonmembers.y, max_samples=40)
        assert m.mean() < n.mean()

    def test_layer_attack_beats_chance(self, overfit_setup):
        model, members, nonmembers, _ = overfit_setup
        attack = LayerGradientAttack(layer_index=2, max_samples=40)
        auc = attack_auc(
            attack.score(model, members.x[:40], members.y[:40]),
            attack.score(model, nonmembers.x[:40], nonmembers.y[:40]))
        assert auc > 0.6

    def test_rejects_bad_layer_index(self, overfit_setup):
        model, members, *_ = overfit_setup
        with pytest.raises(IndexError):
            layer_gradient_scores(model, members.x[:5], members.y[:5], 99)
