"""DP-SGD optimizer tests."""

import numpy as np
import pytest

from repro.nn.activations import Tanh
from repro.nn.layers import Dense
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import Model
from repro.privacy.defenses.dpsgd import DPSGD


def _model_and_batch(rng):
    model = Model([Dense(10, 8, rng), Tanh(), Dense(8, 3, rng)])
    x = rng.standard_normal((16, 10))
    y = rng.integers(0, 3, 16)
    return model, x, y


def test_zero_noise_with_huge_clip_matches_sgd(rng):
    model, x, y = _model_and_batch(rng)
    twin = model.clone()
    loss = SoftmaxCrossEntropy()

    model.loss_and_grad(x, y, loss)
    DPSGD(model, 0.1, clip_norm=1e9, noise_multiplier=0.0).step()

    twin.loss_and_grad(x, y, loss)
    from repro.nn.optim import SGD
    SGD(twin, 0.1).step()

    assert np.allclose(model.trainable[0].params["W"],
                       twin.trainable[0].params["W"])


def test_clipping_bounds_step_norm(rng):
    model, x, y = _model_and_batch(rng)
    before = [p.copy() for layer in model.trainable
              for p in layer.params.values()]
    model.loss_and_grad(x, y, SoftmaxCrossEntropy())
    DPSGD(model, 1.0, clip_norm=0.01, noise_multiplier=0.0).step()
    after = [p for layer in model.trainable
             for p in layer.params.values()]
    step = np.sqrt(sum(((a - b) ** 2).sum()
                       for a, b in zip(after, before)))
    assert step <= 0.01 + 1e-9  # lr=1, grad clipped to 0.01


def test_noise_scales_with_multiplier(rng):
    deltas = {}
    for z in (0.0, 5.0):
        model, x, y = _model_and_batch(np.random.default_rng(7))
        before = model.trainable[0].params["W"].copy()
        model.loss_and_grad(x, y, SoftmaxCrossEntropy())
        optimizer = DPSGD(model, 0.1, clip_norm=0.001,
                          noise_multiplier=z,
                          rng=np.random.default_rng(1))
        optimizer.notify_batch_size(16)
        optimizer.step()
        deltas[z] = np.abs(model.trainable[0].params["W"] - before).mean()
    assert deltas[5.0] > deltas[0.0]


def test_noise_shrinks_with_batch_size(rng):
    def mean_noise(batch):
        model, x, y = _model_and_batch(np.random.default_rng(7))
        before = model.trainable[0].params["W"].copy()
        model.loss_and_grad(x, y, SoftmaxCrossEntropy())
        optimizer = DPSGD(model, 1.0, clip_norm=1e-9,
                          noise_multiplier=1.0,
                          rng=np.random.default_rng(1))
        optimizer.notify_batch_size(batch)
        optimizer.step()
        return np.abs(model.trainable[0].params["W"] - before).mean()

    assert mean_noise(4) > mean_noise(64)


def test_rejects_bad_params(rng):
    model, *_ = _model_and_batch(rng)
    with pytest.raises(ValueError):
        DPSGD(model, 0.1, clip_norm=0.0)
    with pytest.raises(ValueError):
        DPSGD(model, 0.1, noise_multiplier=-1.0)


def test_still_learns_with_mild_noise(rng):
    model, _, _ = _model_and_batch(rng)
    protos = rng.standard_normal((3, 10)) * 3
    x = np.concatenate([protos[i] + 0.3 * rng.standard_normal((30, 10))
                        for i in range(3)])
    y = np.repeat(np.arange(3), 30)
    loss = SoftmaxCrossEntropy()
    optimizer = DPSGD(model, 0.1, clip_norm=5.0, noise_multiplier=0.1,
                      rng=rng)
    optimizer.notify_batch_size(len(x))
    for _ in range(80):
        model.loss_and_grad(x, y, loss)
        optimizer.step()
    from repro.nn.metrics import accuracy
    assert accuracy(model.predict(x), y) > 0.9
