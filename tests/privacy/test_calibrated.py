"""Reference-calibrated attack tests."""

import numpy as np
import pytest

from repro.data.loader import iterate_batches
from repro.data.synthetic import synthetic_tabular
from repro.nn.activations import Tanh
from repro.nn.layers import Dense
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import Model
from repro.nn.optim import SGD
from repro.privacy.attacks.calibrated import ReferenceCalibratedAttack
from repro.privacy.attacks.metrics import attack_auc
from repro.privacy.attacks.threshold import LossThresholdAttack


def _factory(rng):
    return Model([Dense(20, 16, rng), Tanh(), Dense(16, 4, rng)])


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(0)
    data = synthetic_tabular(rng, 500, 20, 4, noise=0.35)
    members = data.subset(np.arange(100))
    nonmembers = data.subset(np.arange(100, 200))
    attacker = data.subset(np.arange(200, 500))
    victim = _factory(np.random.default_rng(1))
    loss = SoftmaxCrossEntropy()
    optimizer = SGD(victim, 0.2)
    for _ in range(80):
        for bx, by in iterate_batches(members.x, members.y, 32, rng):
            victim.loss_and_grad(bx, by, loss)
            optimizer.step()
    return victim, members, nonmembers, attacker


def test_detects_membership(setup):
    victim, members, nonmembers, attacker = setup
    attack = ReferenceCalibratedAttack(
        _factory, num_references=2, epochs=20, lr=0.2, batch_size=32)
    attack.fit(attacker)
    auc = attack_auc(
        attack.score(victim, members.x, members.y),
        attack.score(victim, nonmembers.x, nonmembers.y))
    assert auc > 0.65


def test_at_least_as_strong_as_uncalibrated(setup):
    victim, members, nonmembers, attacker = setup
    calibrated = ReferenceCalibratedAttack(
        _factory, num_references=3, epochs=20, lr=0.2,
        batch_size=32).fit(attacker)
    plain = LossThresholdAttack()

    def auc(attack):
        return attack_auc(
            attack.score(victim, members.x, members.y),
            attack.score(victim, nonmembers.x, nonmembers.y))

    assert auc(calibrated) >= auc(plain) - 0.03


def test_score_before_fit_raises(setup):
    victim, members, *_ = setup
    attack = ReferenceCalibratedAttack(_factory)
    with pytest.raises(RuntimeError):
        attack.score(victim, members.x, members.y)


def test_rejects_bad_params():
    with pytest.raises(ValueError):
        ReferenceCalibratedAttack(_factory, num_references=0)
    with pytest.raises(ValueError):
        ReferenceCalibratedAttack(_factory, subsample=0.0)


def test_calibration_fixes_hard_samples(setup):
    """A sample that every model finds hard gets a low *calibrated*
    score even though its raw loss is high."""
    victim, members, nonmembers, attacker = setup
    attack = ReferenceCalibratedAttack(
        _factory, num_references=3, epochs=20, lr=0.2,
        batch_size=32).fit(attacker)
    raw = LossThresholdAttack().score(
        victim, nonmembers.x, nonmembers.y)
    calibrated = attack.score(victim, nonmembers.x, nonmembers.y)
    # hardest non-member by raw loss:
    hardest = np.argmin(raw)
    # its calibrated score should not be extreme (references also
    # struggle with it) — check it moved toward the middle of the pack
    raw_rank = (raw < raw[hardest]).mean()
    calibrated_rank = (calibrated < calibrated[hardest]).mean()
    assert calibrated_rank >= raw_rank
