"""Shared-memory IPC plane: channel semantics, lifecycle, leaks.

The transport's bitwise contract is pinned elsewhere (executor
identity matrix, trajectory pins, hypothesis parity); this module
covers what is *specific* to shared memory — segment lifecycle
(idempotent close, warm-up reuse, crash paths), the slab-ring lease
discipline, O(descriptor) wire payloads, and above all that no
``psm_*`` segment outlives its executor in ``/dev/shm``.
"""

from __future__ import annotations

import multiprocessing
import pathlib
import pickle

import numpy as np
import pytest

from repro.data.partition import split_for_membership
from repro.data.synthetic import synthetic_tabular
from repro.fl.config import FLConfig
from repro.fl.executor import ClientTask
from repro.fl.shm import (
    ShmChannel,
    ShmParallelExecutor,
    ShmRound,
    shm_available,
)
from repro.fl.simulation import FederatedSimulation

pytestmark = [
    pytest.mark.skipif(not shm_available(),
                       reason="shared memory unavailable"),
    pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="parallel executor requires the fork start method"),
]


def _psm_segments() -> set[str]:
    """Names of the POSIX shm segments currently live on this host."""
    try:
        return {entry.name for entry in pathlib.Path("/dev/shm").iterdir()
                if entry.name.startswith("psm_")}
    except (FileNotFoundError, NotADirectoryError):  # non-Linux
        return set()


@pytest.fixture
def no_leaked_segments():
    """Fail the test if it leaves new ``psm_*`` segments behind."""
    before = _psm_segments()
    yield
    leaked = _psm_segments() - before
    assert not leaked, f"leaked shm segments: {sorted(leaked)}"


def _make_sim(defense=None, **cfg_kwargs):
    rng = np.random.default_rng(3)
    data = synthetic_tabular(rng, 400, 20, 4, noise=0.2)
    split = split_for_membership(data, rng)
    defaults = dict(num_clients=4, rounds=2, local_epochs=1, lr=0.1,
                    batch_size=32, seed=5, workers=2, ipc="shm")
    defaults.update(cfg_kwargs)
    from repro.models.fcnn import build_fcnn
    return FederatedSimulation(
        split, lambda r: build_fcnn(20, 4, r, hidden=(16,)),
        FLConfig(**defaults), defense)


# ----------------------------------------------------------------------
# ShmChannel: segments, broadcast, slab ring
# ----------------------------------------------------------------------

class TestChannel:
    def test_publish_roundtrips_buffer_and_state(self,
                                                 no_leaked_segments):
        channel = ShmChannel(slots=3)
        try:
            buffer = np.arange(7, dtype=np.float64)
            state = {"round": 1, "mask": np.arange(4.0)}
            ref = channel.publish_round(buffer, state)
            assert ref.generation == 1
            assert ref.num_params == 7
            assert ref.slots == 3
            from repro.fl import shm as shm_mod
            view, decoded = shm_mod._worker_resolve(ref)
            assert np.array_equal(view, buffer)
            assert not view.flags.writeable
            assert decoded["round"] == 1
            assert np.array_equal(decoded["mask"], state["mask"])
        finally:
            channel.close()
            _reset_worker_caches()

    def test_generation_bumps_segment_names_stable(
            self, no_leaked_segments):
        channel = ShmChannel(slots=2)
        try:
            a = channel.publish_round(np.zeros(4), None)
            b = channel.publish_round(np.ones(4), None)
            assert b.generation == a.generation + 1
            assert b.weights_name == a.weights_name
            assert b.slabs_name == a.slabs_name
            assert a.state_name is None and a.state_len == 0
        finally:
            channel.close()

    def test_state_segment_grows_by_recreation(self,
                                               no_leaked_segments):
        channel = ShmChannel(slots=2)
        try:
            small = channel.publish_round(np.zeros(4), b"x")
            big = channel.publish_round(np.zeros(4),
                                        bytes(1 << 16))
            assert big.state_name != small.state_name
            assert big.state_len > small.state_len
            assert small.state_name not in _psm_segments()
        finally:
            channel.close()

    def test_slab_lease_recycle_discipline(self, no_leaked_segments):
        channel = ShmChannel(slots=2)
        channel.open(5, np.dtype(np.float64))
        try:
            first, second = channel.lease(), channel.lease()
            assert {first, second} == {0, 1}
            assert channel.lease() is None  # exhausted
            channel.recycle(second)
            assert channel.free_slabs == 1
            with pytest.raises(ValueError, match="twice"):
                channel.recycle(second)
            with pytest.raises(ValueError, match="out of range"):
                channel.recycle(7)
        finally:
            channel.close()

    def test_slab_roundtrip_is_bitwise(self, no_leaked_segments):
        channel = ShmChannel(slots=2)
        channel.open(6, np.dtype(np.float64))
        try:
            update = np.random.default_rng(0).standard_normal(6)
            personal = np.random.default_rng(1).standard_normal(6)
            channel.write_slab(1, update, personal)
            got_update, got_personal = channel.read_slab(1)
            assert np.array_equal(got_update, update)
            assert np.array_equal(got_personal, personal)
            # parent-owned copies: recycling cannot corrupt them
            channel.write_slab(1, personal, update)
            assert np.array_equal(got_update, update)
        finally:
            channel.close()

    def test_close_is_idempotent_and_unlinks(self):
        channel = ShmChannel(slots=2)
        channel.publish_round(np.zeros(8), {"s": 1})
        names = channel.segment_names()
        assert all(name in _psm_segments() for name in names)
        channel.close()
        assert all(name not in _psm_segments() for name in names)
        channel.close()  # second close is a no-op
        assert not channel.is_open

    def test_reopen_after_close_rejects_nothing(self,
                                                no_leaked_segments):
        channel = ShmChannel(slots=2)
        channel.publish_round(np.zeros(8), None)
        channel.close()
        ref = channel.publish_round(np.ones(8), None)
        assert channel.is_open
        assert ref.num_params == 8
        channel.close()

    def test_geometry_mismatch_rejected(self, no_leaked_segments):
        channel = ShmChannel(slots=2)
        channel.open(8, np.dtype(np.float64))
        try:
            with pytest.raises(ValueError, match="already open"):
                channel.open(9, np.dtype(np.float64))
        finally:
            channel.close()


def _reset_worker_caches() -> None:
    """Drop the module-level worker caches the parent-side tests
    populated by calling worker helpers in-process."""
    from repro.fl import shm as shm_mod
    for segment in shm_mod._WORKER_SEGMENTS.values():
        try:
            segment.close()
        except Exception:
            pass
    shm_mod._WORKER_SEGMENTS.clear()
    if shm_mod._WORKER_STATE_SEGMENT is not None:
        try:
            shm_mod._WORKER_STATE_SEGMENT[1].close()
        except Exception:
            pass
    shm_mod._WORKER_STATE_SEGMENT = None
    shm_mod._WORKER_ROUND_STATE = None


# ----------------------------------------------------------------------
# executor lifecycle
# ----------------------------------------------------------------------

class TestLifecycle:
    def test_run_then_close_leaves_no_segments(self,
                                               no_leaked_segments):
        sim = _make_sim()
        assert isinstance(sim.executor, ShmParallelExecutor)
        sim.run()  # run() closes the executor in its finally
        assert not sim.executor._channel.is_open

    def test_close_is_idempotent(self, no_leaked_segments):
        sim = _make_sim(rounds=1)
        sim.run()
        sim.executor.close()
        sim.executor.close()

    def test_warm_up_segments_survive_into_first_round(
            self, no_leaked_segments):
        sim = _make_sim(rounds=1)
        executor = sim.executor
        executor.warm_up()
        before = executor._channel.segment_names()
        assert before  # the layout opened the channel ahead of time
        sim.run_round(0)
        # the round reused the pre-opened weight + slab segments
        assert executor._channel.segment_names()[:2] == before[:2]
        executor.close()

    def test_pool_and_channel_recreated_after_close(
            self, no_leaked_segments):
        sim = _make_sim(rounds=1)
        sim.run()  # closed everything
        record = sim.run_round(1)  # must transparently rebuild
        assert record is not None
        assert sim.executor._channel.is_open
        sim.executor.close()

    def test_worker_crash_leaves_no_segments(self,
                                             no_leaked_segments):
        from tests.fl.test_executor import _DyingDefense
        sim = _make_sim(defense=_DyingDefense(), rounds=1)
        with pytest.raises(RuntimeError, match="worker process died"):
            sim.run()
        assert not sim.executor._channel.is_open

    def test_worker_exception_leaves_no_segments(
            self, no_leaked_segments):
        from tests.fl.test_executor import _ExplodingDefense
        sim = _make_sim(defense=_ExplodingDefense(), rounds=1)
        with pytest.raises(RuntimeError, match="client 1 failed"):
            sim.run()
        assert not sim.executor._channel.is_open


# ----------------------------------------------------------------------
# wire payloads + accounting
# ----------------------------------------------------------------------

class TestPayloads:
    def test_stripped_task_is_descriptor_sized(self):
        """What actually crosses the pipe in shm mode is tiny, no
        matter how large the model — the O(descriptor) contract."""
        ref = ShmRound(weights_name="psm_test", slabs_name="psm_test2",
                       state_name=None, state_len=0, generation=3,
                       num_params=10_000_000, dtype="float64", slots=5)
        task = ClientTask(round_index=2, client_id=7,
                          global_buffer=None, round_state=None,
                          shm=ref, slab_index=1)
        assert len(pickle.dumps(task, pickle.HIGHEST_PROTOCOL)) < 1024

    def test_shm_run_records_ipc_split(self, no_leaked_segments):
        sim = _make_sim()
        sim.run()
        report = sim.cost_meter.report
        assert report.ipc_bytes_shared > 0
        assert report.ipc_bytes_pickled > 0  # descriptors still pickle
        # the weight plane moved through segments, not the pipe:
        # per-client pickled payload is descriptor-sized.
        per_client = report.ipc_bytes_pickled \
            / report.clients_completed
        assert per_client < 8192

    def test_pickle_run_records_pickled_only(self,
                                             no_leaked_segments):
        sim = _make_sim(ipc="pickle")
        sim.run()
        report = sim.cost_meter.report
        assert report.ipc_bytes_pickled > 0
        assert report.ipc_bytes_shared == 0

    def test_serial_run_records_no_ipc(self):
        sim = _make_sim(workers=0)
        sim.run()
        report = sim.cost_meter.report
        assert report.ipc_bytes_pickled == 0
        assert report.ipc_bytes_shared == 0
        assert report.ipc_summary() == "in-process (no executor IPC)"


# ----------------------------------------------------------------------
# slab backpressure under straggler-closing rounds
# ----------------------------------------------------------------------

class TestBackpressure:
    def test_straggler_rounds_recycle_slabs(self, no_leaked_segments):
        """Early-closed rounds abandon in-flight tasks that still hold
        leased slabs; later rounds must reap them instead of starving,
        and the run must stay bitwise equal to serial."""
        kwargs = dict(num_clients=8, rounds=3,
                      completion_threshold=0.5)
        from repro.nn.store import as_store
        serial = _make_sim(workers=0, **kwargs)
        serial.run()
        parallel = _make_sim(workers=2, **kwargs)
        parallel.run()
        assert np.array_equal(
            as_store(serial.server.global_weights).buffer,
            as_store(parallel.server.global_weights).buffer)
