"""Cost meter tests (Table 3 accounting)."""

import time

from repro.fl.costs import CostMeter, CostReport


def test_client_training_timer():
    meter = CostMeter()
    with meter.client_training():
        time.sleep(0.01)
    assert meter.report.client_train_seconds >= 0.01
    assert meter.report.client_train_rounds == 1


def test_defense_timer_separate_from_training():
    meter = CostMeter()
    with meter.client_training():
        pass
    with meter.client_defense():
        time.sleep(0.005)
    assert meter.report.client_defense_seconds >= 0.005
    # defense time counts toward the per-round training duration
    assert meter.report.train_seconds_per_round \
        >= meter.report.client_defense_seconds


def test_server_aggregation_timer():
    meter = CostMeter()
    with meter.server_aggregation():
        time.sleep(0.005)
    assert meter.report.aggregate_seconds_per_round >= 0.005
    assert meter.report.server_rounds == 1


def test_timer_survives_exceptions():
    meter = CostMeter()
    try:
        with meter.client_training():
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert meter.report.client_train_rounds == 1


def test_defense_state_records_peak():
    meter = CostMeter()
    meter.record_defense_state(100)
    meter.record_defense_state(50)
    assert meter.report.defense_state_bytes == 100


def test_empty_report_rates_are_zero():
    report = CostReport()
    assert report.train_seconds_per_round == 0.0
    assert report.aggregate_seconds_per_round == 0.0
