"""Federated simulation orchestrator tests."""

import math

import numpy as np
import pytest

from repro.data.partition import split_for_membership
from repro.data.synthetic import synthetic_tabular
from repro.fl.config import FLConfig
from repro.fl.simulation import FederatedSimulation
from repro.nn.model import weights_allclose
from repro.privacy.defenses.base import Defense


@pytest.fixture
def small_split(rng):
    ds = synthetic_tabular(rng, 400, 20, 4, noise=0.2)
    return split_for_membership(ds, rng)


def _sim(small_split, tiny_model_factory, defense=None, **cfg_kwargs):
    defaults = dict(num_clients=3, rounds=2, local_epochs=2, lr=0.1,
                    batch_size=16, seed=0)
    defaults.update(cfg_kwargs)
    return FederatedSimulation(small_split, tiny_model_factory,
                               FLConfig(**defaults), defense)


class TestSimulation:
    def test_run_produces_history(self, small_split, tiny_model_factory):
        sim = _sim(small_split, tiny_model_factory)
        history = sim.run()
        assert len(history.records) >= 1
        assert history.records[-1].round_index == 1

    def test_client_data_disjoint(self, small_split, tiny_model_factory):
        sim = _sim(small_split, tiny_model_factory)
        total = sum(len(d) for d in sim.client_data)
        assert total == len(small_split.members)

    def test_accuracy_improves_over_rounds(self, small_split,
                                           tiny_model_factory):
        sim = _sim(small_split, tiny_model_factory, rounds=8,
                   eval_every=1)
        history = sim.run()
        assert history.records[-1].global_accuracy \
            > history.records[0].global_accuracy

    def test_eval_every_skips_rounds(self, small_split,
                                     tiny_model_factory):
        sim = _sim(small_split, tiny_model_factory, rounds=4,
                   eval_every=2)
        history = sim.run()
        indices = [r.round_index for r in history.records]
        assert indices == [1, 3]

    def test_last_round_always_evaluated(self, small_split,
                                         tiny_model_factory):
        sim = _sim(small_split, tiny_model_factory, rounds=3,
                   eval_every=10)
        history = sim.run()
        assert history.records[-1].round_index == 2

    def test_last_updates_recorded(self, small_split, tiny_model_factory):
        sim = _sim(small_split, tiny_model_factory)
        sim.run()
        assert set(sim.last_updates) == {0, 1, 2}

    def test_transmitted_model_loads_update(self, small_split,
                                            tiny_model_factory):
        sim = _sim(small_split, tiny_model_factory)
        sim.run()
        model = sim.transmitted_model(1)
        assert weights_allclose(model.get_weights(), sim.last_updates[1])

    def test_transmitted_model_requires_participation(self, small_split,
                                                      tiny_model_factory):
        sim = _sim(small_split, tiny_model_factory)
        with pytest.raises(KeyError):
            sim.transmitted_model(0)

    def test_global_model_matches_server(self, small_split,
                                         tiny_model_factory):
        sim = _sim(small_split, tiny_model_factory)
        sim.run()
        assert weights_allclose(sim.global_model().get_weights(),
                                sim.server.global_weights)

    def test_deterministic_given_seed(self, small_split,
                                      tiny_model_factory):
        a = _sim(small_split, tiny_model_factory, seed=5)
        b = _sim(small_split, tiny_model_factory, seed=5)
        assert weights_allclose(a.run() and a.server.global_weights,
                                b.run() and b.server.global_weights)

    def test_dirichlet_partition_applied(self, small_split,
                                         tiny_model_factory):
        sim_iid = _sim(small_split, tiny_model_factory)
        sim_skew = FederatedSimulation(
            small_split, tiny_model_factory,
            FLConfig(num_clients=3, rounds=1, local_epochs=1, lr=0.1,
                     batch_size=16, seed=0),
            None, dirichlet_alpha=0.3)
        def skew(sim):
            stds = []
            for cls in range(small_split.members.num_classes):
                counts = [np.sum(d.y == cls) for d in sim.client_data]
                stds.append(np.std(counts))
            return np.mean(stds)
        assert skew(sim_skew) > skew(sim_iid)

    def test_partial_participation(self, small_split, tiny_model_factory):
        sim = _sim(small_split, tiny_model_factory, num_clients=3,
                   clients_per_round=2, rounds=3)
        sim.run()
        for record in sim.history.records:
            assert len(record.participating) == 2

    def test_history_raises_before_run(self, small_split,
                                       tiny_model_factory):
        sim = _sim(small_split, tiny_model_factory)
        with pytest.raises(RuntimeError):
            _ = sim.history.final_global_accuracy

    def test_costs_accumulated(self, small_split, tiny_model_factory):
        sim = _sim(small_split, tiny_model_factory)
        sim.run()
        report = sim.cost_meter.report
        assert report.client_train_rounds == 6  # 3 clients x 2 rounds
        assert report.server_rounds == 2
        assert report.train_seconds_per_round > 0
