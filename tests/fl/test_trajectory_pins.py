"""Old-plane-vs-flat-plane trajectory pins.

``tests/fixtures/trajectory_pins.npz`` holds the final weights of short
seeded training runs recorded on the *dict* parameter plane — per-layer
``{name: array}`` params, per-``(layer, key)`` optimizer loops — just
before the flat `WeightStore` training plane replaced it.  These tests
re-run the identical recipes on the current code and require the result
to match the recorded trajectory bitwise.

Exact equality is asserted first; a ≤2-ULP tolerance is the fallback
for the einsum/matmul contractions whose FMA grouping may differ
across BLAS builds (the same concession as the fedavg old-vs-new
tests).  Any larger difference means the refactor changed either an
arithmetic reduction order or an RNG draw order — both are bugs here,
not tolerances to widen.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from tests.fl.trajectory_recipes import (
    DEFENSE_NAMES,
    build_recipes,
    simulation_trajectory,
)

FIXTURE = (pathlib.Path(__file__).resolve().parent.parent
           / "fixtures" / "trajectory_pins.npz")

RECIPES = build_recipes()


def _assert_pinned(name: str, vector: np.ndarray) -> None:
    with np.load(FIXTURE) as pins:
        assert name in pins.files, f"no pin recorded for {name}"
        expected = pins[name]
    assert vector.shape == expected.shape
    if np.array_equal(vector, expected):
        return
    np.testing.assert_array_almost_equal_nulp(vector, expected, nulp=2)


@pytest.mark.parametrize("name", sorted(RECIPES))
def test_trajectory_matches_dict_plane(name):
    _assert_pinned(name, RECIPES[name]())


@pytest.mark.parametrize("ipc", ["pickle", "shm"])
@pytest.mark.parametrize("defense", DEFENSE_NAMES)
def test_parallel_trajectory_matches_dict_plane(defense, ipc):
    """The 2-worker executor must land on the same serial-plane pin
    over both IPC transports (pickled vectors and shared-memory
    broadcast + result slabs)."""
    vector = simulation_trajectory(defense, workers=2, ipc=ipc)
    _assert_pinned(f"defense/{defense}", vector)
