"""Aggregation rule tests: FedAvg weighting, robust variants."""

import numpy as np
import pytest

from repro.fl.aggregation import (
    coordinate_median,
    fedavg,
    scale_weights,
    sum_updates,
    trimmed_mean,
)


def _weights(value, shape=(2, 2)):
    return [{"W": np.full(shape, float(value)), "b": np.zeros(2)}]


class TestFedAvg:
    def test_equal_weights_is_mean(self):
        out = fedavg([_weights(1), _weights(3)], [10, 10])
        assert np.allclose(out[0]["W"], 2.0)

    def test_sample_count_weighting(self):
        out = fedavg([_weights(0), _weights(4)], [30, 10])
        assert np.allclose(out[0]["W"], 1.0)  # (0*3 + 4*1) / 4

    def test_single_client_identity(self):
        update = _weights(7)
        out = fedavg([update], [5])
        assert np.allclose(out[0]["W"], update[0]["W"])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            fedavg([], [])

    def test_rejects_count_mismatch(self):
        with pytest.raises(ValueError):
            fedavg([_weights(1)], [1, 2])

    def test_rejects_zero_total_samples(self):
        with pytest.raises(ValueError):
            fedavg([_weights(1)], [0])

    def test_does_not_mutate_inputs(self):
        a, b = _weights(1), _weights(3)
        fedavg([a, b], [1, 1])
        assert np.all(a[0]["W"] == 1.0)


class TestSumAndScale:
    def test_sum(self):
        out = sum_updates([_weights(1), _weights(2), _weights(3)])
        assert np.allclose(out[0]["W"], 6.0)

    def test_scale(self):
        out = scale_weights(_weights(4), 0.25)
        assert np.allclose(out[0]["W"], 1.0)

    def test_sum_then_scale_equals_fedavg_for_equal_counts(self):
        updates = [_weights(1), _weights(5)]
        direct = fedavg(updates, [3, 3])
        masked = scale_weights(sum_updates(
            [scale_weights(u, 3) for u in updates]), 1 / 6)
        assert np.allclose(direct[0]["W"], masked[0]["W"])


class TestRobustAggregation:
    def test_trimmed_mean_drops_outlier(self):
        updates = [_weights(1), _weights(1), _weights(1), _weights(1000)]
        out = trimmed_mean(updates, trim=1)
        assert np.allclose(out[0]["W"], 1.0)

    def test_trimmed_mean_rejects_overtrim(self):
        with pytest.raises(ValueError):
            trimmed_mean([_weights(1), _weights(2)], trim=1)

    def test_coordinate_median_resists_byzantine(self):
        updates = [_weights(2), _weights(2), _weights(-1e9)]
        out = coordinate_median(updates)
        assert np.allclose(out[0]["W"], 2.0)

    def test_median_of_even_count(self):
        out = coordinate_median([_weights(1), _weights(3)])
        assert np.allclose(out[0]["W"], 2.0)
