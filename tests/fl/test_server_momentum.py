"""FedAvgM server-momentum tests (extension)."""

import numpy as np
import pytest

from repro.fl.client import ClientUpdate
from repro.fl.config import FLConfig
from repro.fl.server import FLServer
from repro.privacy.defenses.base import Defense


def _weights(value):
    return [{"W": np.full((2, 2), float(value))}]


def _server(momentum, start=0.0):
    config = FLConfig(num_clients=1, rounds=1,
                      server_momentum=momentum)
    return FLServer(_weights(start), config, Defense(),
                    np.random.default_rng(0))


def test_rejects_bad_momentum():
    with pytest.raises(ValueError):
        FLConfig(server_momentum=1.0)
    with pytest.raises(ValueError):
        FLConfig(server_momentum=-0.1)


def test_zero_momentum_is_plain_fedavg():
    server = _server(0.0)
    out = server.aggregate([ClientUpdate(0, _weights(4), 10, 0.0)])
    assert np.allclose(out[0]["W"], 4.0)


def test_first_round_matches_fedavg():
    """With an empty buffer the first momentum step equals the delta."""
    server = _server(0.9)
    out = server.aggregate([ClientUpdate(0, _weights(4), 10, 0.0)])
    assert np.allclose(out[0]["W"], 4.0)


def test_momentum_accumulates_across_rounds():
    """Constant per-round deltas are amplified by the running buffer."""
    server = _server(0.5)
    server.aggregate([ClientUpdate(0, _weights(1), 10, 0.0)])
    # round 2: clients move 1 further; buffer adds half the old delta
    out = server.aggregate([ClientUpdate(0, _weights(2), 10, 0.0)])
    assert out[0]["W"][0, 0] > 2.0


def test_momentum_converges_on_fixed_point():
    """If clients return exactly the global model, the buffer decays."""
    server = _server(0.5, start=3.0)
    for _ in range(20):
        out = server.aggregate(
            [ClientUpdate(0, _weights(3.0), 10, 0.0)])
    assert np.allclose(out[0]["W"], 3.0, atol=1e-3)
