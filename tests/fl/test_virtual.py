"""Virtual-client plane: descriptors, registry, pool, bitwise parity.

The plane's contract has three legs:

* **parity** — a trajectory is a pure function of (seed, config,
  defense), never of the pool capacity: capacity 1 (every task rebinds
  the single pooled model) must match capacity ``num_clients`` (every
  client keeps its own model — the eager plane's shape) bit for bit,
  for every defense, including DINAR's stored private layers and
  secure aggregation's pairwise masks;
* **isolation** — a rebind never leaks the previous client's buffers:
  handles expose only the bound client's state, and registry rows are
  copies that pooled-model mutation cannot corrupt;
* **economy** — construction is O(pool), not O(num_clients): one
  factory call, zero live models until materialization, lazy shard
  subsets.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.partition import ClientShards, split_for_membership
from repro.data.synthetic import synthetic_tabular
from repro.fl.config import FLConfig
from repro.fl.simulation import FederatedSimulation
from repro.fl.virtual import PersonalWeightsRegistry, VirtualClientFleet
from repro.models.fcnn import build_fcnn
from repro.privacy.defenses.make import make_defense_for_config

DEFENSE_NAMES = ("none", "dinar", "ldp", "wdp", "cdp", "gc", "sa")


def _split():
    rng = np.random.default_rng(3)
    data = synthetic_tabular(rng, 300, 20, 4, noise=0.3, name="virt")
    return split_for_membership(data, np.random.default_rng(1))


def _factory(rng):
    return build_fcnn(20, 4, rng, hidden=(12,))


def _run(defense_name: str, capacity: int, *, num_clients: int = 3,
         workers: int = 0) -> FederatedSimulation:
    config = FLConfig(num_clients=num_clients, rounds=2, local_epochs=1,
                      batch_size=32, seed=0, eval_every=2,
                      workers=workers, max_materialized=capacity)
    defense = make_defense_for_config(defense_name, config)
    sim = FederatedSimulation(_split(), _factory, config, defense)
    sim.run()
    return sim


def _snapshot(sim: FederatedSimulation) -> dict:
    """Everything a trajectory determines: global weights, every
    client's personalized weights, and DINAR's stored layers."""
    snap = {
        "global": sim.server.global_weights.buffer.copy(),
        "personal": {
            cid: sim.registry.get(cid).buffer.copy()
            for cid in sim.registry.client_ids()
        },
    }
    stored = getattr(sim.defense, "_stored", None)
    if stored:
        snap["dinar"] = {
            cid: {idx: {k: v.copy() for k, v in arrays.items()}
                  for idx, arrays in layers.items()}
            for cid, layers in stored.items()
        }
    return snap


def _assert_snapshots_equal(a: dict, b: dict) -> None:
    np.testing.assert_array_equal(a["global"], b["global"])
    assert a["personal"].keys() == b["personal"].keys()
    for cid in a["personal"]:
        np.testing.assert_array_equal(a["personal"][cid],
                                      b["personal"][cid])
    assert ("dinar" in a) == ("dinar" in b)
    if "dinar" in a:
        assert a["dinar"].keys() == b["dinar"].keys()
        for cid in a["dinar"]:
            assert a["dinar"][cid].keys() == b["dinar"][cid].keys()
            for idx in a["dinar"][cid]:
                for key, value in a["dinar"][cid][idx].items():
                    np.testing.assert_array_equal(
                        b["dinar"][cid][idx][key], value)


# ----------------------------------------------------------------------
# parity: pool capacity is bitwise-invisible, across every defense
# ----------------------------------------------------------------------

#: Eager-shaped reference (capacity >= num_clients: no rebind ever),
#: computed once per defense and reused across hypothesis examples.
_REFERENCE: dict = {}


def _reference(defense_name: str) -> dict:
    if defense_name not in _REFERENCE:
        _REFERENCE[defense_name] = _snapshot(_run(defense_name, 3))
    return _REFERENCE[defense_name]


@settings(max_examples=16, deadline=None)
@given(st.sampled_from(DEFENSE_NAMES), st.integers(1, 2))
def test_virtual_fleet_bitwise_matches_eager_any_capacity(
        defense_name, capacity):
    """Starved pools (capacity < num_clients, rebinds every round)
    reproduce the eager-shaped trajectory exactly — DINAR stored
    layers and SA masks included."""
    virtual = _snapshot(_run(defense_name, capacity))
    _assert_snapshots_equal(virtual, _reference(defense_name))


def test_parallel_executor_matches_serial_with_starved_pool():
    serial = _snapshot(_run("dinar", 1))
    parallel = _snapshot(_run("dinar", 1, workers=2))
    _assert_snapshots_equal(serial, parallel)


# ----------------------------------------------------------------------
# economy: construction is O(pool), not O(num_clients)
# ----------------------------------------------------------------------

def test_construction_builds_one_model_regardless_of_fleet_size():
    calls = {"n": 0}

    def counting_factory(rng):
        calls["n"] += 1
        return _factory(rng)

    config = FLConfig(num_clients=64, rounds=1, local_epochs=1,
                      batch_size=32, seed=0)
    sim = FederatedSimulation(_split(), counting_factory, config)
    assert calls["n"] == 1, (
        f"construction must build exactly one template model, "
        f"called the factory {calls['n']} times")
    assert sim.fleet.live_models == 0
    assert sim.fleet.materializations == 0


def test_live_models_bounded_by_capacity_over_a_run():
    sim = _run("none", 2, num_clients=5)
    assert sim.fleet.live_models == 2
    assert sim.fleet.peak_live_models == 2
    # every (round, client) cell was a bind: 2 rounds x 5 clients,
    # minus any cell whose client was already bound (capacity 2 over
    # 5 round-robin clients never gets a hit)
    assert sim.fleet.materializations == 10
    assert sim.cost_meter.report.peak_live_models == 2
    assert sim.cost_meter.report.model_materializations == 10
    assert sim.cost_meter.report.registry_bytes == sim.registry.nbytes


def test_num_samples_answered_without_materialization():
    config = FLConfig(num_clients=4, rounds=1, seed=0)
    sim = FederatedSimulation(_split(), _factory, config)
    for cid in range(4):
        assert sim.fleet.num_samples(cid) == len(sim.client_dataset(cid))
    assert sim.fleet.live_models == 0


# ----------------------------------------------------------------------
# isolation: rebinds never leak the previous client's state
# ----------------------------------------------------------------------

def test_rebind_exposes_only_the_new_clients_state():
    sim = _run("none", 1, num_clients=3)
    handle = sim.fleet.materialize(0)
    assert handle.client_id == 0
    personal_0 = handle.personal_weights.buffer.copy()
    data_0 = handle.data

    rebound = sim.fleet.materialize(1)
    assert rebound is handle, "capacity-1 pool must reuse the instance"
    assert handle.client_id == 1
    # the handle's dataset and personal weights are client 1's now
    shard_1 = sim.shards.shard(1)
    np.testing.assert_array_equal(handle.data.y,
                                  sim.split.members.y[shard_1])
    assert not np.array_equal(handle.personal_weights.buffer, personal_0)
    assert handle.data is not data_0
    # ...and client 0's residue is untouched in the registry
    np.testing.assert_array_equal(sim.registry.get(0).buffer, personal_0)


def test_unbound_rebind_has_no_personal_weights():
    config = FLConfig(num_clients=3, rounds=1, seed=0,
                      max_materialized=1)
    sim = FederatedSimulation(_split(), _factory, config)
    first = sim.fleet.materialize(0)
    # simulate residue for client 0 only
    sim.registry.put(0, np.ones(sim.server.global_weights.layout
                                .num_params))
    assert first.personal_weights is not None
    second = sim.fleet.materialize(1)
    assert second is first
    assert second.personal_weights is None, (
        "a rebound client must not see the previous client's weights")
    with pytest.raises(RuntimeError, match="has not trained"):
        second.evaluate(sim.split.nonmembers.x, sim.split.nonmembers.y)


def test_registry_rows_survive_pooled_model_mutation():
    sim = _run("none", 1, num_clients=3)
    row = sim.registry.get(2).buffer
    before = row.copy()
    client = sim.fleet.materialize(2)
    client.model.weights.buffer[...] = -1.0
    np.testing.assert_array_equal(sim.registry.get(2).buffer, before)


# ----------------------------------------------------------------------
# registry semantics
# ----------------------------------------------------------------------

def _layout():
    return _factory(np.random.default_rng(0)).weight_layout()


def test_registry_put_copies_and_get_views():
    layout = _layout()
    registry = PersonalWeightsRegistry(layout)
    source = np.arange(layout.num_params, dtype=np.float64)
    registry.put(7, source)
    source[...] = -5.0
    np.testing.assert_array_equal(
        registry.get(7).buffer,
        np.arange(layout.num_params, dtype=np.float64))
    # get() is a zero-copy view: a second put is visible through it
    view = registry.get(7).buffer
    registry.put(7, np.zeros(layout.num_params))
    assert view[0] == 0.0


def test_registry_growth_preserves_rows_and_order():
    layout = _layout()
    registry = PersonalWeightsRegistry(layout)
    ids = [20, 3, 11, 40, 5, 0, 99, 12, 33, 8, 1, 77]  # forces growth
    for i, cid in enumerate(ids):
        registry.put(cid, np.full(layout.num_params, float(i)))
    assert registry.client_ids() == sorted(ids)
    assert len(registry) == len(ids)
    for i, cid in enumerate(ids):
        np.testing.assert_array_equal(
            registry.get(cid).buffer,
            np.full(layout.num_params, float(i)))
    assert registry.get(1234) is None
    assert 1234 not in registry
    assert 40 in registry


def test_registry_rejects_wrong_size():
    registry = PersonalWeightsRegistry(_layout())
    with pytest.raises(ValueError, match="does not match layout"):
        registry.put(0, np.zeros(3))


# ----------------------------------------------------------------------
# shards
# ----------------------------------------------------------------------

def test_client_shards_pack_round_trips():
    rng = np.random.default_rng(9)
    shard_list = [rng.integers(0, 1000, size=n)
                  for n in (5, 0, 17, 1, 42)]
    shards = ClientShards.pack(shard_list)
    assert len(shards) == 5
    assert shards.total_samples == 65
    for i, original in enumerate(shard_list):
        np.testing.assert_array_equal(shards.shard(i), original)
        assert shards.num_samples(i) == len(original)
    # views, not copies
    assert np.shares_memory(shards.shard(2), shards.indices)
    with pytest.raises(IndexError):
        shards.shard(5)
    assert shards.nbytes == shards.indices.nbytes + shards.offsets.nbytes


# ----------------------------------------------------------------------
# evaluation routing
# ----------------------------------------------------------------------

def test_fleet_shares_one_eval_model():
    sim = _run("none", 2, num_clients=3)
    assert sim.fleet.eval_model() is sim.fleet.eval_model()
    test = sim.split.nonmembers
    for cid in sim.registry.client_ids():
        client = sim.fleet.materialize(cid)
        via_shared = client.evaluate(test.x, test.y)
        via_clone = float(np.mean(
            client.personalized_model().predict(test.x) == test.y))
        assert via_shared == via_clone


def test_mean_client_accuracy_covers_exactly_the_registry():
    config = FLConfig(num_clients=5, rounds=2, local_epochs=1,
                      batch_size=32, seed=0, clients_per_round=2,
                      eval_every=2)
    sim = FederatedSimulation(_split(), _factory, config)
    sim.run()
    trained = sim.registry.client_ids()
    assert 0 < len(trained) < 5
    test = sim.split.nonmembers
    expected = float(np.mean([
        sim.fleet.materialize(cid).evaluate(test.x, test.y)
        for cid in trained
    ]))
    assert sim.mean_client_accuracy() == expected


def test_standalone_fleet_usable_without_simulation():
    split = _split()
    members = split.members
    shards = ClientShards.pack([np.arange(0, 30), np.arange(30, 75)])
    config = FLConfig(num_clients=2, rounds=1, seed=0)
    template = _factory(np.random.default_rng(0))
    fleet = VirtualClientFleet(members, shards, template, config,
                               make_defense_for_config("none", config))
    assert len(fleet) == 2
    assert [c.client_id for c in fleet] == [0, 1]
    assert fleet.dataset(1).x.shape[0] == 45
    descriptor = fleet.descriptor(0)
    assert descriptor.num_samples == 30
    assert np.shares_memory(descriptor.shard, shards.indices)
