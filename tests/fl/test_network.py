"""Network transport model and traffic accounting tests."""

import numpy as np
import pytest

from repro.data.partition import split_for_membership
from repro.data.synthetic import synthetic_tabular
from repro.fl.config import FLConfig
from repro.fl.network import (
    LinkSpec,
    NetworkModel,
    TrafficMeter,
    dense_nbytes,
    sparse_nbytes,
)
from repro.fl.simulation import FederatedSimulation


class TestLinkSpec:
    def test_transfer_time(self):
        link = LinkSpec(latency_seconds=0.1,
                        bandwidth_bytes_per_second=1000)
        assert link.transfer_seconds(500) == pytest.approx(0.6)

    def test_zero_bytes_costs_latency_only(self):
        link = LinkSpec(latency_seconds=0.05)
        assert link.transfer_seconds(0) == pytest.approx(0.05)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LinkSpec(latency_seconds=-1)
        with pytest.raises(ValueError):
            LinkSpec(bandwidth_bytes_per_second=0)
        with pytest.raises(ValueError):
            LinkSpec().transfer_seconds(-1)


class TestEncodings:
    def test_dense_counts_all_arrays(self, tiny_model):
        weights = tiny_model.get_weights()
        expected = sum(v.nbytes for layer in weights
                       for v in layer.values())
        assert dense_nbytes(weights) == expected

    def test_sparse_counts_nonzero(self):
        weights = [{"W": np.array([[0.0, 1.0], [0.0, 2.0]])}]
        assert sparse_nbytes(weights) == 2 * 12  # 2 coords x (8+4)

    def test_sparse_against_reference(self):
        ref = [{"W": np.ones((2, 2))}]
        changed = [{"W": np.array([[1.0, 1.0], [5.0, 1.0]])}]
        assert sparse_nbytes(changed, ref) == 12

    def test_sparse_cheaper_than_dense_when_sparse(self, tiny_model):
        weights = tiny_model.get_weights()
        mostly_same = [
            {k: v.copy() for k, v in layer.items()} for layer in weights
        ]
        mostly_same[0]["W"][0, 0] += 1.0
        assert sparse_nbytes(mostly_same, weights) \
            < dense_nbytes(weights)

    def test_dense_store_answers_from_layout(self, tiny_model):
        store = tiny_model.get_store()
        assert dense_nbytes(store) == store.layout.nbytes
        assert dense_nbytes(store) == dense_nbytes(store.to_layers())

    def test_sparse_store_matches_nested_without_reference(
            self, tiny_model):
        store = tiny_model.get_store()
        store.buffer[::3] = 0.0
        assert sparse_nbytes(store) == sparse_nbytes(store.to_layers())

    def test_sparse_store_delta_matches_nested(self, tiny_model):
        reference = tiny_model.get_store()
        changed = reference.copy()
        changed.view(0, "W")[0, 0] += 1.0
        changed.view(2, "b")[:] += 0.5
        expected = sparse_nbytes(changed.to_layers(),
                                 reference.to_layers())
        assert sparse_nbytes(changed, reference) == expected
        # mixed representations agree too
        assert sparse_nbytes(changed, reference.to_layers()) == expected

    def test_sparse_all_zero_layers_cost_nothing_without_reference(self):
        from repro.nn.store import WeightStore
        weights = [{"W": np.zeros((3, 3)), "b": np.zeros(3)},
                   {"W": np.array([[1.0, 0.0]])}]
        assert sparse_nbytes(weights) == 1 * 12
        assert sparse_nbytes(WeightStore.from_layers(weights)) == 1 * 12

    def test_sparse_identical_delta_is_free(self, tiny_model):
        store = tiny_model.get_store()
        assert sparse_nbytes(store, store.copy()) == 0
        assert sparse_nbytes(store.to_layers(), store.to_layers()) == 0


class TestTrafficMeter:
    def test_records_exchange(self):
        meter = TrafficMeter(NetworkModel(
            uplink=LinkSpec(0.0, 1000), downlink=LinkSpec(0.0, 2000)))
        record = meter.record_exchange(0, 3, download_bytes=2000,
                                       upload_bytes=1000)
        assert record.download_seconds == pytest.approx(1.0)
        assert record.upload_seconds == pytest.approx(1.0)
        assert meter.report.total_upload_bytes == 1000

    def test_per_round_aggregation(self):
        meter = TrafficMeter()
        meter.record_exchange(0, 0, 10, 20)
        meter.record_exchange(0, 1, 10, 30)
        meter.record_exchange(1, 0, 10, 40)
        per_round = meter.report.per_round_upload_bytes()
        assert per_round == {0: 50, 1: 40}


class TestSimulationTraffic:
    @pytest.fixture
    def sim_factory(self, rng, tiny_model_factory):
        data = synthetic_tabular(rng, 300, 20, 4, noise=0.25)
        split = split_for_membership(data, rng)

        def build(defense=None):
            return FederatedSimulation(
                split, tiny_model_factory,
                FLConfig(num_clients=3, rounds=2, local_epochs=1,
                         batch_size=32, seed=0), defense)
        return build

    def test_traffic_recorded_per_client_per_round(self, sim_factory):
        sim = sim_factory()
        sim.run()
        assert len(sim.traffic_meter.report.records) == 6  # 3 x 2

    def test_download_matches_model_size(self, sim_factory):
        sim = sim_factory()
        sim.run()
        model_bytes = dense_nbytes(sim.server.global_weights)
        for record in sim.traffic_meter.report.records:
            assert record.download_bytes == model_bytes

    def test_gc_uploads_less_than_dense(self, sim_factory):
        from repro.privacy.defenses.compression import GradientCompression
        dense_sim = sim_factory()
        dense_sim.run()
        gc_sim = sim_factory(GradientCompression(keep_ratio=0.05))
        gc_sim.run()
        assert gc_sim.traffic_meter.report.total_upload_bytes \
            < dense_sim.traffic_meter.report.total_upload_bytes / 2

    def test_network_seconds_positive(self, sim_factory):
        sim = sim_factory()
        sim.run()
        assert sim.traffic_meter.report.total_network_seconds > 0
