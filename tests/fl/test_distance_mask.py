"""Obfuscation-aware robust distances (``distance_mask``).

DINAR replaces its private layer with pure noise, which dominates
whole-vector distances and lets byzantine clients hide behind the
obfuscation floor.  Masking the protected segment out of the
clustering distance de-camouflages them.  These tests pin the config
plumbing, the masked distance math (bitwise no-op for an all-True
mask), the camouflage counter-example, and the end-to-end filter.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.partition import split_for_membership
from repro.data.synthetic import synthetic_tabular
from repro.fl.aggregation import (
    _cluster_distances,
    clustered_mean,
)
from repro.fl.config import FLConfig
from repro.fl.server import FLServer
from repro.fl.simulation import FederatedSimulation
from repro.privacy.defenses import make_defense
from repro.privacy.defenses.base import Defense


def _rows(matrix: np.ndarray) -> list[list[dict]]:
    return [[{"W": row.copy()}] for row in matrix]


# ----------------------------------------------------------------------
# config + server plumbing
# ----------------------------------------------------------------------

class TestPlumbing:
    def test_config_rejects_unknown_mask(self):
        with pytest.raises(ValueError, match="distance_mask"):
            FLConfig(distance_mask="bogus", aggregator="clustered")

    def test_config_requires_clustered(self):
        with pytest.raises(ValueError, match="clustered"):
            FLConfig(distance_mask="obfuscated", aggregator="fedavg")

    def test_server_requires_protected_indices(self, tiny_model, rng):
        config = FLConfig(aggregator="clustered",
                          distance_mask="obfuscated")
        with pytest.raises(ValueError, match="protected_indices"):
            FLServer(tiny_model.weights, config, Defense(), rng)

    def test_mask_excludes_protected_full_ranges(self, tiny_model, rng):
        config = FLConfig(aggregator="clustered",
                          distance_mask="obfuscated")
        defense = make_defense("dinar")  # protects layer -2
        server = FLServer(tiny_model.weights, config, defense, rng)
        include = server._mask_include()
        layout = tiny_model.weight_layout()
        protected = defense.protected_indices(layout.num_layers)
        hidden = sum(
            layout.layer_slice(i).stop - layout.layer_slice(i).start
            for i in protected)
        assert include.shape == (layout.num_params,)
        assert include.sum() == layout.num_params - hidden
        for i in protected:
            assert not include[layout.layer_slice(i)].any()
        # Cached: pure function of layout + defense.
        assert server._mask_include() is include

    def test_mask_none_is_none(self, tiny_model, rng):
        config = FLConfig(aggregator="clustered")
        server = FLServer(tiny_model.weights, config, Defense(), rng)
        assert server._mask_include() is None


# ----------------------------------------------------------------------
# masked distance math
# ----------------------------------------------------------------------

class TestMaskedDistances:
    def test_all_true_mask_is_bitwise_noop(self, rng):
        matrix = rng.standard_normal((6, 2048))
        include = np.ones(2048, dtype=bool)
        np.testing.assert_array_equal(
            _cluster_distances(matrix, include),
            _cluster_distances(matrix))

    def test_masked_coordinates_are_ignored(self, rng):
        matrix = rng.standard_normal((6, 100))
        include = np.zeros(100, dtype=bool)
        include[:60] = True
        noisy = matrix.copy()
        noisy[:, 60:] = rng.standard_normal((6, 40)) * 1e6
        np.testing.assert_array_equal(
            _cluster_distances(matrix, include),
            _cluster_distances(noisy, include))

    def test_clustered_mean_validates_mask_shape(self, rng):
        matrix = rng.standard_normal((4, 10))
        with pytest.raises(ValueError, match="distance_include"):
            clustered_mean(_rows(matrix),
                           distance_include=np.ones(7, dtype=bool))

    def test_camouflaged_byzantine_row(self, rng):
        """The DINAR-looks-byzantine counter-example in miniature.

        Coordinates [40:80] model an obfuscated layer: every client
        ships large random noise there (so whole-vector distances are
        all huge and indistinguishable).  One client is additionally
        byzantine on the honest block [0:40].  Unmasked clustering
        keeps everyone; masking the obfuscated block out of the
        distance filters exactly the byzantine row.
        """
        honest = rng.standard_normal((6, 80)) * 0.01
        honest[:, 40:] = rng.standard_normal((6, 40)) * 50.0
        matrix = honest.copy()
        matrix[2, :40] = 5.0  # byzantine only where it matters
        include = np.zeros(80, dtype=bool)
        include[:40] = True

        unmasked: dict = {}
        clustered_mean(_rows(matrix), diagnostics=unmasked)
        masked: dict = {}
        clustered_mean(_rows(matrix), diagnostics=masked,
                       distance_include=include)

        assert 2 not in unmasked["filtered"]  # hidden by the noise floor
        assert masked["filtered"] == [2]


# ----------------------------------------------------------------------
# end-to-end: dinar x clustered x byzantine
# ----------------------------------------------------------------------

@pytest.fixture
def small_split(rng):
    ds = synthetic_tabular(rng, 400, 20, 4, noise=0.2)
    return split_for_membership(ds, rng)


def _run(small_split, tiny_model_factory, distance_mask):
    config = FLConfig(num_clients=8, rounds=2, local_epochs=1, lr=0.1,
                      batch_size=32, seed=5, aggregator="clustered",
                      distance_mask=distance_mask,
                      adversary="byzantine", adversary_fraction=0.25)
    sim = FederatedSimulation(small_split, tiny_model_factory, config,
                              make_defense("dinar"))
    history = sim.run()
    return sim, history


class TestEndToEnd:
    def test_mask_decamouflages_byzantine_clients(
            self, small_split, tiny_model_factory):
        sim, history = _run(small_split, tiny_model_factory,
                            "obfuscated")
        adversaries = sorted(sim.behavior.adversaries)
        assert len(adversaries) == 2  # 25% of 8
        for record in history.records:
            assert set(record.adversaries) <= set(record.filtered)

    def test_unmasked_distance_is_blind_under_dinar(
            self, small_split, tiny_model_factory):
        """The failure mode that motivates the mask: whole-vector
        distances see only the obfuscation noise, so the filter
        catches no true adversary."""
        sim, history = _run(small_split, tiny_model_factory, "none")
        caught = set()
        for record in history.records:
            caught |= set(record.adversaries) & set(record.filtered)
        assert not caught
