"""Simulation checkpoint tests."""

import numpy as np
import pytest

from repro.core.dinar import DINAR
from repro.data.partition import split_for_membership
from repro.data.synthetic import synthetic_tabular
from repro.fl.checkpoint import load_checkpoint, save_checkpoint
from repro.fl.config import FLConfig
from repro.fl.simulation import FederatedSimulation
from repro.nn.model import weights_allclose


@pytest.fixture
def make_sim(rng, tiny_model_factory):
    data = synthetic_tabular(rng, 300, 20, 4, noise=0.3)
    split = split_for_membership(data, np.random.default_rng(1))

    def build(defense=None):
        return FederatedSimulation(
            split, tiny_model_factory,
            FLConfig(num_clients=3, rounds=2, local_epochs=2,
                     batch_size=32, seed=0), defense)
    return build


def test_roundtrip_restores_global_model(make_sim, tmp_path):
    sim = make_sim()
    sim.run()
    save_checkpoint(sim, tmp_path / "ckpt")

    fresh = make_sim()
    meta = load_checkpoint(fresh, tmp_path / "ckpt")
    assert meta["rounds_completed"] == 2  # one record per round
    assert weights_allclose(fresh.server.global_weights,
                            sim.server.global_weights, atol=0.0)


def test_roundtrip_restores_personal_weights(make_sim, tmp_path):
    sim = make_sim()
    sim.run()
    save_checkpoint(sim, tmp_path / "ckpt")
    fresh = make_sim()
    load_checkpoint(fresh, tmp_path / "ckpt")
    for original, restored in zip(sim.clients, fresh.clients):
        assert weights_allclose(original.personal_weights,
                                restored.personal_weights, atol=0.0)


def test_roundtrip_restores_dinar_state(make_sim, tmp_path):
    sim = make_sim(DINAR(private_layer=-2))
    sim.run()
    save_checkpoint(sim, tmp_path / "ckpt")
    fresh = make_sim(DINAR(private_layer=-2))
    load_checkpoint(fresh, tmp_path / "ckpt")
    for client_id, layers in sim.defense._stored.items():
        restored = fresh.defense._stored[client_id]
        for idx, arrays in layers.items():
            for key, value in arrays.items():
                assert np.array_equal(restored[idx][key], value)


def test_restored_simulation_continues_identically(make_sim, tmp_path):
    """Running round 2 after restore matches an uninterrupted run...
    for the deterministic parts (the client rngs advance with use, so
    we check the restored sim produces a *valid* continuation)."""
    sim = make_sim(DINAR(private_layer=-2))
    sim.run_round(0)
    save_checkpoint(sim, tmp_path / "ckpt")
    fresh = make_sim(DINAR(private_layer=-2))
    load_checkpoint(fresh, tmp_path / "ckpt")
    record = fresh.run_round(1)
    assert record is None or 0.0 <= record.global_accuracy <= 1.0
    assert set(fresh.last_updates) == {0, 1, 2}
