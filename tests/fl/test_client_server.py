"""Client and server behaviour tests."""

import numpy as np
import pytest

from repro.data.synthetic import synthetic_tabular
from repro.fl.client import FLClient
from repro.fl.config import FLConfig
from repro.fl.server import FLServer
from repro.nn.model import weights_allclose
from repro.privacy.defenses.base import Defense


def _client(rng, tiny_model_factory, defense=None, config=None,
            n_samples=60):
    data = synthetic_tabular(rng, n_samples, 20, 4, noise=0.2)
    config = config or FLConfig(num_clients=2, rounds=1, local_epochs=2,
                                lr=0.1, batch_size=16)
    return FLClient(0, tiny_model_factory(np.random.default_rng(1)), data,
                    config, defense or Defense(),
                    np.random.default_rng(2))


class TestFLClient:
    def test_training_changes_weights(self, rng, tiny_model_factory):
        client = _client(rng, tiny_model_factory)
        start = client.model.get_weights()
        update = client.train_round(start, 0)
        assert not weights_allclose(start, update.weights)

    def test_update_metadata(self, rng, tiny_model_factory):
        client = _client(rng, tiny_model_factory)
        update = client.train_round(client.model.get_weights(), 0)
        assert update.client_id == 0
        assert update.num_samples == 60
        assert update.train_seconds > 0

    def test_personalized_model_available_after_round(self, rng,
                                                      tiny_model_factory):
        client = _client(rng, tiny_model_factory)
        with pytest.raises(RuntimeError):
            client.personalized_model()
        client.train_round(client.model.get_weights(), 0)
        model = client.personalized_model()
        assert weights_allclose(model.get_weights(),
                                client.personal_weights)

    def test_evaluate_returns_accuracy(self, rng, tiny_model_factory,
                                       tiny_dataset):
        client = _client(rng, tiny_model_factory)
        client.train_round(client.model.get_weights(), 0)
        score = client.evaluate(tiny_dataset.x, tiny_dataset.y)
        assert 0.0 <= score <= 1.0

    def test_rejects_empty_data(self, rng, tiny_model_factory):
        empty = synthetic_tabular(rng, 10, 20, 4).subset(np.array([],
                                                                  dtype=int))
        with pytest.raises(ValueError):
            FLClient(0, tiny_model_factory(rng), empty, FLConfig(),
                     Defense(), rng)

    def test_defense_hooks_invoked(self, rng, tiny_model_factory):
        calls = []

        class Spy(Defense):
            def on_receive_global(self, client_id, weights):
                calls.append("receive")
                return weights

            def on_send_update(self, client_id, weights, num_samples,
                               rng_):
                calls.append("send")
                return weights

        client = _client(rng, tiny_model_factory, defense=Spy())
        client.train_round(client.model.get_weights(), 0)
        assert calls == ["receive", "send"]

    def test_train_seconds_is_per_round_not_cumulative(
            self, rng, tiny_model_factory):
        """Regression: with the shared cost meter, each round's update
        must report that round's own wall time, not the meter's
        cumulative training total."""
        from repro.fl.costs import CostMeter
        meter = CostMeter()
        data = synthetic_tabular(rng, 60, 20, 4, noise=0.2)
        config = FLConfig(num_clients=1, rounds=2, local_epochs=2,
                          lr=0.1, batch_size=16)
        client = FLClient(0, tiny_model_factory(np.random.default_rng(1)),
                          data, config, Defense(),
                          np.random.default_rng(2), cost_meter=meter)
        first = client.train_round(client.model.get_weights(), 0)
        second = client.train_round(client.model.get_store(), 1)
        total = meter.report.client_train_seconds
        assert first.train_seconds > 0
        assert second.train_seconds > 0
        assert second.train_seconds < total
        assert first.train_seconds + second.train_seconds == \
            pytest.approx(total, rel=1e-6)

    def test_training_learns(self, rng, tiny_model_factory):
        config = FLConfig(num_clients=1, rounds=1, local_epochs=20,
                          lr=0.1, batch_size=16)
        client = _client(rng, tiny_model_factory, config=config,
                         n_samples=80)
        client.train_round(client.model.get_weights(), 0)
        assert client.evaluate(client.data.x, client.data.y) > 0.8


class TestFLServer:
    def _make(self, rng, tiny_model_factory, defense=None, **cfg):
        config = FLConfig(num_clients=4, rounds=1, **cfg)
        model = tiny_model_factory(rng)
        return FLServer(model.get_weights(), config, defense or Defense(),
                        rng)

    def test_selects_all_by_default(self, rng, tiny_model_factory):
        server = self._make(rng, tiny_model_factory)
        assert server.select_clients(0) == [0, 1, 2, 3]

    def test_partial_selection(self, rng, tiny_model_factory):
        server = self._make(rng, tiny_model_factory, clients_per_round=2)
        chosen = server.select_clients(0)
        assert len(chosen) == 2
        assert all(0 <= c < 4 for c in chosen)

    def test_aggregate_updates_global(self, rng, tiny_model_factory):
        from repro.fl.client import ClientUpdate
        server = self._make(rng, tiny_model_factory)
        template = server.global_weights
        ones = [{k: np.ones_like(v) for k, v in layer.items()}
                for layer in template]
        update = ClientUpdate(0, ones, 10, 0.0)
        out = server.aggregate([update])
        assert np.allclose(out[0]["W"], 1.0)
        assert server.global_weights is out

    def test_aggregate_rejects_empty(self, rng, tiny_model_factory):
        server = self._make(rng, tiny_model_factory)
        with pytest.raises(ValueError):
            server.aggregate([])

    def test_cost_meter_records_aggregation(self, rng, tiny_model_factory):
        from repro.fl.client import ClientUpdate
        server = self._make(rng, tiny_model_factory)
        ones = [{k: np.ones_like(v) for k, v in layer.items()}
                for layer in server.global_weights]
        server.aggregate([ClientUpdate(0, ones, 1, 0.0)])
        assert server.cost_meter.report.server_rounds == 1
        assert server.cost_meter.report.server_aggregate_seconds > 0
