"""FLConfig validation tests."""

import pytest

from repro.fl.config import FLConfig


def test_defaults_valid():
    config = FLConfig()
    assert config.num_clients == 5
    assert config.clients_per_round is None


@pytest.mark.parametrize("field,value", [
    ("num_clients", 0),
    ("rounds", 0),
    ("local_epochs", 0),
    ("lr", 0.0),
    ("lr", -1.0),
    ("batch_size", 0),
])
def test_rejects_invalid(field, value):
    with pytest.raises(ValueError):
        FLConfig(**{field: value})


def test_clients_per_round_bounds():
    FLConfig(num_clients=5, clients_per_round=3)  # valid
    with pytest.raises(ValueError):
        FLConfig(num_clients=5, clients_per_round=6)
    with pytest.raises(ValueError):
        FLConfig(num_clients=5, clients_per_round=0)


def test_extra_dict_is_free_form():
    config = FLConfig(extra={"note": "anything"})
    assert config.extra["note"] == "anything"
