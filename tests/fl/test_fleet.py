"""Fleet-plane tests: streaming aggregation, partial participation,
dropout, and straggler-tolerant round closing.

The two invariants these tests defend:

* **Exactness** — the streaming accumulator reproduces the dense
  reductions (single-block folds are literally the same einsum call;
  multi-block folds continue the same accumulation chain), and fleet
  knobs at their defaults reproduce the pre-fleet trajectories bitwise.
* **Determinism** — cohort sub-sampling, dropout and round closing are
  pure functions of ``(seed, round, client)``, so serial and parallel
  runs stay bitwise identical even with every fleet knob engaged.
"""

from __future__ import annotations

import math
import multiprocessing

import numpy as np
import pytest

from repro.data.partition import split_for_membership
from repro.data.synthetic import synthetic_tabular
from repro.fl.aggregation import (
    DENSE_CLIENT_CAP,
    StreamingAccumulator,
    UpdateBatch,
    fedavg,
    requires_dense,
    sum_updates,
    trimmed_mean,
)
from repro.fl.client import ClientUpdate
from repro.fl.config import FLConfig
from repro.fl.costs import CostMeter
from repro.fl.executor import client_drops
from repro.fl.server import FLServer
from repro.fl.simulation import FederatedSimulation
from repro.nn.store import Layout, WeightStore, as_store
from repro.privacy.defenses.base import Defense
from repro.privacy.defenses.make import make_defense_for_config
from repro.privacy.defenses.secure_aggregation import SecureAggregation

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def _random_stores(rng, n, num_params=37):
    layout = Layout.from_layers(
        [{"W": np.zeros(num_params, dtype=np.float64)}])
    stores = [
        WeightStore(layout, rng.standard_normal(num_params))
        for _ in range(n)
    ]
    return stores, layout


def _updates_from(stores, num_samples):
    return [
        ClientUpdate(client_id=i, weights=s, num_samples=n,
                     train_seconds=0.0, defense_seconds=0.0)
        for i, (s, n) in enumerate(zip(stores, num_samples))
    ]


# ----------------------------------------------------------------------
# StreamingAccumulator: exactness against the dense reductions
# ----------------------------------------------------------------------

class TestStreamingAccumulator:
    @pytest.mark.parametrize("n,block", [(3, 64), (13, 4), (64, 64),
                                         (65, 64), (200, 64)])
    def test_fedavg_bitwise(self, rng, n, block):
        """Known-total folds equal the one-shot dense FedAvg einsum."""
        stores, layout = _random_stores(rng, n)
        num_samples = [int(k) for k in rng.integers(1, 50, size=n)]
        dense = fedavg(stores, num_samples)
        acc = StreamingAccumulator(layout, block=block)
        acc.reset(total_weight=float(sum(num_samples)))
        for store, k in zip(stores, num_samples):
            acc.fold(store, weight=float(k))
        streamed = acc.drain()
        assert np.array_equal(streamed.buffer, dense.buffer)

    @pytest.mark.parametrize("n,block", [(5, 64), (30, 8)])
    def test_sum_mode_bitwise(self, rng, n, block):
        """Unit-weight folds without a total equal sum_updates."""
        stores, layout = _random_stores(rng, n)
        dense = sum_updates(stores)
        acc = StreamingAccumulator(layout, block=block)
        acc.reset()
        for store in stores:
            acc.fold(store)
        assert np.array_equal(acc.drain().buffer, dense.buffer)
        assert acc.weight_sum == float(n)

    def test_unknown_total_normalizes_close(self, rng):
        """weight_sum normalization lands within the ULP envelope."""
        stores, layout = _random_stores(rng, 9)
        num_samples = [int(k) for k in rng.integers(1, 20, size=9)]
        acc = StreamingAccumulator(layout, block=4)
        acc.reset()
        for store, k in zip(stores, num_samples):
            acc.fold(store, weight=float(k))
        streamed = acc.drain() * (1.0 / acc.weight_sum)
        dense = fedavg(stores, num_samples)
        np.testing.assert_allclose(streamed.buffer, dense.buffer,
                                   rtol=1e-12)

    def test_zero_drain_rejected(self, rng):
        _, layout = _random_stores(rng, 1)
        acc = StreamingAccumulator(layout)
        with pytest.raises(ValueError, match="zero updates"):
            acc.drain()

    def test_bad_total_rejected(self, rng):
        _, layout = _random_stores(rng, 1)
        acc = StreamingAccumulator(layout)
        with pytest.raises(ValueError, match="total weight"):
            acc.reset(total_weight=0.0)

    def test_bad_block_rejected(self, rng):
        _, layout = _random_stores(rng, 1)
        with pytest.raises(ValueError, match="block"):
            StreamingAccumulator(layout, block=0)

    def test_reset_reuses_across_rounds(self, rng):
        stores, layout = _random_stores(rng, 6)
        acc = StreamingAccumulator(layout, block=2)
        for _ in range(3):
            acc.reset(total_weight=6.0)
            for store in stores:
                acc.fold(store, weight=1.0)
            round_result = acc.drain()
        dense = fedavg(stores, [1] * 6)
        assert np.array_equal(round_result.buffer, dense.buffer)
        assert acc.count == 6

    def test_memory_constant_in_clients(self, rng):
        """nbytes never moves, no matter how many clients fold."""
        stores, layout = _random_stores(rng, 1)
        acc = StreamingAccumulator(layout, block=8)
        acc.reset()
        before = acc.nbytes
        for _ in range(500):
            acc.fold(stores[0])
        assert acc.nbytes == before
        assert acc.count == 500

    def test_folds_nested_weights(self, rng):
        nested = [{"W": rng.standard_normal((3, 4)),
                   "b": rng.standard_normal(4)}]
        layout = Layout.from_layers(nested)
        acc = StreamingAccumulator(layout)
        acc.reset(total_weight=1.0)
        acc.fold([{k: v.copy() for k, v in nested[0].items()}],
                 weight=1.0)
        drained = acc.drain()
        assert np.array_equal(drained.buffer,
                              as_store(nested, layout=layout).buffer)


# ----------------------------------------------------------------------
# UpdateBatch: dense fallback growth + cap
# ----------------------------------------------------------------------

class TestUpdateBatchGrowth:
    def test_add_grows_geometrically(self, rng):
        stores, layout = _random_stores(rng, 5)
        batch = UpdateBatch(layout, capacity=2)
        for store in stores:
            batch.add(store)
        assert len(batch) == 5
        assert np.array_equal(batch.matrix[4], stores[4].buffer)

    def test_ensure_capacity_preserves_rows(self, rng):
        stores, layout = _random_stores(rng, 3)
        batch = UpdateBatch(layout, capacity=2)
        batch.add(stores[0])
        batch.add(stores[1])
        batch.ensure_capacity(50)
        batch.add(stores[2])
        assert len(batch) == 3
        for i in range(3):
            assert np.array_equal(batch.matrix[i], stores[i].buffer)

    def test_cap_rejects_fleet_scale(self, rng):
        stores, layout = _random_stores(rng, 3)
        batch = UpdateBatch(layout, capacity=2, client_cap=2)
        batch.add(stores[0])
        batch.add(stores[1])
        with pytest.raises(ValueError, match="StreamingAccumulator"):
            batch.add(stores[2])
        with pytest.raises(ValueError, match="StreamingAccumulator"):
            batch.ensure_capacity(3)

    def test_cap_validates_construction(self, rng):
        _, layout = _random_stores(rng, 1)
        with pytest.raises(ValueError, match="client_cap"):
            UpdateBatch(layout, capacity=10, client_cap=5)
        assert UpdateBatch(layout).client_cap == DENSE_CLIENT_CAP

    def test_collect_presizes_beyond_doubling(self, rng):
        """Regression: a cohort larger than twice the previous round's
        must land in one pre-sized matrix, not via doubling copies."""
        stores, layout = _random_stores(rng, 9)
        config = FLConfig(num_clients=9, seed=0)
        server = FLServer(stores[0], config, Defense(),
                          np.random.default_rng(0))
        small = server._collect(_updates_from(stores[:2], [1, 1]))
        assert len(small) == 2
        big = server._collect(
            _updates_from(stores, [1] * 9))
        assert big is small  # pooled matrix reused, grown in place
        assert len(big) == 9
        assert big.nbytes >= 9 * layout.num_params * 8
        for i in range(9):
            assert np.array_equal(big.matrix[i], stores[i].buffer)


class TestRuleCapabilities:
    def test_streaming_rules(self):
        assert not requires_dense(fedavg)
        assert not requires_dense("fedavg")
        assert not requires_dense("sum")

    def test_dense_rules(self):
        assert requires_dense(trimmed_mean)
        assert requires_dense("trimmed_mean")
        assert requires_dense("coordinate_median")

    def test_unknown_callable_is_conservatively_dense(self):
        assert requires_dense(lambda updates: None)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            requires_dense("krum")


# ----------------------------------------------------------------------
# config + CLI plumbing
# ----------------------------------------------------------------------

class TestFleetConfig:
    @pytest.mark.parametrize("kwargs,match", [
        (dict(sample_fraction=0.0), "sample_fraction"),
        (dict(sample_fraction=1.5), "sample_fraction"),
        (dict(drop_rate=-0.1), "drop_rate"),
        (dict(drop_rate=1.0), "drop_rate"),
        (dict(completion_threshold=0.0), "completion_threshold"),
        (dict(completion_threshold=1.1), "completion_threshold"),
        (dict(drop_rate=0.5, completion_threshold=0.8),
         "not satisfiable"),
    ])
    def test_rejects_bad_knobs(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            FLConfig(**kwargs)

    def test_accepts_satisfiable_knobs(self):
        config = FLConfig(sample_fraction=0.5, drop_rate=0.3,
                          completion_threshold=0.7)
        assert config.completion_threshold == 0.7

    def test_cli_flags_thread_through(self):
        from repro.cli import _build_parser, _config_from_args
        from repro.data import available_datasets
        dataset = available_datasets()[0]
        args = _build_parser().parse_args(
            ["run", "--dataset", dataset,
             "--sample-fraction", "0.5", "--drop-rate", "0.2",
             "--completion-threshold", "0.6"])
        config = _config_from_args(args)
        assert config.sample_fraction == 0.5
        assert config.drop_rate == 0.2
        assert config.completion_threshold == 0.6


# ----------------------------------------------------------------------
# cohort sub-sampling + dropout streams
# ----------------------------------------------------------------------

def _make_server(rng, *, num_clients=8, **cfg_kwargs):
    stores, _ = _random_stores(rng, 1)
    config = FLConfig(num_clients=num_clients, seed=3, **cfg_kwargs)
    return FLServer(stores[0], config, Defense(),
                    np.random.default_rng(7))


class TestSampleFraction:
    def test_default_selects_everyone(self, rng):
        server = _make_server(rng)
        assert server.select_clients(0) == list(range(8))

    def test_fraction_sizes_cohort(self, rng):
        server = _make_server(rng, sample_fraction=0.5)
        cohort = server.select_clients(0)
        assert len(cohort) == 4
        assert set(cohort) <= set(range(8))
        assert cohort == sorted(cohort)

    def test_fraction_floors_at_one(self, rng):
        server = _make_server(rng, num_clients=3,
                              sample_fraction=0.05)
        assert len(server.select_clients(0)) == 1

    def test_deterministic_per_round(self, rng):
        a = _make_server(rng, sample_fraction=0.5)
        b = _make_server(rng, sample_fraction=0.5)
        assert a.select_clients(2) == b.select_clients(2)
        rounds = {tuple(a.select_clients(r)) for r in range(20)}
        assert len(rounds) > 1  # stream varies across rounds

    def test_layers_under_clients_per_round(self, rng):
        server = _make_server(rng, clients_per_round=6,
                              sample_fraction=0.5)
        cohort = server.select_clients(0)
        assert len(cohort) == 3

    def test_pool_draws_unchanged_by_fraction(self, rng):
        """clients_per_round sampling consumes the same server-RNG
        draws whether or not sub-sampling is layered on top."""
        plain = _make_server(rng, clients_per_round=4)
        sampled = _make_server(rng, clients_per_round=4,
                               sample_fraction=0.5)
        pools = [plain.select_clients(r) for r in range(5)]
        subs = [sampled.select_clients(r) for r in range(5)]
        for pool, sub in zip(pools, subs):
            assert set(sub) <= set(pool)


class TestClientDrops:
    def test_deterministic(self):
        draws = [client_drops(0, 2, 5, 0.4) for _ in range(5)]
        assert len(set(draws)) == 1

    def test_zero_rate_never_draws(self):
        assert not any(client_drops(0, r, c, 0.0)
                       for r in range(50) for c in range(50))

    def test_rate_roughly_respected(self):
        drops = sum(client_drops(1, r, c, 0.3)
                    for r in range(50) for c in range(50))
        assert 0.2 < drops / 2500 < 0.4

    def test_cells_independent(self):
        draws = {(r, c): client_drops(0, r, c, 0.5)
                 for r in range(30) for c in range(30)}
        assert any(draws.values()) and not all(draws.values())


# ----------------------------------------------------------------------
# round closing policy
# ----------------------------------------------------------------------

def _tiny_sim(defense=None, *, num_clients=4, rounds=1, seed=5,
              **cfg_kwargs):
    rng = np.random.default_rng(9)
    data = synthetic_tabular(rng, 400, 20, 4, noise=0.2)
    split = split_for_membership(data, rng)
    config = FLConfig(num_clients=num_clients, rounds=rounds,
                      local_epochs=1, lr=0.1, batch_size=32, seed=seed,
                      eval_every=1, **cfg_kwargs)
    from repro.models.fcnn import build_fcnn
    factory = lambda r: build_fcnn(20, 4, r, hidden=(8,))
    return FederatedSimulation(split, factory, config, defense)


class TestRoundClosing:
    def test_stragglers_discarded(self):
        """threshold=0.5 on a 4-cohort: first 2 arrivals close the
        round, the other 2 are stragglers whose results never land."""
        sim = _tiny_sim(completion_threshold=0.5)
        record = sim.run_round(0)
        assert record.completed == [0, 1]
        assert record.stragglers == [2, 3]
        assert record.dropped == []
        assert sorted(sim.last_updates) == [0, 1]
        trained = [c.client_id for c in sim.clients
                   if c.personal_weights is not None]
        assert trained == [0, 1]

    def test_threshold_exactly_met(self):
        """Survivors == needed closes the round with no stragglers."""
        seed = next(
            s for s in range(1000)
            if sum(client_drops(s, 0, c, 0.25) for c in range(4)) == 1)
        sim = _tiny_sim(seed=seed, drop_rate=0.25,
                        completion_threshold=0.75)
        record = sim.run_round(0)
        assert len(record.dropped) == 1
        assert len(record.completed) == 3
        assert record.stragglers == []

    def test_zero_completions_is_clear_error(self):
        """All clients dropping must fail loudly, not aggregate junk."""
        seed = next(
            s for s in range(1000)
            if all(client_drops(s, 0, c, 0.9) for c in range(3)))
        sim = _tiny_sim(num_clients=3, seed=seed, drop_rate=0.9,
                        completion_threshold=0.1)
        with pytest.raises(RuntimeError, match="cannot close"):
            sim.run_round(0)

    def test_short_round_is_clear_error(self):
        """Fewer survivors than the threshold fails before training."""
        seed = next(
            s for s in range(1000)
            if sum(client_drops(s, 0, c, 0.5) for c in range(4)) >= 3)
        sim = _tiny_sim(seed=seed, drop_rate=0.5,
                        completion_threshold=0.5)
        with pytest.raises(RuntimeError, match="cannot close"):
            sim.run_round(0)

    def test_default_knobs_reproduce_prefleet_round(self):
        """Explicit default knobs change nothing, bit for bit."""
        plain = _tiny_sim()
        explicit = _tiny_sim(sample_fraction=1.0, drop_rate=0.0,
                             completion_threshold=1.0)
        plain.run()
        explicit.run()
        assert np.array_equal(
            as_store(plain.server.global_weights).buffer,
            as_store(explicit.server.global_weights).buffer)
        record = explicit.history.records[-1]
        assert record.completed == record.participating
        assert record.dropped == [] and record.stragglers == []

    def test_participation_accounted(self):
        sim = _tiny_sim(rounds=2, completion_threshold=0.5)
        sim.run()
        report = sim.cost_meter.report
        assert report.clients_sampled == 8
        assert report.clients_completed == 4
        assert report.clients_straggled == 4
        assert report.clients_dropped == 0
        assert report.completion_rate == 0.5
        assert "4/8 completed" in report.participation_summary()


# ----------------------------------------------------------------------
# secure aggregation: requires_full_cohort guards
# ----------------------------------------------------------------------

class TestFullCohortGuards:
    def test_simulation_rejects_dropout_config(self):
        with pytest.raises(ValueError, match="full cohort"):
            _tiny_sim(SecureAggregation(), drop_rate=0.2,
                      completion_threshold=0.8)

    def test_simulation_rejects_threshold_config(self):
        with pytest.raises(ValueError, match="full cohort"):
            _tiny_sim(SecureAggregation(), completion_threshold=0.5)

    def test_sample_fraction_allowed(self):
        """Sub-sampling shrinks the cohort *before* masks are
        negotiated, so SA stays correct — only post-negotiation
        losses are fatal."""
        sim = _tiny_sim(SecureAggregation(), sample_fraction=0.5)
        record = sim.run_round(0)
        assert len(record.completed) == 2

    def test_server_refuses_short_cohort(self, rng):
        """A requires_full_cohort defense must refuse to finalize a
        short round instead of draining a mask-corrupted sum."""
        stores, _ = _random_stores(rng, 3)
        config = FLConfig(num_clients=3, seed=0)
        server = FLServer(stores[0], config, SecureAggregation(),
                          np.random.default_rng(0))
        before = server.global_weights.buffer.copy()
        updates = _updates_from(stores[:2], [4, 6])
        with pytest.raises(RuntimeError, match="full cohort"):
            server.aggregate(iter(updates), expected=3)
        assert np.array_equal(server.global_weights.buffer, before)


class _PreWeightedDefense(Defense):
    """pre_weighted without the full-cohort requirement, to isolate
    the total-from-folded fix."""

    name = "preweighted-test"
    pre_weighted = True


class TestPreWeightedTotals:
    def test_total_from_folded_updates(self, rng):
        """The divisor must come from the updates actually folded
        (post-dropout), not the selected cohort size."""
        stores, layout = _random_stores(rng, 3)
        num_samples = [4, 6, 10]
        # pre_weighted protocol: clients transmit num_samples * weights
        transmitted = [s * float(k)
                       for s, k in zip(stores, num_samples)]
        config = FLConfig(num_clients=3, seed=0)
        server = FLServer(stores[0].zeros_like(), config,
                          _PreWeightedDefense(),
                          np.random.default_rng(0))
        folded = _updates_from(transmitted[:2], num_samples[:2])
        out = server.aggregate(iter(folded), expected=3)
        expected = fedavg(stores[:2], num_samples[:2])
        np.testing.assert_allclose(out.buffer, expected.buffer,
                                   rtol=1e-12)


# ----------------------------------------------------------------------
# serial vs parallel: streaming parity under fleet knobs
# ----------------------------------------------------------------------

FLEET_DEFENSES = ("none", "dinar", "ldp", "wdp", "cdp", "gc")


@pytest.mark.skipif(not HAS_FORK, reason="parallel executor "
                    "requires the fork start method")
class TestStreamingParity:
    def _snapshot(self, defense_name, workers, **fleet):
        config = FLConfig(num_clients=5, rounds=2, local_epochs=1,
                          lr=0.1, batch_size=32, seed=11, eval_every=2,
                          workers=workers, **fleet)
        defense = make_defense_for_config(defense_name, config)
        rng = np.random.default_rng(9)
        data = synthetic_tabular(rng, 400, 20, 4, noise=0.2)
        split = split_for_membership(data, rng)
        from repro.models.fcnn import build_fcnn
        factory = lambda r: build_fcnn(20, 4, r, hidden=(8,))
        sim = FederatedSimulation(split, factory, config, defense)
        sim.run()
        return {
            "global": as_store(sim.server.global_weights).buffer.copy(),
            "transmitted": {
                cid: as_store(w).buffer.copy()
                for cid, w in sim.last_updates.items()
            },
            "records": [
                (r.completed, r.dropped, r.stragglers)
                for r in sim.history.records
            ],
        }

    @pytest.mark.parametrize("defense_name", FLEET_DEFENSES)
    def test_fleet_knobs_bitwise(self, defense_name):
        fleet = dict(sample_fraction=0.8, drop_rate=0.2,
                     completion_threshold=0.5)
        serial = self._snapshot(defense_name, 0, **fleet)
        parallel = self._snapshot(defense_name, 2, **fleet)
        assert np.array_equal(serial["global"], parallel["global"])
        assert serial["transmitted"].keys() \
            == parallel["transmitted"].keys()
        for cid in serial["transmitted"]:
            assert np.array_equal(serial["transmitted"][cid],
                                  parallel["transmitted"][cid])
        assert serial["records"] == parallel["records"]

    def test_sa_with_sampling_bitwise(self):
        serial = self._snapshot("sa", 0, sample_fraction=0.8)
        parallel = self._snapshot("sa", 2, sample_fraction=0.8)
        assert np.array_equal(serial["global"], parallel["global"])


# ----------------------------------------------------------------------
# CostMeter participation accounting
# ----------------------------------------------------------------------

class TestCostMeterFleet:
    def test_record_participation_sums(self):
        meter = CostMeter()
        meter.record_participation(sampled=10, completed=6, dropped=3,
                                   stragglers=1)
        meter.record_participation(sampled=4, completed=4, dropped=0,
                                   stragglers=0)
        report = meter.report
        assert report.clients_sampled == 14
        assert report.clients_completed == 10
        assert report.clients_dropped == 3
        assert report.clients_straggled == 1
        assert report.completion_rate == 10 / 14
        assert report.participation_summary() == \
            "10/14 completed (dropped 3, stragglers 1)"

    def test_record_participation_validates_partition(self):
        meter = CostMeter()
        with pytest.raises(ValueError, match="partition"):
            meter.record_participation(sampled=5, completed=3,
                                       dropped=1, stragglers=0)
        with pytest.raises(ValueError, match=">= 0"):
            meter.record_participation(sampled=1, completed=2,
                                       dropped=-1, stragglers=0)

    def test_empty_report_rates(self):
        assert CostMeter().report.completion_rate == 0.0

    def test_merge_server_round(self):
        meter = CostMeter()
        meter.merge_server_round(0.25)
        assert meter.report.server_rounds == 1
        assert meter.report.server_aggregate_seconds == 0.25
        with pytest.raises(ValueError, match=">= 0"):
            meter.merge_server_round(-0.1)


# ----------------------------------------------------------------------
# fleet smoke: 1k sampled clients in constant aggregation memory
# ----------------------------------------------------------------------

@pytest.mark.slow
def test_fleet_smoke_1k_clients():
    """1000 clients, 2 straggler-tolerant rounds, serial: the round
    pipeline never materializes a dense cohort matrix, so this runs in
    the same aggregation memory as a 3-client round."""
    rng = np.random.default_rng(0)
    data = synthetic_tabular(rng, 4000, 16, 4, noise=0.3, name="fleet")
    split = split_for_membership(data, rng)
    config = FLConfig(num_clients=1000, rounds=2, local_epochs=1,
                      lr=0.05, batch_size=8, seed=0, eval_every=2,
                      sample_fraction=0.5, drop_rate=0.1,
                      completion_threshold=0.6)
    from repro.models.fcnn import build_fcnn
    factory = lambda r: build_fcnn(16, 4, r, hidden=(8,))
    sim = FederatedSimulation(split, factory, config)
    history = sim.run()
    report = sim.cost_meter.report
    assert report.clients_sampled == 1000  # 2 rounds x 500 sampled
    assert report.clients_completed == 2 * math.ceil(0.6 * 500)
    assert report.clients_completed + report.clients_dropped \
        + report.clients_straggled == report.clients_sampled
    record = history.records[-1]
    assert len(record.completed) == math.ceil(0.6 * 500)
    assert 0.0 <= history.final_global_accuracy <= 1.0
    # constant-memory invariant: the server never built a dense batch
    assert sim.server._batch is None
    assert sim.server._accumulator.nbytes < 10 * 2**20
