"""Robustness plane tests: adversarial behaviors x robust aggregators.

Three invariant families pin the plane down:

* **Aggregator properties** (hypothesis) — robust rules depend only on
  the update *multiset* (permutation invariance), and trimmed mean
  stays inside the honest coordinate envelope whenever the trim is at
  least the adversary count.
* **Determinism** — a run is a pure function of the config under every
  behavior mix: serial and parallel execution produce bitwise
  identical weights, updates, and adversary/filter records.
* **Plumbing** — config validation, the short-cohort error path,
  clustering fallbacks, the SA x dense-aggregator rejection, and the
  behaviors' own corruption semantics.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.partition import split_for_membership
from repro.data.synthetic import synthetic_tabular
from repro.fl.aggregation import (
    CLUSTER_MIN_COHORT,
    clustered_mean,
    coordinate_median,
    fedavg,
    trimmed_mean,
)
from repro.fl.behavior import (
    HONEST,
    ByzantineBehavior,
    FreeRiderBehavior,
    LabelFlipBehavior,
    behavior_rng,
    make_behavior,
    select_adversaries,
)
from repro.fl.config import FLConfig
from repro.fl.simulation import FederatedSimulation
from repro.nn.store import Layout, WeightStore, as_store
from repro.privacy.defenses.secure_aggregation import SecureAggregation

HAS_FORK = "fork" in __import__("multiprocessing").get_all_start_methods()


def _rows(matrix: np.ndarray) -> list[list[dict]]:
    """Wrap a (clients, params) matrix as one nested update per row."""
    return [[{"W": row.copy()}] for row in matrix]


# ----------------------------------------------------------------------
# aggregator properties
# ----------------------------------------------------------------------

class TestPermutationInvariance:
    """Robust rules see a multiset of updates, not a sequence."""

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 1000), st.integers(3, 12), st.integers(1, 40))
    def test_trimmed_mean_exact(self, seed, n, p):
        rng = np.random.default_rng(seed)
        matrix = rng.standard_normal((n, p))
        perm = rng.permutation(n)
        trim = (n - 1) // 2
        a = trimmed_mean(_rows(matrix), trim=trim)
        b = trimmed_mean(_rows(matrix[perm]), trim=trim)
        assert np.array_equal(a.buffer, b.buffer)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 1000), st.integers(1, 12), st.integers(1, 40))
    def test_coordinate_median_exact(self, seed, n, p):
        rng = np.random.default_rng(seed)
        matrix = rng.standard_normal((n, p))
        perm = rng.permutation(n)
        a = coordinate_median(_rows(matrix))
        b = coordinate_median(_rows(matrix[perm]))
        assert np.array_equal(a.buffer, b.buffer)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 1000), st.integers(1, 12), st.integers(1, 40))
    def test_clustered_keep_set_equivariant(self, seed, n, p):
        """The keep/filter decision depends only on the distance
        multiset; the mean over kept rows matches to summation-order
        tolerance (einsum folds rows in arrival order)."""
        rng = np.random.default_rng(seed)
        matrix = rng.standard_normal((n, p))
        # Plant one far outlier so both branches get exercised.
        matrix[0] += 100.0
        perm = rng.permutation(n)
        diag_a: dict = {}
        diag_b: dict = {}
        a = clustered_mean(_rows(matrix), diagnostics=diag_a)
        b = clustered_mean(_rows(matrix[perm]), diagnostics=diag_b)
        assert {int(perm[i]) for i in diag_b["filtered"]} == \
            set(diag_a["filtered"])
        np.testing.assert_allclose(a.buffer, b.buffer,
                                   rtol=1e-12, atol=1e-12)


class TestTrimmedMeanBound:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 1000), st.integers(3, 10), st.integers(1, 30),
           st.floats(min_value=1.0, max_value=1e6, allow_nan=False))
    def test_stays_in_honest_envelope(self, seed, honest_n, p, boost):
        """With trim >= adversary count, every output coordinate lies
        within the honest coordinate min/max — out-of-range adversary
        values are by construction in the trimmed order statistics."""
        rng = np.random.default_rng(seed)
        honest = rng.standard_normal((honest_n, p))
        adversaries = rng.standard_normal((2, p)) * boost
        matrix = np.vstack([adversaries[:1], honest, adversaries[1:]])
        n = len(matrix)
        trim = 2
        if 2 * trim >= n:
            return
        out = trimmed_mean(_rows(matrix), trim=trim).buffer
        assert np.all(out >= honest.min(axis=0) - 1e-12)
        assert np.all(out <= honest.max(axis=0) + 1e-12)


class TestClusteredFallbacks:
    def test_small_cohort_keeps_everyone(self):
        rng = np.random.default_rng(0)
        matrix = rng.standard_normal((CLUSTER_MIN_COHORT - 1, 6))
        matrix[0] += 1e6  # would be filtered in a big-enough cohort
        diag: dict = {}
        out = clustered_mean(_rows(matrix), diagnostics=diag)
        assert diag["filtered"] == []
        assert diag["kept"] == list(range(len(matrix)))
        reference = fedavg(_rows(matrix), [1] * len(matrix))
        np.testing.assert_allclose(out.buffer,
                                   as_store(reference).buffer)

    def test_homogeneous_cohort_never_filtered(self):
        rng = np.random.default_rng(1)
        matrix = rng.standard_normal((8, 10)) * 0.01 + 1.0
        diag: dict = {}
        clustered_mean(_rows(matrix), diagnostics=diag)
        assert diag["filtered"] == []

    def test_clear_outliers_filtered(self):
        rng = np.random.default_rng(2)
        matrix = rng.standard_normal((8, 10))
        matrix[2] += 500.0
        matrix[5] -= 500.0
        diag: dict = {}
        clustered_mean(_rows(matrix), diagnostics=diag)
        assert diag["filtered"] == [2, 5]

    def test_rejects_sample_count_mismatch(self):
        matrix = np.zeros((4, 3))
        with pytest.raises(ValueError, match="sample counts"):
            clustered_mean(_rows(matrix), [1, 2])


# ----------------------------------------------------------------------
# behaviors
# ----------------------------------------------------------------------

def _store(values) -> WeightStore:
    arr = np.asarray(values, dtype=np.float64)
    layout = Layout.from_layers([{"W": arr}])
    return WeightStore(layout, arr.copy())


class TestBehaviors:
    def test_sign_flip_formula(self):
        behavior = ByzantineBehavior(frozenset({3}), scale=4.0)
        start, trained = _store([1.0, -2.0]), _store([2.0, 0.0])
        out = behavior.corrupt_update(3, trained, start,
                                      behavior_rng(0, 0, 3))
        # start - 4 * (trained - start)
        assert np.array_equal(out.buffer, np.array([-3.0, -10.0]))

    def test_honest_client_untouched_by_adversarial_behavior(self):
        behavior = ByzantineBehavior(frozenset({3}))
        trained = _store([5.0, 6.0])
        out = behavior.corrupt_update(0, trained, _store([0.0, 0.0]),
                                      behavior_rng(0, 0, 0))
        assert out is trained

    def test_gaussian_uses_supplied_stream(self):
        behavior = ByzantineBehavior(frozenset({1}), variant="gaussian",
                                     scale=2.0)
        start = _store([0.0, 0.0, 0.0])
        a = behavior.corrupt_update(1, start, start,
                                    behavior_rng(7, 2, 1))
        b = behavior.corrupt_update(1, start, start,
                                    behavior_rng(7, 2, 1))
        assert np.array_equal(a.buffer, b.buffer)
        c = behavior.corrupt_update(1, start, start,
                                    behavior_rng(7, 3, 1))
        assert not np.array_equal(a.buffer, c.buffer)

    def test_label_flip_mirrors_labels(self):
        behavior = LabelFlipBehavior(frozenset({0}))
        y = np.array([0, 1, 2, 3])
        _, flipped = behavior.poison_data(0, None, y, num_classes=4)
        assert np.array_equal(flipped, np.array([3, 2, 1, 0]))
        _, honest = behavior.poison_data(1, None, y, num_classes=4)
        assert honest is y

    def test_free_rider_skips_training_and_camouflages(self):
        behavior = FreeRiderBehavior(frozenset({2}), camouflage=1e-3)
        assert behavior.skips_training(2)
        assert not behavior.skips_training(0)
        start = _store([1.0, 1.0, 1.0, 1.0])
        out = behavior.corrupt_update(2, _store([9.0] * 4), start,
                                      behavior_rng(0, 0, 2))
        assert np.max(np.abs(out.buffer - start.buffer)) < 0.01

    def test_unknown_behavior_rejected(self):
        with pytest.raises(ValueError, match="unknown adversary"):
            make_behavior("gradient_ascent", frozenset({0}))

    def test_none_maps_to_honest_singleton(self):
        assert make_behavior("none", frozenset()) is HONEST
        assert make_behavior("byzantine", frozenset()) is HONEST


class TestSelectAdversaries:
    def test_deterministic_in_seed(self):
        a = select_adversaries(20, 0.25, seed=3)
        b = select_adversaries(20, 0.25, seed=3)
        assert a == b and len(a) == 5

    def test_varies_with_seed(self):
        draws = {select_adversaries(40, 0.25, seed=s) for s in range(8)}
        assert len(draws) > 1

    def test_zero_fraction_empty(self):
        assert select_adversaries(10, 0.0, seed=0) == frozenset()

    def test_at_least_one_never_all(self):
        assert len(select_adversaries(10, 0.01, seed=0)) == 1
        assert len(select_adversaries(4, 1.0 - 1e-9, seed=0)) == 3


# ----------------------------------------------------------------------
# config and server validation
# ----------------------------------------------------------------------

class TestConfigValidation:
    def test_rejects_unknown_aggregator(self):
        with pytest.raises(ValueError, match="aggregator"):
            FLConfig(aggregator="krum")

    def test_rejects_unknown_adversary(self):
        with pytest.raises(ValueError, match="adversary"):
            FLConfig(adversary="sybil", adversary_fraction=0.2)

    def test_rejects_fraction_out_of_range(self):
        with pytest.raises(ValueError, match="adversary_fraction"):
            FLConfig(adversary="byzantine", adversary_fraction=1.0)
        with pytest.raises(ValueError, match="adversary_fraction"):
            FLConfig(adversary="byzantine", adversary_fraction=-0.1)

    def test_rejects_adversary_without_fraction(self):
        with pytest.raises(ValueError, match="adversary_fraction"):
            FLConfig(adversary="byzantine", adversary_fraction=0.0)

    def test_rejects_fraction_without_adversary(self):
        with pytest.raises(ValueError, match="adversary"):
            FLConfig(adversary="none", adversary_fraction=0.25)


@pytest.fixture
def small_split(rng):
    ds = synthetic_tabular(rng, 400, 20, 4, noise=0.2)
    return split_for_membership(ds, rng)


def _run(small_split, tiny_model_factory, defense=None, **cfg_kwargs):
    defaults = dict(num_clients=4, rounds=2, local_epochs=1, lr=0.1,
                    batch_size=32, seed=5)
    defaults.update(cfg_kwargs)
    sim = FederatedSimulation(small_split, tiny_model_factory,
                              FLConfig(**defaults), defense)
    history = sim.run()
    return sim, history


class TestServerValidation:
    def test_sa_rejects_dense_aggregators(self, small_split,
                                          tiny_model_factory):
        with pytest.raises(ValueError, match="masked"):
            FederatedSimulation(
                small_split, tiny_model_factory,
                FLConfig(num_clients=4, rounds=1,
                         aggregator="coordinate_median"),
                SecureAggregation())

    def test_sa_still_composes_with_fedavg(self, small_split,
                                           tiny_model_factory):
        _, history = _run(small_split, tiny_model_factory,
                          SecureAggregation(), rounds=1,
                          aggregator="fedavg")
        assert history.records

    def test_trimmed_mean_short_cohort_error(self, small_split,
                                             tiny_model_factory):
        """Fleet knobs that shrink the cohort below 2*trim+1 fail with
        an error naming the knobs, not an opaque sort failure."""
        with pytest.raises(ValueError, match="sample_fraction"):
            _run(small_split, tiny_model_factory, rounds=1,
                 aggregator="trimmed_mean", sample_fraction=0.25)

    def test_coordinate_median_tolerates_short_cohort(self, small_split,
                                                      tiny_model_factory):
        """The documented fallback: the median is defined for any
        nonempty cohort, so it is the robust choice under aggressive
        sampling."""
        _, history = _run(small_split, tiny_model_factory, rounds=1,
                          aggregator="coordinate_median",
                          sample_fraction=0.25)
        assert history.records


# ----------------------------------------------------------------------
# end-to-end determinism and accounting
# ----------------------------------------------------------------------

BEHAVIOR_MIXES = [
    dict(adversary="none", adversary_fraction=0.0),
    dict(adversary="byzantine", adversary_fraction=0.25),
    dict(adversary="byzantine_gaussian", adversary_fraction=0.25),
    dict(adversary="label_flip", adversary_fraction=0.25),
    dict(adversary="free_rider", adversary_fraction=0.25),
]


def _snapshot(sim, history):
    return {
        "global": as_store(sim.server.global_weights).buffer.copy(),
        "personal": {
            c.client_id: c.personal_weights.buffer.copy()
            for c in sim.clients if c.personal_weights is not None
        },
        "transmitted": {
            cid: as_store(w).buffer.copy()
            for cid, w in sim.last_updates.items()
        },
        "records": [
            (r.adversaries, r.filtered, r.global_accuracy,
             r.mean_client_accuracy)
            for r in history.records
        ],
    }


def _assert_snapshots_equal(a, b):
    assert np.array_equal(a["global"], b["global"])
    assert a["personal"].keys() == b["personal"].keys()
    for cid in a["personal"]:
        assert np.array_equal(a["personal"][cid], b["personal"][cid])
    assert a["transmitted"].keys() == b["transmitted"].keys()
    for cid in a["transmitted"]:
        assert np.array_equal(a["transmitted"][cid],
                              b["transmitted"][cid])
    assert a["records"] == b["records"]


@pytest.mark.skipif(not HAS_FORK,
                    reason="parallel executor requires fork")
class TestSerialParallelBitwise:
    @pytest.mark.parametrize(
        "mix", BEHAVIOR_MIXES,
        ids=[m["adversary"] for m in BEHAVIOR_MIXES])
    def test_every_behavior_mix(self, small_split, tiny_model_factory,
                                mix):
        serial = _snapshot(*_run(small_split, tiny_model_factory,
                                 workers=0, **mix))
        parallel = _snapshot(*_run(small_split, tiny_model_factory,
                                   workers=2, **mix))
        _assert_snapshots_equal(serial, parallel)

    def test_clustered_aggregator_bitwise(self, small_split,
                                          tiny_model_factory):
        mix = dict(aggregator="clustered", adversary="byzantine",
                   adversary_fraction=0.25)
        serial = _snapshot(*_run(small_split, tiny_model_factory,
                                 workers=0, **mix))
        parallel = _snapshot(*_run(small_split, tiny_model_factory,
                                   workers=2, **mix))
        _assert_snapshots_equal(serial, parallel)


class TestAccounting:
    def test_adversaries_recorded(self, small_split,
                                  tiny_model_factory):
        sim, history = _run(small_split, tiny_model_factory,
                            adversary="byzantine",
                            adversary_fraction=0.25, eval_every=1)
        expected = sorted(sim.behavior.adversaries)
        assert expected  # 25% of 4 clients -> exactly one
        for record in history.records:
            assert record.adversaries == expected
        report = sim.cost_meter.report
        assert report.clients_adversarial == \
            len(expected) * sim.config.rounds
        assert "adversarial" in report.participation_summary()

    def test_honest_run_records_nothing(self, small_split,
                                        tiny_model_factory):
        sim, history = _run(small_split, tiny_model_factory,
                            eval_every=1)
        for record in history.records:
            assert record.adversaries == []
            assert record.filtered == []
        report = sim.cost_meter.report
        assert report.clients_adversarial == 0
        assert report.clients_filtered == 0
        assert "adversarial" not in report.participation_summary()

    def test_clustered_filtering_recorded(self, small_split,
                                          tiny_model_factory):
        sim, history = _run(small_split, tiny_model_factory,
                            num_clients=8, aggregator="clustered",
                            adversary="byzantine",
                            adversary_fraction=0.25, eval_every=1)
        adversaries = set(sim.behavior.adversaries)
        filtered_rounds = [set(r.filtered) for r in history.records]
        # The boosted sign-flip is exactly what norm clustering
        # catches; every round's filter is a subset of the true
        # adversary set (it never throws away honest clients here).
        assert any(filtered_rounds)
        for filtered in filtered_rounds:
            assert filtered <= adversaries
        assert sim.cost_meter.report.clients_filtered == \
            sum(len(f) for f in filtered_rounds)
