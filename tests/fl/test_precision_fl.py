"""Precision plumbing through the federated plane.

The nn-level dtype tests live in ``tests/nn/test_precision.py``; these
cover the FL side: config validation, the simulation's factory/config
dtype guard, defenses preserving float32 end to end, serialization and
checkpoint round-trips, dataset generation, and the CLI flag.
"""

import numpy as np
import pytest

from repro.cli import _build_parser, _config_from_args
from repro.data.datasets import load_dataset
from repro.data.partition import split_for_membership
from repro.data.synthetic import synthetic_tabular
from repro.fl.checkpoint import load_checkpoint, save_checkpoint
from repro.fl.config import FLConfig
from repro.fl.simulation import FederatedSimulation
from repro.nn.activations import ReLU
from repro.nn.layers import Dense
from repro.nn.model import Model
from repro.nn.serialize import load_store, save_weights
from repro.privacy.defenses.make import make_defense_for_config


def f32_factory(rng: np.random.Generator) -> Model:
    return Model([
        Dense(20, 16, rng, dtype="float32"), ReLU(),
        Dense(16, 4, rng, dtype="float32"),
    ], rng=rng, name="tiny32")


@pytest.fixture
def small_split(rng):
    ds = synthetic_tabular(rng, 400, 20, 4, noise=0.2, dtype="float32")
    return split_for_membership(ds, rng)


def _sim(small_split, defense=None, **cfg_kwargs):
    defaults = dict(num_clients=3, rounds=2, local_epochs=2, lr=0.1,
                    batch_size=16, seed=0, dtype="float32")
    defaults.update(cfg_kwargs)
    return FederatedSimulation(small_split, f32_factory,
                               FLConfig(**defaults), defense)


class TestConfig:
    def test_default_is_float64(self):
        assert FLConfig().dtype == "float64"

    def test_rejects_unsupported_dtype(self):
        with pytest.raises(ValueError, match="dtype"):
            FLConfig(dtype="float16")

    def test_cli_flag_reaches_config(self):
        parser = _build_parser()
        args = parser.parse_args(
            ["run", "--dataset", "purchase100", "--dtype", "float32"])
        assert _config_from_args(args).dtype == "float32"

    def test_cli_default_is_float64(self):
        parser = _build_parser()
        args = parser.parse_args(["run", "--dataset", "purchase100"])
        assert _config_from_args(args).dtype == "float64"

    def test_cli_rejects_unknown_dtype(self):
        parser = _build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(
                ["run", "--dataset", "purchase100", "--dtype", "f16"])


class TestSimulationDtype:
    def test_mismatched_factory_raises(self, small_split,
                                       tiny_model_factory):
        # float64 factory under a float32 config must fail loudly
        # instead of silently upcasting the whole run.
        with pytest.raises(ValueError, match="dtype"):
            FederatedSimulation(
                small_split, tiny_model_factory,
                FLConfig(num_clients=3, rounds=1, local_epochs=1,
                         dtype="float32"))

    def test_run_stays_float32(self, small_split):
        sim = _sim(small_split)
        history = sim.run()
        assert sim.server.global_weights.buffer.dtype == np.float32
        for client in sim.clients:
            assert client.personal_weights.buffer.dtype == np.float32
        assert np.isfinite(history.records[-1].global_accuracy)

    @pytest.mark.parametrize(
        "name", ["wdp", "ldp", "cdp", "gc", "sa", "dinar"])
    def test_defenses_preserve_float32(self, small_split, name):
        config = FLConfig(num_clients=3, rounds=1, local_epochs=1,
                          lr=0.1, batch_size=16, seed=0,
                          dtype="float32")
        defense = make_defense_for_config(name, config)
        sim = FederatedSimulation(small_split, f32_factory, config,
                                  defense)
        sim.run()
        buffer = sim.server.global_weights.buffer
        assert buffer.dtype == np.float32
        assert np.all(np.isfinite(buffer))


class TestRoundTrips:
    def test_serialize_preserves_float32(self, rng, tmp_path):
        model = f32_factory(rng)
        path = tmp_path / "weights.npz"
        save_weights(model.weights, path)
        restored = load_store(path)
        assert restored.layout.dtype == np.float32
        np.testing.assert_array_equal(restored.buffer,
                                      model.weights.buffer)

    def test_checkpoint_preserves_float32(self, small_split, tmp_path):
        sim = _sim(small_split)
        sim.run()
        save_checkpoint(sim, tmp_path / "ckpt")
        fresh = _sim(small_split)
        meta = load_checkpoint(fresh, tmp_path / "ckpt")
        assert meta["dtype"] == "float32"
        assert fresh.server.global_weights.buffer.dtype == np.float32
        np.testing.assert_array_equal(
            fresh.server.global_weights.buffer,
            sim.server.global_weights.buffer)

    def test_checkpoint_dtype_mismatch_raises(self, small_split,
                                              tiny_model_factory,
                                              tmp_path):
        sim = _sim(small_split)
        sim.run()
        save_checkpoint(sim, tmp_path / "ckpt")
        ds64 = synthetic_tabular(np.random.default_rng(0), 400, 20, 4,
                                 noise=0.2)
        split64 = split_for_membership(ds64, np.random.default_rng(1))
        fresh64 = FederatedSimulation(
            split64, tiny_model_factory,
            FLConfig(num_clients=3, rounds=1, local_epochs=1))
        with pytest.raises(ValueError, match="float32"):
            load_checkpoint(fresh64, tmp_path / "ckpt")


class TestData:
    def test_load_dataset_dtype(self):
        ds = load_dataset("purchase100", 0, n_samples=200,
                          dtype="float32")
        assert ds.x.dtype == np.float32

    def test_float32_data_is_cast_of_float64(self, rng):
        # generation always draws in float64 with the same RNG stream
        # and casts once, so the float32 set is exactly the cast.
        ds64 = synthetic_tabular(np.random.default_rng(7), 100, 20, 4)
        ds32 = synthetic_tabular(np.random.default_rng(7), 100, 20, 4,
                                 dtype="float32")
        np.testing.assert_array_equal(ds32.x,
                                      ds64.x.astype(np.float32))
        np.testing.assert_array_equal(ds32.y, ds64.y)
