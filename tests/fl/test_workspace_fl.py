"""Workspace process-locality across the FL stack.

``Workspace.__reduce__`` raises ``TypeError``, so every assertion here
leans on the same lever: if a payload pickles (or serializes to disk)
successfully, no workspace is reachable from it.  The tests run real
simulations first so the client models' arenas are populated — the
interesting case is a *warm* workspace leaking, not an empty one.
"""

import pickle

import numpy as np
import pytest

from repro.core.dinar import DINAR
from repro.data.partition import split_for_membership
from repro.data.synthetic import synthetic_tabular
from repro.fl.checkpoint import load_checkpoint, save_checkpoint
from repro.fl.config import FLConfig
from repro.fl.executor import ClientTask, execute_client_task
from repro.fl.simulation import FederatedSimulation
from repro.nn.model import weights_allclose
from repro.nn.workspace import Workspace
from repro.privacy.defenses.make import make_defense_for_config

DEFENSE_NAMES = ["none", "ldp", "cdp", "wdp", "gc", "sa", "dinar"]


@pytest.fixture
def make_sim(rng, tiny_model_factory):
    data = synthetic_tabular(rng, 300, 20, 4, noise=0.3)
    split = split_for_membership(data, np.random.default_rng(1))

    def build(defense=None, **cfg_kwargs):
        defaults = dict(num_clients=3, rounds=2, local_epochs=2,
                        batch_size=32, seed=0)
        defaults.update(cfg_kwargs)
        return FederatedSimulation(split, tiny_model_factory,
                                   FLConfig(**defaults), defense)
    return build


def _run_warm(make_sim, defense=None, **cfg_kwargs):
    """A finished simulation whose client models hold warm arenas."""
    sim = make_sim(defense, **cfg_kwargs)
    sim.run()
    warm = [client.model.workspace for client in sim.clients]
    assert all(isinstance(ws, Workspace) for ws in warm)
    assert any(ws.num_buffers > 0 for ws in warm), \
        "expected training to populate at least one client arena"
    return sim


@pytest.mark.parametrize("name", DEFENSE_NAMES)
def test_defense_export_state_pickles_without_workspace(
        make_sim, name):
    config = FLConfig(num_clients=3, rounds=2, local_epochs=2,
                      batch_size=32, seed=0)
    defense = make_defense_for_config(name, config)
    sim = _run_warm(make_sim, defense)
    # a workspace anywhere in these payloads would make dumps() raise
    pickle.dumps(sim.defense.export_round_state())
    for client in sim.clients:
        pickle.dumps(sim.defense.export_client_state(client.client_id))


def test_checkpoint_files_hold_no_workspace(make_sim, tmp_path):
    sim = _run_warm(make_sim, DINAR(private_layer=-2))
    directory = save_checkpoint(sim, tmp_path / "ckpt")
    # checkpoints are npz archives of plain arrays + JSON metadata;
    # assert nothing pickled a scratch arena into them.
    for path in directory.iterdir():
        if path.suffix == ".npz":
            with np.load(path, allow_pickle=False) as archive:
                for key in archive.files:
                    archive[key]
    fresh = make_sim(DINAR(private_layer=-2))
    load_checkpoint(fresh, directory)
    assert weights_allclose(fresh.server.global_weights,
                            sim.server.global_weights, atol=0.0)


def test_executor_payloads_pickle_with_warm_arenas(make_sim):
    sim = _run_warm(make_sim)
    task = ClientTask(
        round_index=len(sim.history.records),
        client_id=0,
        global_buffer=sim.server.global_weights.buffer.copy(),
        client_state=sim.defense.export_client_state(0),
        round_state=sim.defense.export_round_state(),
    )
    restored = pickle.loads(pickle.dumps(task))
    layout = sim.server.global_weights.layout
    result = execute_client_task(sim.clients[0], sim.defense,
                                 layout, restored)
    # the worker->parent payload must also cross clean
    pickle.loads(pickle.dumps(result))


def test_client_model_pickle_rebuilds_fresh_arena(make_sim):
    sim = _run_warm(make_sim)
    client = sim.clients[0]
    assert client.model.workspace.num_buffers > 0
    restored = pickle.loads(pickle.dumps(client.model))
    assert restored.workspace.num_buffers == 0
    assert np.array_equal(restored.weights.buffer,
                          client.model.weights.buffer)
