"""Round executor tests: serial/parallel bitwise identity + failure
surfacing.

The headline invariant of ``repro.fl.executor``: a federated run is a
pure function of ``(config, data, defense)`` — never of how many
processes executed it.  These tests pin that down by running full
multi-round simulations twice, serial and parallel, and comparing
every artifact bit for bit: global weights, per-client personalized
weights, transmitted (post-defense) updates, and recorded accuracies.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.dinar import DINAR
from repro.data.partition import split_for_membership
from repro.data.synthetic import synthetic_tabular
from repro.fl.config import FLConfig
from repro.fl.executor import (
    ParallelExecutor,
    SerialExecutor,
    make_executor,
    round_rng,
)
from repro.fl.simulation import FederatedSimulation
from repro.nn.store import as_store
from repro.privacy.defenses.base import Defense
from repro.privacy.defenses.compression import GradientCompression
from repro.privacy.defenses.ldp import LocalDP
from repro.privacy.defenses.secure_aggregation import SecureAggregation
from repro.privacy.defenses.wdp import WeakDP

pytestmark = pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="parallel executor requires the fork start method")

DEFENSE_FACTORIES = {
    "none": lambda: None,
    "dinar": lambda: DINAR(),
    "gc": lambda: GradientCompression(),
    "sa": lambda: SecureAggregation(),
    "ldp": lambda: LocalDP(noise_multiplier=1.0),
    "wdp": lambda: WeakDP(),
}


@pytest.fixture
def small_split(rng):
    ds = synthetic_tabular(rng, 400, 20, 4, noise=0.2)
    return split_for_membership(ds, rng)


def _run(small_split, tiny_model_factory, defense, **cfg_kwargs):
    defaults = dict(num_clients=4, rounds=3, local_epochs=2, lr=0.1,
                    batch_size=32, seed=5)
    defaults.update(cfg_kwargs)
    sim = FederatedSimulation(small_split, tiny_model_factory,
                              FLConfig(**defaults), defense)
    history = sim.run()
    return sim, history


def _snapshot(sim, history):
    """Every artifact a run produces, as plain comparable arrays."""
    return {
        "global": as_store(sim.server.global_weights).buffer.copy(),
        "personal": {
            c.client_id: c.personal_weights.buffer.copy()
            for c in sim.clients if c.personal_weights is not None
        },
        "transmitted": {
            cid: as_store(w).buffer.copy()
            for cid, w in sim.last_updates.items()
        },
        "accuracies": [
            (r.global_accuracy, r.mean_client_accuracy)
            for r in history.records
        ],
    }


# ----------------------------------------------------------------------
# the RNG scheme
# ----------------------------------------------------------------------

class TestRoundRng:
    def test_deterministic(self):
        a = round_rng(0, 3, 7).standard_normal(8)
        b = round_rng(0, 3, 7).standard_normal(8)
        assert np.array_equal(a, b)

    def test_distinct_across_cells(self):
        draws = {
            (r, c): tuple(round_rng(0, r, c).standard_normal(4))
            for r in range(3) for c in range(3)
        }
        assert len(set(draws.values())) == len(draws)

    def test_distinct_across_seeds(self):
        a = round_rng(0, 1, 1).standard_normal(4)
        b = round_rng(1, 1, 1).standard_normal(4)
        assert not np.array_equal(a, b)


# ----------------------------------------------------------------------
# executor selection and validation
# ----------------------------------------------------------------------

class TestSelection:
    def test_default_is_serial(self, small_split, tiny_model_factory):
        sim, _ = _run(small_split, tiny_model_factory, None, rounds=1)
        assert isinstance(sim.executor, SerialExecutor)

    def test_workers_selects_parallel(self):
        config = FLConfig(workers=2)
        executor = make_executor([], Defense(), None, config)
        assert isinstance(executor, ParallelExecutor)
        assert executor.workers == 2
        executor.close()

    def test_default_transport_is_shm(self):
        from repro.fl.shm import ShmParallelExecutor, shm_available
        if not shm_available():
            pytest.skip("shared memory unavailable on this platform")
        executor = make_executor([], Defense(), None, FLConfig(workers=2))
        assert isinstance(executor, ShmParallelExecutor)
        executor.close()

    def test_ipc_pickle_selects_plain_parallel(self):
        from repro.fl.shm import ShmParallelExecutor
        config = FLConfig(workers=2, ipc="pickle")
        executor = make_executor([], Defense(), None, config)
        assert isinstance(executor, ParallelExecutor)
        assert not isinstance(executor, ShmParallelExecutor)
        executor.close()

    def test_shm_falls_back_to_pickle_when_unavailable(
            self, monkeypatch):
        from repro.fl import shm
        monkeypatch.setattr(shm, "_AVAILABLE", False)
        executor = make_executor([], Defense(), None, FLConfig(workers=2))
        assert isinstance(executor, ParallelExecutor)
        assert not isinstance(executor, shm.ShmParallelExecutor)
        executor.close()

    def test_config_rejects_unknown_ipc(self):
        with pytest.raises(ValueError, match="ipc"):
            FLConfig(ipc="carrier-pigeon")

    def test_one_worker_is_serial(self):
        executor = make_executor([], Defense(), None, FLConfig(workers=1))
        assert isinstance(executor, SerialExecutor)

    def test_parallel_rejects_single_worker(self):
        with pytest.raises(ValueError, match=">= 2 workers"):
            ParallelExecutor([], Defense(), None, workers=1)

    def test_config_rejects_negative_workers(self):
        with pytest.raises(ValueError, match="workers"):
            FLConfig(workers=-1)

    def test_cli_workers_flag(self):
        from repro.cli import _build_parser
        from repro.data import available_datasets
        dataset = available_datasets()[0]
        args = _build_parser().parse_args(
            ["run", "--dataset", dataset, "--workers", "3"])
        assert args.workers == 3


# ----------------------------------------------------------------------
# serial vs parallel: bitwise identity
# ----------------------------------------------------------------------

class TestBitwiseIdentity:
    @pytest.mark.parametrize("ipc", ["pickle", "shm"])
    @pytest.mark.parametrize("defense_name",
                             sorted(DEFENSE_FACTORIES))
    def test_full_run_identical(self, small_split, tiny_model_factory,
                                defense_name, ipc):
        make = DEFENSE_FACTORIES[defense_name]
        serial = _snapshot(*_run(small_split, tiny_model_factory,
                                 make(), workers=0))
        parallel = _snapshot(*_run(small_split, tiny_model_factory,
                                   make(), workers=2, ipc=ipc))
        assert np.array_equal(serial["global"], parallel["global"])
        assert serial["personal"].keys() == parallel["personal"].keys()
        for cid in serial["personal"]:
            assert np.array_equal(serial["personal"][cid],
                                  parallel["personal"][cid])
        assert serial["transmitted"].keys() \
            == parallel["transmitted"].keys()
        for cid in serial["transmitted"]:
            assert np.array_equal(serial["transmitted"][cid],
                                  parallel["transmitted"][cid])
        assert serial["accuracies"] == parallel["accuracies"]

    def test_partial_cohorts_identical(self, small_split,
                                       tiny_model_factory):
        """Client sampling + DINAR state survive the process boundary."""
        kwargs = dict(rounds=4, clients_per_round=2)
        serial = _snapshot(*_run(small_split, tiny_model_factory,
                                 DINAR(), workers=0, **kwargs))
        parallel = _snapshot(*_run(small_split, tiny_model_factory,
                                   DINAR(), workers=3, **kwargs))
        assert np.array_equal(serial["global"], parallel["global"])
        assert serial["transmitted"].keys() \
            == parallel["transmitted"].keys()
        for cid in serial["transmitted"]:
            assert np.array_equal(serial["transmitted"][cid],
                                  parallel["transmitted"][cid])

    def test_cost_meter_semantics_match(self, small_split,
                                        tiny_model_factory):
        """Same number of client rounds accounted under both executors."""
        serial_sim, _ = _run(small_split, tiny_model_factory, None,
                             workers=0)
        parallel_sim, _ = _run(small_split, tiny_model_factory, None,
                               workers=2)
        assert serial_sim.cost_meter.report.client_train_rounds \
            == parallel_sim.cost_meter.report.client_train_rounds == 12
        assert parallel_sim.cost_meter.report.client_train_seconds > 0


# ----------------------------------------------------------------------
# failure surfacing
# ----------------------------------------------------------------------

class _ExplodingDefense(Defense):
    """Raises a normal exception inside one client's upload hook."""

    def on_send_update(self, client_id, weights, num_samples, rng):
        if client_id == 1:
            raise ValueError("boom")
        return weights


class _DyingDefense(Defense):
    """Kills the worker process hard inside one client's upload hook."""

    def on_send_update(self, client_id, weights, num_samples, rng):
        if client_id == 1:
            os._exit(13)
        return weights


class TestFailures:
    @pytest.mark.parametrize("ipc", ["pickle", "shm"])
    def test_worker_exception_names_client_and_round(
            self, small_split, tiny_model_factory, ipc):
        with pytest.raises(RuntimeError,
                           match=r"client 1 failed in round 0"):
            _run(small_split, tiny_model_factory, _ExplodingDefense(),
                 workers=2, rounds=1, ipc=ipc)

    @pytest.mark.parametrize("ipc", ["pickle", "shm"])
    def test_worker_crash_surfaces_instead_of_hanging(
            self, small_split, tiny_model_factory, ipc):
        """A hard worker death must raise promptly, not deadlock."""
        with pytest.raises(RuntimeError, match="worker process died"):
            _run(small_split, tiny_model_factory, _DyingDefense(),
                 workers=2, rounds=1, ipc=ipc)

    def test_pool_recreated_after_close(self, small_split,
                                        tiny_model_factory):
        sim, _ = _run(small_split, tiny_model_factory, None, workers=2,
                      rounds=1)
        # run() closed the pool; another round must transparently
        # rebuild it and still produce results.
        record = sim.run_round(1)
        assert record is not None
        sim.executor.close()
