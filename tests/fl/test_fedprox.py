"""FedProx proximal-term tests (extension)."""

import numpy as np
import pytest

from repro.data.synthetic import synthetic_tabular
from repro.fl.client import FLClient
from repro.fl.config import FLConfig
from repro.nn.model import flatten_weights, weights_zip_map
from repro.privacy.defenses.base import Defense


def _client(tiny_model_factory, mu, seed=0, epochs=3):
    rng = np.random.default_rng(seed)
    data = synthetic_tabular(rng, 80, 20, 4, noise=0.3)
    config = FLConfig(num_clients=1, rounds=1, local_epochs=epochs,
                      lr=0.2, batch_size=16, proximal_mu=mu)
    return FLClient(0, tiny_model_factory(np.random.default_rng(1)),
                    data, config, Defense(), np.random.default_rng(2))


def test_rejects_negative_mu():
    with pytest.raises(ValueError):
        FLConfig(proximal_mu=-0.1)


def test_proximal_term_limits_drift(tiny_model_factory):
    """Larger mu keeps the local model closer to the round anchor."""
    def drift(mu):
        client = _client(tiny_model_factory, mu)
        start = client.model.get_weights()
        update = client.train_round(start, 0)
        delta = weights_zip_map(np.subtract, update.weights, start)
        return float(np.linalg.norm(flatten_weights(delta)))

    assert drift(5.0) < drift(0.0)


def test_zero_mu_matches_plain_training(tiny_model_factory):
    """mu=0 must take exactly the plain FedAvg code path."""
    a = _client(tiny_model_factory, 0.0)
    b = _client(tiny_model_factory, 0.0)
    start = a.model.get_weights()
    ua = a.train_round(start, 0)
    ub = b.train_round(start, 0)
    assert np.allclose(flatten_weights(ua.weights),
                       flatten_weights(ub.weights))


def test_prox_still_learns(tiny_model_factory):
    client = _client(tiny_model_factory, 0.1, epochs=40)
    client.train_round(client.model.get_weights(), 0)
    assert client.evaluate(client.data.x, client.data.y) > 0.7
