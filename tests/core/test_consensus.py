"""Broadcast distributed voting tests (§4.1), including Byzantine
behaviour injection."""

import pytest

from repro.core.consensus import (
    BroadcastVoting,
    VotingNode,
    agree_on_private_layer,
)


class TestHonestVoting:
    def test_unanimous(self):
        result = agree_on_private_layer({0: 5, 1: 5, 2: 5})
        assert result.decided_value == 5
        assert result.honest_agreement

    def test_absolute_majority_wins(self):
        result = agree_on_private_layer({0: 5, 1: 5, 2: 5, 3: 2, 4: 1})
        assert result.decided_value == 5

    def test_plurality_fallback_deterministic(self):
        """No absolute majority: lowest-index plurality winner."""
        result = agree_on_private_layer({0: 1, 1: 2, 2: 3})
        assert result.decided_value in (1, 2, 3)
        again = agree_on_private_layer({0: 1, 1: 2, 2: 3})
        assert result.decided_value == again.decided_value

    def test_single_voter(self):
        result = agree_on_private_layer({0: 7})
        assert result.decided_value == 7

    def test_all_nodes_converge(self):
        result = agree_on_private_layer({i: 4 for i in range(7)})
        assert set(result.per_node_decisions.values()) == {4}

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            BroadcastVoting({})


class TestByzantineVoting:
    def test_random_voters_cannot_flip_majority(self):
        proposals = {i: 5 for i in range(7)}
        proposals[5] = 0
        proposals[6] = 1
        result = agree_on_private_layer(
            proposals, byzantine={5: "random", 6: "random"},
            num_layers=8, seed=3)
        assert result.decided_value == 5
        assert result.honest_agreement

    def test_equivocating_voter_tolerated(self):
        proposals = {i: 3 for i in range(5)}
        proposals[4] = 0
        result = agree_on_private_layer(
            proposals, byzantine={4: "equivocate"}, num_layers=8, seed=1)
        assert result.decided_value == 3

    def test_silent_voter_tolerated(self):
        proposals = {0: 2, 1: 2, 2: 2, 3: 0}
        result = agree_on_private_layer(
            proposals, byzantine={3: "silent"}, num_layers=4)
        assert result.decided_value == 2

    def test_mixed_behaviours(self):
        proposals = {i: 6 for i in range(9)}
        for i, behaviour in [(6, "random"), (7, "equivocate"),
                             (8, "silent")]:
            proposals[i] = 0
        result = agree_on_private_layer(
            proposals,
            byzantine={6: "random", 7: "equivocate", 8: "silent"},
            num_layers=8, seed=0)
        assert result.decided_value == 6
        assert result.honest_agreement

    def test_rejects_unknown_behaviour(self):
        with pytest.raises(ValueError):
            VotingNode(0, 1, byzantine="teleport")

    def test_rejects_byzantine_nonvoter(self):
        with pytest.raises(ValueError):
            BroadcastVoting({0: 1}, byzantine={9: "random"})


class TestProtocolMechanics:
    def test_rounds_bounded(self):
        result = agree_on_private_layer({i: i % 3 for i in range(9)})
        assert 1 <= result.rounds_used <= 3

    def test_deterministic_given_seed(self):
        proposals = {i: 5 for i in range(6)}
        proposals[5] = 1
        a = agree_on_private_layer(proposals, byzantine={5: "random"},
                                   num_layers=8, seed=11)
        b = agree_on_private_layer(proposals, byzantine={5: "random"},
                                   num_layers=8, seed=11)
        assert a.decided_value == b.decided_value
