"""Layer-sensitivity analysis tests (§3)."""

import numpy as np
import pytest

from repro.core.sensitivity import LayerSensitivity, layer_divergences
from repro.data.loader import iterate_batches
from repro.data.synthetic import synthetic_tabular
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.optim import SGD


@pytest.fixture
def trained_setup(rng, tiny_model_factory):
    data = synthetic_tabular(rng, 240, 20, 4, noise=0.35)
    members = data.subset(np.arange(120))
    nonmembers = data.subset(np.arange(120, 240))
    model = tiny_model_factory(np.random.default_rng(1))
    loss = SoftmaxCrossEntropy()
    optimizer = SGD(model, 0.2)
    for _ in range(40):
        for bx, by in iterate_batches(members.x, members.y, 32, rng):
            model.loss_and_grad(bx, by, loss)
            optimizer.step()
    return model, members, nonmembers


class TestLayerDivergences:
    def test_profile_shape(self, trained_setup, rng):
        model, members, nonmembers = trained_setup
        sens = layer_divergences(model, members.x, members.y,
                                 nonmembers.x, nonmembers.y, rng=rng)
        assert len(sens.divergences) == model.num_trainable_layers
        assert np.all(sens.divergences >= 0)
        assert np.all(sens.divergences <= 1)

    def test_overfit_model_diverges_more_than_fresh(self, trained_setup,
                                                    tiny_model_factory,
                                                    rng):
        model, members, nonmembers = trained_setup
        fresh = tiny_model_factory(np.random.default_rng(9))
        trained_sens = layer_divergences(
            model, members.x, members.y, nonmembers.x, nonmembers.y,
            rng=np.random.default_rng(0))
        fresh_sens = layer_divergences(
            fresh, members.x, members.y, nonmembers.x, nonmembers.y,
            rng=np.random.default_rng(0))
        assert trained_sens.divergences.max() > fresh_sens.divergences.max()

    def test_gradient_values_method(self, trained_setup, rng):
        model, members, nonmembers = trained_setup
        sens = layer_divergences(model, members.x, members.y,
                                 nonmembers.x, nonmembers.y, rng=rng,
                                 method="gradient_values")
        assert len(sens.divergences) == model.num_trainable_layers

    def test_unknown_method_rejected(self, trained_setup, rng):
        model, members, nonmembers = trained_setup
        with pytest.raises(ValueError):
            layer_divergences(model, members.x, members.y,
                              nonmembers.x, nonmembers.y, rng=rng,
                              method="telepathy")

    def test_empty_population_rejected(self, trained_setup, rng):
        model, members, _ = trained_setup
        empty = np.zeros((0, 20))
        with pytest.raises(ValueError):
            layer_divergences(model, members.x, members.y, empty,
                              np.zeros(0, dtype=int), rng=rng)


class TestLayerSensitivity:
    def test_most_sensitive_is_argmax(self):
        sens = LayerSensitivity(["a", "b", "c"],
                                np.array([0.1, 0.5, 0.2]))
        assert sens.most_sensitive_layer == 1

    def test_ranking_descends(self):
        sens = LayerSensitivity(["a", "b", "c"],
                                np.array([0.1, 0.5, 0.2]))
        assert sens.ranking() == [1, 2, 0]

    def test_as_rows(self):
        sens = LayerSensitivity(["a", "b"], np.array([0.1, 0.2]))
        rows = sens.as_rows()
        assert rows == [(0, "a", pytest.approx(0.1)),
                        (1, "b", pytest.approx(0.2))]
