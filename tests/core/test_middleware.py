"""DINAR middleware facade tests."""

import numpy as np
import pytest

from repro.core.middleware import DINARMiddleware
from repro.data.partition import split_for_membership
from repro.data.synthetic import synthetic_tabular
from repro.fl.config import FLConfig
from repro.privacy.attacks.metrics import local_models_auc
from repro.privacy.attacks.threshold import LossThresholdAttack


@pytest.fixture
def split(rng):
    data = synthetic_tabular(rng, 600, 20, 4, noise=0.35)
    return split_for_membership(data, rng)


CONFIG = FLConfig(num_clients=3, rounds=3, local_epochs=3, lr=0.15,
                  batch_size=32, seed=0)


def test_deploy_runs_initialization(split, tiny_model_factory):
    middleware = DINARMiddleware(tiny_model_factory, CONFIG,
                                 dinar_kwargs={"lr": 0.05})
    simulation = middleware.deploy(split)
    assert middleware.initialization is not None
    assert 0 <= middleware.initialization.private_layer < 3
    assert middleware.defense.private_layer \
        == middleware.initialization.private_layer
    assert simulation.defense is middleware.defense


def test_deployed_simulation_protects(split, tiny_model_factory):
    middleware = DINARMiddleware(tiny_model_factory, CONFIG,
                                 dinar_kwargs={"lr": 0.05})
    simulation = middleware.deploy(split)
    simulation.run()
    auc = local_models_auc(LossThresholdAttack(), simulation,
                           max_samples=150)
    assert auc < 0.6


def test_byzantine_clients_tolerated(split, tiny_model_factory):
    middleware = DINARMiddleware(
        tiny_model_factory, CONFIG, byzantine={2: "random"},
        dinar_kwargs={"lr": 0.05})
    middleware.deploy(split)
    assert 0 <= middleware.initialization.private_layer < 3


def test_describe_before_and_after(split, tiny_model_factory):
    middleware = DINARMiddleware(tiny_model_factory, CONFIG)
    assert "not deployed" in middleware.describe()
    middleware.deploy(split)
    text = middleware.describe()
    assert "private layer" in text
    assert "broadcast rounds" in text
