"""DINAR edge cases and obfuscation-mode behaviour."""

import numpy as np
import pytest

from repro.core.dinar import DINAR


@pytest.fixture
def template(tiny_model):
    return tiny_model.get_weights()


def test_rejects_unknown_obfuscation_mode():
    with pytest.raises(ValueError):
        DINAR(obfuscation="xor")


def test_scaled_noise_matches_layer_magnitude(template, rng):
    defense = DINAR(private_layer=0, obfuscation="scaled",
                    obfuscation_scale=1.0)
    sent = defense.on_send_update(0, template, 10, rng)
    real_std = template[0]["W"].std()
    noise_std = sent[0]["W"].std()
    assert 0.5 * real_std < noise_std < 2.0 * real_std


def test_scaled_noise_floors_zero_arrays(template, rng):
    """An all-zero bias still receives non-degenerate noise."""
    defense = DINAR(private_layer=0, obfuscation="scaled")
    assert np.all(template[0]["b"] == 0.0)  # fresh Dense bias
    sent = defense.on_send_update(0, template, 10, rng)
    assert sent[0]["b"].std() > 0.0


def test_gaussian_noise_uses_fixed_scale(template, rng):
    defense = DINAR(private_layer=0, obfuscation="gaussian",
                    obfuscation_scale=5.0)
    sent = defense.on_send_update(0, template, 10, rng)
    assert 3.0 < sent[0]["W"].std() < 7.0


def test_no_personalize_mode_keeps_global(template, rng):
    defense = DINAR(private_layer=0, personalize=False)
    defense.on_send_update(0, template, 10, rng)
    garbage = [{k: np.full_like(v, 9.0) for k, v in layer.items()}
               for layer in template]
    received = defense.on_receive_global(0, garbage)
    assert np.all(received[0]["W"] == 9.0)  # nothing restored


def test_describe_mentions_extras():
    text = DINAR(private_layer=1, extra_layers=(2,)).describe()
    assert "extra" in text


def test_repeated_rounds_update_stored_layer(template, rng):
    defense = DINAR(private_layer=0)
    defense.on_send_update(0, template, 10, rng)
    newer = [{k: v + 1.0 for k, v in layer.items()} for layer in template]
    defense.on_send_update(0, newer, 10, rng)
    restored = defense.on_receive_global(0, template)
    assert np.array_equal(restored[0]["W"], newer[0]["W"])
