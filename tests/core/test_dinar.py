"""DINAR defense tests — Algorithm 1 step by step."""

import numpy as np
import pytest

from repro.core.dinar import DINAR, dinar_initialization
from repro.data.synthetic import synthetic_tabular
from repro.nn.model import weights_allclose
from repro.nn.optim import Adagrad


@pytest.fixture
def template(tiny_model):
    return tiny_model.get_weights()


class TestObfuscation:
    """Algorithm 1, lines 15-17."""

    def test_private_layer_replaced_with_random(self, template, rng):
        defense = DINAR(private_layer=-2)
        sent = defense.on_send_update(0, template, 10, rng)
        p = defense.protected_indices(len(template))[0]
        assert p == 1  # penultimate of 3 trainable layers
        assert not np.allclose(sent[p]["W"], template[p]["W"])

    def test_other_layers_untouched(self, template, rng):
        defense = DINAR(private_layer=-2)
        sent = defense.on_send_update(0, template, 10, rng)
        assert np.array_equal(sent[0]["W"], template[0]["W"])
        assert np.array_equal(sent[2]["W"], template[2]["W"])

    def test_raw_layer_stored_client_side(self, template, rng):
        defense = DINAR(private_layer=-2)
        defense.on_send_update(0, template, 10, rng)
        stored = defense._stored[0][1]
        assert np.array_equal(stored["W"], template[1]["W"])

    def test_obfuscation_scale(self, template):
        small = DINAR(private_layer=0, obfuscation_scale=1e-6)
        sent = small.on_send_update(
            0, template, 10, np.random.default_rng(0))
        assert np.abs(sent[0]["W"]).max() < 1e-3

    def test_per_client_isolation(self, template, rng):
        defense = DINAR(private_layer=0)
        defense.on_send_update(0, template, 10, rng)
        modified = [{k: v + 1.0 for k, v in layer.items()}
                    for layer in template]
        defense.on_send_update(1, modified, 10, rng)
        assert not np.array_equal(defense._stored[0][0]["W"],
                                  defense._stored[1][0]["W"])


class TestPersonalization:
    """Algorithm 1, lines 1-6."""

    def test_first_round_passthrough(self, template):
        defense = DINAR(private_layer=-2)
        received = defense.on_receive_global(0, template)
        assert received is template  # nothing stored yet

    def test_private_layer_restored(self, template, rng):
        defense = DINAR(private_layer=-2)
        defense.on_send_update(0, template, 10, rng)
        obfuscated_global = [
            {k: np.full_like(v, 9.0) for k, v in layer.items()}
            for layer in template
        ]
        received = defense.on_receive_global(0, obfuscated_global)
        assert np.array_equal(received[1]["W"], template[1]["W"])
        assert np.all(received[0]["W"] == 9.0)  # global for other layers

    def test_clients_get_their_own_layer_back(self, template, rng):
        defense = DINAR(private_layer=0)
        other = [{k: v * 2 for k, v in layer.items()} for layer in template]
        defense.on_send_update(0, template, 10, rng)
        defense.on_send_update(1, other, 10, rng)
        r0 = defense.on_receive_global(0, template)
        r1 = defense.on_receive_global(1, template)
        assert np.array_equal(r0[0]["W"], template[0]["W"])
        assert np.array_equal(r1[0]["W"], other[0]["W"])


class TestAdaptiveTraining:
    """Algorithm 1, lines 7-14."""

    def test_default_optimizer_is_adagrad(self, tiny_model):
        optimizer = DINAR().make_optimizer(tiny_model, 0.1)
        assert isinstance(optimizer, Adagrad)

    def test_lr_override(self, tiny_model):
        optimizer = DINAR(lr=0.123).make_optimizer(tiny_model, 0.9)
        assert optimizer.lr == 0.123

    def test_lr_inherits_when_none(self, tiny_model):
        optimizer = DINAR(lr=None).make_optimizer(tiny_model, 0.9)
        assert optimizer.lr == 0.9

    def test_ablation_optimizers(self, tiny_model):
        for name in ("adam", "adamax", "adgd"):
            optimizer = DINAR(optimizer=name).make_optimizer(
                tiny_model, 0.1)
            assert type(optimizer).__name__.lower() == name


class TestMultiLayer:
    """The Fig. 5 multi-layer obfuscation mode."""

    def test_extra_layers_obfuscated(self, template, rng):
        defense = DINAR(private_layer=-2, extra_layers=(-1, 0))
        assert defense.protected_indices(3) == [0, 1, 2]
        sent = defense.on_send_update(0, template, 10, rng)
        for idx in range(3):
            assert not np.allclose(sent[idx]["W"], template[idx]["W"])

    def test_all_protected_layers_restored(self, template, rng):
        defense = DINAR(private_layer=0, extra_layers=(1,))
        defense.on_send_update(0, template, 10, rng)
        garbage = [{k: np.full_like(v, 5.0) for k, v in layer.items()}
                   for layer in template]
        received = defense.on_receive_global(0, garbage)
        assert np.array_equal(received[0]["W"], template[0]["W"])
        assert np.array_equal(received[1]["W"], template[1]["W"])
        assert np.all(received[2]["W"] == 5.0)


class TestValidation:
    def test_out_of_range_layer_rejected_at_use(self, template, rng):
        defense = DINAR(private_layer=7)
        with pytest.raises(IndexError):
            defense.on_send_update(0, template, 10, rng)

    def test_negative_indices_resolve(self):
        defense = DINAR(private_layer=-1)
        assert defense.protected_indices(5) == [4]

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            DINAR(obfuscation_scale=0.0)

    def test_state_bytes_tracks_stored_layers(self, template, rng):
        defense = DINAR(private_layer=0)
        assert defense.state_bytes() == 0
        defense.on_send_update(0, template, 10, rng)
        assert defense.state_bytes() == sum(
            v.nbytes for v in template[0].values())


class TestInitialization:
    """§4.1 end to end: sensitivity + vote."""

    def test_initialization_returns_valid_layer(self, rng,
                                                tiny_model_factory):
        datasets = [
            synthetic_tabular(np.random.default_rng(i), 80, 20, 4,
                              noise=0.3)
            for i in range(3)
        ]
        result = dinar_initialization(
            tiny_model_factory, datasets, warmup_epochs=5, lr=0.1,
            batch_size=16, seed=0)
        assert 0 <= result.private_layer < 3
        assert len(result.per_client_sensitivity) == 3
        assert result.consensus.honest_agreement

    def test_initialization_with_byzantine_clients(self, rng,
                                                   tiny_model_factory):
        datasets = [
            synthetic_tabular(np.random.default_rng(i), 80, 20, 4,
                              noise=0.3)
            for i in range(5)
        ]
        result = dinar_initialization(
            tiny_model_factory, datasets, warmup_epochs=3, lr=0.1,
            batch_size=16, byzantine={4: "random"}, seed=0)
        assert 0 <= result.private_layer < 3

    def test_rejects_empty_client_list(self, tiny_model_factory):
        with pytest.raises(ValueError):
            dinar_initialization(tiny_model_factory, [])
