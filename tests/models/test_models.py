"""Architecture tests for every paper model family."""

import numpy as np
import pytest

from repro.models import (
    PAPER_FCNN_HIDDEN,
    ResidualBlock,
    available_models,
    build_audio_m5,
    build_fcnn,
    build_model,
    build_resnet_small,
    build_vgg_small,
)
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.optim import SGD
from tests.conftest import numeric_gradient_check


class TestFCNN:
    def test_layer_count(self, rng):
        model = build_fcnn(600, 100, rng)
        assert model.num_trainable_layers == 7  # 6 hidden + classifier

    def test_paper_widths_constant(self):
        assert PAPER_FCNN_HIDDEN == (4096, 2048, 1024, 512, 256, 128)

    def test_custom_hidden(self, rng):
        model = build_fcnn(10, 3, rng, hidden=(8, 6))
        assert model.num_trainable_layers == 3
        assert model.predict_logits(rng.standard_normal((2, 10))).shape \
            == (2, 3)

    def test_rejects_empty_hidden(self, rng):
        with pytest.raises(ValueError):
            build_fcnn(10, 3, rng, hidden=())

    def test_uses_tanh(self, rng):
        from repro.nn.activations import Tanh
        model = build_fcnn(10, 3, rng, hidden=(8,))
        assert any(isinstance(layer, Tanh) for layer in model.layers)


class TestResNet:
    def test_forward_shape(self, rng):
        model = build_resnet_small((3, 8, 8), 10, rng)
        out = model.predict_logits(rng.standard_normal((2, 3, 8, 8)))
        assert out.shape == (2, 10)

    def test_residual_block_is_one_trainable_layer(self, rng):
        model = build_resnet_small((3, 8, 8), 10, rng, num_blocks=2)
        # stem conv + 2 blocks + classifier
        assert model.num_trainable_layers == 4

    def test_residual_block_identity_path(self, rng):
        """With zeroed convs the block is relu(x) (pure skip)."""
        block = ResidualBlock(2, rng)
        for key in block.params:
            block.params[key][...] = 0.0
        x = rng.standard_normal((2, 2, 4, 4))
        out = block.forward(x)
        assert np.allclose(out, np.maximum(x, 0.0))

    def test_residual_block_merged_params(self, rng):
        block = ResidualBlock(4, rng)
        assert set(block.params) == {"conv1.W", "conv1.b",
                                     "conv2.W", "conv2.b"}

    def test_residual_block_gradient_exact(self, rng):
        from repro.nn.layers import Dense, Flatten
        from repro.nn.model import Model
        model = Model([ResidualBlock(2, rng), Flatten(),
                       Dense(2 * 4 * 4, 3, rng)])
        x = rng.standard_normal((2, 2, 4, 4))
        y = rng.integers(0, 3, 2)
        err = numeric_gradient_check(model, x, y, SoftmaxCrossEntropy(), rng)
        assert err < 1e-6

    def test_residual_block_set_state(self, rng):
        block = ResidualBlock(2, rng)
        state = block.state()
        state["conv1.W"][...] = 3.0
        block.set_state(state)
        assert np.all(block.conv1.params["W"] == 3.0)


class TestVGG:
    def test_forward_shape(self, rng):
        model = build_vgg_small((3, 8, 8), 43, rng)
        out = model.predict_logits(rng.standard_normal((2, 3, 8, 8)))
        assert out.shape == (2, 43)

    def test_rejects_indivisible_input(self, rng):
        with pytest.raises(ValueError):
            build_vgg_small((3, 6, 6), 10, rng)

    def test_trainable_layer_count(self, rng):
        model = build_vgg_small((3, 8, 8), 10, rng, widths=(4, 8))
        assert model.num_trainable_layers == 4  # 2 conv + 2 dense


class TestAudio:
    def test_forward_shape(self, rng):
        model = build_audio_m5((1, 256), 36, rng)
        out = model.predict_logits(rng.standard_normal((2, 1, 256)))
        assert out.shape == (2, 36)

    def test_rejects_too_short_waveform(self, rng):
        with pytest.raises(ValueError):
            build_audio_m5((1, 16), 4, rng, widths=(4, 8, 8, 8))


class TestRegistry:
    def test_available_models(self):
        assert set(available_models()) == {"fcnn", "resnet", "vgg", "audio"}

    @pytest.mark.parametrize("name,shape,classes", [
        ("fcnn", (30,), 5),
        ("resnet", (3, 8, 8), 5),
        ("vgg", (3, 8, 8), 5),
        ("audio", (1, 256), 5),
    ])
    def test_build_and_run(self, name, shape, classes, rng):
        model = build_model(name, shape, classes, rng)
        x = rng.standard_normal((2, *shape))
        assert model.predict_logits(x).shape == (2, classes)

    def test_unknown_model_rejected(self, rng):
        with pytest.raises(ValueError):
            build_model("transformer", (10,), 2, rng)

    def test_models_are_trainable(self, rng):
        """Every family fits a tiny memorization problem."""
        model = build_model("resnet", (3, 8, 8), 2, rng)
        x = rng.standard_normal((16, 3, 8, 8))
        y = np.array([0, 1] * 8)
        loss = SoftmaxCrossEntropy()
        optimizer = SGD(model, 0.05)
        start = loss.forward(model.predict_logits(x), y)
        for _ in range(15):
            model.loss_and_grad(x, y, loss)
            optimizer.step()
        end = loss.forward(model.predict_logits(x), y)
        assert end < start
