"""Package metadata.

This offline environment has setuptools 65 but no ``wheel`` package, so
PEP 517/660 builds (which need ``bdist_wheel``) fail.  Keeping the
metadata here and leaving ``pyproject.toml`` without a ``[build-system]``
table makes ``pip install -e .`` take the legacy ``setup.py develop``
path, which works everywhere.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "DINAR: Personalized Privacy-Preserving Federated Learning "
        "(MIDDLEWARE '24) — full reproduction"
    ),
    long_description=open("README.md").read() if True else "",
    long_description_content_type="text/markdown",
    python_requires=">=3.10",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=[
        "numpy>=1.24",
        "scipy>=1.10",
        "networkx>=3.0",
    ],
    extras_require={
        "dev": ["pytest>=7.0", "pytest-benchmark>=4.0", "hypothesis>=6.0"],
    },
)
