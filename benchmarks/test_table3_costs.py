"""Table 3 — overhead of FL defense mechanisms vs the FL baseline
(GTSRB + VGG): client-side training duration per round, server-side
aggregation duration, and defense memory.

Paper values (overhead vs baseline):
  WDP  +35% train, +0% agg, +257% mem
  LDP  +7%  train, +0% agg, +267% mem
  CDP  +0%  train, +3000% agg, +261% mem
  GC   +21% train, +0% agg, +252% mem
  SA   +21% train, +4% agg, +0% mem
  DINAR +0% train, +0% agg, +0% mem

Shape to reproduce: DINAR's overhead is negligible on all three
metrics; CDP dominates server-side aggregation; client-side defenses
(LDP/WDP/GC/SA) add client work; DP/GC hold large extra state.
Absolute percentages differ (our substrate is NumPy on CPU, not
Opacus on an A40) and are reported side by side.
"""

from benchmarks.conftest import emit
from repro.bench.reporting import format_table

DEFENSES = ["none", "wdp", "ldp", "cdp", "gc", "sa", "dinar"]

PAPER = {
    "wdp": ("+35%", "+0%", "+257%"),
    "ldp": ("+7%", "+0%", "+267%"),
    "cdp": ("+0%", "+3000%", "+261%"),
    "gc": ("+21%", "+0%", "+252%"),
    "sa": ("+21%", "+4%", "+0%"),
    "dinar": ("+0%", "+0%", "+0%"),
}


def test_table3_costs(cells, results_dir, benchmark):
    def regenerate():
        return {d: cells.get("gtsrb", d, attack="yeom")
                for d in DEFENSES}

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    base = results["none"].costs

    def overhead(value, baseline):
        if baseline <= 0:
            return "n/a"
        return f"{100.0 * (value - baseline) / baseline:+.0f}%"

    rows = []
    for name in DEFENSES[1:]:
        costs = results[name].costs
        paper_train, paper_agg, paper_mem = PAPER[name]
        rows.append([
            name,
            paper_train,
            overhead(costs.train_seconds_per_round,
                     base.train_seconds_per_round),
            paper_agg,
            overhead(costs.aggregate_seconds_per_round,
                     base.aggregate_seconds_per_round),
            paper_mem,
            f"{costs.defense_state_bytes / 1024:.0f} KiB",
        ])
    table = format_table(
        ["defense", "paper train", "ours train", "paper agg",
         "ours agg", "paper mem", "ours extra state"],
        rows, title="Table 3: defense overheads vs FL baseline - gtsrb")
    emit(results_dir, "table3_costs", table)

    dinar = results["dinar"].costs
    # DINAR: negligible aggregation overhead (it is server-side free)
    assert dinar.aggregate_seconds_per_round \
        < 3.0 * base.aggregate_seconds_per_round + 0.01
    # CDP dominates everyone else's server-side aggregation time
    cdp_agg = results["cdp"].costs.aggregate_seconds_per_round
    for name in ("wdp", "gc", "dinar"):
        assert cdp_agg >= results[name].costs.aggregate_seconds_per_round
    # memory: GC and the DP methods hold large extra state; DINAR holds
    # only one layer per client (orders of magnitude smaller than GC)
    assert results["gc"].costs.defense_state_bytes \
        > results["dinar"].costs.defense_state_bytes
