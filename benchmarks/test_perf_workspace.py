"""Train-step wall-clock and allocation churn: workspace arena vs the
pre-workspace allocating path.

Times the conv train step — forward + backward + SGD step on the
VGG-style model at float64 — once through the arena-backed execution
path and once through the pre-PR implementation, reproduced verbatim
below over the same live weights (the same convention
``test_perf_train.py`` uses for the legacy optimizer).  Verifies the
two trajectories end bitwise identical, measures per-step allocation
churn with the tracemalloc hook, and writes ``BENCH_workspace.json``
at the repo root.

Both paths are single-threaded NumPy doing identical arithmetic in
identical order; the workspace wins by replacing every batch-sized
temporary allocation with an arena buffer reuse and by keeping scratch
layouts coherent with the conv plane's transposed outputs.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np
import pytest

from repro.bench.allocation import measure_train_step
from repro.models.vgg import build_vgg_small
from repro.nn.layers import Conv2d, Dense, Flatten, MaxPool2d
from repro.nn.activations import ReLU
from repro.nn.losses import SoftmaxCrossEntropy, log_softmax, softmax
from repro.nn.model import Model
from repro.nn.optim import SGD

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_workspace.json"

STEPS = 20          # train steps per timed run
REPEATS = 3         # best-of to damp scheduler noise
SPEEDUP_FLOOR = 1.15
ALLOC_REDUCTION_FLOOR = 5.0


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _make_setup() -> tuple[Model, np.ndarray, np.ndarray]:
    model = build_vgg_small((3, 16, 16), 43, np.random.default_rng(0))
    rng = np.random.default_rng(1)
    x = rng.standard_normal((128, 3, 16, 16))
    y = rng.integers(0, 43, 128)
    return model, x, y


# ----------------------------------------------------------------------
# The pre-workspace execution path, reproduced verbatim: every forward
# and backward below is the allocating implementation this PR replaced,
# run against the same live parameter views so the trajectory comparison
# is apples-to-apples.
# ----------------------------------------------------------------------

def _legacy_im2col(x, kh, kw, stride, pad):
    n, c, h, w = x.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    s0, s1, s2, s3 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(s0, s1, s2 * stride, s3 * stride, s2, s3),
        writeable=False,
    )
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n, out_h, out_w, -1)
    return cols, out_h, out_w


def _legacy_col2im(cols, x_shape, kh, kw, stride, pad):
    n, c, h, w = x_shape
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    patches = cols.reshape(n, out_h, out_w, c, kh, kw)
    for i in range(kh):
        for j in range(kw):
            padded[:, :, i:i + stride * out_h:stride,
                   j:j + stride * out_w:stride] += \
                patches[:, :, :, :, i, j].transpose(0, 3, 1, 2)
    if pad:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded


def _legacy_forward(layer, x, cache):
    if isinstance(layer, Conv2d):
        k, s, p = layer.kernel_size, layer.stride, layer.padding
        cols, _, _ = _legacy_im2col(x, k, k, s, p)
        cache["cols"] = cols
        cache["x_shape"] = x.shape
        w_flat = layer.params["W"].reshape(layer.out_channels, -1)
        out = cols @ w_flat.T + layer.params["b"]
        return out.transpose(0, 3, 1, 2)
    if isinstance(layer, ReLU):
        mask = x > 0
        cache["mask"] = mask
        return x * mask
    if isinstance(layer, MaxPool2d):
        n, c, h, w = x.shape
        k = layer.kernel_size
        blocks = x.reshape(n, c, h // k, k, w // k, k)
        out = blocks.max(axis=(3, 5))
        cache["mask"] = blocks == out[:, :, :, None, :, None]
        cache["x_shape"] = x.shape
        return out
    if isinstance(layer, Flatten):
        cache["shape"] = x.shape
        return x.reshape(x.shape[0], -1)
    if isinstance(layer, Dense):
        cache["x"] = x
        return x @ layer.params["W"] + layer.params["b"]
    raise TypeError(f"legacy path has no rule for {type(layer).__name__}")


def _legacy_backward(layer, grad, cache):
    if isinstance(layer, Conv2d):
        k, s, p = layer.kernel_size, layer.stride, layer.padding
        grad_flat = grad.transpose(0, 2, 3, 1)
        cols = cache["cols"]
        cols2d = cols.reshape(-1, cols.shape[-1])
        grad2d = grad_flat.reshape(-1, layer.out_channels)
        np.matmul(grad2d.T, cols2d,
                  out=layer._grad_out("W").reshape(layer.out_channels, -1))
        grad2d.sum(axis=0, out=layer._grad_out("b"))
        w_flat = layer.params["W"].reshape(layer.out_channels, -1)
        dcols = grad_flat @ w_flat
        return _legacy_col2im(dcols, cache["x_shape"], k, k, s, p)
    if isinstance(layer, ReLU):
        return grad * cache["mask"]
    if isinstance(layer, MaxPool2d):
        n, c, h, w = cache["x_shape"]
        mask = cache["mask"]
        expanded = grad[:, :, :, None, :, None] * mask
        counts = mask.sum(axis=(3, 5), keepdims=True, dtype=grad.dtype)
        expanded = expanded / counts
        return expanded.reshape(n, c, h, w)
    if isinstance(layer, Flatten):
        return grad.reshape(cache["shape"])
    if isinstance(layer, Dense):
        x = cache["x"]
        np.matmul(x.T, grad, out=layer._grad_out("W"))
        grad.sum(axis=0, out=layer._grad_out("b"))
        return grad @ layer.params["W"].T
    raise TypeError(f"legacy path has no rule for {type(layer).__name__}")


def _legacy_loss_and_grad(model: Model, x: np.ndarray,
                          y: np.ndarray) -> float:
    """Pre-PR train step: allocating layers + allocating fused loss."""
    caches = [dict() for _ in model.layers]
    for layer, cache in zip(model.layers, caches):
        x = _legacy_forward(layer, x, cache)
    probs = softmax(x)
    logp = log_softmax(x)
    value = float(-logp[np.arange(len(y)), y].mean())
    grad = probs.copy()
    grad[np.arange(len(y)), y] -= 1.0
    grad /= len(y)
    for layer, cache in zip(reversed(model.layers), reversed(caches)):
        grad = _legacy_backward(layer, grad, cache)
    model._grads_ready = True
    return value


def _time_workspace() -> tuple[float, np.ndarray]:
    loss = SoftmaxCrossEntropy()
    best = float("inf")
    for _ in range(REPEATS):
        model, x, y = _make_setup()
        optimizer = SGD(model, 0.01)
        model.loss_and_grad(x, y, loss)  # warm up the arena
        optimizer.step()
        start = time.perf_counter()
        for _ in range(STEPS):
            model.loss_and_grad(x, y, loss)
            optimizer.step()
        best = min(best, time.perf_counter() - start)
        final = model.weights.buffer.copy()
    return best, final


def _time_legacy() -> tuple[float, np.ndarray]:
    best = float("inf")
    for _ in range(REPEATS):
        model, x, y = _make_setup()
        optimizer = SGD(model, 0.01)
        _legacy_loss_and_grad(model, x, y)
        optimizer.step()
        start = time.perf_counter()
        for _ in range(STEPS):
            _legacy_loss_and_grad(model, x, y)
            optimizer.step()
        best = min(best, time.perf_counter() - start)
        final = model.weights.buffer.copy()
    return best, final


def _allocation_reports():
    """Tracemalloc accounting: arena on vs. the allocating path."""
    loss = SoftmaxCrossEntropy()
    reports = {}
    for mode in ("workspace", "allocating"):
        model, x, y = _make_setup()
        if mode == "allocating":
            model.use_workspace(False)
        optimizer = SGD(model, 0.01)
        model.loss_and_grad(x, y, loss)  # warm up arena + optimizer
        optimizer.step()
        reports[mode] = measure_train_step(model, x, y, loss,
                                           optimizer.step)
    return reports


@pytest.mark.bench
def test_workspace_train_step_speedup():
    ws_seconds, ws_final = _time_workspace()
    legacy_seconds, legacy_final = _time_legacy()

    # identical trajectories, bit for bit — the arena changes where
    # results are written, never what they are
    assert np.array_equal(ws_final, legacy_final)

    reports = _allocation_reports()
    churn = reports["allocating"]
    arena = reports["workspace"]
    alloc_reduction = churn.alloc_count / max(arena.alloc_count, 1)

    speedup = legacy_seconds / ws_seconds
    OUTPUT.write_text(json.dumps({
        "benchmark": "conv train step: workspace arena vs "
                     "pre-workspace allocating path",
        "steps": STEPS,
        "repeats": REPEATS,
        "available_cores": _available_cores(),
        "legacy_seconds": round(legacy_seconds, 4),
        "workspace_seconds": round(ws_seconds, 4),
        "speedup": round(speedup, 2),
        "allocations_per_step": {
            "allocating": churn.alloc_count,
            "workspace": arena.alloc_count,
            "reduction": round(alloc_reduction, 1),
        },
        "alloc_bytes_per_step": {
            "allocating": churn.alloc_bytes,
            "workspace": arena.alloc_bytes,
        },
        "peak_bytes": {
            "allocating": churn.peak_bytes,
            "workspace": arena.peak_bytes,
        },
    }, indent=2) + "\n")

    print()
    print(f"legacy {legacy_seconds:8.3f}s  workspace {ws_seconds:8.3f}s  "
          f"speedup {speedup:5.2f}x")
    print(f"allocs/step {churn.alloc_count} -> {arena.alloc_count} "
          f"({alloc_reduction:.1f}x fewer), peak "
          f"{churn.peak_bytes >> 20}MB -> {arena.peak_bytes >> 20}MB")

    assert speedup >= SPEEDUP_FLOOR, \
        f"expected >= {SPEEDUP_FLOOR}x vs pre-workspace path, " \
        f"measured {speedup:.2f}x"
    assert alloc_reduction >= ALLOC_REDUCTION_FLOOR, \
        f"expected >= {ALLOC_REDUCTION_FLOOR}x fewer allocations, " \
        f"measured {alloc_reduction:.1f}x"


if __name__ == "__main__":
    pytest.main([__file__, "-s", "-q", "-m", "bench"])
