"""Fig. 3 — member vs non-member loss distributions under No Defense /
LDP / CDP / WDP / DINAR (Cifar-10).

Paper shape: without defense the two distributions are clearly
separated; DP methods bring them together at the cost of frequent high
losses; DINAR matches the distributions while keeping losses low.
"""

from benchmarks.conftest import emit
from repro.analysis.loss_distribution import loss_distributions
from repro.bench.reporting import format_table

SCENARIOS = ["none", "ldp", "cdp", "wdp", "dinar"]


def test_fig3_loss_distributions(cells, results_dir, benchmark):
    def regenerate():
        out = {}
        for name in SCENARIOS:
            result = cells.get("cifar10", name, attack="yeom")
            sim = result.simulation
            split = sim.split
            # Fig. 3 looks at the attacked local model of a client.
            model = sim.transmitted_model(0)
            members = sim.clients[0].data
            out[name] = loss_distributions(
                model, members.x, members.y,
                split.nonmembers.x, split.nonmembers.y)
        return out

    dists = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    rows = []
    for name in SCENARIOS:
        d = dists[name]
        rows.append([
            name, f"{d.member_mean:.3f}", f"{d.nonmember_mean:.3f}",
            f"{d.gap:.3f}", f"{d.divergence:.4f}",
        ])
    table = format_table(
        ["defense", "member mean loss", "non-member mean loss",
         "gap", "JS divergence"],
        rows, title="Fig.3 loss distributions - cifar10 (local model)")
    emit(results_dir, "fig3_loss_distributions", table)

    import numpy as np

    none, dinar = dists["none"], dists["dinar"]
    # no defense: distributions clearly separated
    assert none.gap > 0.1
    # DINAR: distributions match (gap near zero)...
    assert abs(dinar.gap) < none.gap / 2
    # ...and stay moderate (scale-matched obfuscation keeps the
    # protected model's outputs in a bounded range), unlike the
    # orders-of-magnitude-larger losses under heavy CDP noise
    assert dinar.member_mean < 100
    assert dinar.member_mean < dists["cdp"].member_mean / 10
