"""Leakage-over-training trajectory (extension).

The paper reports end-of-training attack AUC; this extension tracks it
*per round*: an unprotected run leaks more the longer it trains (each
round memorizes the members harder), while DINAR pins the attacker at
~50% from the very first round — the defense has no warm-up window in
which uploads are exposed.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.analysis.leakage_over_time import leakage_over_training
from repro.bench.harness import default_config, make_model_factory
from repro.bench.reporting import format_table
from repro.core.dinar import DINAR
from repro.data import load_dataset, split_for_membership
from repro.fl.simulation import FederatedSimulation
from repro.privacy.attacks.threshold import LossThresholdAttack


def test_leakage_trajectory(results_dir, benchmark):
    def regenerate():
        config = default_config("purchase100")
        dataset = load_dataset("purchase100", 0)
        split = split_for_membership(
            dataset, np.random.default_rng((0, 17)))
        factory = make_model_factory("purchase100")
        attack = LossThresholdAttack()
        unprotected = leakage_over_training(
            FederatedSimulation(split, factory, config),
            attack, max_samples=250)
        protected = leakage_over_training(
            FederatedSimulation(split, factory, config,
                                DINAR(lr=0.005)),
            attack, max_samples=250)
        return unprotected, protected

    unprotected, protected = benchmark.pedantic(regenerate, rounds=1,
                                                iterations=1)

    rows = []
    for base, dinar in zip(unprotected.points, protected.points):
        rows.append([
            base.round_index,
            f"{100 * base.local_auc:.1f}",
            f"{100 * dinar.local_auc:.1f}",
        ])
    table = format_table(
        ["round", "no-defense local AUC %", "DINAR local AUC %"],
        rows, title="Leakage over training - purchase100 (extension)")
    emit(results_dir, "leakage_trajectory", table)

    # the unprotected run keeps leaking heavily as training proceeds
    # (averaged over rounds to be robust to per-round sampling noise)
    first = np.mean([p.local_auc for p in unprotected.points[:3]])
    last = np.mean([p.local_auc for p in unprotected.points[-3:]])
    assert last >= first - 0.02
    assert unprotected.peak_local_auc > 0.65
    # DINAR is pinned near the optimum at EVERY round
    for point in protected.points:
        assert point.local_auc < 0.60
