"""Fleet-scale aggregation: constant-memory streaming vs dense batch.

The fleet plane's claim is that cohort size is a free axis on the
aggregation side: a round over 100k sampled clients folds through the
:class:`StreamingAccumulator` in the same peak memory as a 1k round,
while the dense :class:`UpdateBatch` grows linearly and is only kept
for ``requires_dense`` rules.  This benchmark measures both at
1k/10k/100k synthetic clients (updates generated one at a time from
per-client seeds, so the harness itself never materializes the fleet),
verifies the streamed FedAvg matches :func:`fedavg_reference` within
the pinned 2-ULP envelope at 1k clients, and writes
``BENCH_fleet.json`` at the repo root.
"""

from __future__ import annotations

import json
import pathlib
import time
import tracemalloc

import numpy as np
import pytest

from repro.fl.aggregation import (
    StreamingAccumulator,
    UpdateBatch,
    fedavg_reference,
)
from repro.models.fcnn import build_fcnn
from repro.nn.store import WeightStore

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_fleet.json"

STREAM_COUNTS = (1_000, 10_000, 100_000)
DENSE_COUNTS = (1_000, 10_000)  # 100k dense would be ~2.4 GB: the point


def _layout():
    model = build_fcnn(40, 20, np.random.default_rng(0),
                       hidden=(32, 32))
    return model.get_store().layout


def _client_update(layout, client_id: int) -> np.ndarray:
    """One synthetic client's flat update, regenerable from its id."""
    rng = np.random.default_rng((7, client_id))
    return rng.standard_normal(layout.num_params)


def _num_samples(n: int) -> np.ndarray:
    return np.random.default_rng(13).integers(20, 200, size=n)


def _stream_round(layout, n: int):
    """Fold n generated updates; return (result, seconds, peak_bytes,
    accumulator_nbytes)."""
    samples = _num_samples(n)
    total = float(samples.sum())
    tracemalloc.start()
    start = time.perf_counter()
    acc = StreamingAccumulator(layout)
    acc.reset(total_weight=total)
    for i in range(n):
        acc.fold(WeightStore(layout, _client_update(layout, i)),
                 weight=float(samples[i]))
    result = acc.drain()
    seconds = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, seconds, peak, acc.nbytes


def _dense_round(layout, n: int):
    """Collect n generated updates densely; return (seconds,
    peak_bytes, batch_nbytes)."""
    tracemalloc.start()
    start = time.perf_counter()
    batch = UpdateBatch(layout, capacity=n, client_cap=n)
    for i in range(n):
        batch.add(WeightStore(layout, _client_update(layout, i)))
    seconds = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return seconds, peak, batch.nbytes


@pytest.mark.bench
def test_streaming_memory_flat_dense_linear():
    layout = _layout()
    entries = []

    stream_peaks = {}
    for n in STREAM_COUNTS:
        result, seconds, peak, acc_nbytes = _stream_round(layout, n)
        stream_peaks[n] = peak
        entries.append({
            "path": "streaming", "clients": n,
            "params": layout.num_params,
            "round_seconds": round(seconds, 4),
            "peak_mib": round(peak / 2**20, 3),
            "state_mib": round(acc_nbytes / 2**20, 3),
        })
        if n == STREAM_COUNTS[0]:
            reference_result = result

    dense_nbytes = {}
    for n in DENSE_COUNTS:
        seconds, peak, nbytes = _dense_round(layout, n)
        dense_nbytes[n] = nbytes
        entries.append({
            "path": "dense", "clients": n,
            "params": layout.num_params,
            "round_seconds": round(seconds, 4),
            "peak_mib": round(peak / 2**20, 3),
            "state_mib": round(nbytes / 2**20, 3),
        })

    # exactness: streamed FedAvg at 1k clients vs the nested oracle
    n0 = STREAM_COUNTS[0]
    samples = [int(s) for s in _num_samples(n0)]
    nested = [
        WeightStore(layout, _client_update(layout, i)).to_layers()
        for i in range(n0)
    ]
    oracle = fedavg_reference(nested, samples)
    np.testing.assert_array_almost_equal_nulp(
        reference_result.buffer,
        WeightStore.from_layers(oracle, layout).buffer, nulp=2)

    OUTPUT.write_text(json.dumps({
        "benchmark": "fleet aggregation: streaming vs dense memory",
        "entries": entries,
    }, indent=2) + "\n")

    print()
    print(f"{'path':<12}{'clients':>9}{'seconds':>10}"
          f"{'peak MiB':>11}{'state MiB':>11}")
    for e in entries:
        print(f"{e['path']:<12}{e['clients']:>9}"
              f"{e['round_seconds']:>10.3f}{e['peak_mib']:>11.2f}"
              f"{e['state_mib']:>11.2f}")

    lo, hi = STREAM_COUNTS[0], STREAM_COUNTS[-1]
    assert stream_peaks[hi] <= 1.1 * stream_peaks[lo], (
        f"streaming peak must stay flat (within 10%) from {lo} to "
        f"{hi} clients: {stream_peaks[lo]} -> {stream_peaks[hi]} bytes")
    growth = dense_nbytes[DENSE_COUNTS[1]] / dense_nbytes[DENSE_COUNTS[0]]
    expected = DENSE_COUNTS[1] / DENSE_COUNTS[0]
    assert growth >= 0.8 * expected, (
        f"dense batch memory should grow ~linearly "
        f"({expected}x expected, measured {growth:.1f}x)")


if __name__ == "__main__":
    pytest.main([__file__, "-s", "-q"])
